# Verify loop. `make check` is the gate every change must pass: build,
# vet, the full test suite, the race detector over the atomic
# telemetry counters and the concurrent click-time cache, the chaos
# suite (fault-injected sources under concurrent load), and the
# parallel-build determinism suite.
GO ?= go

.PHONY: build test vet race bench bench-smoke chaos crash testpar fuzz load soak ledger check explain-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Benchmark smoke: one iteration of every benchmark, so a refactor
# that breaks a benchmark's setup (or its acceptance metric wiring)
# fails CI instead of rotting until the next manual `make bench`.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Fault-injection suite: flaky/hanging sources and overload against
# the full serving stack, twice, under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'Chaos' ./internal/server/

# Crash-safety suite: the crash-at-every-write-point sweeps (atomic
# publication over example sites, repository Save), fault-injected
# ENOSPC / fsync-EIO publishes, recovery, and corruption detection —
# all under the race detector.
crash:
	$(GO) test -race -run 'Crash|Fault|Publish|Recover|Verify|ENOSPC|EIO|Atomic|Corrupt' ./internal/fsx/ ./internal/publish/ ./internal/repository/ ./internal/sitegen/ .

# Parallel-build determinism suite: the worker pool's property tests,
# the concurrent generator/evaluator/materializer, the example sites at
# workers 1/4/16, and the differential delta-rebuild suite (random edit
# scripts, incremental vs. from-scratch, byte-identical at workers
# 1/4/16), all under the race detector, twice.
testpar:
	$(GO) test -race -count=2 ./internal/pool/... ./internal/sitegen/... ./internal/struql/... ./internal/incremental/...
	$(GO) test -race -count=2 -run 'Deterministic|Parallel|Golden' ./internal/core/ ./examples/...
	$(GO) test -race -count=2 -run 'Differential' .

# Serving-edge load smoke: the deterministic load-generation
# conformance harness (Zipf clients, conditional revalidation, fault
# injection) against the full serving stack, under the race detector —
# the hit-ratio, p99 and RPS floors plus the ETag differential suite.
load:
	$(GO) test -race -run 'LoadConformance|ETag|HTTPConformance|RunLoad' . ./internal/server/ ./internal/workload/

# Fuzz smoke: run each language's fuzz target briefly (Go allows one
# -fuzz pattern per invocation). Longer runs: raise -fuzztime.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzStruQLParse$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDataDefParse$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDifferentialEval$$' -fuzztime $(FUZZTIME) .

# Long-haul differential maintenance: 500 random edits against one
# evolving site with byte-identity checkpoints against from-scratch
# rebuilds, under the race detector. Raise SOAK_EDITS via -args in the
# test if a longer run is wanted.
soak:
	$(GO) test -race -run 'SoakDifferential' -timeout 30m .

# Build-plane observability suite: the ledger package under the race
# detector (rotation, recovery, the crash-at-every-op sweep, the
# watchdog), the serve-cycle end-to-end test (build IDs observable in
# /debug/ledger, the access log, /debug/ops, the edge metrics, and
# `strudel history`/`strudel top`), and the ledger-overhead A/B guard
# on the delta-rebuild benchmark (<3% budget, 80 cycles per arm).
ledger:
	$(GO) test -race ./internal/ledger/
	$(GO) test -race -run 'Ledger|History|TopRenders' ./cmd/strudel/
	$(GO) test -run '^$$' -bench 'LedgerOverhead' -benchtime 10x .

# Introspection demo: the profiled plan of the CNN example site, no
# manifest required. Try also: -example org, -optimize, -json.
explain-demo:
	$(GO) run ./cmd/strudel explain -example cnn

# bench-smoke is not part of check (CI runs it as its own step); run it
# directly after touching benchmark code.
check: build vet test race chaos crash testpar load fuzz ledger
