# Verify loop. `make check` is the gate every change must pass: build,
# vet, the full test suite, the race detector over the atomic
# telemetry counters and the concurrent click-time cache, and the
# chaos suite (fault-injected sources under concurrent load).
GO ?= go

.PHONY: build test vet race bench chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Fault-injection suite: flaky/hanging sources and overload against
# the full serving stack, twice, under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'Chaos' ./internal/server/

check: build vet test race chaos
