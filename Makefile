# Verify loop. `make check` is the gate every change must pass: build,
# vet, the full test suite, and the race detector over the atomic
# telemetry counters and the concurrent click-time cache.
GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

check: build vet test race
