package strudel_test

// The benchmark harness regenerates the performance side of every
// table and figure in the paper's evaluation (see DESIGN.md Sec. 4 and
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the corresponding tables.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"testing"
	"time"

	"strudel/internal/baseline/procedural"
	"strudel/internal/baseline/relational"
	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/ledger"
	"strudel/internal/mediator"
	"strudel/internal/optimizer"
	"strudel/internal/publish"
	"strudel/internal/repository"
	"strudel/internal/schema"
	"strudel/internal/server"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/template"
	"strudel/internal/workload"
	"strudel/internal/wrapper"
)

// buildSpec assembles a core builder for a workload spec over a data
// graph.
func buildSpec(b *testing.B, spec *workload.SiteSpec, data *graph.Graph) *core.Builder {
	b.Helper()
	cb := core.NewBuilder(spec.Name)
	cb.SetDataGraph(data)
	if err := cb.AddQuery(spec.Query); err != nil {
		b.Fatal(err)
	}
	cb.AddTemplates(spec.Templates)
	for k := range spec.EmbedOnly {
		cb.SetEmbedOnly(k)
	}
	cb.SetIndex(spec.Index)
	cb.SetRootCollection(spec.RootCollection)
	return cb
}

// BenchmarkSiteStatistics (paper Sec. 5.1, table T1 in EXPERIMENTS.md)
// builds the three experience-report sites at the paper's scales and
// reports the per-site statistics alongside build time.
func BenchmarkSiteStatistics(b *testing.B) {
	cases := []struct {
		name string
		spec *workload.SiteSpec
		data *graph.Graph
	}{
		{"homepage-30pubs", workload.BibliographySpec(), workload.Bibliography(30, 42)},
		{"cnn-300articles", workload.ArticleSpec(false), workload.Articles(300, 1997)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				res, err := buildSpec(b, c.spec, c.data).Build()
				if err != nil {
					b.Fatal(err)
				}
				pages = res.Stats.Pages
			}
			b.ReportMetric(float64(pages), "pages")
			b.ReportMetric(float64(c.spec.QueryLines()), "query-lines")
			b.ReportMetric(float64(c.spec.TemplateLines()), "template-lines")
		})
	}
	b.Run("org-400people", func(b *testing.B) {
		src := workload.Organization(400, 40, 8, 7)
		spec := workload.OrgSpec(false)
		var pages int
		for i := 0; i < b.N; i++ {
			cb := core.NewBuilder(spec.Name)
			cb.AddSource("people.csv", "csv", src.PeopleCSV)
			cb.AddSource("departments.csv", "csv", src.DepartmentsCSV)
			cb.AddSource("projects.txt", "structured", src.ProjectsTxt)
			cb.AddSource("refs.bib", "bibtex", src.BibTeX)
			if err := cb.AddQuery(spec.Query); err != nil {
				b.Fatal(err)
			}
			cb.AddTemplates(spec.Templates)
			cb.SetIndex(spec.Index)
			res, err := cb.Build()
			if err != nil {
				b.Fatal(err)
			}
			pages = res.Stats.Pages
		}
		b.ReportMetric(float64(pages), "pages")
		b.ReportMetric(float64(spec.QueryLines()), "query-lines")
		b.ReportMetric(float64(spec.TemplateLines()), "template-lines")
	})
}

// BenchmarkMultiVersion (T2) measures the cost of producing a site
// variant from the same data: the sports-only CNN site (two extra
// predicates, shared templates) and the external org site (same
// query, five changed templates).
func BenchmarkMultiVersion(b *testing.B) {
	articles := workload.Articles(300, 1997)
	b.Run("cnn-sports-variant", func(b *testing.B) {
		spec := workload.ArticleSpec(true)
		for i := 0; i < b.N; i++ {
			if _, err := buildSpec(b, spec, articles).Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("org-external-variant", func(b *testing.B) {
		src := workload.Organization(120, 25, 6, 7)
		spec := workload.OrgSpec(true)
		for i := 0; i < b.N; i++ {
			cb := core.NewBuilder(spec.Name)
			cb.AddSource("people.csv", "csv", src.PeopleCSV)
			cb.AddSource("departments.csv", "csv", src.DepartmentsCSV)
			cb.AddSource("projects.txt", "structured", src.ProjectsTxt)
			if err := cb.AddQuery(spec.Query); err != nil {
				b.Fatal(err)
			}
			cb.AddTemplates(spec.Templates)
			cb.SetIndex(spec.Index)
			if _, err := cb.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8Suitability (F8) times the three tool classes of the
// paper's Fig. 8 across the data-quantity axis. cmd/experiments prints
// the full quadrant including the variant-effort axis.
func BenchmarkFig8Suitability(b *testing.B) {
	for _, n := range []int{30, 300} {
		data := workload.Bibliography(n, 42)
		b.Run(fmt.Sprintf("strudel-%d", n), func(b *testing.B) {
			spec := workload.BibliographySpec()
			for i := 0; i < b.N; i++ {
				if _, err := buildSpec(b, spec, data).Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("procedural-%d", n), func(b *testing.B) {
			prog := procedural.BibliographySite()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Run(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("relational-%d", n), func(b *testing.B) {
			schemaCols := relational.MaximalSchema(data, "Publications")
			for i := 0; i < b.N; i++ {
				db := relational.NewDB()
				table, err := db.LoadCollection(data, "Publications", schemaCols, []string{"author", "category"})
				if err != nil {
					b.Fatal(err)
				}
				pages := relational.PageSpec{
					Table: table, PathCol: "id", Title: "Publication",
					BodyCols: []string{"title", "year", "journal", "booktitle"},
				}.GeneratePages()
				if len(pages) != n {
					b.Fatalf("pages = %d", len(pages))
				}
			}
		})
	}
}

// BenchmarkMaterializeVsDynamic (E4) compares complete materialization
// against click-time evaluation: total build cost vs first-click
// latency, at growing corpus sizes.
func BenchmarkMaterializeVsDynamic(b *testing.B) {
	for _, n := range []int{100, 1000} {
		data := workload.Articles(n, 5)
		spec := workload.ArticleSpec(false)
		b.Run(fmt.Sprintf("materialize-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := buildSpec(b, spec, data).Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("first-click-%d", n), func(b *testing.B) {
			q := struql.MustParse(spec.Query)
			for i := 0; i < b.N; i++ {
				dec := incremental.Decompose(q, data, nil)
				roots, err := dec.Roots(spec.RootCollection)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.Page(roots[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cached-click-%d", n), func(b *testing.B) {
			q := struql.MustParse(spec.Query)
			dec := incremental.Decompose(q, data, nil)
			roots, _ := dec.Roots(spec.RootCollection)
			if _, err := dec.Page(roots[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Page(roots[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizer (E5) compares the heuristic planner with the
// cost-based planner exploiting indexes, on a query written in an
// unfavourable syntactic order.
func BenchmarkOptimizer(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		data := workloadPubGraph(n)
		repo := repository.New("")
		repo.Put(data)
		idx := repo.Index(data.Name())
		conds := struql.MustParse(
			`WHERE Publications(x), x -> "year" -> y, x -> "category" -> c, c = "Cat3", y = 1995 COLLECT C(x)`,
		).Root.Where
		for name, planner := range map[string]func([]struql.Condition, *optimizer.Context) *optimizer.Plan{
			"heuristic": optimizer.Heuristic,
			"costbased": optimizer.CostBased,
		} {
			b.Run(fmt.Sprintf("%s-%d", name, n), func(b *testing.B) {
				ctx := &optimizer.Context{Graph: data, Index: idx}
				for i := 0; i < b.N; i++ {
					plan := planner(conds, ctx)
					if _, err := plan.Execute(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// workloadPubGraph builds the optimizer benchmark graph.
func workloadPubGraph(n int) *graph.Graph {
	g := graph.New("data")
	for i := 0; i < n; i++ {
		p := g.NewNode(fmt.Sprintf("pub%d", i))
		g.AddToCollection("Publications", graph.NodeValue(p))
		g.AddEdge(p, "year", graph.Int(int64(1990+i%10)))
		g.AddEdge(p, "category", graph.Str(fmt.Sprintf("Cat%d", i%50)))
		g.AddEdge(p, "title", graph.Str(fmt.Sprintf("Title %d", i)))
	}
	return g
}

// BenchmarkIndexAblation (E6) measures the repository's full-indexing
// trade-off: index build (maintenance) cost vs the speedup of a
// value lookup, with and without indexes.
func BenchmarkIndexAblation(b *testing.B) {
	data := workloadPubGraph(10000)
	b.Run("build-indexes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			repository.BuildIndex(data)
		}
	})
	conds := struql.MustParse(`WHERE x -> "year" -> 1995 COLLECT C(x)`).Root.Where
	repo := repository.New("")
	repo.Put(data)
	idx := repo.Index(data.Name())
	b.Run("value-lookup-indexed", func(b *testing.B) {
		ctx := &optimizer.Context{Graph: data, Index: idx}
		for i := 0; i < b.N; i++ {
			plan := optimizer.CostBased(conds, ctx)
			rows, err := plan.Execute(ctx)
			if err != nil || len(rows) != 1000 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
	b.Run("value-lookup-scan", func(b *testing.B) {
		ctx := &optimizer.Context{Graph: data, Index: nil}
		for i := 0; i < b.N; i++ {
			plan := optimizer.CostBased(conds, ctx)
			rows, err := plan.Execute(ctx)
			if err != nil || len(rows) != 1000 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
}

// BenchmarkTextOnly (E7) times the Sec. 3 graph-copy transformation.
func BenchmarkTextOnly(b *testing.B) {
	q := struql.MustParse(`
WHERE Root(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
CREATE New(p), New(q), New(q2)
LINK New(q) -> l -> New(q2)
COLLECT TextOnlyRoot(New(p))`)
	for _, n := range []int{50, 500} {
		data := workload.Articles(n, 3)
		front := data.NewNode("front")
		data.AddToCollection("Root", graph.NodeValue(front))
		for _, a := range data.Collection("Articles") {
			data.AddEdge(front, "story", a)
		}
		b.Run(fmt.Sprintf("articles-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := struql.Eval(q, data, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify (E8) times constraint verification on the schema
// (data-independent) and on concrete site graphs of growing size.
func BenchmarkVerify(b *testing.B) {
	spec := workload.BibliographySpec()
	q := struql.MustParse(spec.Query)
	s := schema.Build(q)
	constraints := []schema.Constraint{
		schema.Reachable{Root: "RootPage"},
		schema.MustLink{From: "YearPage", Label: "Paper", To: "PaperPresentation"},
		schema.NoPath{From: "AbstractPage", To: "RootPage"},
	}
	b.Run("schema-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if errs := schema.VerifyAll(s, nil, constraints); len(errs) != 0 {
				b.Fatal(errs)
			}
		}
	})
	for _, n := range []int{100, 1000} {
		data := workload.Bibliography(n, 42)
		res, err := struql.Eval(q, data, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("graph-level-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if errs := schema.VerifyAll(nil, res.Output, constraints); len(errs) != 0 {
					b.Fatal(errs)
				}
			}
		})
	}
}

// BenchmarkPathExpr ablates regular-path-expression evaluation: the
// product-automaton traversal on a deep chain vs a wide star graph.
func BenchmarkPathExpr(b *testing.B) {
	shapes := map[string]*graph.Graph{}
	chain := graph.New("chain")
	prev := chain.NewNode("root")
	chain.AddToCollection("Root", graph.NodeValue(prev))
	for i := 0; i < 2000; i++ {
		n := chain.NewNode("")
		chain.AddEdge(prev, "next", graph.NodeValue(n))
		prev = n
	}
	shapes["chain-2000"] = chain
	star := graph.New("star")
	hub := star.NewNode("root")
	star.AddToCollection("Root", graph.NodeValue(hub))
	for i := 0; i < 2000; i++ {
		n := star.NewNode("")
		star.AddEdge(hub, "spoke", graph.NodeValue(n))
		star.AddEdge(n, "leaf", graph.Int(int64(i)))
	}
	shapes["star-2000"] = star
	q := struql.MustParse(`WHERE Root(r), r -> * -> q COLLECT Reach(q)`)
	for name, g := range shapes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := struql.Eval(q, g, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkolem ablates Skolem-node memoization: repeated
// construction hitting the memo table.
func BenchmarkSkolem(b *testing.B) {
	data := workloadPubGraph(2000)
	q := struql.MustParse(`
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Paper" -> x`)
	b.Run("eval-2000-pubs-10-pages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := struql.Eval(q, data, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.NewNodes != 10 {
				b.Fatalf("new nodes = %d", res.NewNodes)
			}
		}
	})
}

// BenchmarkWrapperBibTeX times the BibTeX wrapper.
func BenchmarkWrapperBibTeX(b *testing.B) {
	src := workload.BibliographyBibTeX(500, 3)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		g := graph.New("BIBTEX")
		if err := (wrapper.BibTeX{}).Wrap(g, "x", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemplateExec times template evaluation on a presentation-
// heavy page.
func BenchmarkTemplateExec(b *testing.B) {
	data := workload.Bibliography(200, 42)
	spec := workload.BibliographySpec()
	q := struql.MustParse(spec.Query)
	res, err := struql.Eval(q, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	gen := sitegen.New(res.Output, sitegen.Config{
		Templates: spec.Templates,
		EmbedOnly: map[string]bool{"PaperPresentation": true},
		Index:     "RootPage",
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site, err := gen.Generate()
		if err != nil {
			b.Fatal(err)
		}
		if len(site.Pages) == 0 {
			b.Fatal("no pages")
		}
	}
}

// BenchmarkPersistence times repository snapshot save/load.
func BenchmarkPersistence(b *testing.B) {
	data := workloadPubGraph(5000)
	dir := b.TempDir()
	repo := repository.New(dir)
	repo.Put(data)
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := repo.Save(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := repo.Save(); err != nil {
		b.Fatal(err)
	}
	b.Run("open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repository.Open(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTemplateParse times template compilation.
func BenchmarkTemplateParse(b *testing.B) {
	spec := workload.BibliographySpec()
	srcs := map[string]string{}
	for name, t := range spec.Templates {
		srcs[name] = t.Source
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, src := range srcs {
			if _, err := template.Parse(name, src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExhaustivePlanning ablates plan enumeration: greedy
// cost-based vs exhaustive branch-and-bound, planning time only.
func BenchmarkExhaustivePlanning(b *testing.B) {
	g := workloadPubGraph(1000)
	repo := repository.New("")
	repo.Put(g)
	ctx := &optimizer.Context{Graph: g, Index: repo.Index(g.Name())}
	conds := struql.MustParse(
		`WHERE Publications(x), Publications(z), x -> "year" -> y, z -> "year" -> y, y = 1995, x != z COLLECT C(x)`,
	).Root.Where
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.CostBased(conds, ctx)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			optimizer.Exhaustive(conds, ctx)
		}
	})
}

// BenchmarkMediationModes compares the warehousing prototype with the
// virtual (query-time) integration mode over the organization sources.
func BenchmarkMediationModes(b *testing.B) {
	src := workload.Organization(100, 20, 5, 7)
	newMediator := func() *mediator.Mediator {
		m := mediator.New(repository.New(""), "Org")
		m.AddSource("people.csv", "csv", src.PeopleCSV)
		m.AddSource("departments.csv", "csv", src.DepartmentsCSV)
		m.AddSource("projects.txt", "structured", src.ProjectsTxt)
		return m
	}
	q := struql.MustParse(`WHERE People(p), p -> "dept" -> "dept1" COLLECT Out(p)`)
	b.Run("warehouse-refresh-and-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := newMediator()
			wh, err := m.Refresh()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := struql.Eval(q, wh, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warehouse-query-only", func(b *testing.B) {
		m := newMediator()
		wh, err := m.Refresh()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := struql.Eval(q, wh, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("virtual-query", func(b *testing.B) {
		m := newMediator()
		for i := 0; i < b.N; i++ {
			if _, err := m.VirtualQuery(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDataGuide times graph-schema extraction.
func BenchmarkDataGuide(b *testing.B) {
	for _, n := range []int{100, 1000} {
		data := workload.Bibliography(n, 42)
		b.Run(fmt.Sprintf("bibliography-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if schema.Extract(data).NumStates() == 0 {
					b.Fatal("empty guide")
				}
			}
		})
	}
}

// BenchmarkOptimizedBuild compares end-to-end site builds with the
// interpreter's greedy where stage vs the cost-based optimizer hook.
func BenchmarkOptimizedBuild(b *testing.B) {
	data := workload.Articles(300, 1997)
	spec := workload.ArticleSpec(false)
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := buildSpec(b, spec, data).Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimizer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cb := buildSpec(b, spec, data)
			cb.EnableOptimizer()
			if _, err := cb.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelBuild measures the parallel build pipeline against
// its own sequential baseline (workers=1) on an orgsite-scale
// workload. The data graph is supplied directly so mediation cost does
// not dilute the parallel phases (query evaluation + page generation),
// and every worker count produces the byte-identical site — the
// determinism suite in internal/sitegen, internal/struql and
// examples/ locks that down. On a multi-core runner the GOMAXPROCS
// variant should beat workers-1 by ~the core count for the generate
// phase; BENCH_parallel.json records a measured snapshot.
func BenchmarkParallelBuild(b *testing.B) {
	data := workload.Articles(1000, 1997)
	spec := workload.ArticleSpec(false)
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				cb := buildSpec(b, spec, data)
				cb.SetWorkers(w)
				res, err := cb.Build()
				if err != nil {
					b.Fatal(err)
				}
				pages = res.Stats.Pages
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
	// Parallel dynamic materialization over the same per-page queries.
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("materialize-workers-%d", w), func(b *testing.B) {
			q := struql.MustParse(spec.Query)
			for i := 0; i < b.N; i++ {
				dec := incremental.Decompose(q, data, nil)
				dec.SetWorkers(w)
				if _, err := dec.MaterializeAll(spec.RootCollection); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaRebuild measures incremental maintenance: touch one
// object's title on an N-page news site and rebuild, against the full
// from-scratch build of the same site. The delta path re-evaluates the
// queries (cheap) but re-renders only the touched article's dependency
// cone, so its advantage is the rendering fraction it skips; the
// rendered/reused page counts are reported as metrics. A snapshot
// lives in BENCH_delta.json.
func BenchmarkDeltaRebuild(b *testing.B) {
	const n = 500
	spec := workload.ArticleSpec(false)
	for _, mode := range []string{"full", "delta"} {
		b.Run(fmt.Sprintf("%s-%darticles", mode, n), func(b *testing.B) {
			data := workload.Articles(n, 1997)
			cb := buildSpec(b, spec, data)
			// This benchmark measures the query-re-evaluation (selective)
			// pipeline; BenchmarkIncrementalEval measures the differential
			// fast path that normally supersedes it.
			cb.SetDifferential(false)
			prev, err := cb.Build()
			if err != nil {
				b.Fatal(err)
			}
			art, ok := data.NodeByName("art7")
			if !ok {
				b.Fatal("art7 missing")
			}
			touch := func(i int) {
				if old, ok := data.First(art, "title"); ok {
					data.RemoveEdge(art, "title", old)
				}
				if err := data.AddEdge(art, "title", graph.Str(fmt.Sprintf("Touched title %d", i%2))); err != nil {
					b.Fatal(err)
				}
			}
			delta := &graph.Delta{ChangedObjects: []string{"art7"}, TouchedLabels: []string{"title"}}
			var rendered, reused float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				touch(i)
				b.StartTimer()
				if mode == "full" {
					if _, err := cb.Build(); err != nil {
						b.Fatal(err)
					}
					rendered = float64(len(prev.Site.Pages))
					continue
				}
				res, err := cb.RebuildWithDelta(prev, delta)
				if err != nil {
					b.Fatal(err)
				}
				if res.Incremental.Mode != "selective" {
					b.Fatalf("rebuild mode %s, want selective", res.Incremental.Mode)
				}
				rendered = float64(res.Incremental.Site.Rendered)
				reused = float64(res.Incremental.Site.Reused)
				prev = res
			}
			b.ReportMetric(rendered, "rendered-pages")
			b.ReportMetric(reused, "reused-pages")
		})
	}
}

// partitionedSpec is a link-structured site with one page per object:
// items link from per-year group indexes, nothing embeds a large set.
// A one-object touch therefore re-renders only the item's page, its
// group index and the root — the 10k-page shape on which differential
// evaluation's single-digit-millisecond acceptance target is measured.
// (BibliographySpec's AbstractsPage EMBEDs every abstract, so any
// touch there pays an O(site) template render regardless of how fast
// the evaluator is; its arms below document that render-bound floor.)
func partitionedSpec() *workload.SiteSpec {
	return &workload.SiteSpec{
		Name: "partitioned",
		Query: `INPUT BIBTEX
CREATE HomePage()
COLLECT Roots(HomePage())
WHERE Publications(x), x -> "year" -> y
CREATE ItemPage(x), GroupPage(y)
LINK GroupPage(y) -> "Year" -> y,
     GroupPage(y) -> "Item" -> ItemPage(x),
     HomePage() -> "Group" -> GroupPage(y)
{
  WHERE x -> l -> v
  LINK ItemPage(x) -> l -> v
}
OUTPUT Partitioned`,
		Templates: map[string]*template.Template{
			"HomePage": template.MustParse("HomePage", `<html><body><h1>Archive</h1>
<SFMT_UL Group ORDER=ascend KEY=Year>
</body></html>`),
			"GroupPage": template.MustParse("GroupPage", `<html><body><h1>Year <SFMT Year></h1>
<SFMT_UL Item ORDER=ascend KEY=title>
</body></html>`),
			"ItemPage": template.MustParse("ItemPage", `<html><body><h1><SFMT title></h1>
<p>By <SFMT author DELIM=", ">. <SFMT year>.</p>
<SIF abstract><p><SFMT abstract></p></SIF>
</body></html>`),
		},
		Index:          "HomePage",
		Root:           "HomePage",
		RootCollection: "Roots",
	}
}

// BenchmarkIncrementalEval measures the differential evaluation fast
// path: touch one publication's title on an N-object site and rebuild
// through the materialized binding relations (no query re-evaluation
// at all), against a full from-scratch build of the same site. The
// differential arm reports tuples retained vs recomputed and pages
// rendered vs reused. On the partitioned shape a one-object touch on
// the 10k-page site must land in single-digit milliseconds — the
// acceptance target recorded in BENCH_incremental_eval.json; the bib
// shape documents the render-bound floor of embed-heavy sites.
func BenchmarkIncrementalEval(b *testing.B) {
	shapes := []struct {
		name string
		spec *workload.SiteSpec
	}{
		{"partitioned", partitionedSpec()},
		{"bib", workload.BibliographySpec()},
	}
	for _, shape := range shapes {
		spec := shape.spec
		for _, n := range []int{1000, 10000} {
			for _, mode := range []string{"full", "differential"} {
				b.Run(fmt.Sprintf("%s-%s-%dpubs", shape.name, mode, n), func(b *testing.B) {
					data := workload.Bibliography(n, 1997)
					cb := buildSpec(b, spec, data)
					prev, err := cb.Build()
					if err != nil {
						b.Fatal(err)
					}
					pub, ok := data.NodeByName("pub7")
					if !ok {
						b.Fatal("pub7 missing")
					}
					touch := func(i int) {
						if old, ok := data.First(pub, "title"); ok {
							data.RemoveEdge(pub, "title", old)
						}
						if err := data.AddEdge(pub, "title", graph.Str(fmt.Sprintf("Touched title %d", i%2))); err != nil {
							b.Fatal(err)
						}
					}
					delta := &graph.Delta{ChangedObjects: []string{"pub7"}, TouchedLabels: []string{"title"}}
					var retained, recomputed, rendered, reused float64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						touch(i)
						b.StartTimer()
						if mode == "full" {
							if _, err := cb.Build(); err != nil {
								b.Fatal(err)
							}
							continue
						}
						res, err := cb.RebuildWithDelta(prev, delta)
						if err != nil {
							b.Fatal(err)
						}
						if res.Incremental.Mode != "differential" {
							b.Fatalf("rebuild mode %s, want differential", res.Incremental.Mode)
						}
						retained = float64(res.Incremental.Eval.RowsRetained)
						recomputed = float64(res.Incremental.Eval.RowsRechecked)
						rendered = float64(res.Incremental.Site.Rendered)
						reused = float64(res.Incremental.Site.Reused)
						prev = res
					}
					if mode == "differential" {
						b.ReportMetric(retained, "tuples-retained")
						b.ReportMetric(recomputed, "tuples-recomputed")
						b.ReportMetric(rendered, "rendered-pages")
						b.ReportMetric(reused, "reused-pages")
					}
				})
			}
		}
	}
}

// nopResponseWriter discards the response, so the serve benchmarks
// measure handler work rather than recorder allocation.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// BenchmarkTelemetryOverhead measures what the observability layer
// adds to the hot serve path: one in-memory static page served bare
// vs. through the server.Instrument middleware (request counter,
// latency histogram, in-flight gauge). The instrumented cost must stay
// within noise of the bare cost — the middleware's hot path is two
// time.Now calls and a handful of atomic adds.
func BenchmarkTelemetryOverhead(b *testing.B) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<html><body><h1>Home</h1></body></html>"},
	}}
	req := httptest.NewRequest("GET", "/index.html", nil)
	run := func(h http.Handler) func(*testing.B) {
		return func(b *testing.B) {
			w := nopResponseWriter{h: http.Header{}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, req)
			}
		}
	}
	b.Run("bare", run(server.Static(site)))
	reg := telemetry.NewRegistry()
	b.Run("instrumented", run(server.Instrument(reg, "static", server.Static(site))))
}

// BenchmarkServeObservability prices the full serving-plane
// observability stack against the metrics-only middleware it extends:
// per-page access accounting (LRU table + per-page latency histogram),
// SLO window accounting, in-flight tracking, and sampled request
// tracing at the default 1-in-16 stride. The dynamic-* pair is the
// acceptance measurement — click-time page serving, the realistic
// request the stack instruments — with a <3% overhead target. The
// floor-* pair serves a one-page in-memory site through a no-op
// response writer, isolating the absolute per-request middleware cost
// (a map lookup + list move under one mutex, a few atomic adds, and
// span allocation on sampled requests only); as a fraction of a no-op
// handler that cost is large by construction, which is why the floor
// pair reports ns, not a percentage target. BENCH_serve_obs.json
// records a measured snapshot.
func BenchmarkServeObservability(b *testing.B) {
	observed := func(reg *telemetry.Registry) server.Observability {
		acct := server.NewAccounting(1024)
		acct.Instrument(reg)
		slo := telemetry.NewSLO(time.Second, 0.99, 5*time.Minute, nil)
		slo.Instrument(reg)
		return server.Observability{
			Registry:   reg,
			Accounting: acct,
			SLO:        slo,
			Tracer:     telemetry.NewRequestTracer(16, 8),
			Inflight:   server.NewInflight(),
		}
	}
	run := func(h http.Handler, req *http.Request) func(*testing.B) {
		return func(b *testing.B) {
			w := nopResponseWriter{h: http.Header{}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, req)
			}
		}
	}

	// Realistic serving: click-time evaluation of a workload site's
	// root page (decomposed query cache warm, template executed per
	// request) — the request profile `strudel serve -dynamic -ops`
	// actually handles. The two arms are interleaved in batches inside
	// one timing loop: this host's wall-clock drifts by more than the
	// effect being measured (±15% between sequential b.Run arms of
	// identical code), so only a drift-canceling A/B design can resolve
	// a 3% target. overhead-% is the acceptance metric.
	b.Run("dynamic-ab", func(b *testing.B) {
		spec := workload.BibliographySpec()
		dec := incremental.Decompose(struql.MustParse(spec.Query), workload.Bibliography(100, 42), nil)
		rend := &incremental.Renderer{Dec: dec, Templates: spec.Templates, EmbedOnly: spec.EmbedOnly}
		rootReq := httptest.NewRequest("GET", "/", nil)
		inner := server.Dynamic(rend, spec.RootCollection)
		w := nopResponseWriter{h: http.Header{}}
		inner.ServeHTTP(w, rootReq) // warm the decomposed-query cache
		base := server.Instrument(telemetry.NewRegistry(), "dynamic", inner)
		full := server.InstrumentObserved(observed(telemetry.NewRegistry()), "dynamic", inner)
		var tBase, tFull time.Duration
		const batch = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			for j := 0; j < batch; j++ {
				base.ServeHTTP(w, rootReq)
			}
			tBase += time.Since(t0)
			t0 = time.Now()
			for j := 0; j < batch; j++ {
				full.ServeHTTP(w, rootReq)
			}
			tFull += time.Since(t0)
		}
		b.StopTimer()
		reqs := float64(b.N * batch)
		b.ReportMetric(float64(tBase.Nanoseconds())/reqs, "base-ns/req")
		b.ReportMetric(float64(tFull.Nanoseconds())/reqs, "observed-ns/req")
		b.ReportMetric(100*(float64(tFull)/float64(tBase)-1), "overhead-%")
	})

	// Floor: the middleware's absolute cost over a no-op serve.
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<html><body><h1>Home</h1></body></html>"},
	}}
	pageReq := httptest.NewRequest("GET", "/index.html", nil)
	b.Run("floor-metrics-only",
		run(server.Instrument(telemetry.NewRegistry(), "static", server.Static(site)), pageReq))
	b.Run("floor-observed",
		run(server.InstrumentObserved(observed(telemetry.NewRegistry()), "static", server.Static(site)), pageReq))
}

// BenchmarkExplainOverhead prices the introspection layer: the same
// CNN-style build with provenance recording off and on, plus the
// profiled query stage alone (what `strudel explain` and
// /debug/explain execute). Recording happens on the sequential
// construction stage and profiling on per-block counters, so both must
// stay within noise of the plain build — the observability tax is paid
// only when someone asks.
func BenchmarkExplainOverhead(b *testing.B) {
	spec := workload.ArticleSpec(false)
	data := workload.Articles(300, 1997)
	buildLoop := func(introspect bool) func(*testing.B) {
		return func(b *testing.B) {
			cb := buildSpec(b, spec, data)
			if introspect {
				cb.EnableIntrospection()
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cb.Build(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("build-plain", buildLoop(false))
	b.Run("build-introspect", buildLoop(true))
	b.Run("explain", func(b *testing.B) {
		cb := buildSpec(b, spec, data)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cb.Explain(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublish prices crash safety: writing a built site as an
// fsync'd atomic generation (stage, hash, fsync every page, rename,
// flip CURRENT durably) against the plain per-page atomic WriteTo
// (temp + rename, no fsync) and against SyncTo steady-state rewrites.
// The gap is almost entirely fsync latency, so it scales with page
// count and storage sync cost, not with CPU. A measured snapshot lives
// in BENCH_publish.json.
func BenchmarkPublish(b *testing.B) {
	const n = 300
	data := workload.Articles(n, 1997)
	spec := workload.ArticleSpec(false)
	res, err := buildSpec(b, spec, data).Build()
	if err != nil {
		b.Fatal(err)
	}
	pages := float64(res.Stats.Pages)
	b.Run(fmt.Sprintf("writeto-%darticles", n), func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if err := res.Site.WriteTo(dir); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pages, "pages")
	})
	b.Run(fmt.Sprintf("syncto-%darticles", n), func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if _, err := res.Site.SyncTo(dir); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pages, "pages")
	})
	b.Run(fmt.Sprintf("publish-%darticles", n), func(b *testing.B) {
		dir := b.TempDir()
		p := publish.New(nil, dir, 2)
		for i := 0; i < b.N; i++ {
			if _, err := p.PublishSite(res.Site, res.Trace.ID, time.Time{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(pages, "pages")
	})
}

// BenchmarkServeEdge prices the serving edge's answer classes on a
// built bibliography site: revalidation against a resident hot page
// (304 without touching the source), resident hot bytes, the cold
// conditional fast path (the materialized source knows the tag, no
// render), a cold full serve, and the closed-loop load harness's
// end-to-end throughput over the whole stack. BENCH_serve.json
// snapshots the recorded numbers.
func BenchmarkServeEdge(b *testing.B) {
	bld := buildSpec(b, workload.BibliographySpec(), workload.Bibliography(40, 42))
	res, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	acct := server.NewAccounting(1024)
	edge := server.NewEdge(server.NewSiteSource(res.Site), server.EdgeConfig{
		Mode: "static", HotPages: 12, Compress: true, Accounting: acct,
	})
	var paths []string
	for p := range res.Site.Pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	// Make the first ranked page hot, leave the last cold.
	hotPath, coldPath := paths[0], paths[len(paths)-1]
	for i := 0; i < 64; i++ {
		acct.Record("/"+hotPath, 200, 10, time.Millisecond, time.Now())
	}
	edge.Rerank()
	if hot := edge.HotKeys(); len(hot) == 0 {
		b.Fatal("no hot pages after rerank")
	}
	tag := func(path string) string {
		rec := httptest.NewRecorder()
		edge.ServeHTTP(rec, httptest.NewRequest("GET", "/"+path, nil))
		if rec.Code != 200 {
			b.Fatalf("GET /%s = %d", path, rec.Code)
		}
		return rec.Header().Get("ETag")
	}
	hotTag, coldTag := tag(hotPath), tag(coldPath)
	serve := func(path, inm string) func(*testing.B) {
		req := httptest.NewRequest("GET", "/"+path, nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		return func(b *testing.B) {
			w := nopResponseWriter{h: http.Header{}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				edge.ServeHTTP(w, req)
			}
		}
	}
	b.Run("hot-304", serve(hotPath, hotTag))
	b.Run("hot-bytes", serve(hotPath, ""))
	b.Run("cold-304", serve(coldPath, coldTag))
	b.Run("cold-200", serve(coldPath, ""))
	b.Run("loadgen", func(b *testing.B) {
		b.ReportAllocs()
		var rps, ratio float64
		for i := 0; i < b.N; i++ {
			rep, err := workload.RunLoad(edge, paths, workload.LoadOptions{
				Clients: 4, Requests: 500, Seed: 42, ZipfS: 1.3, Gzip: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			rps, ratio = rep.RPS, rep.Ratio304()
		}
		b.ReportMetric(rps, "rps")
		b.ReportMetric(100*ratio, "304-%")
	})
}

// BenchmarkLedgerOverhead prices the build ledger against the delta
// rebuild it records: every cycle of the B arm converts the result to
// a ledger entry (FromResult), stamps freshness, and appends it to a
// disk-backed ledger — the exact per-refresh work `strudel serve
// -ledger` adds. The arms are interleaved in batches inside one timing
// loop (the same drift-canceling A/B design as the serve-observability
// benchmark: sequential b.Run arms drift more than the effect
// measured). overhead-% is the acceptance metric, target <3% — the
// append is one JSON-encode plus one atomic segment rewrite, against a
// rebuild that re-evaluates queries over a 500-article site. A
// snapshot lives in BENCH_ledger.json.
func BenchmarkLedgerOverhead(b *testing.B) {
	const n = 500
	spec := workload.ArticleSpec(false)
	data := workload.Articles(n, 1997)
	cb := buildSpec(b, spec, data)
	cb.SetDifferential(false)
	prev, err := cb.Build()
	if err != nil {
		b.Fatal(err)
	}
	art, ok := data.NodeByName("art7")
	if !ok {
		b.Fatal("art7 missing")
	}
	touch := func(i int) {
		if old, ok := data.First(art, "title"); ok {
			data.RemoveEdge(art, "title", old)
		}
		if err := data.AddEdge(art, "title", graph.Str(fmt.Sprintf("Touched title %d", i%2))); err != nil {
			b.Fatal(err)
		}
	}
	delta := &graph.Delta{ChangedObjects: []string{"art7"}, TouchedLabels: []string{"title"}}
	led, err := ledger.Open(ledger.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	rebuild := func(i int) *core.Result {
		touch(i)
		res, err := cb.RebuildWithDelta(prev, delta)
		if err != nil {
			b.Fatal(err)
		}
		prev = res
		return res
	}
	var tBase, tLedger time.Duration
	const batch = 8
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for j := 0; j < batch; j++ {
			rebuild(i*batch + j)
		}
		tBase += time.Since(t0)
		t0 = time.Now()
		for j := 0; j < batch; j++ {
			observed := time.Now()
			res := rebuild(i*batch + j)
			e := ledger.FromResult(res, "interval")
			e.StampFreshness(observed, time.Now())
			if _, err := led.Append(e); err != nil {
				b.Fatal(err)
			}
			cycles++
		}
		tLedger += time.Since(t0)
	}
	b.StopTimer()
	// Structural checks: the measured arm really recorded every cycle,
	// freshness stamped, segments on disk.
	last, ok := led.Last()
	if !ok || led.Len() != cycles || int(last.Seq) != cycles {
		b.Fatalf("ledger recorded %d entries, last seq %d, want %d", led.Len(), last.Seq, cycles)
	}
	if last.Freshness == nil || last.Freshness.PropagationSeconds < 0 {
		b.Fatalf("last entry freshness = %+v", last.Freshness)
	}
	perCycle := float64(b.N * batch)
	b.ReportMetric(float64(tBase.Nanoseconds())/perCycle/1e6, "base-ms/cycle")
	b.ReportMetric(float64(tLedger.Nanoseconds())/perCycle/1e6, "ledger-ms/cycle")
	overhead := 100 * (float64(tLedger)/float64(tBase) - 1)
	b.ReportMetric(overhead, "overhead-%")
	// The <3% acceptance bound only means something once the arms ran
	// enough batches to average out scheduler noise: the true cost is
	// ~0.5ms of append against a ~300ms rebuild (~0.2%), but host
	// jitter between the interleaved arms is ±2% at small N. The CI
	// guard runs -benchtime 10x (80 cycles per arm), where the bound
	// holds with margin.
	if b.N*batch >= 80 && overhead > 3 {
		b.Fatalf("ledger overhead %.2f%% exceeds the 3%% budget", overhead)
	}
}
