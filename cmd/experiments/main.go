// Command experiments regenerates every table and figure of the
// paper's evaluation (Sec. 5 experience report plus the running
// figures), printing the rows EXPERIMENTS.md records. Individual
// experiments can be selected by id:
//
//	experiments            # run everything
//	experiments T1 F8      # run a subset
//
// Ids: F2 F4 F5 T1 T2 F8 E4 E5 E6 E7 E8.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"strudel/internal/baseline/procedural"
	"strudel/internal/baseline/relational"
	"strudel/internal/core"
	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/optimizer"
	"strudel/internal/repository"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

var experiments = []struct {
	id   string
	desc string
	run  func() error
}{
	{"F2", "Fig. 2: data-graph fragment", expF2},
	{"F4", "Fig. 4: site graph from the Fig. 3 query", expF4},
	{"F5", "Fig. 5: site schema", expF5},
	{"T1", "Sec. 5.1 site statistics", expT1},
	{"T2", "Sec. 5.1 multi-version effort", expT2},
	{"F8", "Fig. 8 tool-suitability quadrant", expF8},
	{"E4", "materialization vs click-time evaluation", expE4},
	{"E5", "optimizer: heuristic vs cost-based", expE5},
	{"E6", "repository index ablation", expE6},
	{"E7", "TextOnly transformation", expE7},
	{"E8", "integrity-constraint verification", expE8},
}

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("\n================ %s — %s ================\n", e.id, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

const fig2 = `
collection Publications { abstract text postscript ps }
object pub1 in Publications {
    title "Specifying Representations..." author "Norman Ramsey" author "Mary Fernandez"
    year 1997 month "May" journal "Transactions on Programming..." pub-type "article"
    abstract "abstracts/toplas97.txt" postscript "papers/toplas97.ps.gz"
    volume "19 (3)" category "Architecture Specifications" category "Programming Languages"
}
object pub2 in Publications {
    title "Optimizing Regular..." author "Mary Fernandez" author "Dan Suciu"
    year 1998 booktitle "Proc. of ICDE" pub-type "inproceedings"
    abstract "abstracts/icde98.txt" postscript "papers/icde98.ps.gz"
    category "Semistructured Data" category "Programming Languages"
}`

func fig2Graph() (*graph.Graph, error) {
	res, err := datadef.Parse("BIBTEX", fig2)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

func expF2() error {
	g, err := fig2Graph()
	if err != nil {
		return err
	}
	g.Dump(os.Stdout)
	return nil
}

func expF4() error {
	g, err := fig2Graph()
	if err != nil {
		return err
	}
	spec := workload.BibliographySpec()
	q, err := struql.Parse(spec.Query)
	if err != nil {
		return err
	}
	res, err := struql.Eval(q, g, nil)
	if err != nil {
		return err
	}
	res.Output.Dump(os.Stdout)
	return nil
}

func expF5() error {
	spec := workload.BibliographySpec()
	q, err := struql.Parse(spec.Query)
	if err != nil {
		return err
	}
	fmt.Print(schema.Build(q).String())
	return nil
}

// buildSite runs a spec over a data graph and times it.
func buildSite(spec *workload.SiteSpec, data *graph.Graph) (*core.Result, time.Duration, error) {
	b := core.NewBuilder(spec.Name)
	b.SetDataGraph(data)
	if err := b.AddQuery(spec.Query); err != nil {
		return nil, 0, err
	}
	b.AddTemplates(spec.Templates)
	for k := range spec.EmbedOnly {
		b.SetEmbedOnly(k)
	}
	b.SetIndex(spec.Index)
	start := time.Now()
	res, err := b.Build()
	return res, time.Since(start), err
}

func expT1() error {
	fmt.Printf("%-14s %11s %10s %15s %7s %10s\n",
		"site", "query-lines", "templates", "template-lines", "pages", "build")
	row := func(name string, spec *workload.SiteSpec, res *core.Result, d time.Duration) {
		fmt.Printf("%-14s %11d %10d %15d %7d %10v\n",
			name, spec.QueryLines(), len(spec.Templates), spec.TemplateLines(),
			res.Stats.Pages, d.Round(time.Millisecond))
	}
	spec := workload.BibliographySpec()
	res, d, err := buildSite(spec, workload.Bibliography(30, 42))
	if err != nil {
		return err
	}
	row("homepage", spec, res, d)

	spec = workload.ArticleSpec(false)
	res, d, err = buildSite(spec, workload.Articles(300, 1997))
	if err != nil {
		return err
	}
	row("cnn", spec, res, d)

	spec = workload.ArticleSpec(true)
	res, d, err = buildSite(spec, workload.Articles(300, 1997))
	if err != nil {
		return err
	}
	row("cnn-sports", spec, res, d)

	src := workload.Organization(400, 40, 8, 7)
	orgSpec := workload.OrgSpec(false)
	b := core.NewBuilder(orgSpec.Name)
	b.AddSource("people.csv", "csv", src.PeopleCSV)
	b.AddSource("departments.csv", "csv", src.DepartmentsCSV)
	b.AddSource("projects.txt", "structured", src.ProjectsTxt)
	b.AddSource("refs.bib", "bibtex", src.BibTeX)
	if err := b.AddQuery(orgSpec.Query); err != nil {
		return err
	}
	b.AddTemplates(orgSpec.Templates)
	b.SetIndex(orgSpec.Index)
	start := time.Now()
	ores, err := b.Build()
	if err != nil {
		return err
	}
	row("org-internal", orgSpec, ores, time.Since(start))
	fmt.Println("\npaper reference: AT&T internal 115-line query / 17 templates (380 lines) / ~400 homepages;")
	fmt.Println("mff homepage 48-line query / 13 templates (202 lines); CNN 44-line query / 9 templates / ~300 articles.")
	return nil
}

func expT2() error {
	// CNN sports-only variant: count the spec delta.
	base, sports := workload.ArticleSpec(false), workload.ArticleSpec(true)
	bq, _ := struql.Parse(base.Query)
	sq, _ := struql.Parse(sports.Query)
	extra := len(sq.Root.Children[0].Where) - len(bq.Root.Children[0].Where)
	sharedTpl := 0
	for name, t := range base.Templates {
		if sports.Templates[name] != nil && sports.Templates[name].Source == t.Source {
			sharedTpl++
		}
	}
	fmt.Printf("cnn → cnn-sports:      %d extra predicates, %d/%d templates shared, 0 new queries\n",
		extra, sharedTpl, len(base.Templates))

	// Org external version: same query, changed templates only.
	in, ex := workload.OrgSpec(false), workload.OrgSpec(true)
	changed := 0
	for name, t := range in.Templates {
		if ex.Templates[name].Source != t.Source {
			changed++
		}
	}
	fmt.Printf("org-internal → external: 0 new queries, %d/%d templates changed (paper: 5 changed)\n",
		changed, len(in.Templates))

	// Procedural baseline: the recent-only variant rewrites everything.
	baseProg := procedural.BibliographySite()
	variant := procedural.BibliographySiteRecentOnly(1995)
	fmt.Printf("procedural baseline:     variant rewrites %d/%d builders (no declarative reuse)\n",
		variant.Effort(), len(variant.Builders))
	_ = baseProg
	return nil
}

func expF8() error {
	fmt.Println("rows: build time and variant effort per tool, small vs large data")
	fmt.Printf("%-12s %10s %12s %28s\n", "tool", "n=30", "n=300", "variant effort")
	specEffort := map[string]string{
		"strudel":    "2 predicates or a few templates",
		"procedural": "rewrite all builders",
		"relational": "schema migration + new page specs",
	}
	for _, tool := range []string{"strudel", "procedural", "relational"} {
		var times []time.Duration
		for _, n := range []int{30, 300} {
			data := workload.Bibliography(n, 42)
			start := time.Now()
			switch tool {
			case "strudel":
				if _, _, err := buildSite(workload.BibliographySpec(), data); err != nil {
					return err
				}
			case "procedural":
				if _, err := procedural.BibliographySite().Run(data); err != nil {
					return err
				}
			case "relational":
				db := relational.NewDB()
				cols := relational.MaximalSchema(data, "Publications")
				table, err := db.LoadCollection(data, "Publications", cols, []string{"author", "category"})
				if err != nil {
					return err
				}
				relational.PageSpec{Table: table, PathCol: "id", Title: "Publication",
					BodyCols: cols}.GeneratePages()
			}
			times = append(times, time.Since(start))
		}
		fmt.Printf("%-12s %10v %12v %28s\n", tool,
			times[0].Round(time.Microsecond), times[1].Round(time.Microsecond), specEffort[tool])
	}
	// Irregularity cost of the relational model.
	data := workload.Bibliography(300, 42)
	db := relational.NewDB()
	cols := relational.MaximalSchema(data, "Publications")
	table, err := db.LoadCollection(data, "Publications", cols, []string{"author", "category"})
	if err != nil {
		return err
	}
	fmt.Printf("\nrelational irregularity cost at n=300: maximal schema of %d columns, "+
		"NULL density %.0f%%, %d values lost\n",
		len(cols), table.NullDensity()*100, db.LostValues)
	fmt.Println("(shape per the paper's Fig. 8: simple tools win small/simple sites;")
	fmt.Println(" STRUDEL pays a constant factor but keeps variant effort near zero and loses no data)")
	return nil
}

func expE4() error {
	spec := workload.ArticleSpec(false)
	fmt.Printf("%-10s %14s %14s %14s %14s\n", "articles", "materialize", "first-click", "cached-click", "crossover")
	for _, n := range []int{100, 300, 1000} {
		data := workload.Articles(n, 5)
		_, matD, err := buildSite(spec, data)
		if err != nil {
			return err
		}
		q, _ := struql.Parse(spec.Query)
		dec := incremental.Decompose(q, data, nil)
		start := time.Now()
		roots, err := dec.Roots(spec.RootCollection)
		if err != nil {
			return err
		}
		if _, err := dec.Page(roots[0]); err != nil {
			return err
		}
		firstClick := time.Since(start)
		start = time.Now()
		if _, err := dec.Page(roots[0]); err != nil {
			return err
		}
		cached := time.Since(start)
		crossover := "-"
		if firstClick > 0 {
			crossover = fmt.Sprintf("~%d clicks", matD/firstClick)
		}
		fmt.Printf("%-10d %14v %14v %14v %14s\n", n,
			matD.Round(time.Millisecond), firstClick.Round(time.Microsecond),
			cached.Round(time.Microsecond), crossover)
	}
	// Browse-trace: a visitor following links breadth-first. The
	// dynamic total stays below materialization until the trace covers
	// most of the site.
	data := workload.Articles(300, 5)
	_, matD, err := buildSite(spec, data)
	if err != nil {
		return err
	}
	q, _ := struql.Parse(spec.Query)
	dec := incremental.Decompose(q, data, nil)
	roots, err := dec.Roots(spec.RootCollection)
	if err != nil {
		return err
	}
	fmt.Printf("\nbrowse trace over the 300-article site (materialize-all: %v):\n", matD.Round(time.Millisecond))
	fmt.Printf("%-10s %16s\n", "clicks", "dynamic total")
	frontier := roots
	visited := map[string]bool{}
	clicks := 0
	var total time.Duration
	report := map[int]bool{10: true, 50: true, 100: true, 250: true}
	for len(frontier) > 0 && clicks < 300 {
		ref := frontier[0]
		frontier = frontier[1:]
		if visited[ref.Key()] {
			continue
		}
		visited[ref.Key()] = true
		start := time.Now()
		pd, err := dec.Page(ref)
		if err != nil {
			return err
		}
		total += time.Since(start)
		clicks++
		if report[clicks] {
			fmt.Printf("%-10d %16v\n", clicks, total.Round(time.Microsecond))
		}
		for _, e := range pd.Edges {
			if e.Page != nil && !visited[e.Page.Key()] {
				frontier = append(frontier, *e.Page)
			}
		}
	}
	fmt.Printf("%-10d %16v (whole site browsed)\n", clicks, total.Round(time.Microsecond))
	fmt.Println("(dynamic evaluation wins until a visitor browses ~the whole site; caching")
	fmt.Println(" then amortizes clicks — the spectrum the paper describes in Secs. 1 and 6)")
	return nil
}

func expE5() error {
	conds := struql.MustParse(
		`WHERE Publications(x), x -> "year" -> y, x -> "category" -> c, c = "Cat3", y = 1995 COLLECT C(x)`,
	).Root.Where
	fmt.Printf("%-8s %14s %14s %10s\n", "edges", "heuristic", "cost-based", "speedup")
	for _, n := range []int{1000, 10000, 50000} {
		g := pubGraph(n)
		repo := repository.New("")
		repo.Put(g)
		ctx := &optimizer.Context{Graph: g, Index: repo.Index(g.Name())}
		timeIt := func(planner func([]struql.Condition, *optimizer.Context) *optimizer.Plan) (time.Duration, error) {
			start := time.Now()
			plan := planner(conds, ctx)
			if _, err := plan.Execute(ctx); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		h, err := timeIt(optimizer.Heuristic)
		if err != nil {
			return err
		}
		c, err := timeIt(optimizer.CostBased)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %14v %14v %9.1fx\n", 3*n,
			h.Round(time.Microsecond), c.Round(time.Microsecond), float64(h)/float64(c))
	}
	g := pubGraph(1000)
	repo := repository.New("")
	repo.Put(g)
	ctx := &optimizer.Context{Graph: g, Index: repo.Index(g.Name())}
	fmt.Println("\ncost-based plan:")
	fmt.Print(optimizer.CostBased(conds, ctx).Explain())
	fmt.Println("heuristic plan:")
	fmt.Print(optimizer.Heuristic(conds, ctx).Explain())
	return nil
}

func pubGraph(n int) *graph.Graph {
	g := graph.New("data")
	for i := 0; i < n; i++ {
		p := g.NewNode(fmt.Sprintf("pub%d", i))
		g.AddToCollection("Publications", graph.NodeValue(p))
		g.AddEdge(p, "year", graph.Int(int64(1990+i%10)))
		g.AddEdge(p, "category", graph.Str(fmt.Sprintf("Cat%d", i%50)))
		g.AddEdge(p, "title", graph.Str(fmt.Sprintf("Title %d", i)))
	}
	return g
}

func expE6() error {
	conds := struql.MustParse(`WHERE x -> "year" -> 1995 COLLECT C(x)`).Root.Where
	fmt.Printf("%-8s %14s %16s %14s %10s\n", "edges", "index build", "lookup indexed", "lookup scan", "speedup")
	for _, n := range []int{1000, 10000, 50000} {
		g := pubGraph(n)
		start := time.Now()
		idx := repository.BuildIndex(g)
		buildD := time.Since(start)
		run := func(ix *repository.GraphIndex) (time.Duration, error) {
			ctx := &optimizer.Context{Graph: g, Index: ix}
			start := time.Now()
			plan := optimizer.CostBased(conds, ctx)
			if _, err := plan.Execute(ctx); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		with, err := run(idx)
		if err != nil {
			return err
		}
		without, err := run(nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %14v %16v %14v %9.1fx\n", 3*n,
			buildD.Round(time.Microsecond), with.Round(time.Microsecond),
			without.Round(time.Microsecond), float64(without)/float64(with))
	}
	fmt.Println("(maintaining the full index set is expensive — Sec. 2.2 — but single-value")
	fmt.Println(" lookups repay it after a handful of queries)")
	return nil
}

func expE7() error {
	q := struql.MustParse(`
WHERE Root(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
CREATE New(p), New(q), New(q2)
LINK New(q) -> l -> New(q2)
COLLECT TextOnlyRoot(New(p))`)
	fmt.Printf("%-10s %10s %10s %12s %12s\n", "articles", "edges", "images", "copy edges", "time")
	for _, n := range []int{50, 200, 500} {
		data := workload.Articles(n, 3)
		front := data.NewNode("front")
		data.AddToCollection("Root", graph.NodeValue(front))
		for _, a := range data.Collection("Articles") {
			data.AddEdge(front, "story", a)
		}
		images := 0
		data.Edges(func(e graph.Edge) bool {
			if e.To.FileType() == graph.FileImage {
				images++
			}
			return true
		})
		start := time.Now()
		res, err := struql.Eval(q, data, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %10d %10d %12d %12v\n", n, data.NumEdges(), images,
			res.Output.NumEdges(), time.Since(start).Round(time.Microsecond))
	}
	return nil
}

func expE8() error {
	spec := workload.BibliographySpec()
	q, _ := struql.Parse(spec.Query)
	s := schema.Build(q)
	constraints := []schema.Constraint{
		schema.Reachable{Root: "RootPage"},
		schema.MustLink{From: "YearPage", Label: "Paper", To: "PaperPresentation"},
		schema.NoPath{From: "AbstractPage", To: "RootPage"},
		schema.Forbid{Label: "proprietary"},
	}
	fmt.Println("schema-level verification (data-independent, conservative):")
	for _, c := range constraints {
		err := c.CheckSchema(s)
		status := "holds"
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("  %-70s %s\n", c.String(), status)
	}
	data := workload.Bibliography(200, 42)
	res, err := struql.Eval(q, data, nil)
	if err != nil {
		return err
	}
	fmt.Println("concrete-graph verification (200 publications):")
	for _, c := range constraints {
		start := time.Now()
		err := c.CheckGraph(res.Output)
		status := "holds"
		if err != nil {
			status = "VIOLATED"
		}
		fmt.Printf("  %-70s %-9s %v\n", c.String(), status, time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("(the Forbid constraint is conservatively flagged at the schema level because")
	fmt.Println(" Fig. 3 copies arbitrary labels via an arc variable, and concretely violated")
	fmt.Println(" when a publication carries the proprietary attribute — the check that keeps")
	fmt.Println(" proprietary data off external versions, Sec. 1)")
	return nil
}
