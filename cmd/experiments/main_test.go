package main

import "testing"

// Smoke-run the fast experiments so the harness itself is covered.
func TestFastExperiments(t *testing.T) {
	for _, exp := range []struct {
		name string
		run  func() error
	}{
		{"F2", expF2}, {"F4", expF4}, {"F5", expF5},
		{"T2", expT2}, {"E7", expE7}, {"E8", expE8},
	} {
		t.Run(exp.name, func(t *testing.T) {
			if err := exp.run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
