// Command siteschema prints the site schema of a StruQL
// site-definition query (paper Sec. 3.2, Fig. 5) and optionally
// verifies integrity constraints against it.
//
// Usage:
//
//	siteschema -query site.struql [-dot] [-withdata]
//	siteschema -query site.struql -verify 'reachable RootPage' \
//	           -verify 'forbid patent' -verify 'mustlink YearPage Paper PaperPresentation'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"strudel/internal/schema"
	"strudel/internal/struql"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	queryFile := flag.String("query", "", "file containing the site-definition query")
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	withData := flag.Bool("withdata", false, "include edges to the non-Skolem data node in DOT")
	var verifies stringList
	flag.Var(&verifies, "verify", "constraint to check (repeatable): 'reachable F' | 'forbid [F] L' | 'mustlink F L G' | 'nopath F G'")
	flag.Parse()

	if err := run(*queryFile, *dot, *withData, verifies); err != nil {
		fmt.Fprintln(os.Stderr, "siteschema:", err)
		os.Exit(1)
	}
}

func run(queryFile string, dot, withData bool, verifies []string) error {
	if queryFile == "" {
		return fmt.Errorf("-query is required")
	}
	src, err := os.ReadFile(queryFile)
	if err != nil {
		return err
	}
	q, err := struql.Parse(string(src))
	if err != nil {
		return err
	}
	s := schema.Build(q)
	if dot {
		s.DOT(os.Stdout, withData)
	} else {
		fmt.Print(s.String())
	}
	var constraints []schema.Constraint
	for _, v := range verifies {
		c, err := parseConstraint(v)
		if err != nil {
			return err
		}
		constraints = append(constraints, c)
	}
	if len(constraints) == 0 {
		return nil
	}
	violations := schema.VerifyAll(s, nil, constraints)
	for _, err := range violations {
		fmt.Fprintln(os.Stderr, "violation:", err)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d constraint violation(s)", len(violations))
	}
	fmt.Println("all constraints hold on the site schema")
	return nil
}

// parseConstraint parses the -verify mini-syntax.
func parseConstraint(s string) (schema.Constraint, error) {
	parts := strings.Fields(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty -verify")
	}
	switch parts[0] {
	case "reachable":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: reachable <RootFunc>")
		}
		return schema.Reachable{Root: parts[1]}, nil
	case "forbid":
		switch len(parts) {
		case 2:
			return schema.Forbid{Label: parts[1]}, nil
		case 3:
			return schema.Forbid{From: parts[1], Label: parts[2]}, nil
		default:
			return nil, fmt.Errorf("usage: forbid [FromFunc] <label>")
		}
	case "mustlink":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: mustlink <FromFunc> <label> <ToFunc>")
		}
		return schema.MustLink{From: parts[1], Label: parts[2], To: parts[3]}, nil
	case "nopath":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: nopath <FromFunc> <ToFunc>")
		}
		return schema.NoPath{From: parts[1], To: parts[2]}, nil
	default:
		return nil, fmt.Errorf("unknown constraint kind %q", parts[0])
	}
}
