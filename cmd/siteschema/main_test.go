package main

import (
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/schema"
)

func queryFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.struql")
	content := `
CREATE Root()
WHERE C(x)
CREATE Page(x)
LINK Root() -> "p" -> Page(x)
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsSchema(t *testing.T) {
	qf := queryFile(t)
	if err := run(qf, false, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(qf, true, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(qf, true, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerify(t *testing.T) {
	qf := queryFile(t)
	if err := run(qf, false, false, []string{"reachable Root", "nopath Page Root"}); err != nil {
		t.Fatal(err)
	}
	// A failing constraint reports an error.
	if err := run(qf, false, false, []string{"mustlink Page x Root"}); err == nil {
		t.Error("violated constraint should fail")
	}
	if err := run(qf, false, false, []string{"gibberish"}); err == nil {
		t.Error("bad constraint syntax should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, false, nil); err == nil {
		t.Error("missing -query should fail")
	}
	if err := run("/nonexistent", false, false, nil); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.struql")
	os.WriteFile(bad, []byte("WHERE ((("), 0o644)
	if err := run(bad, false, false, nil); err == nil {
		t.Error("bad query should fail")
	}
}

func TestParseConstraintKinds(t *testing.T) {
	cases := map[string]any{
		"reachable R":    schema.Reachable{},
		"forbid l":       schema.Forbid{},
		"forbid F l":     schema.Forbid{},
		"mustlink A l B": schema.MustLink{},
		"nopath A B":     schema.NoPath{},
	}
	for s := range cases {
		if _, err := parseConstraint(s); err != nil {
			t.Errorf("%q: %v", s, err)
		}
	}
	for _, s := range []string{"", "reachable", "forbid", "mustlink A", "nopath A", "unknown x"} {
		if _, err := parseConstraint(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
}
