// strudel history: the build ledger as a CLI verb. Reads either a
// ledger directory on disk (-dir, works offline and after the server
// is gone) or a live serving process's /debug/ledger endpoint (-url),
// and prints one summary line per refresh cycle — or the raw entries
// as JSONL with -json. -follow polls and prints only entries newer
// than the last one seen, `tail -f` for the build plane.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"strudel/internal/ledger"
)

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	dir := fs.String("dir", "", "ledger `directory` to read (as passed to build/serve -ledger)")
	base := fs.String("url", "", "base `URL` of a serving process exposing /debug/ledger")
	asJSON := fs.Bool("json", false, "print raw entries as JSONL instead of summary lines")
	follow := fs.Bool("follow", false, "poll and print entries as they appear")
	n := fs.Int("n", 20, "entries to show (most recent)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval with -follow")
	fs.Parse(args)
	if (*dir == "") == (*base == "") {
		return fmt.Errorf("history: exactly one of -dir or -url is required")
	}
	return runHistory(os.Stdout, *dir, *base, *asJSON, *follow, *n, *interval, nil)
}

// historyEntries fetches one batch, newest first. Directory mode
// re-opens the ledger per poll so a concurrently appending server's
// segments are re-read; URL mode decodes the /debug/ledger view.
func historyEntries(client *http.Client, dir, base string, limit int) ([]ledger.Entry, error) {
	if dir != "" {
		l, err := ledger.Open(ledger.Options{Dir: dir})
		if err != nil {
			return nil, err
		}
		return l.Entries(ledger.Filter{Limit: limit}), nil
	}
	url := strings.TrimRight(base, "/") + fmt.Sprintf("/debug/ledger?limit=%d", limit)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var view ledger.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("decoding ledger view: %w (is the server running with -ledger or -metrics?)", err)
	}
	return view.Entries, nil
}

// runHistory prints up to n entries oldest-first, then — with follow
// — keeps polling and prints only entries with a sequence number
// above the last printed one. stop, when non-nil, ends the follow
// loop (tests); interactive runs follow until interrupted.
func runHistory(w io.Writer, dir, base string, asJSON, follow bool, n int, interval time.Duration, stop <-chan struct{}) error {
	client := &http.Client{Timeout: 10 * time.Second}
	if n < 1 {
		n = 20
	}
	var lastSeq uint64
	print := func(batch []ledger.Entry) error {
		// Batches arrive newest-first; print oldest-first so the terminal
		// reads like a log.
		for i := len(batch) - 1; i >= 0; i-- {
			e := batch[i]
			if e.Seq <= lastSeq {
				continue
			}
			lastSeq = e.Seq
			if asJSON {
				raw, err := json.Marshal(e)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, string(raw))
			} else {
				fmt.Fprintln(w, e.Summary())
			}
		}
		return nil
	}
	batch, err := historyEntries(client, dir, base, n)
	if err != nil {
		return err
	}
	if err := print(batch); err != nil {
		return err
	}
	for follow {
		select {
		case <-stop:
			return nil
		case <-time.After(interval):
		}
		batch, err := historyEntries(client, dir, base, n)
		if err != nil {
			return err
		}
		if err := print(batch); err != nil {
			return err
		}
	}
	return nil
}
