// End-to-end test of the build-plane observability loop: a full
// refresh → delta rebuild → publish → serve cycle must produce a
// ledger entry whose build ID is observable everywhere the ISSUE
// promises — /debug/ledger, `strudel history`, the access log, the
// /debug/ops snapshot, the edge's build-info metric — with a
// non-empty freshness-propagation histogram under real load.
package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"strudel/internal/fsx"
	"strudel/internal/ledger"
	"strudel/internal/publish"
	"strudel/internal/server"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

func TestServeLedgerCycle(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	ledgerDir := filepath.Join(t.TempDir(), "ledger")
	pubDir := filepath.Join(t.TempDir(), "pub")
	accessLog := &syncBuffer{}
	reg := telemetry.NewRegistry()
	stop := make(chan struct{})
	defer close(stop)
	h, refresh, err := serveHandler(m, serveOptions{
		reg:             reg,
		ops:             true,
		accessLog:       accessLog,
		hotPages:        4,
		pub:             publish.New(fsx.OS, pubDir, 3),
		ledgerDir:       ledgerDir,
		freshnessTarget: time.Minute,
		stop:            stop,
		logg:            discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Edit a source and refresh: the cycle must record an interval
	// entry with a freshness stamp and a publish generation.
	bib := filepath.Join(dir, "refs.bib")
	extra := `
@article{p3, title = {Gamma}, author = {Gil}, year = 1999, category = {X}}
`
	orig, err := os.ReadFile(bib)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bib, append(orig, []byte(extra)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := refresh(); err != nil {
		t.Fatal(err)
	}
	// A second, unchanged refresh records a noop cycle (same build
	// content, no freshness stamp).
	if err := refresh(); err != nil {
		t.Fatal(err)
	}

	// Serve real traffic so the access log and edge counters move.
	// (RunLoad prepends the leading slash itself.)
	rep, err := workload.RunLoad(h, []string{
		"index.html", "PaperPage_p1.html", "PaperPage_p3.html",
	}, workload.LoadOptions{Clients: 2, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load errors: %d", rep.Errors)
	}

	// The ledger on disk holds the whole story: initial, interval
	// (changed, stamped, published), interval noop.
	led, err := ledger.Open(ledger.Options{Dir: ledgerDir})
	if err != nil {
		t.Fatal(err)
	}
	entries := led.Entries(ledger.Filter{})
	if len(entries) != 3 {
		t.Fatalf("ledger entries = %d, want 3: %+v", len(entries), entries)
	}
	noop, changed, initial := entries[0], entries[1], entries[2]
	if initial.Trigger != "initial" || changed.Trigger != "interval" || noop.Trigger != "interval" {
		t.Fatalf("triggers = %s/%s/%s", initial.Trigger, changed.Trigger, noop.Trigger)
	}
	if noop.Mode != "noop" {
		t.Errorf("latest entry mode = %q, want noop", noop.Mode)
	}
	if changed.Mode == "noop" || changed.Freshness == nil {
		t.Fatalf("changed cycle not stamped: mode=%q freshness=%+v", changed.Mode, changed.Freshness)
	}
	if changed.Freshness.PropagationSeconds < 0 || changed.Freshness.PropagationSeconds > 30 {
		t.Errorf("propagation = %v, want small and non-negative", changed.Freshness.PropagationSeconds)
	}
	if changed.Generation <= initial.Generation {
		t.Errorf("generations did not advance: initial %d, changed %d",
			initial.Generation, changed.Generation)
	}
	if changed.Pages.Rendered == 0 || len(changed.Sources) == 0 {
		t.Errorf("changed entry missing detail: %+v", changed)
	}
	liveID := noop.BuildID
	if liveID == "" || changed.BuildID == "" || changed.BuildID == initial.BuildID {
		t.Fatalf("build IDs not distinct: %q %q %q", initial.BuildID, changed.BuildID, liveID)
	}

	get := func(path string) (int, string) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w.Code, w.Body.String()
	}

	// /debug/ledger answers the same entries, filterable.
	code, body := get("/debug/ledger")
	if code != 200 {
		t.Fatalf("/debug/ledger = %d %q", code, body)
	}
	var view ledger.View
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Entries) != 3 || view.Entries[0].BuildID != liveID {
		t.Errorf("/debug/ledger entries = %d, head %q, want 3 head %q",
			len(view.Entries), view.Entries[0].BuildID, liveID)
	}
	if view.Watchdog == nil || view.Watchdog.Samples == 0 {
		t.Errorf("/debug/ledger watchdog = %+v, want seasoned", view.Watchdog)
	}
	code, body = get("/debug/ledger?build=" + changed.BuildID)
	if code != 200 {
		t.Fatalf("filtered /debug/ledger = %d", code)
	}
	var filtered ledger.View
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Entries) != 1 || filtered.Entries[0].BuildID != changed.BuildID {
		t.Errorf("build filter returned %+v", filtered.Entries)
	}
	code, body = get("/debug/ledger?source=refs.bib")
	if code != 200 || !strings.Contains(body, changed.BuildID) {
		t.Errorf("source filter: code %d, missing %q", code, changed.BuildID)
	}

	// The access log carries the live build's ID on every request.
	logged := accessLog.String()
	if !strings.Contains(logged, "build_id="+liveID) {
		t.Errorf("access log missing build_id %q:\n%s", liveID, firstLines(logged, 3))
	}

	// /debug/ops: build_id, edge stats and the last ledger entry inline.
	code, body = get("/debug/ops")
	if code != 200 {
		t.Fatalf("/debug/ops = %d", code)
	}
	var snap server.OpsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.BuildID != liveID {
		t.Errorf("ops build_id = %q, want %q", snap.BuildID, liveID)
	}
	if snap.Edge == nil || snap.Edge.Requests == 0 {
		t.Errorf("ops edge = %+v, want traffic", snap.Edge)
	}
	var last ledger.Entry
	if snap.LastBuild == nil {
		t.Fatal("ops last_build missing")
	}
	if err := json.Unmarshal(snap.LastBuild, &last); err != nil {
		t.Fatal(err)
	}
	if last.BuildID != liveID {
		t.Errorf("ops last_build = %q, want %q", last.BuildID, liveID)
	}
	if snap.Accounting == nil || len(snap.Accounting.Pages) == 0 {
		t.Fatal("ops accounting empty")
	}
	// Data staleness must be wired: the served data was observed at the
	// sources before now, so the exported age is positive.
	if snap.Accounting.Pages[0].DataStalenessSeconds <= 0 {
		t.Errorf("data staleness = %v, want > 0", snap.Accounting.Pages[0].DataStalenessSeconds)
	}

	// /metrics: the propagation histogram saw the changed cycle, and
	// the edge's build-info series names the live build.
	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "strudel_freshness_propagation_seconds_count 1") {
		t.Errorf("metrics missing propagation count 1:\n%s", grepLines(body, "freshness_propagation"))
	}
	if !strings.Contains(body, `strudel_edge_build_info{build_id="`+liveID+`"`) &&
		!strings.Contains(body, `build_id="`+liveID+`"`) {
		t.Errorf("metrics missing edge build info for %q:\n%s", liveID, grepLines(body, "build_info"))
	}
	if !strings.Contains(body, "strudel_ledger_entries_total 3") {
		t.Errorf("metrics missing ledger entry count:\n%s", grepLines(body, "strudel_ledger"))
	}

	// `strudel history -dir` renders the same story offline.
	var out strings.Builder
	if err := runHistory(&out, ledgerDir, "", false, false, 20, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	hist := out.String()
	if !strings.Contains(hist, initial.BuildID) || !strings.Contains(hist, liveID) {
		t.Errorf("history output missing builds:\n%s", hist)
	}
	if strings.Count(hist, "\n") != 3 {
		t.Errorf("history lines = %d, want 3:\n%s", strings.Count(hist, "\n"), hist)
	}
	// JSONL mode round-trips entries.
	out.Reset()
	if err := runHistory(&out, ledgerDir, "", true, false, 20, time.Second, nil); err != nil {
		t.Fatal(err)
	}
	var first ledger.Entry
	if err := json.Unmarshal([]byte(strings.SplitN(out.String(), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("history -json line not an entry: %v", err)
	}
	if first.BuildID != initial.BuildID {
		t.Errorf("history -json first = %q, want oldest %q", first.BuildID, initial.BuildID)
	}
}

// TestTopRendersBuildAndEdge drives `strudel top`'s renderer over a
// snapshot carrying the new build/edge/last-build sections.
func TestTopRendersBuildAndEdge(t *testing.T) {
	e := ledger.Entry{
		Seq: 7, BuildID: "build-0007", Trigger: "interval", Mode: "differential",
		Pages: ledger.PageRecord{Total: 10, Rendered: 2, Reused: 8}, ETagChurn: 2,
		TotalMs:   12.5,
		Freshness: &ledger.Freshness{PropagationSeconds: 0.042},
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	snap := &server.OpsSnapshot{
		Mode: "static", Ready: true,
		BuildID:   "build-0007",
		Edge:      &server.EdgeStats{Mode: "static", Requests: 100, HitsHot: 40, Hits304: 30, HitRatio: 0.7, HotPages: 4, Capacity: 8},
		LastBuild: raw,
	}
	var out strings.Builder
	renderOps(&out, snap, 5)
	frame := out.String()
	for _, want := range []string{
		"build  build-0007",
		"interval/differential",
		"2/10 pages rendered (8 reused)",
		"propagated 0.042s",
		"edge   static: 100 requests, 70.0% hit (40 hot, 30 304)",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("top frame missing %q:\n%s", want, frame)
		}
	}
}

// firstLines returns the first n lines of s, for terse failures.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// grepLines returns the lines of s containing substr.
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
