// Command strudel builds and serves Web sites from a site manifest,
// exercising the full architecture of the paper's Fig. 1.
//
// Usage:
//
//	strudel build -manifest site.manifest -out dir/ [-trace] [-workers N]
//	strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics]
//	              [-refresh-interval 5m] [-request-timeout 10s] [-max-inflight 256]
//	              [-workers N]
//	strudel stats -manifest site.manifest [-trace] [-workers N]
//
// -workers bounds the build pipeline's parallelism (query evaluation,
// page rendering, dynamic materialization); 0 — the default — means
// one worker per available CPU, 1 builds sequentially. The built site
// is byte-identical at any worker count.
// -trace prints the build's span timeline (mediation → query → verify
// → generate). -metrics instruments the server and exposes /metrics
// (Prometheus text format), /debug/vars and /debug/pprof.
// -refresh-interval rebuilds the site from its sources in the
// background and swaps the result in atomically; a failed or degraded
// refresh keeps serving the last good build. -request-timeout bounds
// each dynamic page computation (504 past the deadline), and
// -max-inflight sheds excess concurrent requests with 503 instead of
// queueing them. The server shuts down gracefully on SIGINT/SIGTERM.
//
// A manifest is a line-oriented file (# comments allowed):
//
//	site      homepage
//	source    refs.bib   bibtex      refs.bib
//	mapping   map.struql
//	query     site.struql
//	template  RootPage   root.tpl
//	embedonly PaperPresentation
//	optimize
//	index     RootPage
//	roots     Roots
//	constraint reachable RootPage
//	constraint forbid patent
//
// Paths are relative to the manifest file.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/schema"
	"strudel/internal/server"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "serve":
		err = cmdServe(args)
	case "stats":
		err = cmdStats(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  strudel build -manifest site.manifest -out dir/ [-trace] [-workers N]
  strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics]
                [-refresh-interval 5m] [-request-timeout 10s] [-max-inflight 256]
                [-workers N]
  strudel stats -manifest site.manifest [-trace] [-workers N]`)
}

// manifest is the parsed site description.
type manifest struct {
	name        string
	builder     *core.Builder
	rootColl    string
	constraints int
}

// loadManifest parses the manifest and populates a builder.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	m := &manifest{name: "site"}
	b := core.NewBuilder(m.name)
	m.builder = b
	readRel := func(p string) (string, error) {
		content, err := os.ReadFile(filepath.Join(dir, p))
		return string(content), err
	}
	for lineNum, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", path, lineNum+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "site":
			if len(fields) != 2 {
				return nil, errf("usage: site <name>")
			}
			m.name = fields[1]
		case "source":
			if len(fields) != 4 {
				return nil, errf("usage: source <name> <kind> <path>")
			}
			// Fail fast on an unreadable file, but register a fetch
			// function so every refresh re-reads it: -refresh-interval
			// picks up source changes, and a file that disappears
			// degrades to last-good data instead of freezing a stale
			// snapshot in silently.
			if _, err := readRel(fields[3]); err != nil {
				return nil, errf("%v", err)
			}
			srcPath := fields[3]
			if err := b.AddSourceFunc(fields[1], fields[2], func() (string, error) {
				return readRel(srcPath)
			}); err != nil {
				return nil, errf("%v", err)
			}
		case "mapping":
			if len(fields) != 2 {
				return nil, errf("usage: mapping <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddMapping(src); err != nil {
				return nil, errf("%v", err)
			}
		case "query":
			if len(fields) != 2 {
				return nil, errf("usage: query <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddQuery(src); err != nil {
				return nil, errf("%v", err)
			}
		case "template":
			if len(fields) != 3 {
				return nil, errf("usage: template <key> <path>")
			}
			src, err := readRel(fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddTemplate(fields[1], src); err != nil {
				return nil, errf("%v", err)
			}
		case "embedonly":
			b.SetEmbedOnly(fields[1:]...)
		case "optimize":
			b.EnableOptimizer()
		case "index":
			if len(fields) != 2 {
				return nil, errf("usage: index <key>")
			}
			b.SetIndex(fields[1])
		case "roots":
			if len(fields) != 2 {
				return nil, errf("usage: roots <collection>")
			}
			m.rootColl = fields[1]
			b.SetRootCollection(fields[1])
		case "constraint":
			c, err := parseConstraint(strings.Join(fields[1:], " "))
			if err != nil {
				return nil, errf("%v", err)
			}
			b.AddConstraint(c)
			m.constraints++
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	return m, nil
}

func parseConstraint(s string) (schema.Constraint, error) {
	parts := strings.Fields(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty constraint")
	}
	switch parts[0] {
	case "reachable":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: constraint reachable <RootFunc>")
		}
		return schema.Reachable{Root: parts[1]}, nil
	case "forbid":
		switch len(parts) {
		case 2:
			return schema.Forbid{Label: parts[1]}, nil
		case 3:
			return schema.Forbid{From: parts[1], Label: parts[2]}, nil
		}
		return nil, fmt.Errorf("usage: constraint forbid [From] <label>")
	case "mustlink":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: constraint mustlink <From> <label> <To>")
		}
		return schema.MustLink{From: parts[1], Label: parts[2], To: parts[3]}, nil
	case "nopath":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: constraint nopath <From> <To>")
		}
		return schema.NoPath{From: parts[1], To: parts[2]}, nil
	}
	return nil, fmt.Errorf("unknown constraint kind %q", parts[0])
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	out := fs.String("out", "site-out", "output directory")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	for _, v := range res.Violations {
		fmt.Fprintln(os.Stderr, "warning:", v)
	}
	pruned, err := res.Site.SyncTo(*out)
	if err != nil {
		return err
	}
	fmt.Printf("built %s: %d pages into %s (data %d/%d, site %d/%d nodes/edges)\n",
		m.name, res.Stats.Pages, *out,
		res.Stats.DataNodes, res.Stats.DataEdges,
		res.Stats.SiteNodes, res.Stats.SiteEdges)
	if len(pruned) > 0 {
		fmt.Printf("pruned %d stale page(s) from %s\n", len(pruned), *out)
	}
	if *trace {
		fmt.Print(res.Trace.Summary())
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dynamic := fs.Bool("dynamic", false, "compute pages at click time instead of materializing")
	metrics := fs.Bool("metrics", false, "instrument serving and expose /metrics, /debug/vars, /debug/pprof")
	refreshInterval := fs.Duration("refresh-interval", 0,
		"rebuild the site from its sources this often (0 disables); a failed refresh keeps serving the last good build")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second,
		"render deadline per dynamic page computation (0 disables)")
	maxInflight := fs.Int("max-inflight", 256,
		"max concurrently served requests before shedding with 503 (0 disables)")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	handler, refresh, err := serveHandler(m, *dynamic, reg, *requestTimeout, *maxInflight)
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "strudel: shutting down")
		close(stop)
	}()
	if *refreshInterval > 0 {
		go refreshLoop(refresh, *refreshInterval, stop)
	}
	fmt.Printf("serving %s on http://%s (dynamic=%v, metrics=%v, refresh=%v)\n",
		m.name, *addr, *dynamic, *metrics, *refreshInterval)
	return server.ServeUntil(server.NewServer(*addr, handler), stop, 5*time.Second)
}

// refreshLoop re-runs refresh every interval until stop fires. A hard
// failure (no last-good data to fall back on) backs off exponentially,
// capped at 10× the interval, so a broken source set is not hammered;
// the server keeps answering from the last good build throughout.
func refreshLoop(refresh func() error, interval time.Duration, stop <-chan struct{}) {
	delay := interval
	for {
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
		if err := refresh(); err != nil {
			fmt.Fprintf(os.Stderr, "strudel: refresh failed (serving stale data): %v\n", err)
			delay = min(delay*2, 10*interval)
		} else {
			delay = interval
		}
	}
}

// serveHandler builds the HTTP handler for a manifest — the fully
// materialized site or click-time evaluation, each with /query for
// ad-hoc StruQL queries — plus a refresh function that rebuilds from
// the sources and atomically swaps the new result in (in-flight
// requests keep their snapshot). The handler is hardened: panics in
// one request answer 500 without taking the process down, and beyond
// maxInflight concurrent requests new ones are shed with 503. With a
// non-nil registry the whole pipeline reports into it and the debug
// endpoints are mounted (outside the shedding chain, so /metrics
// stays reachable under overload).
func serveHandler(m *manifest, dynamic bool, reg *telemetry.Registry, renderTimeout time.Duration, maxInflight int) (http.Handler, func() error, error) {
	m.builder.SetTelemetry(reg)
	mode := "static"
	if dynamic {
		mode = "dynamic"
	}
	mux := http.NewServeMux()
	var refresh func() error

	if dynamic {
		r0, err := m.builder.BuildDynamic()
		if err != nil {
			return nil, nil, err
		}
		var cur atomic.Pointer[incremental.Renderer]
		cur.Store(r0)
		mux.Handle("/", server.DynamicFrom(cur.Load, m.rootColl,
			server.DynamicConfig{Registry: reg, RenderTimeout: renderTimeout}))
		// Ad-hoc queries run against the same data-graph snapshot the
		// click-time pages see.
		mux.Handle("/query", http.StripPrefix("/query", server.QueryHandlerFrom(
			func() *graph.Graph { return cur.Load().Dec.Input() }, m.builder.Registry(), 0)))
		// Incremental refresh: the mediator reports what changed, and the
		// new renderer adopts cached pages of unaffected classes instead
		// of starting cold. refreshLoop is the only caller, so reading
		// cur without coordination is safe.
		refresh = func() error {
			prev := cur.Load()
			r, err := m.builder.RebuildDynamic(prev)
			if err != nil {
				return err
			}
			warnDegraded(m.builder)
			if r != prev {
				cur.Store(r)
			}
			return nil
		}
	} else {
		res, err := m.builder.Build()
		if err != nil {
			return nil, nil, err
		}
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "warning:", v)
		}
		type built struct {
			site      *sitegen.Site
			siteGraph *graph.Graph
		}
		var cur atomic.Pointer[built]
		cur.Store(&built{res.Site, res.SiteGraph})
		mux.Handle("/", server.StaticFrom(func() *sitegen.Site { return cur.Load().site }))
		mux.Handle("/query", http.StripPrefix("/query", server.QueryHandlerFrom(
			func() *graph.Graph { return cur.Load().siteGraph }, m.builder.Registry(), 0)))
		// Incremental refresh: the mediator's warehouse delta decides
		// which pages re-render; unchanged data is a noop. prev is only
		// touched by refreshLoop (a single goroutine), so no lock.
		prev := res
		refresh = func() error {
			next, err := m.builder.Rebuild(prev)
			if err != nil {
				return err
			}
			warnDegraded(m.builder)
			if info := next.Incremental; info != nil && info.Mode != "noop" {
				fmt.Fprintln(os.Stderr, "strudel:", info.Summary())
			}
			cur.Store(&built{next.Site, next.SiteGraph})
			prev = next
			return nil
		}
	}

	var h http.Handler = server.Shed(reg, mode, maxInflight, server.Recover(reg, mode, mux))
	if reg == nil {
		return h, refresh, nil
	}
	outer := http.NewServeMux()
	outer.Handle("/", server.Instrument(reg, mode, h))
	server.AttachDebug(outer, reg)
	return outer, refresh, nil
}

// warnDegraded logs which sources the last refresh served from stale
// data, so operators see partial failures that did not stop the build.
func warnDegraded(b *core.Builder) {
	if rep := b.LastRefresh(); rep != nil && !rep.Ok() {
		fmt.Fprintln(os.Stderr, "strudel: refresh degraded:", rep.Summary())
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	fmt.Printf("site %s\n", m.name)
	fmt.Printf("  data graph:  %d nodes, %d edges\n", res.Stats.DataNodes, res.Stats.DataEdges)
	fmt.Printf("  site graph:  %d nodes, %d edges\n", res.Stats.SiteNodes, res.Stats.SiteEdges)
	fmt.Printf("  pages:       %d\n", res.Stats.Pages)
	fmt.Printf("  bindings:    %d\n", res.Stats.Bindings)
	fmt.Printf("  constraints: %d checked, %d violated\n", m.constraints, len(res.Violations))
	fmt.Printf("  timings:     mediate %v, query %v, verify %v, generate %v (total %v)\n",
		res.Stats.MediationTime, res.Stats.QueryTime, res.Stats.VerifyTime,
		res.Stats.GenerateTime, res.Stats.TotalTime)
	if *trace {
		fmt.Printf("build trace:\n%s", res.Trace.Summary())
	}
	fmt.Printf("site schema:\n%s", res.Schema.String())
	return nil
}
