// Command strudel builds and serves Web sites from a site manifest,
// exercising the full architecture of the paper's Fig. 1.
//
// Usage:
//
//	strudel build -manifest site.manifest -out dir/ [-trace]
//	strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics]
//	strudel stats -manifest site.manifest [-trace]
//
// -trace prints the build's span timeline (mediation → query → verify
// → generate). -metrics instruments the server and exposes /metrics
// (Prometheus text format), /debug/vars and /debug/pprof.
//
// A manifest is a line-oriented file (# comments allowed):
//
//	site      homepage
//	source    refs.bib   bibtex      refs.bib
//	mapping   map.struql
//	query     site.struql
//	template  RootPage   root.tpl
//	embedonly PaperPresentation
//	optimize
//	index     RootPage
//	roots     Roots
//	constraint reachable RootPage
//	constraint forbid patent
//
// Paths are relative to the manifest file.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"strudel/internal/core"
	"strudel/internal/schema"
	"strudel/internal/server"
	"strudel/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "serve":
		err = cmdServe(args)
	case "stats":
		err = cmdStats(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  strudel build -manifest site.manifest -out dir/ [-trace]
  strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics]
  strudel stats -manifest site.manifest [-trace]`)
}

// manifest is the parsed site description.
type manifest struct {
	name        string
	builder     *core.Builder
	rootColl    string
	constraints int
}

// loadManifest parses the manifest and populates a builder.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	m := &manifest{name: "site"}
	b := core.NewBuilder(m.name)
	m.builder = b
	readRel := func(p string) (string, error) {
		content, err := os.ReadFile(filepath.Join(dir, p))
		return string(content), err
	}
	for lineNum, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", path, lineNum+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "site":
			if len(fields) != 2 {
				return nil, errf("usage: site <name>")
			}
			m.name = fields[1]
		case "source":
			if len(fields) != 4 {
				return nil, errf("usage: source <name> <kind> <path>")
			}
			content, err := readRel(fields[3])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddSource(fields[1], fields[2], content); err != nil {
				return nil, errf("%v", err)
			}
		case "mapping":
			if len(fields) != 2 {
				return nil, errf("usage: mapping <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddMapping(src); err != nil {
				return nil, errf("%v", err)
			}
		case "query":
			if len(fields) != 2 {
				return nil, errf("usage: query <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddQuery(src); err != nil {
				return nil, errf("%v", err)
			}
		case "template":
			if len(fields) != 3 {
				return nil, errf("usage: template <key> <path>")
			}
			src, err := readRel(fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddTemplate(fields[1], src); err != nil {
				return nil, errf("%v", err)
			}
		case "embedonly":
			b.SetEmbedOnly(fields[1:]...)
		case "optimize":
			b.EnableOptimizer()
		case "index":
			if len(fields) != 2 {
				return nil, errf("usage: index <key>")
			}
			b.SetIndex(fields[1])
		case "roots":
			if len(fields) != 2 {
				return nil, errf("usage: roots <collection>")
			}
			m.rootColl = fields[1]
			b.SetRootCollection(fields[1])
		case "constraint":
			c, err := parseConstraint(strings.Join(fields[1:], " "))
			if err != nil {
				return nil, errf("%v", err)
			}
			b.AddConstraint(c)
			m.constraints++
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	return m, nil
}

func parseConstraint(s string) (schema.Constraint, error) {
	parts := strings.Fields(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty constraint")
	}
	switch parts[0] {
	case "reachable":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: constraint reachable <RootFunc>")
		}
		return schema.Reachable{Root: parts[1]}, nil
	case "forbid":
		switch len(parts) {
		case 2:
			return schema.Forbid{Label: parts[1]}, nil
		case 3:
			return schema.Forbid{From: parts[1], Label: parts[2]}, nil
		}
		return nil, fmt.Errorf("usage: constraint forbid [From] <label>")
	case "mustlink":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: constraint mustlink <From> <label> <To>")
		}
		return schema.MustLink{From: parts[1], Label: parts[2], To: parts[3]}, nil
	case "nopath":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: constraint nopath <From> <To>")
		}
		return schema.NoPath{From: parts[1], To: parts[2]}, nil
	}
	return nil, fmt.Errorf("unknown constraint kind %q", parts[0])
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	out := fs.String("out", "site-out", "output directory")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	for _, v := range res.Violations {
		fmt.Fprintln(os.Stderr, "warning:", v)
	}
	if err := res.Site.WriteTo(*out); err != nil {
		return err
	}
	fmt.Printf("built %s: %d pages into %s (data %d/%d, site %d/%d nodes/edges)\n",
		m.name, res.Stats.Pages, *out,
		res.Stats.DataNodes, res.Stats.DataEdges,
		res.Stats.SiteNodes, res.Stats.SiteEdges)
	if *trace {
		fmt.Print(res.Trace.Summary())
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dynamic := fs.Bool("dynamic", false, "compute pages at click time instead of materializing")
	metrics := fs.Bool("metrics", false, "instrument serving and expose /metrics, /debug/vars, /debug/pprof")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	handler, err := serveHandler(m, *dynamic, reg)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s on http://%s (dynamic=%v, metrics=%v)\n", m.name, *addr, *dynamic, *metrics)
	return http.ListenAndServe(*addr, handler)
}

// serveHandler builds the HTTP handler for a manifest: either the
// fully materialized site (plus /query for ad-hoc site queries) or
// click-time evaluation. With a non-nil registry the whole pipeline
// reports into it and the debug endpoints are mounted.
func serveHandler(m *manifest, dynamic bool, reg *telemetry.Registry) (http.Handler, error) {
	if reg != nil {
		m.builder.SetTelemetry(reg)
	}
	if dynamic {
		r, err := m.builder.BuildDynamic()
		if err != nil {
			return nil, err
		}
		h := server.DynamicWith(r, m.rootColl, reg)
		if reg == nil {
			return h, nil
		}
		mux := http.NewServeMux()
		mux.Handle("/", server.Instrument(reg, "dynamic", h))
		server.AttachDebug(mux, reg)
		return mux, nil
	}
	res, err := m.builder.Build()
	if err != nil {
		return nil, err
	}
	for _, v := range res.Violations {
		fmt.Fprintln(os.Stderr, "warning:", v)
	}
	mux := http.NewServeMux()
	mux.Handle("/query", http.StripPrefix("/query", server.QueryHandler(res.SiteGraph, nil, 0)))
	if reg == nil {
		mux.Handle("/", server.Static(res.Site))
		return mux, nil
	}
	mux.Handle("/", server.Instrument(reg, "static", server.Static(res.Site)))
	server.AttachDebug(mux, reg)
	return mux, nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	fmt.Printf("site %s\n", m.name)
	fmt.Printf("  data graph:  %d nodes, %d edges\n", res.Stats.DataNodes, res.Stats.DataEdges)
	fmt.Printf("  site graph:  %d nodes, %d edges\n", res.Stats.SiteNodes, res.Stats.SiteEdges)
	fmt.Printf("  pages:       %d\n", res.Stats.Pages)
	fmt.Printf("  bindings:    %d\n", res.Stats.Bindings)
	fmt.Printf("  constraints: %d checked, %d violated\n", m.constraints, len(res.Violations))
	fmt.Printf("  timings:     mediate %v, query %v, verify %v, generate %v (total %v)\n",
		res.Stats.MediationTime, res.Stats.QueryTime, res.Stats.VerifyTime,
		res.Stats.GenerateTime, res.Stats.TotalTime)
	if *trace {
		fmt.Printf("build trace:\n%s", res.Trace.Summary())
	}
	fmt.Printf("site schema:\n%s", res.Schema.String())
	return nil
}
