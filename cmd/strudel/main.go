// Command strudel builds and serves Web sites from a site manifest,
// exercising the full architecture of the paper's Fig. 1.
//
// Usage:
//
//	strudel build -manifest site.manifest -out dir/ [-publish] [-keep N] [-trace] [-trace-out build.trace.json] [-workers N]
//	strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics]
//	              [-publish dir/] [-keep N]
//	              [-refresh-interval 5m] [-request-timeout 10s] [-max-inflight 256]
//	              [-workers N]
//	strudel verify [-json] <dir>
//	strudel stats -manifest site.manifest [-trace] [-trace-out build.trace.json] [-workers N]
//	strudel explain (-manifest site.manifest | -example cnn) [-json] [-optimize] [-workers N]
//	strudel why (-manifest site.manifest | -example cnn) [-json] [-workers N] <page>
//
// -workers bounds the build pipeline's parallelism (query evaluation,
// page rendering, dynamic materialization); 0 — the default — means
// one worker per available CPU, 1 builds sequentially. The built site
// is byte-identical at any worker count.
// -trace prints the build's span timeline (mediation → query → verify
// → generate); -trace-out writes the same trace as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing. -metrics instruments
// the server and exposes /metrics (Prometheus text format),
// /debug/vars, /debug/pprof, and the query-level introspection
// endpoints /debug/explain and /debug/provenance?page=….
//
// explain evaluates the site-definition queries with per-operator
// profiling and prints, per query, the block-structured plan with
// estimated vs actual cardinalities — without writing any pages. why
// builds the site with provenance recording and prints, for one page,
// the Skolem function that created it, the binding tuples it was
// generated from, and the source objects and attributes it consumed.
// Both accept -example (cnn, cnn-sports, homepage, org) to run against
// a built-in workload instead of a manifest.
// build -publish writes the site as a crash-safe generation (gen-N/
// with a SHA-256 manifest, committed by atomically flipping a CURRENT
// pointer) instead of syncing loose pages; -keep bounds retained
// generations. serve -publish does the same for every completed
// refresh, swapping the served site only after its generation
// committed. verify audits a published directory and exits 0 (intact),
// 1 (corrupt or torn), or 3 (unreadable); torn generations from an
// interrupted publish are repaired automatically on the next build or
// serve start.
// -refresh-interval rebuilds the site from its sources in the
// background and swaps the result in atomically; a failed or degraded
// refresh keeps serving the last good build. -request-timeout bounds
// each dynamic page computation (504 past the deadline), and
// -max-inflight sheds excess concurrent requests with 503 instead of
// queueing them. The server shuts down gracefully on SIGINT/SIGTERM.
//
// A manifest is a line-oriented file (# comments allowed):
//
//	site      homepage
//	source    refs.bib   bibtex      refs.bib
//	mapping   map.struql
//	query     site.struql
//	template  RootPage   root.tpl
//	embedonly PaperPresentation
//	optimize
//	index     RootPage
//	roots     Roots
//	constraint reachable RootPage
//	constraint forbid patent
//
// Paths are relative to the manifest file.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"strudel/internal/core"
	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/ledger"
	"strudel/internal/mediator"
	"strudel/internal/publish"
	"strudel/internal/schema"
	"strudel/internal/server"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "serve":
		err = cmdServe(args)
	case "stats":
		err = cmdStats(args)
	case "explain":
		err = cmdExplain(args)
	case "why":
		err = cmdWhy(args)
	case "verify":
		os.Exit(cmdVerify(args))
	case "top":
		err = cmdTop(args)
	case "history":
		err = cmdHistory(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  strudel build -manifest site.manifest -out dir/ [-trace] [-trace-out f.json] [-workers N]
                [-publish] [-keep N] [-ledger dir/]
  strudel serve -manifest site.manifest -addr :8080 [-dynamic] [-metrics] [-ops]
                [-hot-pages N] [-compress] [-access-log f|-] [-slo-target 250ms]
                [-refresh-interval 5m] [-request-timeout 10s] [-max-inflight 256]
                [-workers N] [-publish dir/] [-ledger dir/] [-freshness-target 2s]
  strudel stats -manifest site.manifest [-trace] [-trace-out f.json] [-workers N]
  strudel explain (-manifest site.manifest | -example cnn) [-json] [-optimize] [-workers N]
  strudel why (-manifest site.manifest | -example cnn) [-json] [-workers N] <page>
  strudel verify [-json] <dir>
  strudel top [-url http://127.0.0.1:8080] [-interval 2s] [-n 0] [-top 10]
  strudel history (-dir ledger/ | -url http://127.0.0.1:8080) [-json] [-follow] [-n 20]
                [-interval 2s]`)
}

// manifest is the parsed site description.
type manifest struct {
	name        string
	builder     *core.Builder
	rootColl    string
	constraints int
}

// loadManifest parses the manifest and populates a builder.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	m := &manifest{name: "site"}
	b := core.NewBuilder(m.name)
	m.builder = b
	readRel := func(p string) (string, error) {
		content, err := os.ReadFile(filepath.Join(dir, p))
		return string(content), err
	}
	for lineNum, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", path, lineNum+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "site":
			if len(fields) != 2 {
				return nil, errf("usage: site <name>")
			}
			m.name = fields[1]
			b.SetName(m.name)
		case "source":
			if len(fields) != 4 {
				return nil, errf("usage: source <name> <kind> <path>")
			}
			// Fail fast on an unreadable file, but register a fetch
			// function so every refresh re-reads it: -refresh-interval
			// picks up source changes, and a file that disappears
			// degrades to last-good data instead of freezing a stale
			// snapshot in silently.
			if _, err := readRel(fields[3]); err != nil {
				return nil, errf("%v", err)
			}
			srcPath := fields[3]
			if err := b.AddSourceFunc(fields[1], fields[2], func() (string, error) {
				return readRel(srcPath)
			}); err != nil {
				return nil, errf("%v", err)
			}
		case "mapping":
			if len(fields) != 2 {
				return nil, errf("usage: mapping <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddMapping(src); err != nil {
				return nil, errf("%v", err)
			}
		case "query":
			if len(fields) != 2 {
				return nil, errf("usage: query <path>")
			}
			src, err := readRel(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddQuery(src); err != nil {
				return nil, errf("%v", err)
			}
		case "template":
			if len(fields) != 3 {
				return nil, errf("usage: template <key> <path>")
			}
			src, err := readRel(fields[2])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := b.AddTemplate(fields[1], src); err != nil {
				return nil, errf("%v", err)
			}
		case "embedonly":
			b.SetEmbedOnly(fields[1:]...)
		case "optimize":
			b.EnableOptimizer()
		case "index":
			if len(fields) != 2 {
				return nil, errf("usage: index <key>")
			}
			b.SetIndex(fields[1])
		case "roots":
			if len(fields) != 2 {
				return nil, errf("usage: roots <collection>")
			}
			m.rootColl = fields[1]
			b.SetRootCollection(fields[1])
		case "constraint":
			c, err := parseConstraint(strings.Join(fields[1:], " "))
			if err != nil {
				return nil, errf("%v", err)
			}
			b.AddConstraint(c)
			m.constraints++
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	return m, nil
}

func parseConstraint(s string) (schema.Constraint, error) {
	parts := strings.Fields(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty constraint")
	}
	switch parts[0] {
	case "reachable":
		if len(parts) != 2 {
			return nil, fmt.Errorf("usage: constraint reachable <RootFunc>")
		}
		return schema.Reachable{Root: parts[1]}, nil
	case "forbid":
		switch len(parts) {
		case 2:
			return schema.Forbid{Label: parts[1]}, nil
		case 3:
			return schema.Forbid{From: parts[1], Label: parts[2]}, nil
		}
		return nil, fmt.Errorf("usage: constraint forbid [From] <label>")
	case "mustlink":
		if len(parts) != 4 {
			return nil, fmt.Errorf("usage: constraint mustlink <From> <label> <To>")
		}
		return schema.MustLink{From: parts[1], Label: parts[2], To: parts[3]}, nil
	case "nopath":
		if len(parts) != 3 {
			return nil, fmt.Errorf("usage: constraint nopath <From> <To>")
		}
		return schema.NoPath{From: parts[1], To: parts[2]}, nil
	}
	return nil, fmt.Errorf("unknown constraint kind %q", parts[0])
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	out := fs.String("out", "site-out", "output directory")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	traceOut := fs.String("trace-out", "", "write the build trace as Chrome trace-event JSON to this file")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	publishGen := fs.Bool("publish", false,
		"publish a crash-safe atomic generation under -out (gen-<n>/ + CURRENT) instead of writing pages flat")
	keep := fs.Int("keep", 2, "generations retained under -out with -publish")
	ledgerDir := fs.String("ledger", "",
		"append this build to the crash-safe build ledger under this directory (see `strudel history`)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	for _, v := range res.Violations {
		fmt.Fprintln(os.Stderr, "warning:", v)
	}
	gen := 0
	if *publishGen {
		if err := recoverPublished(*out); err != nil {
			return err
		}
		gen, err = publish.New(fsx.OS, *out, *keep).PublishSite(res.Site, res.Trace.ID, time.Time{})
		if err != nil {
			return err
		}
		fmt.Printf("published %s generation %d: %d pages into %s (data %d/%d, site %d/%d nodes/edges)\n",
			m.name, gen, res.Stats.Pages, *out,
			res.Stats.DataNodes, res.Stats.DataEdges,
			res.Stats.SiteNodes, res.Stats.SiteEdges)
	} else {
		pruned, err := res.Site.SyncTo(*out)
		if err != nil {
			return err
		}
		fmt.Printf("built %s: %d pages into %s (data %d/%d, site %d/%d nodes/edges)\n",
			m.name, res.Stats.Pages, *out,
			res.Stats.DataNodes, res.Stats.DataEdges,
			res.Stats.SiteNodes, res.Stats.SiteEdges)
		if len(pruned) > 0 {
			fmt.Printf("pruned %d stale page(s) from %s\n", len(pruned), *out)
		}
	}
	if *ledgerDir != "" {
		led, err := ledger.Open(ledger.Options{Dir: *ledgerDir})
		if err != nil {
			return err
		}
		trigger := "manual"
		if *publishGen {
			trigger = "publish"
		}
		e := ledger.FromResult(res, trigger)
		e.Generation = gen
		if _, err := led.Append(e); err != nil {
			return err
		}
	}
	if *trace {
		fmt.Print(res.Trace.Summary())
	}
	return writeChromeTrace(res.Trace, *traceOut)
}

// recoverPublished cleans crash debris out of a published directory
// before the next publication. A directory that does not exist yet or
// holds no generation is fine — the next publish creates it.
func recoverPublished(dir string) error {
	_, err := publish.Recover(fsx.OS, dir)
	if err == nil || errors.Is(err, publish.ErrNoGeneration) || errors.Is(err, iofs.ErrNotExist) {
		return nil
	}
	return err
}

// cmdVerify checks a published directory's integrity. Exit codes are
// distinct so scripts can branch: 0 = intact, 1 = corruption or torn
// state detected, 2 = usage error, 3 = directory unreadable.
func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the integrity report as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: strudel verify [-json] <dir>")
		return 2
	}
	rep, err := publish.Verify(fsx.OS, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "strudel:", err)
		return 3
	}
	if *jsonOut {
		writeJSONIndent(os.Stdout, rep)
	} else {
		fmt.Print(rep.Summary())
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

// writeChromeTrace exports a build trace as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing); an empty path is a noop.
func writeChromeTrace(tr *telemetry.Trace, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote build trace %s to %s\n", tr.ID, path)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dynamic := fs.Bool("dynamic", false, "compute pages at click time instead of materializing")
	metrics := fs.Bool("metrics", false, "instrument serving and expose /metrics, /debug/vars, /debug/pprof")
	refreshInterval := fs.Duration("refresh-interval", 0,
		"rebuild the site from its sources this often (0 disables); a failed refresh keeps serving the last good build")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second,
		"render deadline per dynamic page computation (0 disables)")
	maxInflight := fs.Int("max-inflight", 256,
		"max concurrently served requests before shedding with 503 (0 disables)")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	accessLog := fs.String("access-log", "",
		"write one structured line per request to this file (\"-\" = stderr; empty disables)")
	sloTarget := fs.Duration("slo-target", 0,
		"latency SLO: requests slower than this (or failing) burn the error budget (objective 99% over 5m; 0 disables)")
	ops := fs.Bool("ops", false,
		"enable the live ops surface: per-page access accounting, sampled request tracing, /debug/ops")
	hotPages := fs.Int("hot-pages", 0,
		"materialize this many traffic-ranked pages at the serving edge (bytes and gzip resident; 0 disables)")
	compress := fs.Bool("compress", false,
		"precompress materialized pages and serve gzip to accepting clients")
	publishDir := fs.String("publish", "",
		"publish every build as a crash-safe atomic generation under this directory (static mode only)")
	keep := fs.Int("keep", 2, "generations retained under -publish")
	ledgerDir := fs.String("ledger", "",
		"persist the build ledger (refresh history, freshness stamps) as crash-safe JSONL segments under this directory; empty keeps it in memory only")
	freshnessTarget := fs.Duration("freshness-target", 0,
		"watchdog alert when a source change takes longer than this to become servable at the edge (0 disables)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	var pub *publish.Publisher
	if *publishDir != "" {
		if *dynamic {
			return fmt.Errorf("-publish requires static mode (pages are computed per click in -dynamic)")
		}
		// Clean up debris a previous crash may have left before the
		// first generation of this process is published.
		if err := recoverPublished(*publishDir); err != nil {
			return err
		}
		pub = publish.New(fsx.OS, *publishDir, *keep)
	}
	// One structured logger for the whole serving process: build,
	// refresh and request log lines share a schema and carry build /
	// request IDs for correlation. The server packages log through it
	// too.
	logg := telemetry.NewLogger(os.Stderr)
	server.SetLogger(logg)
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	opts := serveOptions{
		dynamic:         *dynamic,
		reg:             reg,
		renderTimeout:   *requestTimeout,
		maxInflight:     *maxInflight,
		sloTarget:       *sloTarget,
		ops:             *ops,
		hotPages:        *hotPages,
		compress:        *compress,
		pub:             pub,
		logg:            logg,
		ledgerDir:       *ledgerDir,
		freshnessTarget: *freshnessTarget,
	}
	var accessFile *os.File
	switch *accessLog {
	case "":
	case "-":
		opts.accessLog = os.Stderr
	default:
		accessFile, err = os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer accessFile.Close()
		opts.accessLog = accessFile
	}
	stop := make(chan struct{})
	opts.stop = stop
	handler, refresh, err := serveHandler(m, opts)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logg.Info("shutting down", "site", m.name)
		close(stop)
	}()
	if *refreshInterval > 0 {
		go refreshLoop(refresh, *refreshInterval, stop, logg)
	}
	logg.Info("serving", "site", m.name, "addr", *addr,
		"dynamic", *dynamic, "metrics", *metrics, "ops", *ops,
		"refresh", refreshInterval.String())
	return server.ServeUntil(server.NewServer(*addr, handler), stop, 5*time.Second)
}

// refreshLoop re-runs refresh every interval until stop fires. A hard
// failure (no last-good data to fall back on) backs off exponentially,
// capped at 10× the interval, so a broken source set is not hammered;
// the server keeps answering from the last good build throughout.
func refreshLoop(refresh func() error, interval time.Duration, stop <-chan struct{}, logg *slog.Logger) {
	delay := interval
	for {
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
		if err := refresh(); err != nil {
			logg.Error("refresh failed, serving stale data", "err", err)
			delay = min(delay*2, 10*interval)
		} else {
			delay = interval
		}
	}
}

// serveOptions tunes serveHandler. The zero value serves the site
// with no telemetry, matching the bare `strudel serve` invocation.
type serveOptions struct {
	// dynamic computes pages at click time instead of materializing.
	dynamic bool
	// reg, when non-nil, is exposed at /metrics with the full debug
	// surface (pprof, expvar, explain, provenance).
	reg *telemetry.Registry
	// renderTimeout bounds each dynamic page computation (0 disables).
	renderTimeout time.Duration
	// maxInflight sheds requests beyond this concurrency (0 disables).
	maxInflight int
	// accessLog, when non-nil, receives one structured line per request.
	accessLog io.Writer
	// sloTarget enables the latency SLO tracker (0 disables); the
	// objective is 99% over a 5-minute window.
	sloTarget time.Duration
	// ops enables the accounting table, sampled request tracing, the
	// runtime sampler and /debug/ops.
	ops bool
	// hotPages materializes this many traffic-ranked pages at the
	// serving edge (0 disables the hot/cold policy).
	hotPages int
	// compress serves precompressed gzip variants of materialized
	// pages to accepting clients.
	compress bool
	// pub, when non-nil, publishes every completed static build as an
	// atomic on-disk generation; serving swaps to a new build only
	// after its generation committed, so the served site always equals
	// the committed CURRENT generation.
	pub *publish.Publisher
	// stop, when non-nil, ends the runtime sampler loop on close.
	stop <-chan struct{}
	logg *slog.Logger
	// ledgerDir persists the build ledger as crash-safe JSONL segments
	// under this directory; "" keeps the ledger in memory only. The
	// ledger itself always exists — every refresh cycle is recorded.
	ledgerDir string
	// freshnessTarget makes the watchdog alert when a source change
	// takes longer than this to become servable at the edge (0
	// disables the propagation check).
	freshnessTarget time.Duration
}

// observability assembles the serving-plane observers the options ask
// for. The internal registry aggregates instrumentation even when
// /metrics is not exposed (-ops without -metrics).
func (o *serveOptions) observability(ireg *telemetry.Registry) (server.Observability, *server.Ops) {
	obs := server.Observability{Registry: ireg}
	if o.accessLog != nil {
		obs.AccessLog = telemetry.NewAccessLogger(o.accessLog)
	}
	if o.sloTarget > 0 {
		obs.SLO = telemetry.NewSLO(o.sloTarget, 0.99, 5*time.Minute, nil)
		obs.SLO.Instrument(ireg)
	}
	if o.ops || o.hotPages > 0 {
		// The edge's hot/cold policy ranks pages by this table, so it
		// exists whenever -hot-pages asks for materialization, not just
		// under -ops.
		obs.Accounting = server.NewAccounting(1024)
		obs.Accounting.Instrument(ireg)
	}
	if !o.ops {
		return obs, nil
	}
	obs.Tracer = telemetry.NewRequestTracer(16, 8)
	obs.Inflight = server.NewInflight()
	sampler := telemetry.NewRuntimeSampler(ireg)
	if o.stop != nil {
		go sampler.Run(o.stop, 10*time.Second)
	}
	return obs, &server.Ops{
		Accounting: obs.Accounting,
		SLO:        obs.SLO,
		Runtime:    sampler,
		Tracer:     obs.Tracer,
		Inflight:   obs.Inflight,
	}
}

// serveHandler builds the HTTP handler for a manifest — the fully
// materialized site or click-time evaluation, each with /query for
// ad-hoc StruQL queries — plus a refresh function that rebuilds from
// the sources and atomically swaps the new result in (in-flight
// requests keep their snapshot). The handler is hardened: panics in
// one request answer 500 without taking the process down, and beyond
// maxInflight concurrent requests new ones are shed with 503. With a
// non-nil registry the whole pipeline reports into it and the debug
// endpoints are mounted (outside the shedding chain, so /metrics
// stays reachable under overload), including /debug/explain and —
// in static mode — /debug/provenance. /healthz and /readyz are always
// mounted: readiness follows the mediator's refresh state, flipping
// off only when a source failed with no last-good data to serve.
func serveHandler(m *manifest, opts serveOptions) (http.Handler, func() error, error) {
	dynamic, reg, logg := opts.dynamic, opts.reg, opts.logg
	renderTimeout, maxInflight := opts.renderTimeout, opts.maxInflight
	obsOn := opts.ops || opts.accessLog != nil || opts.sloTarget > 0 || opts.hotPages > 0
	// ireg backs instrumentation; it is the exposed registry when
	// -metrics is on, else an internal one (or nil with no observers).
	ireg := reg
	if ireg == nil && obsOn {
		ireg = telemetry.NewRegistry()
	}
	m.builder.SetTelemetry(ireg)
	if ireg != nil {
		telemetry.RegisterBuildInfo(ireg)
	}
	mode := "static"
	if dynamic {
		mode = "dynamic"
	}
	// The build ledger records every refresh cycle — in memory always,
	// on disk (crash-safe JSONL segments) when -ledger names a
	// directory. The watchdog folds each entry into its EWMA and
	// raises gauges/log warnings on regressions.
	led, err := ledger.Open(ledger.Options{Dir: opts.ledgerDir})
	if err != nil {
		return nil, nil, err
	}
	wd := ledger.NewWatchdog(ledger.WatchdogConfig{
		PropagationTarget: opts.freshnessTarget,
		Logger:            logg,
	})
	if ireg != nil {
		led.Instrument(ireg)
		wd.Instrument(ireg)
	}
	record := func(e ledger.Entry) {
		if _, err := led.Append(e); err != nil {
			logg.Warn("build ledger append failed", "err", err)
		}
		wd.Observe(e)
	}
	mux := http.NewServeMux()
	var refresh func() error
	var intro server.Introspector
	// Observability is assembled before the serving handlers so the
	// edge's hot/cold policy can rank pages by the same accounting
	// table the middleware feeds.
	var obs server.Observability
	var opsSurface *server.Ops
	if ireg != nil {
		obs, opsSurface = opts.observability(ireg)
	}
	// edgeOn routes requests through the caching edge (provenance-keyed
	// ETags, hot-page materialization, precompression) instead of the
	// plain handlers.
	edgeOn := opts.hotPages > 0 || opts.compress
	edgeCfg := server.EdgeConfig{
		Mode:          mode,
		HotPages:      opts.hotPages,
		Compress:      opts.compress,
		Accounting:    obs.Accounting,
		Registry:      ireg,
		RenderTimeout: renderTimeout,
	}
	// builtAt tracks (atomically, as unix nanos) when the served
	// content was last built or re-validated; the accounting table
	// derives per-page staleness from it. dataAsOf tracks when the
	// served data was last *observed at its sources* (the refresh
	// stamp) — a no-op refresh advances builtAt but not dataAsOf — and
	// curBuild names the live build for cross-plane correlation.
	var builtAt atomic.Int64
	var dataAsOf atomic.Int64
	var curBuild atomic.Value // string
	curBuild.Store("")
	buildID := func() string { s, _ := curBuild.Load().(string); return s }
	var edge *server.Edge

	if dynamic {
		r0, err := m.builder.BuildDynamic()
		if err != nil {
			return nil, nil, err
		}
		var cur atomic.Pointer[incremental.Renderer]
		cur.Store(r0)
		builtAt.Store(r0.BuiltAt.UnixNano())
		dataAsOf.Store(r0.BuiltAt.UnixNano())
		// Click-time rendering has no core.Result; each cycle gets a
		// fresh build ID and a minimal ledger entry carrying the
		// mediator's per-source outcomes.
		dynEntry := func(id, trigger string, totalMs float64) ledger.Entry {
			e := ledger.Entry{BuildID: id, Site: m.name, Trigger: trigger,
				Mode: "dynamic", TotalMs: totalMs}
			if rep := m.builder.LastRefresh(); rep != nil {
				e.Sources = ledger.SourceRecords(rep)
				e.Data = ledger.DeltaSizeOf(rep.Warehouse)
			}
			return e
		}
		id0 := telemetry.NewID("build")
		curBuild.Store(id0)
		record(dynEntry(id0, "initial", 0))
		if edgeOn {
			edge = server.DynamicEdge(cur.Load, m.rootColl, edgeCfg)
			edge.NoteBuild(id0)
			if opts.hotPages > 0 && opts.stop != nil {
				go edge.RunPolicy(opts.stop, 0)
			}
			mux.Handle("/", edge)
		} else {
			mux.Handle("/", server.DynamicFrom(cur.Load, m.rootColl,
				server.DynamicConfig{Registry: ireg, RenderTimeout: renderTimeout}))
		}
		// Ad-hoc queries run against the same data-graph snapshot the
		// click-time pages see.
		mux.Handle("/query", http.StripPrefix("/query", server.QueryHandlerFrom(
			func() *graph.Graph { return cur.Load().Dec.Input() }, m.builder.Registry(), 0)))
		// Explain profiles the full query over the renderer's current
		// data snapshot; click-time pages have no persistent provenance
		// records (pages are computed and discarded per request).
		intro.Explain = func() (any, error) {
			return m.builder.ExplainData(cur.Load().Dec.Input())
		}
		// Incremental refresh: the mediator reports what changed, and the
		// new renderer adopts cached pages of unaffected classes instead
		// of starting cold. refreshLoop is the only caller, so reading
		// cur without coordination is safe.
		refresh = func() error {
			t0 := time.Now()
			prev := cur.Load()
			r, err := m.builder.RebuildDynamic(prev)
			if err != nil {
				record(ledger.Entry{BuildID: telemetry.NewID("build"), Site: m.name,
					Trigger: "interval", Mode: "failed", Err: err.Error()})
				return err
			}
			warnDegraded(m.builder, logg)
			id := telemetry.NewID("build")
			e := dynEntry(id, "interval", float64(time.Since(t0))/float64(time.Millisecond))
			if r != prev {
				cur.Store(r)
				if edge != nil {
					// A new renderer means the data changed: resident hot
					// bytes may be stale, so drop them and let the policy
					// re-materialize from the new snapshot on demand.
					edge.FlushHot()
					edge.NoteBuild(id)
				}
				observed := t0
				if rep := m.builder.LastRefresh(); rep != nil && !rep.At.IsZero() {
					observed = rep.At
				}
				e.StampFreshness(observed, time.Now())
				dataAsOf.Store(dataStamp(m.builder.LastRefresh(), observed).UnixNano())
			} else {
				e.Mode = "noop"
			}
			curBuild.Store(id)
			record(e)
			builtAt.Store(r.BuiltAt.UnixNano())
			return nil
		}
	} else {
		if reg != nil {
			// Metrics mode also records page provenance, so
			// /debug/provenance can answer from the served result.
			m.builder.EnableIntrospection()
		}
		res, err := m.builder.Build()
		if err != nil {
			return nil, nil, err
		}
		for _, v := range res.Violations {
			logg.Warn("constraint violation", "build_id", res.Trace.ID, "violation", fmt.Sprint(v))
		}
		gen0 := 0
		if opts.pub != nil {
			gen0, err = opts.pub.PublishSite(res.Site, res.Trace.ID, time.Time{})
			if err != nil {
				return nil, nil, fmt.Errorf("publishing initial build: %w", err)
			}
			logg.Info("published", "build_id", res.Trace.ID, "generation", gen0, "dir", opts.pub.Dir())
		}
		var cur atomic.Pointer[core.Result]
		cur.Store(res)
		builtAt.Store(res.BuiltAt.UnixNano())
		curBuild.Store(res.Trace.ID)
		// The initial build's data is as fresh as its refresh stamp
		// (when the mediator fetched), falling back to build completion.
		dataAsOf.Store(dataStamp(res.Refresh, res.BuiltAt).UnixNano())
		e0 := ledger.FromResult(res, "initial")
		e0.Generation = gen0
		record(e0)
		if edgeOn {
			edge = server.NewEdge(server.NewSiteSource(res.Site), edgeCfg)
			edge.NoteBuild(res.Trace.ID)
			if opts.hotPages > 0 && opts.stop != nil {
				go edge.RunPolicy(opts.stop, 0)
			}
			mux.Handle("/", edge)
		} else {
			mux.Handle("/", server.StaticFrom(func() *sitegen.Site { return cur.Load().Site }))
		}
		mux.Handle("/query", http.StripPrefix("/query", server.QueryHandlerFrom(
			func() *graph.Graph { return cur.Load().SiteGraph }, m.builder.Registry(), 0)))
		intro.Explain = func() (any, error) {
			return m.builder.ExplainData(cur.Load().DataGraph)
		}
		intro.Provenance = func(page string) (any, bool, error) {
			pp, ok := cur.Load().PageProvenance(page)
			if !ok {
				return nil, false, nil
			}
			return pp, true, nil
		}
		// Incremental refresh: the mediator's warehouse delta decides
		// which pages re-render; unchanged data is a noop. prev is only
		// touched by refreshLoop (a single goroutine), so no lock.
		prev := res
		refresh = func() error {
			t0 := time.Now()
			next, err := m.builder.Rebuild(prev)
			if err != nil {
				record(ledger.Entry{BuildID: telemetry.NewID("build"), Site: m.name,
					Trigger: "interval", Mode: "failed", Err: err.Error()})
				return err
			}
			warnDegraded(m.builder, logg)
			// observed is the freshness anchor: when the source change
			// entered the pipeline (the refresh-report stamp, i.e. when
			// the mediator started fetching), not when the rebuild ended.
			observed := t0
			if rep := next.Refresh; rep != nil && !rep.At.IsZero() {
				observed = rep.At
			}
			changed := next.Incremental == nil || next.Incremental.Mode != "noop"
			gen := 0
			if opts.pub != nil && changed {
				// Publish before swapping: the in-memory site only
				// replaces the old one once the new generation is the
				// committed CURRENT on disk. A failed publish (e.g.
				// disk full) keeps serving the last published build
				// and is retried by the refresh loop's backoff.
				gen, err = opts.pub.PublishSite(next.Site, next.Trace.ID, time.Time{})
				if err != nil {
					fe := ledger.FromResult(next, "interval")
					fe.Err = "publish: " + err.Error()
					record(fe)
					return fmt.Errorf("publish failed, serving last good generation: %w", err)
				}
				logg.Info("published", "build_id", next.Trace.ID, "generation", gen, "dir", opts.pub.Dir())
			}
			if info := next.Incremental; info != nil && info.Mode != "noop" {
				logg.Info("rebuilt", "build_id", next.Trace.ID, "mode", info.Mode,
					"summary", info.Summary())
			}
			cur.Store(next)
			if edge != nil && changed {
				// Swap the edge's snapshot: hot pages whose ETag survived
				// the rebuild keep their resident bytes; invalidated ones
				// re-materialize from the new site.
				edge.SetSource(server.NewSiteSource(next.Site))
				edge.NoteBuild(next.Trace.ID)
			}
			// The new ETags are servable from this instant: the result is
			// swapped and (when edged) the edge answers from it.
			servable := time.Now()
			e := ledger.FromResult(next, "interval")
			e.Generation = gen
			if changed {
				e.StampFreshness(observed, servable)
			}
			record(e)
			curBuild.Store(next.Trace.ID)
			dataAsOf.Store(dataStamp(next.Refresh, observed).UnixNano())
			prev = next
			builtAt.Store(next.BuiltAt.UnixNano())
			return nil
		}
	}

	// Readiness follows the mediator: a refresh that hard-failed (a
	// source down with no last-good data to degrade to) flips /readyz
	// to 503 while /healthz — liveness — stays 200. Degraded-but-
	// serving-stale is still ready: the whole point of the resilience
	// layer is that stale pages beat no pages.
	ready := func() error {
		if rep := m.builder.LastRefresh(); rep != nil && rep.Failed() {
			return fmt.Errorf("refresh failed: %s", rep.Summary())
		}
		return nil
	}

	var h http.Handler = server.Shed(ireg, mode, maxInflight, server.Recover(ireg, mode, mux))
	if ireg == nil {
		// No telemetry at all: just the health endpoints around the
		// serving chain — plus the ledger view when it persists to
		// disk (the operator asked for build history explicitly).
		outer := http.NewServeMux()
		outer.Handle("/", h)
		server.AttachHealth(outer, server.Health{Ready: ready})
		if opts.ledgerDir != "" {
			outer.Handle("/debug/ledger", led.Handler(wd))
		}
		return outer, refresh, nil
	}
	if obs.Accounting != nil {
		obs.Accounting.SetFreshness(func() time.Time {
			return time.Unix(0, builtAt.Load())
		})
		obs.Accounting.SetDataFreshness(func() time.Time {
			if v := dataAsOf.Load(); v != 0 {
				return time.Unix(0, v)
			}
			return time.Time{}
		})
	}
	// Every served request carries the live build's ID into the access
	// log and sampled traces — the serving-plane half of the ledger's
	// cross-plane correlation.
	obs.BuildID = buildID
	// The debug and health endpoints mount outside the instrumented
	// shedding chain, so /metrics, /readyz and /debug/ops stay
	// reachable (and unaccounted) under overload.
	outer := http.NewServeMux()
	outer.Handle("/", server.InstrumentObserved(obs, mode, h))
	server.AttachHealth(outer, server.Health{Ready: ready})
	outer.Handle("/debug/ledger", led.Handler(wd))
	if reg != nil {
		server.AttachDebug(outer, reg)
		server.AttachIntrospection(outer, intro)
	}
	if opsSurface != nil {
		opsSurface.Mode = mode
		opsSurface.Ready = ready
		opsSurface.BuildID = buildID
		opsSurface.Edge = edge
		opsSurface.LastBuild = func() any {
			if e, ok := led.Last(); ok {
				return e
			}
			return nil
		}
		server.AttachOps(outer, opsSurface)
	}
	return outer, refresh, nil
}

// dataStamp is the "data as of" provenance stamp for a refresh: the
// report time when every source answered fresh, pulled back to the
// oldest StaleSince when a source is serving last-good data — the
// served data is only as current as its stalest source. fallback
// covers refresh-less builds (fixed data graphs).
func dataStamp(rep *mediator.RefreshReport, fallback time.Time) time.Time {
	if rep == nil || rep.At.IsZero() {
		return fallback
	}
	stamp := rep.At
	for _, s := range rep.Sources {
		if s.State != mediator.Fresh && !s.StaleSince.IsZero() && s.StaleSince.Before(stamp) {
			stamp = s.StaleSince
		}
	}
	return stamp
}

// warnDegraded logs which sources the last refresh served from stale
// data, so operators see partial failures that did not stop the build.
func warnDegraded(b *core.Builder, logg *slog.Logger) {
	if rep := b.LastRefresh(); rep != nil && !rep.Ok() {
		logg.Warn("refresh degraded", "summary", rep.Summary())
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	trace := fs.Bool("trace", false, "print the build's span timeline")
	traceOut := fs.String("trace-out", "", "write the build trace as Chrome trace-event JSON to this file")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	m, err := loadManifest(*manifestPath)
	if err != nil {
		return err
	}
	m.builder.SetWorkers(*workers)
	res, err := m.builder.Build()
	if err != nil {
		return err
	}
	fmt.Printf("site %s\n", m.name)
	fmt.Printf("  data graph:  %d nodes, %d edges\n", res.Stats.DataNodes, res.Stats.DataEdges)
	fmt.Printf("  site graph:  %d nodes, %d edges\n", res.Stats.SiteNodes, res.Stats.SiteEdges)
	fmt.Printf("  pages:       %d\n", res.Stats.Pages)
	fmt.Printf("  bindings:    %d\n", res.Stats.Bindings)
	fmt.Printf("  constraints: %d checked, %d violated\n", m.constraints, len(res.Violations))
	fmt.Printf("  timings:     mediate %v, query %v, verify %v, generate %v (total %v)\n",
		res.Stats.MediationTime, res.Stats.QueryTime, res.Stats.VerifyTime,
		res.Stats.GenerateTime, res.Stats.TotalTime)
	if *trace {
		fmt.Printf("build trace:\n%s", res.Trace.Summary())
	}
	fmt.Printf("site schema:\n%s", res.Schema.String())
	return writeChromeTrace(res.Trace, *traceOut)
}

// introspectionBuilder resolves the -manifest / -example pair shared
// by the explain and why verbs: exactly one of the two selects the
// site to introspect.
func introspectionBuilder(manifestPath, example string) (*core.Builder, string, error) {
	switch {
	case manifestPath != "" && example != "":
		return nil, "", fmt.Errorf("-manifest and -example are mutually exclusive")
	case manifestPath != "":
		m, err := loadManifest(manifestPath)
		if err != nil {
			return nil, "", err
		}
		return m.builder, m.name, nil
	case example != "":
		b, err := exampleBuilder(example)
		if err != nil {
			return nil, "", err
		}
		return b, example, nil
	}
	return nil, "", fmt.Errorf("need -manifest or -example")
}

// exampleBuilder populates a builder with one of the built-in workload
// sites, so explain and why can be tried without writing a manifest.
// The sites mirror the examples/ programs: cnn and cnn-sports share
// one ~300-article database (paper Sec. 5.1), homepage is the
// bibliography site, org mediates the five organization sources.
func exampleBuilder(name string) (*core.Builder, error) {
	applySpec := func(b *core.Builder, spec *workload.SiteSpec) error {
		if err := b.AddQuery(spec.Query); err != nil {
			return err
		}
		b.AddTemplates(spec.Templates)
		b.SetIndex(spec.Index)
		var embed []string
		for key := range spec.EmbedOnly {
			embed = append(embed, key)
		}
		sort.Strings(embed)
		b.SetEmbedOnly(embed...)
		b.SetRootCollection(spec.RootCollection)
		return nil
	}
	switch name {
	case "cnn", "cnn-sports":
		spec := workload.ArticleSpec(name == "cnn-sports")
		b := core.NewBuilder(spec.Name)
		b.SetDataGraph(workload.Articles(300, 1997))
		return b, applySpec(b, spec)
	case "homepage":
		spec := workload.BibliographySpec()
		b := core.NewBuilder(spec.Name)
		b.SetDataGraph(workload.Bibliography(60, 1997))
		return b, applySpec(b, spec)
	case "org":
		spec := workload.OrgSpec(false)
		b := core.NewBuilder(spec.Name)
		src := workload.Organization(120, 25, 6, 7)
		sources := []struct{ name, kind, content string }{
			{"people.csv", "csv", src.PeopleCSV},
			{"departments.csv", "csv", src.DepartmentsCSV},
			{"projects.txt", "structured", src.ProjectsTxt},
			{"refs.bib", "bibtex", src.BibTeX},
		}
		var pageNames []string
		for n := range src.HTMLPages {
			pageNames = append(pageNames, n)
		}
		sort.Strings(pageNames)
		for _, n := range pageNames {
			sources = append(sources, struct{ name, kind, content string }{n, "html", src.HTMLPages[n]})
		}
		for _, s := range sources {
			if err := b.AddSource(s.name, s.kind, s.content); err != nil {
				return nil, err
			}
		}
		return b, applySpec(b, spec)
	}
	return nil, fmt.Errorf("unknown example %q (want cnn, cnn-sports, homepage, org)", name)
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	example := fs.String("example", "", "built-in example site (cnn, cnn-sports, homepage, org) instead of a manifest")
	jsonOut := fs.Bool("json", false, "emit the explain report as JSON")
	optimize := fs.Bool("optimize", false, "plan with the cost-based optimizer (manifests may also say `optimize`)")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	b, _, err := introspectionBuilder(*manifestPath, *example)
	if err != nil {
		return err
	}
	b.SetWorkers(*workers)
	if *optimize {
		b.EnableOptimizer()
	}
	ex, err := b.Explain()
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSONIndent(os.Stdout, ex)
	}
	ex.WriteText(os.Stdout)
	return nil
}

func cmdWhy(args []string) error {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "site manifest file")
	example := fs.String("example", "", "built-in example site (cnn, cnn-sports, homepage, org) instead of a manifest")
	jsonOut := fs.Bool("json", false, "emit the provenance record as JSON")
	workers := fs.Int("workers", 0, "build parallelism (0 = one worker per CPU, 1 = sequential)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: strudel why (-manifest site.manifest | -example cnn) <page>")
	}
	page := fs.Arg(0)
	b, site, err := introspectionBuilder(*manifestPath, *example)
	if err != nil {
		return err
	}
	b.SetWorkers(*workers)
	b.EnableIntrospection()
	res, err := b.Build()
	if err != nil {
		return err
	}
	pp, ok := res.PageProvenance(page)
	if !ok {
		paths := res.Site.Paths()
		hint := ""
		if len(paths) > 0 {
			n := min(len(paths), 5)
			hint = fmt.Sprintf(" (site has %d pages, e.g. %s)", len(paths), strings.Join(paths[:n], ", "))
		}
		return fmt.Errorf("no page %q in site %s%s", page, site, hint)
	}
	if *jsonOut {
		return writeJSONIndent(os.Stdout, pp)
	}
	pp.WriteText(os.Stdout)
	return nil
}

func writeJSONIndent(w *os.File, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
