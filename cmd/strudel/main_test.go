package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

// discardLogger returns a structured logger whose output is dropped,
// for exercising the serving path quietly.
func discardLogger() *slog.Logger {
	return telemetry.NewLogger(io.Discard)
}

// writeTestSite creates a manifest plus its artifacts in a temp dir.
func writeTestSite(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"refs.bib": `
@article{p1, title = {Alpha}, author = {Ann}, year = 1997, category = {X}}
@inproceedings{p2, title = {Beta}, author = {Bo}, year = 1998, booktitle = {C}, category = {Y}}
`,
		"site.struql": `
INPUT DataGraph
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> l -> v
CREATE PaperPage(x)
LINK PaperPage(x) -> l -> v,
     RootPage() -> "Paper" -> PaperPage(x)
OUTPUT Site`,
		"root.tpl":  `<html><body><h1>Papers</h1><SFMT_UL Paper ORDER=ascend KEY=title></body></html>`,
		"paper.tpl": `<html><body><h1><SFMT title></h1><SFMT author DELIM=", "> (<SFMT year>)</body></html>`,
		"site.manifest": `# test site
site      testsite
source    refs.bib  bibtex  refs.bib
query     site.struql
template  RootPage  root.tpl
template  PaperPage paper.tpl
optimize
index     RootPage
roots     Roots
constraint reachable RootPage
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadManifestAndBuild(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	if m.name != "testsite" || m.rootColl != "Roots" || m.constraints != 1 {
		t.Errorf("manifest = %+v", m)
	}
	res, err := m.builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pages != 3 {
		t.Errorf("pages = %d, want 3 (%v)", res.Stats.Pages, res.Site.Paths())
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	idx := res.Site.Pages["index.html"]
	if !strings.Contains(idx.HTML, "Alpha") || !strings.Contains(idx.HTML, "Beta") {
		t.Errorf("index:\n%s", idx.HTML)
	}
}

func TestCmdBuildWritesSite(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "out")
	if err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-out", out}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("wrote %d files", len(entries))
	}
}

func TestCmdStats(t *testing.T) {
	dir := writeTestSite(t)
	if err := cmdStats([]string{"-manifest", filepath.Join(dir, "site.manifest")}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content string }{
		{"unknown directive", "frobnicate x\n"},
		{"bad source arity", "source only-two\n"},
		{"missing file", "query nosuch.struql\n"},
		{"bad constraint", "constraint frob x\n"},
		{"bad wrapper kind", "source s nosuchkind s.txt\n"},
		{"bad template file", "template T nosuch.tpl\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_")+".manifest")
			extra := ""
			if c.name == "bad wrapper kind" {
				os.WriteFile(filepath.Join(dir, "s.txt"), []byte("x"), 0o644)
			}
			os.WriteFile(path, []byte(c.content+extra), 0o644)
			if _, err := loadManifest(path); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := loadManifest(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Error("missing manifest should fail")
	}
}

func TestParseConstraintForms(t *testing.T) {
	good := []string{
		"reachable Root",
		"forbid patent",
		"forbid PersonPage patent",
		"mustlink A l B",
		"nopath A B",
	}
	for _, s := range good {
		if _, err := parseConstraint(s); err != nil {
			t.Errorf("%q: %v", s, err)
		}
	}
	bad := []string{"", "reachable", "mustlink A l", "nopath A", "forbid", "wat x"}
	for _, s := range bad {
		if _, err := parseConstraint(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
}

func TestServeHandlerStaticAndDynamic(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		h, refresh, err := serveHandler(m, serveOptions{dynamic: dynamic, logg: discardLogger()})
		if err != nil {
			t.Fatalf("dynamic=%v: %v", dynamic, err)
		}
		if refresh == nil {
			t.Fatalf("dynamic=%v: nil refresh func", dynamic)
		}
		srv := httptest.NewServer(h)
		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "Papers") {
			t.Errorf("dynamic=%v: %d %q", dynamic, resp.StatusCode, body)
		}
	}
}

// TestServeHandlerQueryEndpointBothModes: /query is mounted in static
// AND dynamic mode — the ad-hoc query page the paper motivates is not
// an artifact of one serving strategy.
func TestServeHandlerQueryEndpointBothModes(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := serveHandler(m, serveOptions{dynamic: dynamic, logg: discardLogger()})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h)
		resp, err := http.Get(srv.URL + "/query")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "<form") {
			t.Errorf("dynamic=%v: /query = %d %q", dynamic, resp.StatusCode, body)
		}
	}
}

// TestServeHandlerRefreshSwaps: the refresh function returned by
// serveHandler rebuilds from the (changed) sources and swaps the new
// site in while the server keeps running.
func TestServeHandlerRefreshSwaps(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	h, refresh, err := serveHandler(m, serveOptions{dynamic: true, logg: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	fetchBody := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	// Discover the paper page from the root, then click through.
	if body := fetchBody("/"); !strings.Contains(body, "PaperPage%28p1%29") {
		t.Fatalf("root body = %q", body)
	}
	if body := fetchBody("/page/PaperPage%28p1%29"); !strings.Contains(body, "Alpha") {
		t.Fatalf("paper page = %q", body)
	}
	if err := refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	// The refreshed renderer serves the same site; page keys resolve
	// again after rediscovery from the root.
	if body := fetchBody("/"); !strings.Contains(body, "PaperPage%28p1%29") {
		t.Errorf("post-refresh root = %q", body)
	}
	if body := fetchBody("/page/PaperPage%28p1%29"); !strings.Contains(body, "Alpha") {
		t.Errorf("post-refresh paper page = %q", body)
	}
}

// TestServeHandlerMetricsEndpoint covers the acceptance surface of the
// observability layer: a metrics-enabled dynamic server exposes
// request-latency histograms, dynamic-cache counters and optimizer
// plan-choice counters on /metrics after a few clicks.
func TestServeHandlerMetricsEndpoint(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h, _, err := serveHandler(m, serveOptions{dynamic: true, reg: reg, logg: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	// Click twice so the page cache records a hit.
	fetch("/")
	fetch("/")
	code, body := fetch("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`strudel_http_requests_total{class="2xx",mode="dynamic"}`,
		`strudel_http_request_seconds_bucket{mode="dynamic",le="+Inf"}`,
		`strudel_dynamic_cache_events_total{event="hit"}`,
		`strudel_dynamic_cache_events_total{event="miss"}`,
		`strudel_dynamic_render_seconds_count`,
		`strudel_optimizer_plan_choice_total{method=`,
		`strudel_repository_index_builds_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := fetch("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := fetch("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// captureStdout redirects os.Stdout into a temp file around fn and
// returns what fn printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	old := os.Stdout
	os.Stdout = f
	ferr := fn()
	os.Stdout = old
	if ferr != nil {
		t.Fatal(ferr)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCmdExplainTextAndJSON(t *testing.T) {
	dir := writeTestSite(t)
	manifest := filepath.Join(dir, "site.manifest")

	out := captureStdout(t, func() error {
		return cmdExplain([]string{"-manifest", manifest})
	})
	for _, want := range []string{"site testsite", "planner:", "query[0]", "block #0"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain text missing %q:\n%s", want, out)
		}
	}

	raw := captureStdout(t, func() error {
		return cmdExplain([]string{"-manifest", manifest, "-json"})
	})
	var ex core.Explain
	if err := json.Unmarshal([]byte(raw), &ex); err != nil {
		t.Fatalf("explain -json is not valid JSON: %v\n%s", err, raw)
	}
	if ex.Site != "testsite" || len(ex.Queries) != 1 {
		t.Fatalf("explain = %+v", ex)
	}
	if got := ex.Queries[0].Plan.TotalRows(); got != ex.Queries[0].Bindings {
		t.Errorf("plan rows = %d, bindings = %d", got, ex.Queries[0].Bindings)
	}
}

func TestCmdExplainExample(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExplain([]string{"-example", "homepage"})
	})
	if !strings.Contains(out, "site homepage") || !strings.Contains(out, "query[0]") {
		t.Errorf("explain -example homepage:\n%s", out)
	}
}

func TestCmdWhy(t *testing.T) {
	dir := writeTestSite(t)
	manifest := filepath.Join(dir, "site.manifest")

	out := captureStdout(t, func() error {
		return cmdWhy([]string{"-manifest", manifest, "index.html"})
	})
	for _, want := range []string{"page index.html", "skolem", "sources"} {
		if !strings.Contains(out, want) {
			t.Errorf("why output missing %q:\n%s", want, out)
		}
	}

	raw := captureStdout(t, func() error {
		return cmdWhy([]string{"-manifest", manifest, "-json", "index.html"})
	})
	var pp sitegen.PageProvenance
	if err := json.Unmarshal([]byte(raw), &pp); err != nil {
		t.Fatalf("why -json is not valid JSON: %v\n%s", err, raw)
	}
	if pp.Func != "RootPage" || pp.TupleCount == 0 || len(pp.Sources) == 0 {
		t.Errorf("why -json = %+v", pp)
	}

	if err := cmdWhy([]string{"-manifest", manifest, "no-such-page.html"}); err == nil {
		t.Error("why of an unknown page should fail")
	}
	if err := cmdWhy([]string{"-manifest", manifest}); err == nil {
		t.Error("why without a page argument should fail")
	}
}

// TestCmdBuildTraceOut: -trace-out writes a Chrome trace-event file
// that a JSON parser and the trace viewers accept.
func TestCmdBuildTraceOut(t *testing.T) {
	dir := writeTestSite(t)
	tracePath := filepath.Join(dir, "build-trace.json")
	err := cmdBuild([]string{
		"-manifest", filepath.Join(dir, "site.manifest"),
		"-out", filepath.Join(dir, "out"),
		"-trace-out", tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	phases := map[string]bool{}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		phases[ev.Phase] = true
		names[ev.Name] = true
	}
	if !phases["X"] || !phases["M"] {
		t.Errorf("trace phases = %v, want X and M events", phases)
	}
	for _, span := range []string{"query", "generate"} {
		if !names[span] {
			t.Errorf("trace has no %q span: %v", span, names)
		}
	}
}

// TestServeHandlerIntrospectionEndpoints: with metrics enabled, both
// serving modes answer /debug/explain, and the static mode — which
// holds a full build result — answers /debug/provenance too.
func TestServeHandlerIntrospectionEndpoints(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		h, _, err := serveHandler(m, serveOptions{dynamic: dynamic, reg: reg, logg: discardLogger()})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h)
		fetch := func(path string) (int, string) {
			t.Helper()
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(body)
		}

		code, body := fetch("/debug/explain")
		if code != 200 {
			t.Fatalf("dynamic=%v: /debug/explain = %d %q", dynamic, code, body)
		}
		var ex core.Explain
		if err := json.Unmarshal([]byte(body), &ex); err != nil {
			t.Fatalf("dynamic=%v: /debug/explain not JSON: %v", dynamic, err)
		}
		if ex.Site != "testsite" || len(ex.Queries) != 1 || ex.Queries[0].Bindings == 0 {
			t.Errorf("dynamic=%v: explain = %+v", dynamic, ex)
		}

		code, body = fetch("/debug/provenance?page=index.html")
		if dynamic {
			// The dynamic renderer has no generated pages to trace.
			if code != 404 {
				t.Errorf("dynamic: /debug/provenance = %d, want 404", code)
			}
		} else {
			if code != 200 {
				t.Fatalf("static: /debug/provenance = %d %q", code, body)
			}
			var pp sitegen.PageProvenance
			if err := json.Unmarshal([]byte(body), &pp); err != nil {
				t.Fatalf("static: provenance not JSON: %v", err)
			}
			if pp.Func != "RootPage" || len(pp.Sources) == 0 {
				t.Errorf("static: provenance = %+v", pp)
			}
			if code, _ := fetch("/debug/provenance?page=no-such"); code != 404 {
				t.Errorf("static: unknown page = %d, want 404", code)
			}
			if code, _ := fetch("/debug/provenance"); code != 400 {
				t.Errorf("static: missing ?page = %d, want 400", code)
			}
		}
		srv.Close()
	}
}

func TestCmdBuildWorkersFlagDeterministic(t *testing.T) {
	dir := writeTestSite(t)
	manifest := filepath.Join(dir, "site.manifest")
	read := func(out string) map[string]string {
		t.Helper()
		entries, err := os.ReadDir(out)
		if err != nil {
			t.Fatal(err)
		}
		pages := map[string]string{}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(out, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			pages[e.Name()] = string(data)
		}
		return pages
	}
	seqOut := filepath.Join(dir, "out-seq")
	if err := cmdBuild([]string{"-manifest", manifest, "-out", seqOut, "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	want := read(seqOut)
	for _, w := range []string{"4", "16"} {
		out := filepath.Join(dir, "out-"+w)
		if err := cmdBuild([]string{"-manifest", manifest, "-out", out, "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		got := read(out)
		if len(got) != len(want) {
			t.Fatalf("workers=%s: wrote %d files, want %d", w, len(got), len(want))
		}
		for name, content := range want {
			if got[name] != content {
				t.Errorf("workers=%s: %s differs from sequential build", w, name)
			}
		}
	}
}
