package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/telemetry"
)

// writeTestSite creates a manifest plus its artifacts in a temp dir.
func writeTestSite(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"refs.bib": `
@article{p1, title = {Alpha}, author = {Ann}, year = 1997, category = {X}}
@inproceedings{p2, title = {Beta}, author = {Bo}, year = 1998, booktitle = {C}, category = {Y}}
`,
		"site.struql": `
INPUT DataGraph
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> l -> v
CREATE PaperPage(x)
LINK PaperPage(x) -> l -> v,
     RootPage() -> "Paper" -> PaperPage(x)
OUTPUT Site`,
		"root.tpl":  `<html><body><h1>Papers</h1><SFMT_UL Paper ORDER=ascend KEY=title></body></html>`,
		"paper.tpl": `<html><body><h1><SFMT title></h1><SFMT author DELIM=", "> (<SFMT year>)</body></html>`,
		"site.manifest": `# test site
site      testsite
source    refs.bib  bibtex  refs.bib
query     site.struql
template  RootPage  root.tpl
template  PaperPage paper.tpl
optimize
index     RootPage
roots     Roots
constraint reachable RootPage
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadManifestAndBuild(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	if m.name != "testsite" || m.rootColl != "Roots" || m.constraints != 1 {
		t.Errorf("manifest = %+v", m)
	}
	res, err := m.builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pages != 3 {
		t.Errorf("pages = %d, want 3 (%v)", res.Stats.Pages, res.Site.Paths())
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	idx := res.Site.Pages["index.html"]
	if !strings.Contains(idx.HTML, "Alpha") || !strings.Contains(idx.HTML, "Beta") {
		t.Errorf("index:\n%s", idx.HTML)
	}
}

func TestCmdBuildWritesSite(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "out")
	if err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-out", out}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("wrote %d files", len(entries))
	}
}

func TestCmdStats(t *testing.T) {
	dir := writeTestSite(t)
	if err := cmdStats([]string{"-manifest", filepath.Join(dir, "site.manifest")}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content string }{
		{"unknown directive", "frobnicate x\n"},
		{"bad source arity", "source only-two\n"},
		{"missing file", "query nosuch.struql\n"},
		{"bad constraint", "constraint frob x\n"},
		{"bad wrapper kind", "source s nosuchkind s.txt\n"},
		{"bad template file", "template T nosuch.tpl\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_")+".manifest")
			extra := ""
			if c.name == "bad wrapper kind" {
				os.WriteFile(filepath.Join(dir, "s.txt"), []byte("x"), 0o644)
			}
			os.WriteFile(path, []byte(c.content+extra), 0o644)
			if _, err := loadManifest(path); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := loadManifest(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Error("missing manifest should fail")
	}
}

func TestParseConstraintForms(t *testing.T) {
	good := []string{
		"reachable Root",
		"forbid patent",
		"forbid PersonPage patent",
		"mustlink A l B",
		"nopath A B",
	}
	for _, s := range good {
		if _, err := parseConstraint(s); err != nil {
			t.Errorf("%q: %v", s, err)
		}
	}
	bad := []string{"", "reachable", "mustlink A l", "nopath A", "forbid", "wat x"}
	for _, s := range bad {
		if _, err := parseConstraint(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
}

func TestServeHandlerStaticAndDynamic(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		h, refresh, err := serveHandler(m, dynamic, nil, 0, 0)
		if err != nil {
			t.Fatalf("dynamic=%v: %v", dynamic, err)
		}
		if refresh == nil {
			t.Fatalf("dynamic=%v: nil refresh func", dynamic)
		}
		srv := httptest.NewServer(h)
		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "Papers") {
			t.Errorf("dynamic=%v: %d %q", dynamic, resp.StatusCode, body)
		}
	}
}

// TestServeHandlerQueryEndpointBothModes: /query is mounted in static
// AND dynamic mode — the ad-hoc query page the paper motivates is not
// an artifact of one serving strategy.
func TestServeHandlerQueryEndpointBothModes(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := serveHandler(m, dynamic, nil, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(h)
		resp, err := http.Get(srv.URL + "/query")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "<form") {
			t.Errorf("dynamic=%v: /query = %d %q", dynamic, resp.StatusCode, body)
		}
	}
}

// TestServeHandlerRefreshSwaps: the refresh function returned by
// serveHandler rebuilds from the (changed) sources and swaps the new
// site in while the server keeps running.
func TestServeHandlerRefreshSwaps(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	h, refresh, err := serveHandler(m, true, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	fetchBody := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	// Discover the paper page from the root, then click through.
	if body := fetchBody("/"); !strings.Contains(body, "PaperPage%28p1%29") {
		t.Fatalf("root body = %q", body)
	}
	if body := fetchBody("/page/PaperPage%28p1%29"); !strings.Contains(body, "Alpha") {
		t.Fatalf("paper page = %q", body)
	}
	if err := refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	// The refreshed renderer serves the same site; page keys resolve
	// again after rediscovery from the root.
	if body := fetchBody("/"); !strings.Contains(body, "PaperPage%28p1%29") {
		t.Errorf("post-refresh root = %q", body)
	}
	if body := fetchBody("/page/PaperPage%28p1%29"); !strings.Contains(body, "Alpha") {
		t.Errorf("post-refresh paper page = %q", body)
	}
}

// TestServeHandlerMetricsEndpoint covers the acceptance surface of the
// observability layer: a metrics-enabled dynamic server exposes
// request-latency histograms, dynamic-cache counters and optimizer
// plan-choice counters on /metrics after a few clicks.
func TestServeHandlerMetricsEndpoint(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h, _, err := serveHandler(m, true, reg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	// Click twice so the page cache records a hit.
	fetch("/")
	fetch("/")
	code, body := fetch("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`strudel_http_requests_total{class="2xx",mode="dynamic"}`,
		`strudel_http_request_seconds_bucket{mode="dynamic",le="+Inf"}`,
		`strudel_dynamic_cache_events_total{event="hit"}`,
		`strudel_dynamic_cache_events_total{event="miss"}`,
		`strudel_dynamic_render_seconds_count`,
		`strudel_optimizer_plan_choice_total{method=`,
		`strudel_repository_index_builds_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, body := fetch("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := fetch("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestCmdBuildWorkersFlagDeterministic(t *testing.T) {
	dir := writeTestSite(t)
	manifest := filepath.Join(dir, "site.manifest")
	read := func(out string) map[string]string {
		t.Helper()
		entries, err := os.ReadDir(out)
		if err != nil {
			t.Fatal(err)
		}
		pages := map[string]string{}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(out, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			pages[e.Name()] = string(data)
		}
		return pages
	}
	seqOut := filepath.Join(dir, "out-seq")
	if err := cmdBuild([]string{"-manifest", manifest, "-out", seqOut, "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	want := read(seqOut)
	for _, w := range []string{"4", "16"} {
		out := filepath.Join(dir, "out-"+w)
		if err := cmdBuild([]string{"-manifest", manifest, "-out", out, "-workers", w}); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		got := read(out)
		if len(got) != len(want) {
			t.Fatalf("workers=%s: wrote %d files, want %d", w, len(got), len(want))
		}
		for name, content := range want {
			if got[name] != content {
				t.Errorf("workers=%s: %s differs from sequential build", w, name)
			}
		}
	}
}
