package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/fsx"
	"strudel/internal/publish"
)

// TestCmdBuildPublishAndVerify walks the crash-safe publication surface
// end to end through the CLI: build -publish commits a generation,
// verify exits 0 on it, 1 after a flipped byte (naming the page), 3 on
// an unreadable directory, and 2 on a usage error.
func TestCmdBuildPublishAndVerify(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "published")
	err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-publish", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	gdir, err := publish.Current(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(gdir) != "gen-0" {
		t.Fatalf("first publication is %s, want gen-0", gdir)
	}
	if _, err := os.Stat(filepath.Join(gdir, publish.ManifestName)); err != nil {
		t.Fatalf("generation has no manifest: %v", err)
	}

	if code := cmdVerify([]string{out}); code != 0 {
		t.Fatalf("verify on intact dir = %d, want 0", code)
	}
	var code int
	jsonOut := captureStdout(t, func() error {
		code = cmdVerify([]string{"-json", out})
		return nil
	})
	if code != 0 {
		t.Fatalf("verify -json = %d, want 0", code)
	}
	var rep publish.Report
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("verify -json output not JSON: %v\n%s", err, jsonOut)
	}

	// A second build must advance the generation and keep verifying.
	if err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-publish", "-out", out}); err != nil {
		t.Fatal(err)
	}
	gdir2, err := publish.Current(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(gdir2) != "gen-1" {
		t.Fatalf("second publication is %s, want gen-1", gdir2)
	}
	if code := cmdVerify([]string{out}); code != 0 {
		t.Fatalf("verify after second publish = %d, want 0", code)
	}

	// Flip one byte in a committed page: verify must fail and say where.
	page := filepath.Join(gdir2, "index.html")
	data, err := os.ReadFile(page)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(page, data, 0o644); err != nil {
		t.Fatal(err)
	}
	summary := captureStdout(t, func() error {
		code = cmdVerify([]string{out})
		return nil
	})
	if code != 1 {
		t.Fatalf("verify on corrupted dir = %d, want 1", code)
	}
	if !strings.Contains(summary, "index.html") || !strings.Contains(summary, "hash mismatch") {
		t.Fatalf("verify summary does not name the corrupted page:\n%s", summary)
	}

	if code := cmdVerify([]string{filepath.Join(dir, "no-such-dir")}); code != 3 {
		t.Fatalf("verify on missing dir = %d, want 3", code)
	}
	if code := cmdVerify([]string{}); code != 2 {
		t.Fatalf("verify with no args = %d, want 2", code)
	}
}

// TestCmdBuildPublishRecoversTornGeneration: build -publish on a
// directory holding crash debris (a torn generation and a staging
// remnant) repairs it before publishing, and the result verifies.
func TestCmdBuildPublishRecoversTornGeneration(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "published")
	if err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-publish", "-out", out}); err != nil {
		t.Fatal(err)
	}
	// Fake an interrupted next publication: a generation dir with no
	// manifest plus a staging dir.
	for _, d := range []string{"gen-1", "gen-2.tmp"} {
		if err := os.MkdirAll(filepath.Join(out, d), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(out, d, "half.html"), []byte("<p>torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if code := cmdVerify([]string{out}); code != 1 {
		t.Fatalf("verify with torn generation = %d, want 1", code)
	}
	if err := cmdBuild([]string{"-manifest", filepath.Join(dir, "site.manifest"), "-publish", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if code := cmdVerify([]string{out}); code != 0 {
		t.Fatalf("verify after recovering build = %d, want 0", code)
	}
	for _, d := range []string{"gen-2.tmp"} {
		if _, err := os.Stat(filepath.Join(out, d)); !os.IsNotExist(err) {
			t.Errorf("crash debris %s survived the recovering build", d)
		}
	}
}

// TestServeHandlerPublishesGenerations: a static server with a
// publisher commits the initial build as gen-0, a noop refresh
// publishes nothing, and a refresh after a source edit commits gen-1
// whose on-disk pages match what the server then serves.
func TestServeHandlerPublishesGenerations(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "published")
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	opts := serveOptions{logg: discardLogger(), pub: publish.New(nil, out, 3)}
	h, refresh, err := serveHandler(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	gdir, err := publish.Current(nil, out)
	if err != nil {
		t.Fatalf("initial build not published: %v", err)
	}
	if filepath.Base(gdir) != "gen-0" {
		t.Fatalf("initial publication is %s, want gen-0", gdir)
	}

	// Unchanged sources: the refresh is a noop and must not publish.
	if err := refresh(); err != nil {
		t.Fatal(err)
	}
	if gdir2, _ := publish.Current(nil, out); gdir2 != gdir {
		t.Fatalf("noop refresh advanced the generation to %s", gdir2)
	}

	// Edit a source, refresh: a new generation commits, and the served
	// site equals the published one.
	bib := filepath.Join(dir, "refs.bib")
	data, err := os.ReadFile(bib)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.ReplaceAll(string(data), "Alpha", "Alphaville")
	if err := os.WriteFile(bib, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := refresh(); err != nil {
		t.Fatal(err)
	}
	gdir3, err := publish.Current(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(gdir3) != "gen-1" {
		t.Fatalf("post-edit publication is %s, want gen-1", gdir3)
	}
	site, _, err := publish.OpenSite(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(served), "Alphaville") {
		t.Fatalf("served root = %d %q", resp.StatusCode, served)
	}
	if got := site.Pages["index.html"].HTML; got != string(served) {
		t.Fatalf("published index.html differs from served page:\n%q\nvs\n%q", got, served)
	}
	if code := cmdVerify([]string{out}); code != 0 {
		t.Fatalf("verify on serve-published dir = %d, want 0", code)
	}
}

// TestServeHandlerPublishFailureKeepsServing: when the refresh's
// publication fails (disk full), the refresh reports the error and the
// server keeps serving the previous build — the swap never happens
// before the commit.
func TestServeHandlerPublishFailureKeepsServing(t *testing.T) {
	dir := writeTestSite(t)
	out := filepath.Join(dir, "published")
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	// Let the initial build publish on the real filesystem, then make
	// every later write fail with ENOSPC.
	fault := fsx.NewFaultFS(fsx.OS)
	opts := serveOptions{logg: discardLogger(), pub: publish.New(fault, out, 3)}
	h, refresh, err := serveHandler(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	gdir, err := publish.Current(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	fault.LimitBytes(0)

	bib := filepath.Join(dir, "refs.bib")
	data, err := os.ReadFile(bib)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bib, []byte(strings.ReplaceAll(string(data), "Alpha", "Gamma")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := refresh(); err == nil {
		t.Fatal("refresh succeeded although publication could not commit")
	} else if !strings.Contains(err.Error(), "publish failed") {
		t.Fatalf("refresh error = %v", err)
	}
	if gdir2, _ := publish.Current(nil, out); gdir2 != gdir {
		t.Fatalf("failed publish moved CURRENT to %s", gdir2)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(served), "Alpha") || strings.Contains(string(served), "Gamma") {
		t.Fatalf("server swapped to an uncommitted build: %q", served)
	}
}

// TestCmdServePublishRejectsDynamic: -publish only makes sense when
// pages are materialized; combining it with -dynamic is a usage error.
func TestCmdServePublishRejectsDynamic(t *testing.T) {
	dir := writeTestSite(t)
	err := cmdServe([]string{
		"-manifest", filepath.Join(dir, "site.manifest"),
		"-dynamic", "-publish", filepath.Join(dir, "published"),
	})
	if err == nil || !strings.Contains(err.Error(), "static mode") {
		t.Fatalf("err = %v, want static-mode usage error", err)
	}
}
