package main

// Flag-to-edge wiring: -hot-pages/-compress route serving through the
// caching edge in both modes, with working conditional requests and
// gzip, and a static refresh swaps the edge's snapshot so changed
// pages serve fresh bytes while a client's stale tag gets a 200.

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestServeHandlerEdgeModes(t *testing.T) {
	dir := writeTestSite(t)
	for _, dynamic := range []bool{false, true} {
		m, err := loadManifest(filepath.Join(dir, "site.manifest"))
		if err != nil {
			t.Fatal(err)
		}
		h, refresh, err := serveHandler(m, serveOptions{
			dynamic:  dynamic,
			hotPages: 4,
			compress: true,
			logg:     discardLogger(),
		})
		if err != nil {
			t.Fatalf("dynamic=%v: %v", dynamic, err)
		}
		if refresh == nil {
			t.Fatalf("dynamic=%v: nil refresh func", dynamic)
		}
		srv := httptest.NewServer(h)

		resp, err := http.Get(srv.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if resp.StatusCode != 200 || !strings.Contains(string(body), "Papers") {
			t.Errorf("dynamic=%v: / = %d %q", dynamic, resp.StatusCode, body)
		}
		if etag == "" {
			t.Fatalf("dynamic=%v: edge served no ETag", dynamic)
		}

		// Revalidation answers 304 with no body.
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
		req.Header.Set("If-None-Match", etag)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 304 || len(b) != 0 {
			t.Errorf("dynamic=%v: revalidation = %d (%d bytes), want 304 empty",
				dynamic, resp.StatusCode, len(b))
		}

		// Gzip negotiation round-trips to the same bytes. The default
		// transport would decode transparently; ask explicitly so the
		// Content-Encoding header stays visible.
		req, _ = http.NewRequest(http.MethodGet, srv.URL+"/", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wire, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		plain := wire
		if resp.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(strings.NewReader(string(wire)))
			if err != nil {
				t.Fatal(err)
			}
			if plain, err = io.ReadAll(zr); err != nil {
				t.Fatal(err)
			}
		}
		if string(plain) != string(body) {
			t.Errorf("dynamic=%v: gzip round-trip changed bytes", dynamic)
		}
		srv.Close()
	}
}
