// End-to-end tests for the serving observability surface: the full
// wiring from serve flags through serveHandler to /healthz, /readyz,
// /debug/ops and the `strudel top` dashboard, over a real site built
// from a real manifest.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel/internal/server"
	"strudel/internal/telemetry"
)

// syncBuffer serializes writes so the access log can be written from
// handler goroutines and read by the test under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func opsServer(t *testing.T, opts serveOptions) (*httptest.Server, func() error) {
	t.Helper()
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	h, refresh, err := serveHandler(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, refresh
}

func getStatus(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestServeOpsSurface drives the full flag surface (-metrics + -ops +
// -slo-target + -access-log) through a deterministic workload and
// checks the /debug/ops snapshot against exactly what was served.
func TestServeOpsSurface(t *testing.T) {
	accessLog := &syncBuffer{}
	reg := telemetry.NewRegistry()
	srv, _ := opsServer(t, serveOptions{
		dynamic:   true,
		reg:       reg,
		ops:       true,
		sloTarget: time.Second,
		accessLog: accessLog,
		logg:      discardLogger(),
	})

	workload := []struct {
		path string
		hits int
		code int
	}{
		{"/", 5, 200},
		{"/page/PaperPage%28p1%29", 3, 200},
		{"/nope.html", 2, 404},
	}
	total := 0
	for _, wl := range workload {
		for i := 0; i < wl.hits; i++ {
			code, _ := getStatus(t, srv, wl.path)
			if code != wl.code {
				t.Fatalf("GET %s = %d, want %d", wl.path, code, wl.code)
			}
			total++
		}
	}

	if code, body := getStatus(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := getStatus(t, srv, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", code, body)
	}

	code, body := getStatus(t, srv, "/debug/ops")
	if code != 200 {
		t.Fatalf("/debug/ops = %d %q", code, body)
	}
	var snap server.OpsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decoding ops snapshot: %v", err)
	}
	if snap.Mode != "dynamic" {
		t.Errorf("mode = %q", snap.Mode)
	}
	if !snap.Ready || snap.ReadyReason != "" {
		t.Errorf("ready = %v %q", snap.Ready, snap.ReadyReason)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", snap.UptimeSeconds)
	}

	// Accounting matches the workload exactly — the ops endpoints live
	// outside the instrumented chain, so observing does not perturb.
	if snap.Accounting == nil {
		t.Fatal("no accounting in snapshot")
	}
	if snap.Accounting.TotalHits != uint64(total) {
		t.Errorf("accounting total = %d, want %d", snap.Accounting.TotalHits, total)
	}
	byPath := map[string]server.PageStats{}
	for _, p := range snap.Accounting.Pages {
		byPath[p.Path] = p
	}
	for _, wl := range workload {
		path := wl.path
		if i := strings.Index(path, "%"); i >= 0 {
			// The server sees the decoded request path.
			path = "/page/PaperPage(p1)"
		}
		got, ok := byPath[path]
		if !ok {
			t.Errorf("no accounting row for %s (have %v)", path, snap.Accounting.Pages)
			continue
		}
		if got.Hits != uint64(wl.hits) {
			t.Errorf("%s hits = %d, want %d", path, got.Hits, wl.hits)
		}
		if got.LastStatus != wl.code {
			t.Errorf("%s last status = %d, want %d", path, got.LastStatus, wl.code)
		}
		if got.StalenessSeconds < 0 {
			t.Errorf("%s staleness = %v", path, got.StalenessSeconds)
		}
	}

	// SLO saw every request; 404s are not availability errors.
	if snap.SLO == nil {
		t.Fatal("no SLO in snapshot")
	}
	if snap.SLO.Total != uint64(total) || snap.SLO.Errors != 0 {
		t.Errorf("slo total/errors = %d/%d, want %d/0", snap.SLO.Total, snap.SLO.Errors, total)
	}
	if snap.Runtime == nil || snap.Runtime.Goroutines == 0 {
		t.Errorf("runtime sample missing: %+v", snap.Runtime)
	}
	if snap.Tracing == nil || snap.Tracing.Requests != uint64(total) {
		t.Errorf("tracing = %+v, want %d requests", snap.Tracing, total)
	}
	if snap.InFlight == nil {
		t.Error("in_flight should be [], not null")
	}

	// The access log carries one line per request with the slog schema.
	if got := strings.Count(accessLog.String(), "msg=access"); got != total {
		t.Errorf("access log lines = %d, want %d", got, total)
	}

	// The metrics registry gained build info, process start time and the
	// bounded accounting gauges — but no per-page labels.
	if code, body := getStatus(t, srv, "/metrics"); code != 200 {
		t.Errorf("/metrics = %d", code)
	} else {
		for _, want := range []string{
			"strudel_build_info{",
			"strudel_process_start_time_seconds",
			"strudel_page_hits_total",
			"strudel_page_accounting_pages",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
		if strings.Contains(body, "PaperPage") {
			t.Error("/metrics leaks per-page label cardinality")
		}
	}
}

// TestServeOpsWithoutMetrics: -ops alone spins up an internal registry
// for the gauges without mounting /metrics or the debug endpoints.
func TestServeOpsWithoutMetrics(t *testing.T) {
	srv, _ := opsServer(t, serveOptions{
		dynamic: true,
		ops:     true,
		logg:    discardLogger(),
	})
	getStatus(t, srv, "/")
	if code, _ := getStatus(t, srv, "/debug/ops"); code != 200 {
		t.Errorf("/debug/ops = %d", code)
	}
	if code, _ := getStatus(t, srv, "/metrics"); code == 200 {
		t.Error("/metrics should not be mounted without -metrics")
	}
	if code, _ := getStatus(t, srv, "/healthz"); code != 200 {
		t.Errorf("/healthz = %d", code)
	}
}

// TestServeReadyAfterDegradedRefresh: losing a source after a good
// build degrades (last-good data keeps serving) — readiness must NOT
// flip, per the resilience layer's serve-stale contract. The failed
// path (no last-good at all) is covered at the HTTP layer in
// internal/server with a real mediator report.
func TestServeReadyAfterDegradedRefresh(t *testing.T) {
	dir := writeTestSite(t)
	m, err := loadManifest(filepath.Join(dir, "site.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	h, refresh, err := serveHandler(m, serveOptions{dynamic: true, ops: true, logg: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := os.Remove(filepath.Join(dir, "refs.bib")); err != nil {
		t.Fatal(err)
	}
	if err := refresh(); err != nil {
		t.Fatalf("refresh after source loss: %v", err)
	}
	if code, body := getStatus(t, srv, "/readyz"); code != 200 {
		t.Errorf("/readyz after degraded refresh = %d %q (stale beats nothing)", code, body)
	}
	if code, _ := getStatus(t, srv, "/"); code != 200 {
		t.Errorf("site not serving after degraded refresh: %d", code)
	}
	code, body := getStatus(t, srv, "/debug/ops")
	if code != 200 {
		t.Fatalf("/debug/ops = %d", code)
	}
	var snap server.OpsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Ready {
		t.Errorf("ops snapshot not ready after degraded refresh: %q", snap.ReadyReason)
	}
}

// TestRunTopSingleShot renders one dashboard frame against a live
// serving process and checks the operator-facing text.
func TestRunTopSingleShot(t *testing.T) {
	srv, _ := opsServer(t, serveOptions{
		dynamic:   true,
		ops:       true,
		sloTarget: time.Second,
		logg:      discardLogger(),
	})
	for i := 0; i < 4; i++ {
		getStatus(t, srv, "/")
	}
	var out bytes.Buffer
	if err := runTop(&out, srv.URL, time.Millisecond, 1, 5); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	frame := out.String()
	for _, want := range []string{
		"strudel top", "mode dynamic", "ready",
		"slo", "objective 99.00%",
		"go ", "goroutines",
		"HITS", "PATH", "/",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("dashboard missing %q in:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\033[2J") {
		t.Error("single-shot frame should not clear the screen")
	}
	// Multi-frame runs clear between frames.
	out.Reset()
	if err := runTop(&out, srv.URL, time.Millisecond, 2, 5); err != nil {
		t.Fatalf("runTop -n 2: %v", err)
	}
	if got := strings.Count(out.String(), "\033[2J"); got != 2 {
		t.Errorf("clear sequences = %d, want 2", got)
	}
}

// TestFetchOpsErrors: hitting a server without -ops yields a
// diagnosable error, not a JSON panic.
func TestFetchOpsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	if _, err := fetchOps(client, srv.URL, 10); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("fetchOps against 404 = %v", err)
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>not json</html>")
	}))
	defer bad.Close()
	if _, err := fetchOps(client, bad.URL, 10); err == nil || !strings.Contains(err.Error(), "-ops") {
		t.Errorf("fetchOps against non-JSON = %v", err)
	}
}
