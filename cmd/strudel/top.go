// strudel top: a polling text dashboard over a serving process's
// /debug/ops snapshot — the operator's one-screen answer to "what is
// this site doing right now": readiness, SLO budget, runtime health,
// in-flight requests, and the hottest pages with their latency
// quantiles and staleness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"strudel/internal/ledger"
	"strudel/internal/server"
)

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	base := fs.String("url", "http://127.0.0.1:8080",
		"base URL of a `strudel serve -ops` process")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "number of polls (0 = until interrupted, 1 = single shot)")
	topK := fs.Int("top", 10, "page rows to show")
	fs.Parse(args)
	return runTop(os.Stdout, *base, *interval, *n, *topK)
}

// fetchOps pulls one snapshot from the serving process.
func fetchOps(client *http.Client, base string, topK int) (*server.OpsSnapshot, error) {
	url := strings.TrimRight(base, "/") + fmt.Sprintf("/debug/ops?top=%d", topK)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var snap server.OpsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding ops snapshot: %w (is the server running with -ops?)", err)
	}
	return &snap, nil
}

// runTop polls the ops snapshot n times (0 = forever) and renders the
// dashboard after each poll. Multi-poll runs clear the screen between
// frames; a single shot (-n 1) prints once, pipe-friendly.
func runTop(w io.Writer, base string, interval time.Duration, n, topK int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; n <= 0 || i < n; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := fetchOps(client, base, topK)
		if err != nil {
			return err
		}
		if n != 1 {
			fmt.Fprint(w, "\033[H\033[2J")
		}
		renderOps(w, snap, topK)
	}
	return nil
}

// renderOps writes one dashboard frame.
func renderOps(w io.Writer, snap *server.OpsSnapshot, topK int) {
	ready := "ready"
	if !snap.Ready {
		ready = "NOT READY: " + snap.ReadyReason
	}
	fmt.Fprintf(w, "strudel top — mode %s, up %s, %s\n",
		snap.Mode, time.Duration(snap.UptimeSeconds*float64(time.Second)).Round(time.Second), ready)

	if snap.BuildID != "" || snap.LastBuild != nil {
		fmt.Fprintf(w, "build  %s", snap.BuildID)
		var e ledger.Entry
		if snap.LastBuild != nil && json.Unmarshal(snap.LastBuild, &e) == nil {
			fmt.Fprintf(w, "  last cycle: %s/%s, %d/%d pages rendered (%d reused), %d etags churned, %.0fms",
				e.Trigger, e.Mode, e.Pages.Rendered, e.Pages.Total, e.Pages.Reused, e.ETagChurn, e.TotalMs)
			if e.Freshness != nil {
				fmt.Fprintf(w, ", propagated %.3fs", e.Freshness.PropagationSeconds)
			}
			if e.Err != "" {
				fmt.Fprintf(w, ", ERR %s", e.Err)
			}
		}
		fmt.Fprintln(w)
	}
	if es := snap.Edge; es != nil {
		fmt.Fprintf(w, "edge   %s: %d requests, %.1f%% hit (%d hot, %d 304), %d cold, %d not-found, %d errors; hot %d/%d pages, %d promotions, %d demotions\n",
			es.Mode, es.Requests, 100*es.HitRatio, es.HitsHot, es.Hits304,
			es.Cold, es.NotFound, es.Errors, es.HotPages, es.Capacity,
			es.Promotions, es.Demotions)
	}

	if s := snap.SLO; s != nil {
		fmt.Fprintf(w, "slo    target %s  objective %.2f%%  window %s: %d req, %.3f%% compliant, budget used %.1f%%, burn %.2fx\n",
			time.Duration(s.TargetSeconds*float64(time.Second)),
			100*s.Objective,
			time.Duration(s.WindowSeconds*float64(time.Second)),
			s.Total, 100*s.Compliance, 100*s.BudgetUsed, s.BurnRate)
	}
	if r := snap.Runtime; r != nil {
		fmt.Fprintf(w, "go     %d goroutines, heap %s (%d objects), %d GC cycles, last pause %s\n",
			r.Goroutines, fmtBytes(r.HeapAllocBytes), r.HeapObjects, r.GCCycles,
			time.Duration(r.LastGCPauseSeconds*float64(time.Second)).Round(time.Microsecond))
	}
	if t := snap.Tracing; t != nil {
		fmt.Fprintf(w, "traces %d requests seen, %d sampled, %d retained\n",
			t.Requests, t.Sampled, len(t.Recent))
	}
	fmt.Fprintf(w, "inflight %d", len(snap.InFlight))
	for i, r := range snap.InFlight {
		if i == 3 {
			fmt.Fprintf(w, "  …")
			break
		}
		fmt.Fprintf(w, "  %s %s (%.1fs)", r.Method, r.Path, r.AgeSeconds)
	}
	fmt.Fprintln(w)

	if a := snap.Accounting; a != nil {
		fmt.Fprintf(w, "\npages  %d tracked (cap %d), %d hits total, %d evictions — top %d by hits:\n",
			a.Tracked, a.Capacity, a.TotalHits, a.Evictions, topK)
		fmt.Fprintf(w, "%8s %5s %9s %9s %9s %9s %6s %8s  %s\n",
			"HITS", "ERR", "P50", "P99", "MEAN", "BYTES", "LAST", "AGE", "PATH")
		for _, p := range a.Pages {
			fmt.Fprintf(w, "%8d %5d %9s %9s %9s %9s %6d %8s  %s\n",
				p.Hits, p.Errors,
				fmtMs(p.P50Ms), fmtMs(p.P99Ms), fmtMs(p.MeanMs),
				fmtBytes(p.Bytes), p.LastStatus,
				(time.Duration(p.StalenessSeconds * float64(time.Second))).Round(time.Second),
				p.Path)
		}
	}
}

func fmtMs(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
