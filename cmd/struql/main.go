// Command struql evaluates a StruQL query against data files and
// prints the resulting graph.
//
// Usage:
//
//	struql -data graph.dd [-data more.dd] -query site.struql [-dot]
//	struql -data graph.dd -e 'WHERE Publications(x) COLLECT Out(x)'
//
// Data files are in STRUDEL's data-definition language; use the
// strudel command for wrapper-fed builds.
package main

import (
	"flag"
	"fmt"
	"os"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var dataFiles stringList
	flag.Var(&dataFiles, "data", "data-definition file (repeatable)")
	queryFile := flag.String("query", "", "file containing the StruQL query")
	queryText := flag.String("e", "", "inline StruQL query text")
	dot := flag.Bool("dot", false, "print the output graph in Graphviz DOT format")
	stats := flag.Bool("stats", false, "print only evaluation statistics")
	guide := flag.Bool("guide", false, "print the data graph's dataguide (graph schema) instead of running a query")
	flag.Parse()

	if *guide {
		if err := runGuide(dataFiles); err != nil {
			fmt.Fprintln(os.Stderr, "struql:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(dataFiles, *queryFile, *queryText, *dot, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "struql:", err)
		os.Exit(1)
	}
}

func run(dataFiles []string, queryFile, queryText string, dot, stats bool) error {
	if len(dataFiles) == 0 {
		return fmt.Errorf("at least one -data file is required")
	}
	g := graph.New("input")
	for _, f := range dataFiles {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if err := datadef.ParseInto(g, string(src)); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	switch {
	case queryFile != "":
		src, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryText = string(src)
	case queryText == "":
		return fmt.Errorf("one of -query or -e is required")
	}
	q, err := struql.Parse(queryText)
	if err != nil {
		return err
	}
	res, err := struql.Eval(q, g, nil)
	if err != nil {
		return err
	}
	switch {
	case stats:
		st := res.Output.Stats()
		fmt.Printf("bindings: %d\nnew nodes: %d\noutput: %d nodes, %d edges, %d collections\n",
			res.Bindings, res.NewNodes, st.Nodes, st.Edges, st.Collections)
	case dot:
		res.Output.DOT(os.Stdout)
	default:
		res.Output.Dump(os.Stdout)
	}
	return nil
}

// runGuide prints the dataguide (graph schema) of the data files: the
// label paths implicit in the data, with extent sizes. Useful while
// writing wrappers and site-definition queries against unfamiliar
// sources.
func runGuide(dataFiles []string) error {
	if len(dataFiles) == 0 {
		return fmt.Errorf("at least one -data file is required")
	}
	g := graph.New("input")
	for _, f := range dataFiles {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if err := datadef.ParseInto(g, string(src)); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	dg := schema.Extract(g)
	fmt.Println(dg.String())
	for _, p := range dg.Paths(4) {
		fmt.Printf("  %s\n", p)
	}
	return nil
}
