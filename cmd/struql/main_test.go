package main

import (
	"os"
	"path/filepath"
	"testing"
)

func dataFile(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.dd")
	content := `
collection Publications { }
object p1 in Publications { title "Alpha" year 1997 }
object p2 in Publications { title "Beta" year 1998 }
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInlineQuery(t *testing.T) {
	path := dataFile(t)
	err := run([]string{path}, "", `WHERE Publications(x), x -> "year" -> 1997 COLLECT Old(x)`, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// stats and dot modes also work.
	if err := run([]string{path}, "", `WHERE Publications(x) COLLECT C(x)`, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, "", `WHERE Publications(x) CREATE F(x) LINK F(x) -> "t" -> x`, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryFile(t *testing.T) {
	path := dataFile(t)
	qf := filepath.Join(t.TempDir(), "q.struql")
	os.WriteFile(qf, []byte(`WHERE Publications(x) COLLECT C(x)`), 0o644)
	if err := run([]string{path}, qf, "", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := dataFile(t)
	if err := run(nil, "", "x", false, false); err == nil {
		t.Error("no data files should fail")
	}
	if err := run([]string{path}, "", "", false, false); err == nil {
		t.Error("no query should fail")
	}
	if err := run([]string{path}, "", `WHERE (((`, false, false); err == nil {
		t.Error("bad query should fail")
	}
	if err := run([]string{"/nonexistent"}, "", "x", false, false); err == nil {
		t.Error("missing data file should fail")
	}
	if err := run([]string{path}, "/nonexistent", "", false, false); err == nil {
		t.Error("missing query file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.dd")
	os.WriteFile(bad, []byte("not valid datadef ((("), 0o644)
	if err := run([]string{bad}, "", "x", false, false); err == nil {
		t.Error("bad data file should fail")
	}
}

func TestRunGuide(t *testing.T) {
	path := dataFile(t)
	if err := runGuide([]string{path}); err != nil {
		t.Fatal(err)
	}
	if err := runGuide(nil); err == nil {
		t.Error("no data files should fail")
	}
	if err := runGuide([]string{"/nonexistent"}); err == nil {
		t.Error("missing file should fail")
	}
}
