package strudel_test

// Crash-safety sweep over whole example sites: publication of a new
// site version is interrupted at every single filesystem operation,
// recovery runs, and the site that comes back up must be byte-identical
// to exactly the old version or the new one — never a mix, never torn.
// This is the headline test of the atomic-publication layer; it runs
// under -race via the Makefile's crash target.

import (
	"strings"
	"testing"
	"time"

	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/publish"
	"strudel/internal/sitegen"
	"strudel/internal/workload"
)

// buildSite materializes one version of a workload site.
func buildSite(t *testing.T, spec *workload.SiteSpec, data *graph.Graph) *sitegen.Site {
	t.Helper()
	b := specBuilder(spec)(t)
	b.SetDataGraph(data)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return res.Site
}

// pagesOf flattens a site to path -> HTML for byte comparison.
func pagesOf(s *sitegen.Site) map[string]string {
	m := make(map[string]string, len(s.Pages))
	for path, p := range s.Pages {
		m[path] = p.HTML
	}
	return m
}

func sameSite(a map[string]string, b *sitegen.Site) bool {
	if len(a) != len(b.Pages) {
		return false
	}
	for path, html := range a {
		p, ok := b.Pages[path]
		if !ok || p.HTML != html {
			return false
		}
	}
	return true
}

// TestPublishCrashSweepExampleSites runs the sweep over two example
// sites from the paper: the Sec. 3.1 bibliography homepage and the
// CNN-style article site. Version 2 of each site differs from version 1
// in all three ways a rebuild can differ: changed pages, added pages,
// and removed pages (the data shrinks for the bibliography and grows
// for the articles).
func TestPublishCrashSweepExampleSites(t *testing.T) {
	cases := []struct {
		name string
		spec *workload.SiteSpec
		v1   *graph.Graph
		v2   *graph.Graph
	}{
		{"homepage", workload.BibliographySpec(), workload.Bibliography(6, 1), workload.Bibliography(4, 2)},
		{"cnn", workload.ArticleSpec(false), workload.Articles(8, 1997), workload.Articles(10, 1998)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			old := buildSite(t, tc.spec, tc.v1)
			new_ := buildSite(t, tc.spec, tc.v2)
			oldPages, newPages := pagesOf(old), pagesOf(new_)
			if len(oldPages) < 2 || len(newPages) < 2 {
				t.Fatalf("sites too small for a meaningful sweep: %d and %d pages",
					len(oldPages), len(newPages))
			}

			// Probe the op count of an uninterrupted v1 -> v2 publish.
			probeDir := t.TempDir()
			if _, err := publish.New(fsx.OS, probeDir, 2).PublishSite(old, "v1", time.Time{}); err != nil {
				t.Fatal(err)
			}
			probe := fsx.NewFaultFS(fsx.OS)
			if _, err := publish.New(probe, probeDir, 2).PublishSite(new_, "v2", time.Time{}); err != nil {
				t.Fatal(err)
			}
			total := probe.Ops()
			// At minimum: write + fsync per page, plus the manifest,
			// the generation rename, and the CURRENT flip.
			if total < 2*len(newPages)+5 {
				t.Fatalf("suspiciously few ops (%d) for %d pages; fsync discipline gone?",
					total, len(newPages))
			}

			for k := 0; k <= total; k++ {
				dir := t.TempDir()
				if _, err := publish.New(fsx.OS, dir, 2).PublishSite(old, "v1", time.Time{}); err != nil {
					t.Fatal(err)
				}
				fault := fsx.NewFaultFS(fsx.OS)
				fault.CrashAt(k)
				// The publish may report success (writes silently
				// dropped past the crash point); the recovered state is
				// what matters.
				publish.New(fault, dir, 2).PublishSite(new_, "v2", time.Time{})

				if _, err := publish.Recover(fsx.OS, dir); err != nil {
					t.Fatalf("crash at op %d: Recover: %v\njournal:\n%s",
						k, err, strings.Join(fault.Journal(), "\n"))
				}
				got, man, err := publish.OpenSite(fsx.OS, dir)
				if err != nil {
					t.Fatalf("crash at op %d: OpenSite: %v\njournal:\n%s",
						k, err, strings.Join(fault.Journal(), "\n"))
				}
				isOld, isNew := sameSite(oldPages, got), sameSite(newPages, got)
				if !isOld && !isNew {
					t.Fatalf("crash at op %d: recovered site (%d pages, build %s) is neither v1 nor v2\njournal:\n%s",
						k, len(got.Pages), man.BuildID, strings.Join(fault.Journal(), "\n"))
				}
				rep, err := publish.Verify(fsx.OS, dir)
				if err != nil {
					t.Fatalf("crash at op %d: Verify: %v", k, err)
				}
				if !rep.OK() {
					t.Fatalf("crash at op %d: recovered dir does not verify:\n%s", k, rep.Summary())
				}
			}
		})
	}
}
