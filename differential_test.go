package strudel_test

// Differential tests of incremental site maintenance: for every
// example site, apply a deterministic random edit script to the data,
// rebuild incrementally against the previous result, and require the
// outcome to be byte-identical to a from-scratch build over the same
// edited data — at worker counts 1, 4, and 16, with the same bytes at
// every count. Chained rounds make each delta rebuild the baseline of
// the next.

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/workload"
)

const diffRounds = 3

// selectiveRounds counts rounds across the whole suite where the delta
// pipeline actually reused pages, so the suite fails if incremental
// rebuilds silently degrade to always-full.
var selectiveRounds int

// mutateBib applies a burst of random edits to a bibliography-shaped
// graph: retitles, added and dropped edges, new publications, removed
// publications. Only deterministic graph accessors are used, so the
// same seed replays the identical script on a structurally identical
// graph.
func mutateBib(t *testing.T, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	for k := 0; k < 6; k++ {
		pubs := g.Collection("Publications")
		if len(pubs) == 0 {
			break
		}
		oid := pubs[rng.Intn(len(pubs))].OID()
		switch rng.Intn(5) {
		case 0: // retitle
			if old, ok := g.First(oid, "title"); ok {
				g.RemoveEdge(oid, "title", old)
			}
			if err := g.AddEdge(oid, "title", graph.Str(fmt.Sprintf("Edited title %d", rng.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
		case 1: // extra category
			if err := g.AddEdge(oid, "category", graph.Str(fmt.Sprintf("Topic %d", rng.Intn(5)))); err != nil {
				t.Fatal(err)
			}
		case 2: // drop a random attribute edge
			out := g.Out(oid)
			if len(out) > 1 {
				e := out[rng.Intn(len(out))]
				g.RemoveEdge(oid, e.Label, e.To)
			}
		case 3: // brand-new publication
			name := fmt.Sprintf("pub_new%d", rng.Int63())
			id := g.NewNode(name)
			g.AddToCollection("Publications", graph.NodeValue(id))
			if err := g.AddEdge(id, "title", graph.Str(fmt.Sprintf("New work %d", rng.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
			g.AddEdge(id, "author", graph.Str("Ann Author"))
			g.AddEdge(id, "year", graph.Int(int64(1990+rng.Intn(8))))
			g.AddEdge(id, "category", graph.Str(fmt.Sprintf("Topic %d", rng.Intn(5))))
		case 4: // remove a publication outright
			if len(pubs) > 3 {
				g.RemoveNode(oid)
			}
		}
	}
}

// mutateArticles edits a CNN-shaped corpus: retitles, section moves,
// related-link churn, added and removed articles.
func mutateArticles(t *testing.T, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	for k := 0; k < 6; k++ {
		arts := g.Collection("Articles")
		if len(arts) == 0 {
			break
		}
		v := arts[rng.Intn(len(arts))]
		oid := v.OID()
		switch rng.Intn(5) {
		case 0: // retitle
			if old, ok := g.First(oid, "title"); ok {
				g.RemoveEdge(oid, "title", old)
			}
			if err := g.AddEdge(oid, "title", graph.Str(fmt.Sprintf("Breaking %d", rng.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
		case 1: // extra section
			if err := g.AddEdge(oid, "section", graph.Str(workload.Sections[rng.Intn(len(workload.Sections))])); err != nil {
				t.Fatal(err)
			}
		case 2: // related-link churn
			other := arts[rng.Intn(len(arts))]
			if other != v {
				g.AddEdge(oid, "related", other)
			}
		case 3: // new article
			name := fmt.Sprintf("art_new%d", rng.Int63())
			id := g.NewNode(name)
			g.AddToCollection("Articles", graph.NodeValue(id))
			if err := g.AddEdge(id, "title", graph.Str(fmt.Sprintf("Story %d", rng.Intn(1000)))); err != nil {
				t.Fatal(err)
			}
			g.AddEdge(id, "byline", graph.Str("Ann Author"))
			g.AddEdge(id, "date", graph.Str("1997-06-15"))
			g.AddEdge(id, "section", graph.Str(workload.Sections[rng.Intn(len(workload.Sections))]))
			g.AddEdge(id, "body", graph.Str(fmt.Sprintf("Body text %d.", rng.Intn(1000))))
		case 4: // remove an article
			if len(arts) > 3 {
				g.RemoveNode(oid)
			}
		}
	}
}

// comparePages requires two generated sites to agree byte for byte.
func comparePages(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if len(got.Site.Pages) != len(want.Site.Pages) {
		t.Fatalf("%s: delta rebuild has %d pages, scratch build %d", label, len(got.Site.Pages), len(want.Site.Pages))
	}
	for path, wp := range want.Site.Pages {
		gp := got.Site.Pages[path]
		if gp == nil {
			t.Errorf("%s: page %s missing after delta rebuild", label, path)
			continue
		}
		if gp.HTML != wp.HTML {
			t.Errorf("%s: page %s differs between delta rebuild and scratch build", label, path)
		}
	}
	if g, w := got.SiteGraph.DumpString(), want.SiteGraph.DumpString(); g != w {
		t.Errorf("%s: site-graph dump differs between delta rebuild and scratch build", label)
	}
}

// siteDigest hashes a site's pages so runs at different worker counts
// can be compared byte for byte.
func siteDigest(res *core.Result) string {
	paths := make([]string, 0, len(res.Site.Pages))
	for p := range res.Site.Pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		fmt.Fprintf(h, "%s\x00%s\x00", p, res.Site.Pages[p].HTML)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runGraphDifferential drives chained edit-and-rebuild rounds for a
// site whose data is an explicit graph: mkBuilder configures queries
// and templates, fresh regenerates the pristine data (same bytes every
// call), mutate applies one seeded edit burst. Returns the digest of
// the final site for cross-worker comparison.
func runGraphDifferential(t *testing.T, mkBuilder func(t *testing.T) *core.Builder,
	fresh func() *graph.Graph, mutate func(*testing.T, *graph.Graph, *rand.Rand),
	workers int, seed0 int64) string {
	t.Helper()
	cur := fresh()
	b := mkBuilder(t)
	b.SetWorkers(workers)
	b.SetDataGraph(cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// old mirrors cur one edit round behind, giving Diff its baseline.
	old := fresh()
	var digest string
	for round := 0; round < diffRounds; round++ {
		seed := seed0 + int64(round)
		mutate(t, cur, rand.New(rand.NewSource(seed)))
		delta := graph.Diff(old, cur)
		res, err := b.RebuildWithDelta(prev, delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Incremental == nil {
			t.Fatalf("round %d: rebuild reported no incremental info", round)
		}
		if st := res.Incremental.Site; st != nil && st.Reused > 0 && !st.Full {
			selectiveRounds++
		}
		mutate(t, old, rand.New(rand.NewSource(seed)))

		// From-scratch reference: pristine data with every edit round so
		// far replayed, built by a fresh builder.
		sdata := fresh()
		for r := 0; r <= round; r++ {
			mutate(t, sdata, rand.New(rand.NewSource(seed0+int64(r))))
		}
		sb := mkBuilder(t)
		sb.SetWorkers(workers)
		sb.SetDataGraph(sdata)
		want, err := sb.Build()
		if err != nil {
			t.Fatalf("round %d scratch build: %v", round, err)
		}
		comparePages(t, fmt.Sprintf("round %d", round), res, want)
		prev = res
		digest = siteDigest(res)
	}
	return digest
}

func specBuilder(spec *workload.SiteSpec) func(t *testing.T) *core.Builder {
	return func(t *testing.T) *core.Builder {
		t.Helper()
		b := core.NewBuilder(spec.Name)
		if err := b.AddQuery(spec.Query); err != nil {
			t.Fatal(err)
		}
		b.AddTemplates(spec.Templates)
		for fn := range spec.EmbedOnly {
			b.SetEmbedOnly(fn)
		}
		b.SetIndex(spec.Index)
		b.SetRootCollection(spec.RootCollection)
		return b
	}
}

// Homepage site: the Sec. 5.1 mff example — a person object plus a
// publication list, defined by an inline query.
const homepageDiffQuery = `INPUT BIBTEX
CREATE HomePage(), PubsPage()
LINK HomePage() -> "Publications" -> PubsPage()
COLLECT Roots(HomePage())
WHERE People(p), p -> a -> v
LINK HomePage() -> a -> v
WHERE Publications(x), x -> l -> w
CREATE Pub(x)
LINK Pub(x) -> l -> w,
     PubsPage() -> "Paper" -> Pub(x)
OUTPUT Homepage`

func homepageDiffBuilder(t *testing.T) *core.Builder {
	t.Helper()
	b := core.NewBuilder("homepage-diff")
	if err := b.AddQuery(homepageDiffQuery); err != nil {
		t.Fatal(err)
	}
	for key, src := range map[string]string{
		"HomePage": `<html><body><h1><SFMT name></h1>
<h3>Activities</h3><SFMT_UL activity>
<p><SFMT Publications LINK="Publications"></p>
</body></html>`,
		"PubsPage": `<html><body><h1>Publications</h1><SFMT_UL Paper EMBED></body></html>`,
		"Pub":      `<SFMT title>. <SFMT author DELIM=", ">, <SFMT year>.`,
	} {
		if err := b.AddTemplate(key, src); err != nil {
			t.Fatal(err)
		}
	}
	b.SetEmbedOnly("Pub")
	b.SetIndex("HomePage")
	b.SetRootCollection("Roots")
	return b
}

func homepageDiffData() *graph.Graph {
	g := workload.Bibliography(12, 5)
	mff := g.NewNode("mff")
	g.AddToCollection("People", graph.NodeValue(mff))
	g.AddEdge(mff, "name", graph.Str("Mary Fernandez"))
	g.AddEdge(mff, "activity", graph.Str("PC member, SIGMOD 1999"))
	g.AddEdge(mff, "activity", graph.Str("Editor, SIGMOD Record"))
	return g
}

func mutateHomepage(t *testing.T, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	mutateBib(t, g, rng)
	if mff, ok := g.NodeByName("mff"); ok && rng.Intn(2) == 0 {
		if err := g.AddEdge(mff, "activity", graph.Str(fmt.Sprintf("Talk %d", rng.Intn(1000)))); err != nil {
			t.Fatal(err)
		}
	}
}

// Textonly site: the paper's Sec. 3 transformation as a core site —
// its wildcard path and negation force the conservative (full) side of
// the impact analysis, so the differential property is exercised there
// too.
const textonlyDiffQuery = `INPUT Site
WHERE Root(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
CREATE New(p), New(q), New(q2)
LINK New(q) -> l -> New(q2)
COLLECT TextOnlyRoot(New(p))
OUTPUT TextOnly`

func textonlyDiffBuilder(t *testing.T) *core.Builder {
	t.Helper()
	b := core.NewBuilder("textonly-diff")
	if err := b.AddQuery(textonlyDiffQuery); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTemplate("New", `<html><body><h1><SFMT title></h1><SFMT_UL story></body></html>`); err != nil {
		t.Fatal(err)
	}
	b.SetRootCollection("TextOnlyRoot")
	return b
}

func textonlyDiffData() *graph.Graph {
	g := workload.Articles(14, 3)
	front := g.NewNode("front")
	g.AddToCollection("Root", graph.NodeValue(front))
	for _, a := range g.Collection("Articles") {
		g.AddEdge(front, "story", a)
	}
	return g
}

func mutateTextonly(t *testing.T, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	mutateArticles(t, g, rng)
	// Keep newly added articles reachable from the root.
	front, ok := g.NodeByName("front")
	if !ok {
		t.Fatal("front node missing")
	}
	for _, a := range g.Collection("Articles") {
		g.AddEdge(front, "story", a)
	}
}

// mutatePeopleCSV edits the organization's people table in place:
// renames, new hires, departures. Deterministic for a given seed.
func mutatePeopleCSV(s string, rng *rand.Rand) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for k := 0; k < 3; k++ {
		switch rng.Intn(3) {
		case 0: // rename
			if len(lines) > 1 {
				i := 1 + rng.Intn(len(lines)-1)
				f := strings.Split(lines[i], ",")
				f[2] = fmt.Sprintf("Edited Person %d", rng.Intn(1000))
				lines[i] = strings.Join(f, ",")
			}
		case 1: // new hire
			id := fmt.Sprintf("px%d", rng.Int63())
			lines = append(lines, fmt.Sprintf("%s,%s,New Hire %d,973-360-0000,B-001,dept0,", id, id, rng.Intn(1000)))
		case 2: // departure
			if len(lines) > 4 {
				i := 1 + rng.Intn(len(lines)-1)
				lines = append(lines[:i:i], lines[i+1:]...)
			}
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// orgDiffBuilder wires the five organization sources; people supplies
// the (mutable) people table so refreshes observe edits.
func orgDiffBuilder(t *testing.T, src *workload.OrgSources, people func() (string, error)) *core.Builder {
	t.Helper()
	spec := workload.OrgSpec(false)
	b := core.NewBuilder(spec.Name)
	if err := b.AddSourceFunc("people.csv", "csv", people); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("departments.csv", "csv", src.DepartmentsCSV); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("projects.txt", "structured", src.ProjectsTxt); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("refs.bib", "bibtex", src.BibTeX); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetIndex(spec.Index)
	b.SetRootCollection(spec.RootCollection)
	return b
}

// runOrgDifferential drives the mediated path: edits flow through the
// wrapper and GAV mapping, and the mediator's warehouse delta — not a
// caller-computed diff — keys the incremental rebuild.
func runOrgDifferential(t *testing.T, workers int) string {
	t.Helper()
	src := workload.Organization(30, 8, 3, 7)
	people := src.PeopleCSV
	b := orgDiffBuilder(t, src, func() (string, error) { return people, nil })
	b.SetWorkers(workers)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// An untouched source refreshes to a noop.
	res, err := b.Rebuild(prev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil || res.Incremental.Mode != "noop" {
		t.Fatalf("unchanged sources: rebuild mode %v, want noop", res.Incremental)
	}
	prev = res

	var digest string
	for round := 0; round < diffRounds; round++ {
		people = mutatePeopleCSV(people, rand.New(rand.NewSource(900+int64(round))))
		res, err := b.Rebuild(prev)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Incremental == nil {
			t.Fatalf("round %d: no incremental info", round)
		}
		if st := res.Incremental.Site; st != nil && st.Reused > 0 && !st.Full {
			selectiveRounds++
		}
		snapshot := people
		sb := orgDiffBuilder(t, src, func() (string, error) { return snapshot, nil })
		sb.SetWorkers(workers)
		want, err := sb.Build()
		if err != nil {
			t.Fatalf("round %d scratch build: %v", round, err)
		}
		comparePages(t, fmt.Sprintf("round %d", round), res, want)
		prev = res
		digest = siteDigest(res)
	}
	return digest
}

// TestDifferentialDeltaRebuilds is the differential suite over all
// five example sites at worker counts 1, 4, and 16: random edit
// scripts, chained delta rebuilds, byte-identical to from-scratch, and
// byte-identical across worker counts.
func TestDifferentialDeltaRebuilds(t *testing.T) {
	digests := map[string]string{}
	check := func(t *testing.T, site string, workers int, digest string) {
		t.Helper()
		if workers == 1 {
			digests[site] = digest
		} else if want := digests[site]; want != "" && digest != want {
			t.Errorf("%s: final site at workers=%d differs from workers=1", site, workers)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Run("bibliography", func(t *testing.T) {
				d := runGraphDifferential(t, specBuilder(workload.BibliographySpec()),
					func() *graph.Graph { return workload.Bibliography(18, 42) }, mutateBib, workers, 100)
				check(t, "bibliography", workers, d)
			})
			t.Run("cnn", func(t *testing.T) {
				d := runGraphDifferential(t, specBuilder(workload.ArticleSpec(false)),
					func() *graph.Graph { return workload.Articles(20, 11) }, mutateArticles, workers, 200)
				check(t, "cnn", workers, d)
			})
			t.Run("homepage", func(t *testing.T) {
				d := runGraphDifferential(t, homepageDiffBuilder, homepageDiffData, mutateHomepage, workers, 300)
				check(t, "homepage", workers, d)
			})
			t.Run("textonly", func(t *testing.T) {
				d := runGraphDifferential(t, textonlyDiffBuilder, textonlyDiffData, mutateTextonly, workers, 400)
				check(t, "textonly", workers, d)
			})
			t.Run("orgsite", func(t *testing.T) {
				d := runOrgDifferential(t, workers)
				check(t, "orgsite", workers, d)
			})
		})
	}
	if selectiveRounds == 0 {
		t.Error("no differential round reused any page — incremental rebuilds degraded to always-full")
	}
}
