// Package strudel is a Go reproduction of "STRUDEL: A Web-site
// Management System" (Fernandez, Florescu, Kang, Levy, Suciu — SIGMOD
// 1997 demo; overview paper 1998). STRUDEL applies database concepts
// to Web-site construction by separating three tasks: managing the
// site's data (wrappers + mediator + semistructured repository),
// managing its structure (declarative StruQL site-definition queries
// producing a site graph), and the visual presentation of its pages
// (an HTML-template language interpreted by the HTML generator).
//
// The implementation lives under internal/:
//
//	graph        labeled-directed-graph data model (OEM-style)
//	datadef      the data-definition exchange language (Fig. 2)
//	repository   schema-less store with full schema+data indexing
//	struql       the StruQL language: parser, two-stage evaluator
//	optimizer    heuristic + cost-based query planning over indexes
//	mediator     GAV source integration, warehousing
//	wrapper      BibTeX / CSV / structured-file / HTML wrappers
//	template     the HTML-template language (SFMT, SIF, SFOR)
//	sitegen      the HTML generator (site graph + templates → pages)
//	schema       site schemas (Fig. 5) + integrity-constraint checking
//	incremental  query decomposition and click-time page evaluation
//	server       static and dynamic HTTP serving
//	baseline     procedural and relational comparison systems
//	workload     synthetic data generators and shared site specs
//	core         the end-to-end builder API
//
// Executables: cmd/strudel (manifest-driven builds and serving),
// cmd/struql (query runner), cmd/siteschema (schema viewer/verifier),
// cmd/experiments (regenerates every table and figure of the paper's
// evaluation; see EXPERIMENTS.md).
package strudel
