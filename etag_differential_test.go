package strudel_test

// Differential tests of provenance-keyed ETags: tags must be
// byte-identical across worker counts and between from-scratch and
// delta rebuilds of equal content, and a one-object data edit must
// change exactly the tags of pages whose provenance closure the edit
// reaches — verified both structurally (against an independently
// computed closure digest) and behaviorally (revalidating every page
// through a serving edge across the swap: untouched pages answer 304).

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/server"
	"strudel/internal/workload"
)

// etagMap collects path → ETag for every page of a build.
func etagMap(t *testing.T, res *core.Result) map[string]string {
	t.Helper()
	m := make(map[string]string, len(res.Site.Pages))
	for path, p := range res.Site.Pages {
		if p.ETag == "" {
			t.Fatalf("page %s has no ETag", path)
		}
		if !strings.HasPrefix(p.ETag, `"`) || strings.HasPrefix(p.ETag, "W/") {
			t.Fatalf("page %s has a weak or malformed ETag %q", path, p.ETag)
		}
		m[path] = p.ETag
	}
	return m
}

// closureDigest serializes a page's provenance closure — every site
// object reachable from it, with names and sorted outgoing edges —
// independently of the etagger's encoding, so the two can disagree.
func closureDigest(res *core.Result, path string) string {
	p := res.Site.Pages[path]
	g := res.SiteGraph
	var lines []string
	for oid := range g.Reachable(p.OID) {
		var edges []string
		for _, e := range g.Out(oid) {
			to := e.To.String()
			if e.To.IsNode() {
				to = "@" + g.NodeName(e.To.OID())
			}
			edges = append(edges, e.Label+"->"+to)
		}
		sort.Strings(edges)
		lines = append(lines, g.NodeName(oid)+"{"+strings.Join(edges, ";")+"}")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func etagBibBuilder(t *testing.T, workers int, data *graph.Graph) *core.Builder {
	t.Helper()
	b := specBuilder(workload.BibliographySpec())(t)
	b.SetWorkers(workers)
	b.SetDataGraph(data)
	return b
}

// TestETagWorkerInvariance: the same data yields byte-identical ETags
// at workers 1, 4, and 16.
func TestETagWorkerInvariance(t *testing.T) {
	var base map[string]string
	for _, workers := range []int{1, 4, 16} {
		res, err := etagBibBuilder(t, workers, workload.Bibliography(18, 42)).Build()
		if err != nil {
			t.Fatal(err)
		}
		m := etagMap(t, res)
		if base == nil {
			base = m
			if len(base) < 4 {
				t.Fatalf("suspiciously small site: %d pages", len(base))
			}
			continue
		}
		if len(m) != len(base) {
			t.Fatalf("workers=%d: %d pages, want %d", workers, len(m), len(base))
		}
		for path, tag := range base {
			if m[path] != tag {
				t.Errorf("workers=%d: page %s ETag %q, want %q", workers, path, m[path], tag)
			}
		}
	}
}

// TestETagDeltaEqualsScratch: chained delta rebuilds assign every page
// the same ETag a from-scratch build of the same edited data assigns —
// including reused pages, whose tags are carried, not recomputed.
func TestETagDeltaEqualsScratch(t *testing.T) {
	fresh := func() *graph.Graph { return workload.Bibliography(18, 42) }
	cur, old := fresh(), fresh()
	b := etagBibBuilder(t, 4, cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < diffRounds; round++ {
		seed := int64(700 + round)
		mutateBib(t, cur, rand.New(rand.NewSource(seed)))
		res, err := b.RebuildWithDelta(prev, graph.Diff(old, cur))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		mutateBib(t, old, rand.New(rand.NewSource(seed)))

		sdata := fresh()
		for r := 0; r <= round; r++ {
			mutateBib(t, sdata, rand.New(rand.NewSource(700+int64(r))))
		}
		want, err := etagBibBuilder(t, 4, sdata).Build()
		if err != nil {
			t.Fatalf("round %d scratch: %v", round, err)
		}
		got, exp := etagMap(t, res), etagMap(t, want)
		if len(got) != len(exp) {
			t.Fatalf("round %d: %d pages vs scratch %d", round, len(got), len(exp))
		}
		for path, tag := range exp {
			if got[path] != tag {
				t.Errorf("round %d: page %s delta ETag %q != scratch %q", round, path, got[path], tag)
			}
		}
		prev = res
	}
}

// TestETagExactInvalidation: retitling one publication changes the
// ETag of exactly the pages whose provenance closure reaches that
// object — checked structurally against an independent closure digest,
// then behaviorally by revalidating every page through a serving edge
// across the SetSource swap.
func TestETagExactInvalidation(t *testing.T) {
	cur := workload.Bibliography(18, 42)
	old := workload.Bibliography(18, 42)
	b := etagBibBuilder(t, 4, cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prevTags := etagMap(t, prev)
	prevDigests := map[string]string{}
	for path := range prev.Site.Pages {
		prevDigests[path] = closureDigest(prev, path)
	}

	// Serve the first build and validate every page once.
	edge := server.NewEdge(server.NewSiteSource(prev.Site), server.EdgeConfig{Mode: "static"})
	for path, tag := range prevTags {
		req := httptest.NewRequest(http.MethodGet, "/"+path, nil)
		rec := httptest.NewRecorder()
		edge.ServeHTTP(rec, req)
		if rec.Code != 200 || rec.Header().Get("ETag") != tag {
			t.Fatalf("GET /%s = %d etag %q, want 200 %q", path, rec.Code, rec.Header().Get("ETag"), tag)
		}
	}

	// One-object edit: retitle a single publication in both replicas.
	retitle := func(g *graph.Graph) {
		pubs := g.Collection("Publications")
		sort.Slice(pubs, func(i, j int) bool {
			return g.NodeName(pubs[i].OID()) < g.NodeName(pubs[j].OID())
		})
		oid := pubs[0].OID()
		if v, ok := g.First(oid, "title"); ok {
			g.RemoveEdge(oid, "title", v)
		}
		if err := g.AddEdge(oid, "title", graph.Str("A Retitled Work")); err != nil {
			t.Fatal(err)
		}
	}
	retitle(cur)
	res, err := b.RebuildWithDelta(prev, graph.Diff(old, cur))
	if err != nil {
		t.Fatal(err)
	}
	newTags := etagMap(t, res)
	if len(newTags) != len(prevTags) {
		t.Fatalf("page set changed under a retitle: %d -> %d", len(prevTags), len(newTags))
	}

	// Structural check: tag changed iff the closure digest or the body
	// changed — and the closure direction must agree exactly.
	changed, unchanged := 0, 0
	for path, tag := range newTags {
		tagChanged := tag != prevTags[path]
		closureChanged := closureDigest(res, path) != prevDigests[path] ||
			res.Site.Pages[path].HTML != prev.Site.Pages[path].HTML
		if tagChanged != closureChanged {
			t.Errorf("page %s: ETag changed=%v but closure/body changed=%v", path, tagChanged, closureChanged)
		}
		if tagChanged {
			changed++
		} else {
			unchanged++
		}
	}
	if changed == 0 || unchanged == 0 {
		t.Fatalf("degenerate edit: %d changed, %d unchanged — test proves nothing", changed, unchanged)
	}

	// Behavioral check: swap the edge to the new build and revalidate
	// every page with its old tag. Untouched closures answer 304;
	// touched ones serve fresh bytes under the new tag.
	edge.SetSource(server.NewSiteSource(res.Site))
	for path, oldTag := range prevTags {
		req := httptest.NewRequest(http.MethodGet, "/"+path, nil)
		req.Header.Set("If-None-Match", oldTag)
		rec := httptest.NewRecorder()
		edge.ServeHTTP(rec, req)
		if newTags[path] == oldTag {
			if rec.Code != 304 {
				t.Errorf("unchanged page %s: revalidation = %d, want 304", path, rec.Code)
			}
		} else {
			if rec.Code != 200 {
				t.Errorf("changed page %s: revalidation = %d, want 200", path, rec.Code)
				continue
			}
			if got := rec.Header().Get("ETag"); got != newTags[path] {
				t.Errorf("changed page %s: served tag %q, want %q", path, got, newTags[path])
			}
			if body := rec.Body.String(); body != res.Site.Pages[path].HTML {
				t.Errorf("changed page %s: stale bytes served", path)
			}
		}
	}
	t.Logf("exact invalidation: %d/%d pages invalidated by a one-object retitle", changed, len(newTags))
}
