// CNN reproduces the paper's demonstration site (Sec. 5.1): a news
// site over ~300 articles, plus the "sports only" site generated from
// the same database — the sports query differs from the original in
// two extra predicates in one where clause, and the two sites share
// the same HTML templates.
//
// Run: go run ./examples/cnn [outdir]
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/workload"
)

func main() {
	outDir := "cnn-site"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := run(outDir); err != nil {
		fmt.Fprintln(os.Stderr, "cnn:", err)
		os.Exit(1)
	}
}

// buildSite builds the news site (or its sports-only variant) with the
// given build parallelism (0 = one worker per CPU). The result is
// byte-identical at any worker count.
func buildSite(data *graph.Graph, sportsOnly bool, workers int) (*core.Result, error) {
	spec := workload.ArticleSpec(sportsOnly)
	b := core.NewBuilder(spec.Name)
	b.SetDataGraph(data)
	if err := b.AddQuery(spec.Query); err != nil {
		return nil, err
	}
	b.AddTemplates(spec.Templates)
	b.SetIndex(spec.Index)
	b.AddConstraint(schema.Reachable{Root: spec.Root})
	b.AddConstraint(schema.MustLink{From: "SectionPage", Label: "Story", To: "ArticlePage"})
	b.SetWorkers(workers)
	return b.Build()
}

func run(outDir string) error {
	data := workload.Articles(300, 1997)
	for _, sportsOnly := range []bool{false, true} {
		spec := workload.ArticleSpec(sportsOnly)
		res, err := buildSite(data, sportsOnly, 0)
		if err != nil {
			return err
		}
		dir := filepath.Join(outDir, spec.Name)
		if err := res.Site.WriteTo(dir); err != nil {
			return err
		}
		fmt.Printf("%-11s %4d pages, site graph %5d nodes / %5d edges -> %s\n",
			spec.Name+":", res.Stats.Pages, res.Stats.SiteNodes, res.Stats.SiteEdges, dir)
		for _, v := range res.Violations {
			fmt.Println("  constraint violation:", v)
		}
	}
	fmt.Println("\nThe sports-only query adds exactly two predicates to one where")
	fmt.Println("clause of the original; both sites use the same templates.")
	return nil
}
