package main

import (
	"testing"

	"strudel/internal/workload"
)

// TestBuildDeterministicAcrossWorkers: the news site and its
// sports-only variant render byte-identically at workers 1, 4 and 16.
// The corpus is kept small so the suite stays brisk under -race.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	data := workload.Articles(60, 1997)
	for _, sportsOnly := range []bool{false, true} {
		base, err := buildSite(data, sportsOnly, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 16} {
			res, err := buildSite(data, sportsOnly, w)
			if err != nil {
				t.Fatalf("sports=%v workers=%d: %v", sportsOnly, w, err)
			}
			if len(res.Site.Pages) != len(base.Site.Pages) {
				t.Fatalf("sports=%v workers=%d: %d pages, want %d",
					sportsOnly, w, len(res.Site.Pages), len(base.Site.Pages))
			}
			for path, bp := range base.Site.Pages {
				gp, ok := res.Site.Pages[path]
				if !ok || gp.HTML != bp.HTML || gp.Title != bp.Title {
					t.Errorf("sports=%v workers=%d: %s differs from sequential build", sportsOnly, w, path)
				}
			}
		}
	}
}
