package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden site fixtures")

// TestBuildDeterministicAcrossWorkers: the news site and its
// sports-only variant render byte-identically at workers 1, 4 and 16.
// The corpus is kept small so the suite stays brisk under -race.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	data := workload.Articles(60, 1997)
	for _, sportsOnly := range []bool{false, true} {
		base, err := buildSite(data, sportsOnly, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 16} {
			res, err := buildSite(data, sportsOnly, w)
			if err != nil {
				t.Fatalf("sports=%v workers=%d: %v", sportsOnly, w, err)
			}
			if len(res.Site.Pages) != len(base.Site.Pages) {
				t.Fatalf("sports=%v workers=%d: %d pages, want %d",
					sportsOnly, w, len(res.Site.Pages), len(base.Site.Pages))
			}
			for path, bp := range base.Site.Pages {
				gp, ok := res.Site.Pages[path]
				if !ok || gp.HTML != bp.HTML || gp.Title != bp.Title {
					t.Errorf("sports=%v workers=%d: %s differs from sequential build", sportsOnly, w, path)
				}
			}
		}
	}
}

// TestGoldenSite compares every rendered page of a small news site
// against the checked-in fixtures under golden/. Regenerate with:
// go test ./examples/cnn -update
func TestGoldenSite(t *testing.T) {
	res, err := buildSite(workload.Articles(24, 1997), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := "golden"
	if *update {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := res.Site.WriteTo(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixtures)", err)
	}
	if len(entries) != len(res.Site.Pages) {
		t.Fatalf("golden has %d files, build has %d pages (run with -update?)", len(entries), len(res.Site.Pages))
	}
	for path, p := range res.Site.Pages {
		want, err := os.ReadFile(filepath.Join(dir, path))
		if err != nil {
			t.Fatalf("%v (run with -update?)", err)
		}
		if p.HTML != string(want) {
			t.Errorf("%s differs from golden fixture (run with -update to accept)", path)
		}
	}
}
