// Dynamic demonstrates the "Web site as view" spectrum (paper Secs. 1
// and 6): the same site-definition query served two ways. First the
// fully materialized site is built; then the query is decomposed and
// pages are computed at click time against the data graph, with
// result caching. The program starts a local HTTP server in dynamic
// mode, walks a few clicks through it, and prints the cache behaviour.
//
// Run: go run ./examples/dynamic
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"time"

	"strudel/internal/core"
	"strudel/internal/server"
	"strudel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamic:", err)
		os.Exit(1)
	}
}

func run() error {
	data := workload.Articles(200, 5)
	spec := workload.ArticleSpec(false)

	newBuilder := func() *core.Builder {
		b := core.NewBuilder(spec.Name)
		b.SetDataGraph(data)
		if err := b.AddQuery(spec.Query); err != nil {
			panic(err)
		}
		b.AddTemplates(spec.Templates)
		b.SetIndex(spec.Index)
		b.SetRootCollection(spec.RootCollection)
		return b
	}

	// Full materialization: everything computed up front.
	t0 := time.Now()
	res, err := newBuilder().Build()
	if err != nil {
		return err
	}
	fmt.Printf("materialized: %d pages in %v (all work before the first click)\n",
		res.Stats.Pages, time.Since(t0))

	// Dynamic: only the root is precomputed; each click runs a query.
	t1 := time.Now()
	renderer, err := newBuilder().BuildDynamic()
	if err != nil {
		return err
	}
	srv := httptest.NewServer(server.Dynamic(renderer, spec.RootCollection))
	defer srv.Close()
	fmt.Printf("dynamic:      ready in %v (decomposition only)\n", time.Since(t1))

	get := func(path string) (string, time.Duration, error) {
		start := time.Now()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), time.Since(start), err
	}

	body, d, err := get("/")
	if err != nil {
		return err
	}
	fmt.Printf("click /           -> %6d bytes in %v\n", len(body), d)
	links := regexp.MustCompile(`href="(/page/[^"]+)"`).FindAllStringSubmatch(body, 3)
	for _, l := range links {
		if _, d, err := get(l[1]); err == nil {
			fmt.Printf("click %-12s -> computed at click time in %v\n", l[1], d)
		}
	}
	// Repeat clicks hit the cache.
	for _, l := range links {
		if _, d, err := get(l[1]); err == nil {
			fmt.Printf("again %-12s -> served from cache in %v\n", l[1], d)
		}
	}
	st := renderer.Dec.Stats()
	fmt.Printf("cache: %d misses, %d hits, %d binding rows computed\n",
		st.CacheMisses, st.CacheHits, st.BindingsComputed)
	return nil
}
