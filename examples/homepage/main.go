// Homepage reproduces the paper's mff example (Sec. 5.1): one
// researcher's homepage built from two sources — a BibTeX bibliography
// and a personal-information file in the data-definition language —
// with an internal and an external version generated from the same
// site graph. The external version's templates exclude patents and
// proprietary publications; no new queries are written for it.
//
// Run: go run ./examples/homepage [outdir]
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"strudel/internal/core"
	"strudel/internal/workload"
)

const personalInfo = `
object mff in People {
    name "Mary Fernandez"
    address "180 Park Ave, Florham Park, NJ"
    phone "973-360-8679"
    activity "PC member, SIGMOD 1999"
    activity "Editor, SIGMOD Record"
    patent "US5999999: Method for declarative Web-site management"
}
`

const homepageQuery = `
INPUT Data
CREATE HomePage(), PubsPage()
LINK HomePage() -> "Publications" -> PubsPage()
WHERE People(p), p -> a -> v
LINK HomePage() -> a -> v
WHERE Publications(x), x -> l -> w
CREATE Pub(x)
LINK Pub(x) -> l -> w,
     PubsPage() -> "Paper" -> Pub(x)
OUTPUT Homepage
`

// internalTemplates show everything; the external set (three changed
// templates) hides patents and proprietary publications.
func templates(external bool) map[string]string {
	home := `<html><body><h1><SFMT name></h1>
<p><SFMT address> — <SFMT phone></p>
<h3>Professional activities</h3><SFMT_UL activity>
<SIF patent><h3>Patents</h3><SFMT_UL patent></SIF>
<p><SFMT Publications LINK="Publications"></p>
</body></html>`
	pubs := `<html><body><h1>Publications</h1><SFMT_UL Paper EMBED></body></html>`
	pub := `<SIF postscript><SFMT postscript LINK=title><SELSE><SFMT title></SIF>. <SFMT author DELIM=", ">, <SFMT year>.<SIF proprietary> [proprietary]</SIF>`
	if external {
		home = `<html><body><h1><SFMT name></h1>
<h3>Professional activities</h3><SFMT_UL activity>
<p><SFMT Publications LINK="Publications"></p>
</body></html>`
		pubs = `<html><body><h1>Publications</h1><SFMT_UL Paper EMBED></body></html>`
		pub = `<SIF proprietary><SELSE><SIF postscript><SFMT postscript LINK=title><SELSE><SFMT title></SIF>. <SFMT author DELIM=", ">, <SFMT year>.</SIF>`
	}
	return map[string]string{"HomePage": home, "PubsPage": pubs, "Pub": pub}
}

func main() {
	outDir := "homepage-site"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := run(outDir); err != nil {
		fmt.Fprintln(os.Stderr, "homepage:", err)
		os.Exit(1)
	}
}

// buildVersion builds one version of the homepage ("internal" or
// "external") with the given build parallelism (0 = one worker per
// CPU). The result is byte-identical at any worker count.
func buildVersion(version string, workers int) (*core.Result, error) {
	bib := workload.BibliographyBibTeX(30, 17)
	b := core.NewBuilder("homepage-" + version)
	if err := b.AddSource("refs.bib", "bibtex", bib); err != nil {
		return nil, err
	}
	if err := b.AddSource("personal.dd", "datadef", personalInfo); err != nil {
		return nil, err
	}
	if err := b.AddQuery(homepageQuery); err != nil {
		return nil, err
	}
	for key, src := range templates(version == "external") {
		if err := b.AddTemplate(key, src); err != nil {
			return nil, err
		}
	}
	b.SetEmbedOnly("Pub")
	b.SetIndex("HomePage")
	b.SetWorkers(workers)
	return b.Build()
}

func run(outDir string) error {
	for _, version := range []string{"internal", "external"} {
		res, err := buildVersion(version, 0)
		if err != nil {
			return err
		}
		dir := filepath.Join(outDir, version)
		if err := res.Site.WriteTo(dir); err != nil {
			return err
		}
		fmt.Printf("%s version: %d pages -> %s (site graph %d nodes / %d edges)\n",
			version, res.Stats.Pages, dir, res.Stats.SiteNodes, res.Stats.SiteEdges)
	}
	fmt.Println("\nBoth versions share the same 115-character-class query; only the")
	fmt.Println("templates differ — compare", filepath.Join(outDir, "internal/index.html"))
	fmt.Println("with", filepath.Join(outDir, "external/index.html"))
	return nil
}
