package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden site fixtures")

// TestBuildDeterministicAcrossWorkers: both homepage versions render
// byte-identically at workers 1, 4 and 16.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, version := range []string{"internal", "external"} {
		base, err := buildVersion(version, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 16} {
			res, err := buildVersion(version, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", version, w, err)
			}
			if len(res.Site.Pages) != len(base.Site.Pages) {
				t.Fatalf("%s workers=%d: %d pages, want %d", version, w, len(res.Site.Pages), len(base.Site.Pages))
			}
			for path, bp := range base.Site.Pages {
				gp, ok := res.Site.Pages[path]
				if !ok || gp.HTML != bp.HTML {
					t.Errorf("%s workers=%d: %s differs from sequential build", version, w, path)
				}
			}
		}
	}
}

// TestGoldenSite compares both versions against the fixtures under
// golden/{internal,external}. Regenerate with:
// go test ./examples/homepage -update
func TestGoldenSite(t *testing.T) {
	for _, version := range []string{"internal", "external"} {
		res, err := buildVersion(version, 1)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join("golden", version)
		if *update {
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			if err := res.Site.WriteTo(dir); err != nil {
				t.Fatal(err)
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%v (run with -update to create the fixtures)", err)
		}
		if len(entries) != len(res.Site.Pages) {
			t.Fatalf("%s: golden has %d files, build has %d pages (run with -update?)",
				version, len(entries), len(res.Site.Pages))
		}
		for path, p := range res.Site.Pages {
			want, err := os.ReadFile(filepath.Join(dir, path))
			if err != nil {
				t.Fatalf("%v (run with -update?)", err)
			}
			if p.HTML != string(want) {
				t.Errorf("%s/%s differs from golden fixture (run with -update to accept)", version, path)
			}
		}
	}
}
