// Orgsite reproduces the paper's largest example (Sec. 5.1): an
// AT&T-Research-style organization site integrating five data sources
// — two relational tables (people, departments), a structured project
// file, a BibTeX bibliography, and existing HTML pages — through the
// mediator into one data graph, from which internal and external
// versions of the site are generated. Integrity constraints are
// verified on the site schema and the concrete site graph.
//
// Run: go run ./examples/orgsite [outdir]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"strudel/internal/core"
	"strudel/internal/schema"
	"strudel/internal/workload"
)

func main() {
	outDir := "org-site"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := run(outDir); err != nil {
		fmt.Fprintln(os.Stderr, "orgsite:", err)
		os.Exit(1)
	}
}

// buildSite mediates the five organization sources and builds one
// version of the site with the given build parallelism (0 = one worker
// per CPU). The result is byte-identical at any worker count.
func buildSite(src *workload.OrgSources, external bool, workers int) (*core.Result, error) {
	spec := workload.OrgSpec(external)
	b := core.NewBuilder(spec.Name)
	if err := b.AddSource("people.csv", "csv", src.PeopleCSV); err != nil {
		return nil, err
	}
	if err := b.AddSource("departments.csv", "csv", src.DepartmentsCSV); err != nil {
		return nil, err
	}
	if err := b.AddSource("projects.txt", "structured", src.ProjectsTxt); err != nil {
		return nil, err
	}
	if err := b.AddSource("refs.bib", "bibtex", src.BibTeX); err != nil {
		return nil, err
	}
	var pageNames []string
	for name := range src.HTMLPages {
		pageNames = append(pageNames, name)
	}
	sort.Strings(pageNames)
	for _, name := range pageNames {
		if err := b.AddSource(name, "html", src.HTMLPages[name]); err != nil {
			return nil, err
		}
	}
	if err := b.AddQuery(spec.Query); err != nil {
		return nil, err
	}
	b.AddTemplates(spec.Templates)
	b.SetIndex(spec.Index)
	b.AddConstraint(schema.Reachable{Root: spec.Root})
	b.AddConstraint(schema.MustLink{From: "PersonPage", Label: "Dept", To: "DeptPage"})
	b.SetWorkers(workers)
	return b.Build()
}

func run(outDir string) error {
	// The paper's internal site covers ~400 people; keep the example
	// brisk with 120.
	src := workload.Organization(120, 25, 6, 7)
	for _, external := range []bool{false, true} {
		spec := workload.OrgSpec(external)
		res, err := buildSite(src, external, 0)
		if err != nil {
			return err
		}
		dir := filepath.Join(outDir, spec.Name)
		if err := res.Site.WriteTo(dir); err != nil {
			return err
		}
		fmt.Printf("%-13s %4d pages from %d-node data graph (5 sources) -> %s\n",
			spec.Name+":", res.Stats.Pages, res.Stats.DataNodes, dir)
		fmt.Printf("  spec size: %d query lines, %d templates (%d lines)\n",
			spec.QueryLines(), len(spec.Templates), spec.TemplateLines())
		for _, v := range res.Violations {
			fmt.Println("  constraint violation:", v)
		}
	}
	fmt.Println("\nThe internal and external versions share the same site graph and")
	fmt.Println("site-definition query; only five templates differ (paper Sec. 5.1).")
	return nil
}
