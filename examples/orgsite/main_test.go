package main

import (
	"testing"

	"strudel/internal/workload"
)

// TestBuildDeterministicAcrossWorkers: both organization-site versions
// — five mediated sources deep — render byte-identically at workers 1,
// 4 and 16.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	src := workload.Organization(40, 10, 4, 7)
	for _, external := range []bool{false, true} {
		base, err := buildSite(src, external, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 16} {
			res, err := buildSite(src, external, w)
			if err != nil {
				t.Fatalf("external=%v workers=%d: %v", external, w, err)
			}
			if len(res.Site.Pages) != len(base.Site.Pages) {
				t.Fatalf("external=%v workers=%d: %d pages, want %d",
					external, w, len(res.Site.Pages), len(base.Site.Pages))
			}
			for path, bp := range base.Site.Pages {
				gp, ok := res.Site.Pages[path]
				if !ok || gp.HTML != bp.HTML {
					t.Errorf("external=%v workers=%d: %s differs from sequential build", external, w, path)
				}
			}
		}
	}
}
