package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden site fixtures")

// TestBuildDeterministicAcrossWorkers: both organization-site versions
// — five mediated sources deep — render byte-identically at workers 1,
// 4 and 16.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	src := workload.Organization(40, 10, 4, 7)
	for _, external := range []bool{false, true} {
		base, err := buildSite(src, external, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 16} {
			res, err := buildSite(src, external, w)
			if err != nil {
				t.Fatalf("external=%v workers=%d: %v", external, w, err)
			}
			if len(res.Site.Pages) != len(base.Site.Pages) {
				t.Fatalf("external=%v workers=%d: %d pages, want %d",
					external, w, len(res.Site.Pages), len(base.Site.Pages))
			}
			for path, bp := range base.Site.Pages {
				gp, ok := res.Site.Pages[path]
				if !ok || gp.HTML != bp.HTML {
					t.Errorf("external=%v workers=%d: %s differs from sequential build", external, w, path)
				}
			}
		}
	}
}

// TestGoldenSite compares every page of a small internal organization
// site — five mediated sources deep — against the checked-in fixtures
// under golden/. Regenerate with: go test ./examples/orgsite -update
func TestGoldenSite(t *testing.T) {
	src := workload.Organization(16, 5, 2, 7)
	res, err := buildSite(src, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := "golden"
	if *update {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := res.Site.WriteTo(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixtures)", err)
	}
	if len(entries) != len(res.Site.Pages) {
		t.Fatalf("golden has %d files, build has %d pages (run with -update?)", len(entries), len(res.Site.Pages))
	}
	for path, p := range res.Site.Pages {
		want, err := os.ReadFile(filepath.Join(dir, path))
		if err != nil {
			t.Fatalf("%v (run with -update?)", err)
		}
		if p.HTML != string(want) {
			t.Errorf("%s differs from golden fixture (run with -update to accept)", path)
		}
	}
}
