// Quickstart reproduces the paper's running example end to end: the
// Fig. 2 data-graph fragment is parsed from the data-definition
// language, the Fig. 3 site-definition query produces the Fig. 4 site
// graph, the Fig. 5 site schema is derived from the query, and the
// Fig. 7 templates render the browsable site.
//
// Run: go run ./examples/quickstart [outdir]
package main

import (
	"fmt"
	"os"

	"strudel/internal/core"
	"strudel/internal/datadef"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

// fig2 is the paper's Fig. 2 data fragment.
const fig2 = `
collection Publications {
    abstract text
    postscript ps
}
object pub1 in Publications {
    title "Specifying Representations of Machine Instructions"
    author "Norman Ramsey"
    author "Mary Fernandez"
    year 1997
    month "May"
    journal "Transactions on Programming Languages and Systems"
    pub-type "article"
    abstract "abstracts/toplas97.txt"
    postscript "papers/toplas97.ps.gz"
    volume "19 (3)"
    category "Architecture Specifications"
    category "Programming Languages"
}
object pub2 in Publications {
    title "Optimizing Regular Path Expressions Using Graph Schemas"
    author "Mary Fernandez"
    author "Dan Suciu"
    year 1998
    booktitle "Proc. of ICDE"
    pub-type "inproceedings"
    abstract "abstracts/icde98.txt"
    postscript "papers/icde98.ps.gz"
    category "Semistructured Data"
    category "Programming Languages"
}
`

func main() {
	outDir := "quickstart-site"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := run(outDir); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// buildSite evaluates the Fig. 3 query over the Fig. 2 data and
// renders the Fig. 7 site with the given build parallelism (0 = one
// worker per CPU). The result is byte-identical at any worker count.
func buildSite(workers int) (*core.Result, error) {
	res, err := datadef.Parse("BIBTEX", fig2)
	if err != nil {
		return nil, err
	}
	spec := workload.BibliographySpec()
	b := core.NewBuilder("homepage")
	b.SetDataGraph(res.Graph)
	if err := b.AddQuery(spec.Query); err != nil {
		return nil, err
	}
	b.AddTemplates(spec.Templates)
	b.SetEmbedOnly("PaperPresentation")
	b.SetIndex(spec.Index)
	b.AddConstraint(schema.Reachable{Root: "RootPage"})
	b.SetWorkers(workers)
	return b.Build()
}

func run(outDir string) error {
	// Step 1: the data graph (Fig. 2).
	res, err := datadef.Parse("BIBTEX", fig2)
	if err != nil {
		return err
	}
	fmt.Println("=== Fig. 2: data graph fragment ===")
	res.Graph.Dump(os.Stdout)

	// Step 2: the site-definition query (Fig. 3) and its site schema
	// (Fig. 5).
	spec := workload.BibliographySpec()
	q, err := struql.Parse(spec.Query)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Fig. 3: site-definition query ===")
	fmt.Print(q.String())
	fmt.Println("\n=== Fig. 5: site schema ===")
	fmt.Print(schema.Build(q).String())

	// Step 3: evaluate the query (Fig. 4) and render HTML (Fig. 7)
	// through the end-to-end builder.
	built, err := buildSite(0)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Fig. 4: site graph fragment ===")
	built.SiteGraph.Dump(os.Stdout)
	for _, v := range built.Violations {
		fmt.Println("constraint violation:", v)
	}

	if err := built.Site.WriteTo(outDir); err != nil {
		return err
	}
	fmt.Printf("\n=== Fig. 7: generated site (%d pages) written to %s ===\n",
		built.Stats.Pages, outDir)
	fmt.Println("--- index.html ---")
	fmt.Println(built.Site.Pages["index.html"].HTML)
	return nil
}
