package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"strudel/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden site fixtures")

// pagesOf flattens a build result to path → HTML.
func pagesOf(t *testing.T, res *core.Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for path, p := range res.Site.Pages {
		out[path] = p.HTML
	}
	return out
}

// TestBuildDeterministicAcrossWorkers: the quickstart site's full page
// map is byte-identical at workers 1, 4 and 16.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	base, err := buildSite(1)
	if err != nil {
		t.Fatal(err)
	}
	want := pagesOf(t, base)
	for _, w := range []int{4, 16} {
		res, err := buildSite(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := pagesOf(t, res)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pages, want %d", w, len(got), len(want))
		}
		for path, html := range want {
			if got[path] != html {
				t.Errorf("workers=%d: %s differs from sequential build", w, path)
			}
		}
	}
}

// TestGoldenSite compares every rendered page against the checked-in
// fixtures under golden/. Regenerate with: go test ./examples/quickstart -update
func TestGoldenSite(t *testing.T) {
	res, err := buildSite(1)
	if err != nil {
		t.Fatal(err)
	}
	dir := "golden"
	if *update {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := res.Site.WriteTo(dir); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixtures)", err)
	}
	if len(entries) != len(res.Site.Pages) {
		t.Fatalf("golden has %d files, build has %d pages (run with -update?)", len(entries), len(res.Site.Pages))
	}
	for path, p := range res.Site.Pages {
		want, err := os.ReadFile(filepath.Join(dir, path))
		if err != nil {
			t.Fatalf("%v (run with -update?)", err)
		}
		if p.HTML != string(want) {
			t.Errorf("%s differs from golden fixture (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", path, p.HTML, want)
		}
	}
}
