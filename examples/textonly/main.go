// Textonly reproduces the paper's TextOnly transformation (Sec. 3):
// the site-definition query that copies everything reachable from a
// site's root while excluding image files — fixing the CNN
// inconsistency the paper footnotes, where only the root page had a
// text-only version and every link led back to pages with images.
//
// Run: go run ./examples/textonly
package main

import (
	"fmt"
	"os"

	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

// textOnlyQuery is the paper's query, verbatim in our syntax.
const textOnlyQuery = `
INPUT Site
WHERE Root(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
CREATE New(p), New(q), New(q2)
LINK New(q) -> l -> New(q2)
COLLECT TextOnlyRoot(New(p))
OUTPUT TextOnly
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "textonly:", err)
		os.Exit(1)
	}
}

// siteGraph builds a small article site graph with images, rooted at a
// front page.
func siteGraph() (*graph.Graph, error) {
	data := workload.Articles(40, 3)
	front := data.NewNode("front")
	data.AddToCollection("Root", graph.NodeValue(front))
	for _, a := range data.Collection("Articles") {
		if err := data.AddEdge(front, "story", a); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// transform runs the TextOnly query with the given evaluation
// parallelism (0 = one worker per CPU). The output graph is
// byte-identical at any worker count.
func transform(data *graph.Graph, workers int) (*graph.Graph, error) {
	q, err := struql.Parse(textOnlyQuery)
	if err != nil {
		return nil, err
	}
	res, err := struql.Eval(q, data, &struql.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

func run() error {
	data, err := siteGraph()
	if err != nil {
		return err
	}

	countImages := func(g *graph.Graph) int {
		n := 0
		g.Edges(func(e graph.Edge) bool {
			if e.To.FileType() == graph.FileImage {
				n++
			}
			return true
		})
		return n
	}

	out, err := transform(data, 0)
	if err != nil {
		return err
	}
	fmt.Printf("original site:  %5d nodes, %5d edges, %3d image links\n",
		data.NumNodes(), data.NumEdges(), countImages(data))
	fmt.Printf("text-only copy: %5d nodes, %5d edges, %3d image links\n",
		out.NumNodes(), out.NumEdges(), countImages(out))
	if n := countImages(out); n != 0 {
		return fmt.Errorf("text-only site still has %d image links", n)
	}
	roots := out.Collection("TextOnlyRoot")
	fmt.Printf("text-only root: %s (every page deep in the site is image-free,\n", out.DisplayValue(roots[0]))
	fmt.Println("unlike the CNN site the paper footnotes, which only de-imaged its root)")
	return nil
}
