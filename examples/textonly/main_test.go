package main

import "testing"

// TestTransformDeterministicAcrossWorkers: the TextOnly graph copy —
// node names, edge order, collections — is byte-identical at workers
// 1, 4 and 16. The example has no HTML pages, so the output graph dump
// is the comparison surface.
func TestTransformDeterministicAcrossWorkers(t *testing.T) {
	data, err := siteGraph()
	if err != nil {
		t.Fatal(err)
	}
	base, err := transform(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := base.DumpString()
	for _, w := range []int{4, 16} {
		out, err := transform(data, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if out.DumpString() != want {
			t.Errorf("workers=%d: output graph differs from sequential evaluation", w)
		}
	}
}
