package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden graph fixture")

// TestTransformDeterministicAcrossWorkers: the TextOnly graph copy —
// node names, edge order, collections — is byte-identical at workers
// 1, 4 and 16. The example has no HTML pages, so the output graph dump
// is the comparison surface.
func TestTransformDeterministicAcrossWorkers(t *testing.T) {
	data, err := siteGraph()
	if err != nil {
		t.Fatal(err)
	}
	base, err := transform(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := base.DumpString()
	for _, w := range []int{4, 16} {
		out, err := transform(data, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if out.DumpString() != want {
			t.Errorf("workers=%d: output graph differs from sequential evaluation", w)
		}
	}
}

// TestGoldenGraph compares the TextOnly output graph's deterministic
// dump against the checked-in fixture — the example has no HTML pages,
// so the graph dump is the golden surface. Regenerate with:
// go test ./examples/textonly -update
func TestGoldenGraph(t *testing.T) {
	data, err := siteGraph()
	if err != nil {
		t.Fatal(err)
	}
	out, err := transform(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := out.DumpString()
	path := filepath.Join("golden", "textonly.dump")
	if *update {
		if err := os.MkdirAll("golden", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if got != string(want) {
		t.Errorf("TextOnly graph dump differs from golden fixture (run with -update to accept)")
	}
}
