package strudel_test

// Native fuzz targets for the two user-facing languages, seeded from
// the example sites' real queries and data definitions. `make fuzz`
// runs each for a short smoke interval; longer runs take
//
//	go test -run '^$' -fuzz FuzzStruQLParse -fuzztime 60s .

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

const fuzzDataDefSeed = `
collection Publications { }
object pub1 in Publications {
    title "A Query Language for a Web-Site Management System"
    author "Mary Fernandez"
    author "Daniela Florescu"
    year 1997
    abstract "abstracts/pub1.txt"
    postscript "papers/pub1.ps.gz"
    category "Semistructured Data"
}
object pub2 in Publications {
    title "Catching the Boat with Strudel"
    year 1998
    contact pub1
}
`

const fuzzPersonSeed = `
object mff in People {
    name "Mary Fernandez"
    address "180 Park Ave, Florham Park, NJ"
    phone "973-360-8679"
    activity "PC member, SIGMOD 1999"
    patent "US5999999: Method for declarative Web-site management"
}
`

// FuzzStruQLParse asserts the StruQL parser never panics on any input,
// and that every accepted query round-trips through its canonical
// rendering. Seeds are the real site-definition queries of the example
// sites.
func FuzzStruQLParse(f *testing.F) {
	f.Add(workload.BibliographySpec().Query)
	f.Add(workload.ArticleSpec(false).Query)
	f.Add(workload.ArticleSpec(true).Query)
	f.Add(workload.OrgQuery)
	f.Add(homepageDiffQuery)
	f.Add(textonlyDiffQuery)
	f.Add(`WHERE x -> ("cite"|"ref")* . "title" -> t COLLECT Titles(t)`)
	f.Add(`INPUT A WHERE C(x), not(x -> "a" -> y), x >= 2 CREATE F(x) LINK F(x) -> "n" -> COUNT(x) OUTPUT B`)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := struql.Parse(src)
		if err != nil {
			return
		}
		q2, err := struql.Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, q.String())
		}
		if q.String() != q2.String() {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", q.String(), q2.String())
		}
	})
}

// FuzzDataDefParse asserts the data-definition parser never panics,
// and that accepted sources also load through the wrapper path
// (ParseInto over a shared graph) without crashing. Seeds are the
// example sites' data definitions.
func FuzzDataDefParse(f *testing.F) {
	f.Add(fuzzDataDefSeed)
	f.Add(fuzzPersonSeed)
	f.Add(`collection C { a text } object o in C { a "f.txt" nested { k "v" } }`)
	f.Add(`object a { next b } object b { next a weight 3.5 live true }`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := datadef.Parse("fuzz", src)
		if err != nil {
			return
		}
		if res.Graph == nil {
			t.Fatal("accepted source produced a nil graph")
		}
		// The wrapper entry point must accept what Parse accepts.
		if err := datadef.ParseInto(graph.New("fuzz2"), src); err != nil {
			// ParseInto may reject name clashes with pre-existing nodes,
			// but a fresh graph has none — only real parse errors differ.
			if !strings.Contains(err.Error(), "parse") && !strings.Contains(err.Error(), ":") {
				t.Fatalf("ParseInto rejects what Parse accepts: %v", err)
			}
		}
	})
}
