package strudel_test

// Native fuzz targets for the two user-facing languages, seeded from
// the example sites' real queries and data definitions. `make fuzz`
// runs each for a short smoke interval; longer runs take
//
//	go test -run '^$' -fuzz FuzzStruQLParse -fuzztime 60s .

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

const fuzzDataDefSeed = `
collection Publications { }
object pub1 in Publications {
    title "A Query Language for a Web-Site Management System"
    author "Mary Fernandez"
    author "Daniela Florescu"
    year 1997
    abstract "abstracts/pub1.txt"
    postscript "papers/pub1.ps.gz"
    category "Semistructured Data"
}
object pub2 in Publications {
    title "Catching the Boat with Strudel"
    year 1998
    contact pub1
}
`

const fuzzPersonSeed = `
object mff in People {
    name "Mary Fernandez"
    address "180 Park Ave, Florham Park, NJ"
    phone "973-360-8679"
    activity "PC member, SIGMOD 1999"
    patent "US5999999: Method for declarative Web-site management"
}
`

// FuzzStruQLParse asserts the StruQL parser never panics on any input,
// and that every accepted query round-trips through its canonical
// rendering. Seeds are the real site-definition queries of the example
// sites.
func FuzzStruQLParse(f *testing.F) {
	f.Add(workload.BibliographySpec().Query)
	f.Add(workload.ArticleSpec(false).Query)
	f.Add(workload.ArticleSpec(true).Query)
	f.Add(workload.OrgQuery)
	f.Add(homepageDiffQuery)
	f.Add(textonlyDiffQuery)
	f.Add(`WHERE x -> ("cite"|"ref")* . "title" -> t COLLECT Titles(t)`)
	f.Add(`INPUT A WHERE C(x), not(x -> "a" -> y), x >= 2 CREATE F(x) LINK F(x) -> "n" -> COUNT(x) OUTPUT B`)
	f.Fuzz(func(t *testing.T, src string) {
		q, err := struql.Parse(src)
		if err != nil {
			return
		}
		q2, err := struql.Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, q.String())
		}
		if q.String() != q2.String() {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", q.String(), q2.String())
		}
	})
}

// FuzzDataDefParse asserts the data-definition parser never panics,
// and that accepted sources also load through the wrapper path
// (ParseInto over a shared graph) without crashing. Seeds are the
// example sites' data definitions.
func FuzzDataDefParse(f *testing.F) {
	f.Add(fuzzDataDefSeed)
	f.Add(fuzzPersonSeed)
	f.Add(`collection C { a text } object o in C { a "f.txt" nested { k "v" } }`)
	f.Add(`object a { next b } object b { next a weight 3.5 live true }`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := datadef.Parse("fuzz", src)
		if err != nil {
			return
		}
		if res.Graph == nil {
			t.Fatal("accepted source produced a nil graph")
		}
		// The wrapper entry point must accept what Parse accepts.
		if err := datadef.ParseInto(graph.New("fuzz2"), src); err != nil {
			// ParseInto may reject name clashes with pre-existing nodes,
			// but a fresh graph has none — only real parse errors differ.
			if !strings.Contains(err.Error(), "parse") && !strings.Contains(err.Error(), ":") {
				t.Fatalf("ParseInto rejects what Parse accepts: %v", err)
			}
		}
	})
}

// fuzzEditGraph interprets a byte string as an edit script over a
// bibliography-shaped graph: triples of (kind, selector, value) bytes.
// Deterministic, and total — every byte string is a valid script.
func fuzzEditGraph(g *graph.Graph, edits []byte) {
	for i := 0; i+2 < len(edits); i += 3 {
		kind, sel, val := edits[i]%6, int(edits[i+1]), edits[i+2]
		pubs := g.Collection("Publications")
		if len(pubs) == 0 {
			return
		}
		v := pubs[sel%len(pubs)]
		oid := v.OID()
		switch kind {
		case 0: // retitle
			if old, ok := g.First(oid, "title"); ok {
				g.RemoveEdge(oid, "title", old)
			}
			g.AddEdge(oid, "title", graph.Str("Fuzzed "+string(rune('a'+val%26))))
		case 1: // drop an attribute edge
			out := g.Out(oid)
			if len(out) > 0 {
				e := out[int(val)%len(out)]
				g.RemoveEdge(oid, e.Label, e.To)
			}
		case 2: // extra category
			g.AddEdge(oid, "category", graph.Str("Topic "+string(rune('A'+val%4))))
		case 3: // new publication
			name := "pub_fuzz" + string(rune('a'+val%26)) + string(rune('a'+sel%26))
			if _, exists := g.NodeByName(name); exists {
				continue
			}
			id := g.NewNode(name)
			g.AddToCollection("Publications", graph.NodeValue(id))
			g.AddEdge(id, "title", graph.Str("Fuzz work"))
			g.AddEdge(id, "year", graph.Int(int64(1990+int(val)%8)))
		case 4: // remove a publication
			if len(pubs) > 2 {
				g.RemoveNode(oid)
			}
		case 5: // remove from the collection, keeping the node
			g.RemoveFromCollection("Publications", v)
		}
	}
}

// fuzzFingerprint renders a query output graph structurally: named
// nodes (sorted) with their out-edges, node targets resolved through
// names so two evaluations into different siblings compare equal.
func fuzzFingerprint(g *graph.Graph) string {
	render := func(v graph.Value) string {
		if v.IsNode() {
			if n := g.NodeName(v.OID()); n != "" {
				return "@" + n
			}
			return "@?"
		}
		return v.String()
	}
	var names []string
	for _, id := range g.Nodes() {
		if n := g.NodeName(id); n != "" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		id, _ := g.NodeByName(n)
		sb.WriteString(n)
		sb.WriteByte('{')
		lines := []string{}
		for _, e := range g.Out(id) {
			lines = append(lines, e.Label+"->"+render(e.To))
		}
		sort.Strings(lines)
		sb.WriteString(strings.Join(lines, ";"))
		sb.WriteString("}\n")
	}
	for _, c := range g.Collections() {
		sb.WriteString(c)
		sb.WriteByte('[')
		for _, v := range g.Collection(c) {
			sb.WriteString(render(v))
			sb.WriteByte(',')
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// FuzzDifferentialEval drives differential view maintenance with
// fuzzed queries and fuzzed edit scripts: evaluate the query over a
// small corpus with captures, prime a materialization, apply the
// fuzzed delta through the journal, then cross-check both the binding
// relations and the output structure against a full re-evaluation of
// the edited graph. An Apply that returns an error is a legitimate
// fallback (the core layer would do a full rebuild); a panic or a
// silent divergence is the bug being hunted.
func FuzzDifferentialEval(f *testing.F) {
	queries := []string{
		workload.BibliographySpec().Query,
		workload.ArticleSpec(false).Query,
		workload.OrgQuery,
		homepageDiffQuery,
		textonlyDiffQuery,
		`WHERE Publications(x), x -> ("contact")* -> y CREATE P(x) LINK P(x) -> "c" -> y COLLECT Ps(P(x)) `,
		`WHERE Publications(x), x -> "year" -> y CREATE Y(y) LINK Y(y) -> "n" -> COUNT(x) COLLECT Years(Y(y))`,
	}
	for _, q := range queries {
		f.Add(q, []byte{0, 1, 2, 3, 4, 5, 9, 0, 1})
		f.Add(q, []byte{4, 0, 0, 3, 7, 7, 0, 2, 2, 5, 1, 0})
	}
	f.Fuzz(func(t *testing.T, qsrc string, edits []byte) {
		q, err := struql.Parse(qsrc)
		if err != nil {
			return
		}
		g := workload.Bibliography(6, 3)
		out := g.NewSibling("site")
		cap := struql.NewCapture()
		if _, err := struql.Eval(q, g, &struql.Options{Output: out, Capture: cap, Workers: 1}); err != nil {
			return
		}
		mat, err := struql.NewMaterialized([]*struql.Query{q}, g, out, nil, []*struql.Capture{cap}, 0)
		if err != nil {
			return
		}
		log := graph.NewChangeLog()
		g.Watch(log)
		fuzzEditGraph(g, edits)
		ops, ok := log.Take()
		if !ok {
			return
		}
		if _, err := mat.Apply(ops); err != nil {
			return // fallback-to-full territory, not a maintenance bug
		}
		// Full re-evaluation of the edited graph as the oracle.
		ref := g.NewSibling("ref")
		rcap := struql.NewCapture()
		if _, err := struql.Eval(q, g, &struql.Options{Output: ref, Capture: rcap, Workers: 1}); err != nil {
			t.Fatalf("maintained eval survived but full re-eval fails: %v", err)
		}
		rmat, err := struql.NewMaterialized([]*struql.Query{q}, g, ref, nil, []*struql.Capture{rcap}, 0)
		if err != nil {
			t.Fatalf("reference materialization: %v", err)
		}
		if got, want := fmt.Sprint(mat.BindingDump()), fmt.Sprint(rmat.BindingDump()); got != want {
			t.Fatalf("binding relations diverged from full re-evaluation\nmaintained: %s\nfull:       %s", got, want)
		}
		if got, want := fuzzFingerprint(out), fuzzFingerprint(ref); got != want {
			t.Fatalf("output graph diverged from full re-evaluation\nmaintained:\n%s\nfull:\n%s", got, want)
		}
	})
}
