package strudel_test

// Cross-module integration tests: the full Fig. 1 pipeline, the
// equivalence of materialized and click-time evaluation, persistence
// of built sites, and link integrity of the generated HTML.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/repository"
	"strudel/internal/schema"
	"strudel/internal/server"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/workload"
)

func bibBuilder(t *testing.T, n int, seed int64) (*core.Builder, *workload.SiteSpec) {
	t.Helper()
	spec := workload.BibliographySpec()
	b := core.NewBuilder(spec.Name)
	b.SetDataGraph(workload.Bibliography(n, seed))
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetEmbedOnly("PaperPresentation")
	b.SetIndex(spec.Index)
	b.SetRootCollection(spec.RootCollection)
	return b, spec
}

// TestStaticDynamicEquivalence verifies that click-time evaluation
// computes exactly the pages full materialization does: same page set,
// same per-page edges, for every page of the site.
func TestStaticDynamicEquivalence(t *testing.T) {
	data := workload.Bibliography(40, 11)
	spec := workload.BibliographySpec()
	q := struql.MustParse(spec.Query)

	full, err := struql.Eval(q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec := incremental.Decompose(q, data, nil)
	if _, err := dec.MaterializeAll(spec.RootCollection); err != nil {
		t.Fatal(err)
	}

	checked := 0
	for _, id := range full.Output.Nodes() {
		name := full.Output.NodeName(id)
		if name == "" || !strings.Contains(name, "(") {
			continue
		}
		ref, ok := dec.Resolve(name)
		if !ok {
			t.Errorf("dynamic evaluation never discovered %s", name)
			continue
		}
		pd, err := dec.Page(ref)
		if err != nil {
			t.Fatal(err)
		}
		staticEdges := full.Output.Out(id)
		if len(pd.Edges) != len(staticEdges) {
			t.Errorf("%s: dynamic %d edges, static %d", name, len(pd.Edges), len(staticEdges))
			continue
		}
		for _, se := range staticEdges {
			found := false
			for _, de := range pd.Edges {
				if de.Label != se.Label {
					continue
				}
				if de.Page != nil && se.To.IsNode() &&
					de.Page.Key() == full.Output.NodeName(se.To.OID()) {
					found = true
					break
				}
				if de.Page == nil && de.Value == se.To {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: dynamic page missing edge %v", name, se)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Errorf("only %d pages checked", checked)
	}
}

// TestLinkIntegrity crawls the generated HTML: every relative href
// must resolve to a generated page.
func TestLinkIntegrity(t *testing.T) {
	b, _ := bibBuilder(t, 30, 7)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hrefs := regexp.MustCompile(`href="([^"]+)"`)
	for path, page := range res.Site.Pages {
		for _, m := range hrefs.FindAllStringSubmatch(page.HTML, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "papers/") ||
				strings.HasPrefix(target, "abstracts/") || strings.HasPrefix(target, "images/") {
				continue // external URL or data file
			}
			if _, ok := res.Site.Pages[target]; !ok {
				t.Errorf("%s links to missing page %q", path, target)
			}
		}
	}
}

// TestStaticServingMatchesFiles serves the built site over HTTP and
// verifies responses equal the written files.
func TestStaticServingMatchesFiles(t *testing.T) {
	b, _ := bibBuilder(t, 10, 3)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.Site.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.Static(res.Site))
	defer srv.Close()
	for _, path := range res.Site.Paths() {
		resp, err := http.Get(srv.URL + "/" + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != res.Site.Pages[path].HTML {
			t.Errorf("%s: served content differs from generated", path)
		}
	}
}

// TestSiteGraphPersistence saves a built site graph and regenerates
// identical HTML from the reloaded repository.
func TestSiteGraphPersistence(t *testing.T) {
	data := workload.Bibliography(15, 5)
	spec := workload.BibliographySpec()
	q := struql.MustParse(spec.Query)
	res, err := struql.Eval(q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(site *graph.Graph) map[string]*sitegen.Page {
		s, err := sitegen.New(site, sitegen.Config{
			Templates: spec.Templates,
			EmbedOnly: map[string]bool{"PaperPresentation": true},
			Index:     spec.Index,
		}).Generate()
		if err != nil {
			t.Fatal(err)
		}
		return s.Pages
	}
	before := gen(res.Output)

	dir := filepath.Join(t.TempDir(), "repo")
	repo := repository.New(dir)
	repo.Put(data)
	repo.Put(res.Output)
	if err := repo.Save(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := repository.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	site2, ok := reloaded.Graph(res.Output.Name())
	if !ok {
		t.Fatal("site graph lost")
	}
	after := gen(site2)
	if len(before) != len(after) {
		t.Fatalf("page count changed: %d vs %d", len(before), len(after))
	}
	for path, p := range before {
		if after[path] == nil || after[path].HTML != p.HTML {
			t.Errorf("%s differs after persistence round trip", path)
		}
	}
}

// TestExternalVersionHidesProprietary builds the org site's external
// version and verifies no proprietary markers leak into its HTML,
// while the internal version shows them — with the constraint
// machinery confirming the same thing structurally.
func TestExternalVersionHidesProprietary(t *testing.T) {
	src := workload.Organization(60, 12, 4, 13)
	build := func(external bool) *core.Result {
		spec := workload.OrgSpec(external)
		b := core.NewBuilder(spec.Name)
		b.AddSource("people.csv", "csv", src.PeopleCSV)
		b.AddSource("departments.csv", "csv", src.DepartmentsCSV)
		b.AddSource("projects.txt", "structured", src.ProjectsTxt)
		if err := b.AddQuery(spec.Query); err != nil {
			t.Fatal(err)
		}
		b.AddTemplates(spec.Templates)
		b.SetIndex(spec.Index)
		res, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	internal := build(false)
	external := build(true)
	leak := func(pages map[string]*sitegen.Page, marker string) bool {
		for _, p := range pages {
			if strings.Contains(p.HTML, marker) {
				return true
			}
		}
		return false
	}
	if !leak(internal.Site.Pages, "[internal]") {
		t.Error("internal version should show proprietary markers")
	}
	if leak(external.Site.Pages, "[internal]") {
		t.Error("external version leaked proprietary markers")
	}
	if leak(external.Site.Pages, "Sponsored by") {
		t.Error("external version leaked sponsors")
	}
	// Both versions share the same site graph shape.
	if internal.Stats.SiteNodes != external.Stats.SiteNodes ||
		internal.Stats.SiteEdges != external.Stats.SiteEdges {
		t.Errorf("site graphs differ: %+v vs %+v", internal.Stats, external.Stats)
	}
}

// TestMediatedEndToEnd runs wrappers → mediator → query → constraints
// → HTML → dynamic serving on one builder.
func TestMediatedEndToEnd(t *testing.T) {
	src := workload.Organization(30, 6, 3, 21)
	spec := workload.OrgSpec(false)
	b := core.NewBuilder(spec.Name)
	b.AddSource("people.csv", "csv", src.PeopleCSV)
	b.AddSource("departments.csv", "csv", src.DepartmentsCSV)
	b.AddSource("projects.txt", "structured", src.ProjectsTxt)
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetIndex(spec.Index)
	b.SetRootCollection(spec.RootCollection)
	b.AddConstraint(schema.Reachable{Root: spec.Root})
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	// The same builder serves dynamically.
	r, err := b.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.Dynamic(r, spec.RootCollection))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Research") {
		t.Errorf("dynamic root = %d %q", resp.StatusCode, body)
	}
}
