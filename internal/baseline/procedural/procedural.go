// Package procedural is the baseline STRUDEL's introduction argues
// against: a hand-written site generator in the style of the CGI-BIN
// script collections that produced sites like www.research.att.com.
// Each page class is a hand-coded builder function that walks the
// data graph and prints HTML, mixing content selection, inter-page
// structure and visual presentation in one place. Site variants
// (external view, sports-only view, ...) cannot share a declarative
// spec; they are separate programs that duplicate builders, which is
// exactly the maintenance cost Fig. 8's comparison quantifies.
package procedural

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// Builder produces one class of pages. Reused reports whether the
// builder was shared from another program or written anew — the unit
// of "spec effort" the Fig. 8 experiment counts.
type Builder struct {
	Name   string
	Reused bool
	Build  func(g *graph.Graph, emit func(path, html string)) error
}

// Program is a hand-coded site generator: an ordered list of builders.
type Program struct {
	Name     string
	Builders []Builder
}

// Run executes every builder and returns the generated pages.
func (p *Program) Run(g *graph.Graph) (map[string]string, error) {
	pages := map[string]string{}
	emit := func(path, html string) { pages[path] = html }
	for _, b := range p.Builders {
		if err := b.Build(g, emit); err != nil {
			return nil, fmt.Errorf("procedural: builder %s: %w", b.Name, err)
		}
	}
	return pages, nil
}

// Effort counts the builders that had to be written for this program
// (those not reused from an earlier program).
func (p *Program) Effort() int {
	n := 0
	for _, b := range p.Builders {
		if !b.Reused {
			n++
		}
	}
	return n
}

// esc is shorthand for HTML escaping.
func esc(v graph.Value) string { return html.EscapeString(v.Text()) }

// pubsOf collects and sorts the publication nodes.
func pubsOf(g *graph.Graph) []graph.OID {
	var pubs []graph.OID
	for _, m := range g.Collection("Publications") {
		if m.IsNode() {
			pubs = append(pubs, m.OID())
		}
	}
	sort.Slice(pubs, func(i, j int) bool { return g.NodeName(pubs[i]) < g.NodeName(pubs[j]) })
	return pubs
}

// presentPub renders one publication entry — note how the same
// presentation logic would have to be copied into every builder that
// shows publications differently.
func presentPub(g *graph.Graph, p graph.OID) string {
	var sb strings.Builder
	title, _ := g.First(p, "title")
	if ps, ok := g.First(p, "postscript"); ok {
		fmt.Fprintf(&sb, "<a href=%q>%s</a>", ps.Text(), esc(title))
	} else {
		sb.WriteString(esc(title))
	}
	var authors []string
	for _, a := range g.OutLabel(p, "author") {
		authors = append(authors, esc(a))
	}
	fmt.Fprintf(&sb, ". By %s.", strings.Join(authors, ", "))
	if j, ok := g.First(p, "journal"); ok {
		fmt.Fprintf(&sb, " %s", esc(j))
	} else if b, ok := g.First(p, "booktitle"); ok {
		fmt.Fprintf(&sb, " %s", esc(b))
	}
	if y, ok := g.First(p, "year"); ok {
		fmt.Fprintf(&sb, ", %s.", esc(y))
	}
	return sb.String()
}

// groupPages returns a builder that produces one page per distinct
// value of attr, listing the publications carrying it.
func groupPages(name, attr, heading string, filter func(*graph.Graph, graph.OID) bool) Builder {
	return Builder{Name: name, Build: func(g *graph.Graph, emit func(string, string)) error {
		groups := map[string][]graph.OID{}
		for _, p := range pubsOf(g) {
			if filter != nil && !filter(g, p) {
				continue
			}
			for _, v := range g.OutLabel(p, attr) {
				groups[v.Text()] = append(groups[v.Text()], p)
			}
		}
		for val, members := range groups {
			var sb strings.Builder
			fmt.Fprintf(&sb, "<html><body><h1>%s %s</h1>\n<ul>\n", heading, html.EscapeString(val))
			for _, p := range members {
				fmt.Fprintf(&sb, "<li>%s</li>\n", presentPub(g, p))
			}
			sb.WriteString("</ul>\n</body></html>")
			emit(fmt.Sprintf("%s_%s.html", name, sanitize(val)), sb.String())
		}
		return nil
	}}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// rootPage builds the entry page linking to every group page.
func rootPage(title string, attrs []string) Builder {
	return Builder{Name: "root", Build: func(g *graph.Graph, emit func(string, string)) error {
		var sb strings.Builder
		fmt.Fprintf(&sb, "<html><body><h1>%s</h1>\n", html.EscapeString(title))
		for _, attr := range attrs {
			vals := map[string]bool{}
			for _, p := range pubsOf(g) {
				for _, v := range g.OutLabel(p, attr) {
					vals[v.Text()] = true
				}
			}
			var sorted []string
			for v := range vals {
				sorted = append(sorted, v)
			}
			sort.Strings(sorted)
			fmt.Fprintf(&sb, "<h2>By %s</h2>\n<ul>\n", attr)
			for _, v := range sorted {
				fmt.Fprintf(&sb, "<li><a href=%q>%s</a></li>\n",
					fmt.Sprintf("%s_%s.html", attr, sanitize(v)), html.EscapeString(v))
			}
			sb.WriteString("</ul>\n")
		}
		sb.WriteString("</body></html>")
		emit("index.html", sb.String())
		return nil
	}}
}

// abstractsPage lists every abstract.
func abstractsPage() Builder {
	return Builder{Name: "abstracts", Build: func(g *graph.Graph, emit func(string, string)) error {
		var sb strings.Builder
		sb.WriteString("<html><body><h1>Paper Abstracts</h1>\n<ul>\n")
		for _, p := range pubsOf(g) {
			title, _ := g.First(p, "title")
			abs, _ := g.First(p, "abstract")
			fmt.Fprintf(&sb, "<li><b>%s</b>: %s</li>\n", esc(title), esc(abs))
		}
		sb.WriteString("</ul>\n</body></html>")
		emit("abstracts.html", sb.String())
		return nil
	}}
}

// BibliographySite is the hand-coded equivalent of the paper's example
// homepage site (Fig. 3 + Fig. 7).
func BibliographySite() *Program {
	return &Program{Name: "bibliography", Builders: []Builder{
		rootPage("Publications", []string{"year", "category"}),
		groupPages("year", "year", "Publications from", nil),
		groupPages("category", "category", "Publications on", nil),
		abstractsPage(),
	}}
}

// BibliographySiteRecentOnly is a variant showing the procedural
// maintenance cost: restricting to recent publications requires
// copying every builder and threading the filter through by hand —
// none of the originals can be reused unchanged.
func BibliographySiteRecentOnly(minYear int64) *Program {
	recent := func(g *graph.Graph, p graph.OID) bool {
		y, ok := g.First(p, "year")
		if !ok {
			return false
		}
		n, _ := y.AsInt()
		return n >= minYear
	}
	// The root and abstracts builders must be rewritten too: they
	// enumerate publications directly.
	root := Builder{Name: "root-recent", Build: func(g *graph.Graph, emit func(string, string)) error {
		var sb strings.Builder
		sb.WriteString("<html><body><h1>Recent Publications</h1>\n<ul>\n")
		for _, p := range pubsOf(g) {
			if !recent(g, p) {
				continue
			}
			fmt.Fprintf(&sb, "<li>%s</li>\n", presentPub(g, p))
		}
		sb.WriteString("</ul>\n</body></html>")
		emit("index.html", sb.String())
		return nil
	}}
	return &Program{Name: "bibliography-recent", Builders: []Builder{
		root,
		groupPages("year", "year", "Recent publications from", recent),
		groupPages("category", "category", "Recent publications on", recent),
	}}
}
