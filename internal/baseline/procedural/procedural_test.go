package procedural

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
)

func data(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", `
collection Publications { abstract text postscript ps }
object pub1 in Publications {
    title "Alpha" author "Ann" author "Bo" year 1997
    journal "J1" category "X" abstract "a1.txt" postscript "p1.ps"
}
object pub2 in Publications {
    title "Beta" author "Cy" year 1998 booktitle "Conf" category "Y" abstract "a2.txt"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestBibliographySite(t *testing.T) {
	g := data(t)
	pages, err := BibliographySite().Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// index + 2 year pages + 2 category pages + abstracts.
	if len(pages) != 6 {
		t.Fatalf("pages = %v", keys(pages))
	}
	idx := pages["index.html"]
	for _, want := range []string{`href="year_1997.html"`, `href="category_X.html"`, "By year", "By category"} {
		if !strings.Contains(idx, want) {
			t.Errorf("index missing %q:\n%s", want, idx)
		}
	}
	y97 := pages["year_1997.html"]
	for _, want := range []string{"Publications from 1997", `<a href="p1.ps">Alpha</a>`, "Ann, Bo", "J1", "1997."} {
		if !strings.Contains(y97, want) {
			t.Errorf("year page missing %q:\n%s", want, y97)
		}
	}
	// Irregularity handled by hand-coded fallbacks: pub2 shows
	// booktitle and has no PostScript link.
	y98 := pages["year_1998.html"]
	if !strings.Contains(y98, "Conf") || strings.Contains(y98, "<a href=\"\">") {
		t.Errorf("year 1998 page wrong:\n%s", y98)
	}
	if !strings.Contains(pages["abstracts.html"], "a2.txt") {
		t.Error("abstracts page missing entries")
	}
}

func TestVariantDuplicatesBuilders(t *testing.T) {
	base := BibliographySite()
	variant := BibliographySiteRecentOnly(1998)
	if base.Effort() != 4 {
		t.Errorf("base effort = %d", base.Effort())
	}
	// Every builder of the variant had to be rewritten: no reuse.
	if variant.Effort() != len(variant.Builders) {
		t.Errorf("variant effort = %d of %d", variant.Effort(), len(variant.Builders))
	}
	g := data(t)
	pages, err := variant.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pages["index.html"], "Alpha") {
		t.Error("recent-only variant leaked 1997 publication")
	}
	if !strings.Contains(pages["index.html"], "Beta") {
		t.Error("recent-only variant missing 1998 publication")
	}
	if _, ok := pages["year_1997.html"]; ok {
		t.Error("recent-only variant generated 1997 page")
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
