// Package relational is the "RDBMS + Web interface" baseline of the
// paper's Fig. 8: a miniature relational engine with fixed-schema
// tables and a row-per-page generator. It exists to demonstrate the
// costs the paper attributes to traditional models for this workload:
// modeling irregular semistructured data in fixed relations requires
// a maximal schema padded with NULLs, multi-valued attributes need
// junction tables, and schema evolution means migrations. The package
// quantifies those costs (NULL density, lost values) so the Fig. 8
// experiment can report them.
package relational

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// Null is the relational NULL marker; the zero graph.Value serves.
var Null = graph.Value{}

// Row is one tuple.
type Row []graph.Value

// Table is a fixed-schema relation.
type Table struct {
	Name string
	Cols []string
	Rows []Row
	col  map[string]int
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name, Cols: cols, col: map[string]int{}}
	for i, c := range cols {
		t.col[c] = i
	}
	return t
}

// Insert appends a row; its length must match the schema.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Cols) {
		return fmt.Errorf("relational: table %s has %d columns, row has %d", t.Name, len(t.Cols), len(r))
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// ColIndex resolves a column name.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.col[name]
	return i, ok
}

// Get returns a named column of a row.
func (t *Table) Get(r Row, colName string) graph.Value {
	if i, ok := t.col[colName]; ok {
		return r[i]
	}
	return Null
}

// NullCount counts NULL cells — the padding cost of forcing
// irregular objects into a maximal schema.
func (t *Table) NullCount() int {
	n := 0
	for _, r := range t.Rows {
		for _, v := range r {
			if v.IsZero() {
				n++
			}
		}
	}
	return n
}

// NullDensity is the fraction of cells that are NULL.
func (t *Table) NullDensity() float64 {
	cells := len(t.Rows) * len(t.Cols)
	if cells == 0 {
		return 0
	}
	return float64(t.NullCount()) / float64(cells)
}

// Select returns the rows satisfying pred.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := NewTable(t.Name+"'", t.Cols...)
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Project returns a table with only the named columns.
func (t *Table) Project(cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.col[c]
		if !ok {
			return nil, fmt.Errorf("relational: table %s has no column %q", t.Name, c)
		}
		idx[i] = j
	}
	out := NewTable(t.Name+"'", cols...)
	for _, r := range t.Rows {
		nr := make(Row, len(cols))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// OrderBy sorts rows by a column ascending.
func (t *Table) OrderBy(col string) *Table {
	i, ok := t.col[col]
	if !ok {
		return t
	}
	out := NewTable(t.Name, t.Cols...)
	out.Rows = append(out.Rows, t.Rows...)
	sort.SliceStable(out.Rows, func(a, b int) bool {
		cmp, ok := graph.Compare(out.Rows[a][i], out.Rows[b][i])
		if !ok {
			return graph.Less(out.Rows[a][i], out.Rows[b][i])
		}
		return cmp < 0
	})
	return out
}

// HashJoin joins two tables on equality of the named columns.
func HashJoin(left *Table, lcol string, right *Table, rcol string) (*Table, error) {
	li, ok := left.col[lcol]
	if !ok {
		return nil, fmt.Errorf("relational: %s has no column %q", left.Name, lcol)
	}
	ri, ok := right.col[rcol]
	if !ok {
		return nil, fmt.Errorf("relational: %s has no column %q", right.Name, rcol)
	}
	cols := make([]string, 0, len(left.Cols)+len(right.Cols))
	for _, c := range left.Cols {
		cols = append(cols, left.Name+"."+c)
	}
	for _, c := range right.Cols {
		cols = append(cols, right.Name+"."+c)
	}
	out := NewTable(left.Name+"⋈"+right.Name, cols...)
	index := map[graph.Value][]Row{}
	for _, r := range right.Rows {
		index[r[ri]] = append(index[r[ri]], r)
	}
	for _, l := range left.Rows {
		for _, r := range index[l[li]] {
			nr := make(Row, 0, len(cols))
			nr = append(nr, l...)
			nr = append(nr, r...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// DB is a set of tables.
type DB struct {
	Tables map[string]*Table
	// LostValues counts attribute values dropped during loading
	// because a scalar column can hold only one value and no junction
	// table was declared for the attribute.
	LostValues int
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{Tables: map[string]*Table{}} }

// LoadCollection maps a graph collection into a fixed-schema table
// using the maximal-schema approach: one column per attribute in
// attrs (plus "id"); missing attributes become NULL; extra values of
// scalar attributes are lost unless the attribute appears in
// junctions, in which case a two-column junction table is created.
func (db *DB) LoadCollection(g *graph.Graph, coll string, attrs []string, junctions []string) (*Table, error) {
	isJunction := map[string]bool{}
	jt := map[string]*Table{}
	for _, j := range junctions {
		isJunction[j] = true
		t := NewTable(coll+"_"+j, "id", j)
		jt[j] = t
		db.Tables[t.Name] = t
	}
	// Junction attributes live only in their junction tables; scalar
	// columns are the remaining attrs.
	var scalarCols []string
	for _, a := range attrs {
		if !isJunction[a] {
			scalarCols = append(scalarCols, a)
		}
	}
	cols := append([]string{"id"}, scalarCols...)
	table := NewTable(coll, cols...)
	db.Tables[coll] = table
	for _, m := range g.Collection(coll) {
		if !m.IsNode() {
			continue
		}
		id := graph.Str(g.DisplayName(m.OID()))
		row := make(Row, len(cols))
		row[0] = id
		for i, attr := range scalarCols {
			vals := g.OutLabel(m.OID(), attr)
			switch len(vals) {
			case 0:
				row[i+1] = Null
			default:
				row[i+1] = vals[0]
				db.LostValues += len(vals) - 1
			}
		}
		for _, j := range junctions {
			for _, v := range g.OutLabel(m.OID(), j) {
				if err := jt[j].Insert(Row{id, v}); err != nil {
					return nil, err
				}
			}
		}
		// Attributes outside the declared schema are lost entirely.
		for _, e := range g.Out(m.OID()) {
			if !contains(attrs, e.Label) && !isJunction[e.Label] {
				db.LostValues++
			}
		}
		if err := table.Insert(row); err != nil {
			return nil, err
		}
	}
	return table, nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// MaximalSchema computes the union of attribute names over a
// collection — what a fixed relational schema for it must contain.
func MaximalSchema(g *graph.Graph, coll string) []string {
	set := map[string]bool{}
	for _, m := range g.Collection(coll) {
		if !m.IsNode() {
			continue
		}
		for _, e := range g.Out(m.OID()) {
			set[e.Label] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// PageSpec renders one page per row of a table: the "Web interface to
// a database" pattern.
type PageSpec struct {
	Table    *Table
	PathCol  string // column providing the file name
	Title    string
	BodyCols []string
}

// GeneratePages renders the pages of a spec.
func (s PageSpec) GeneratePages() map[string]string {
	pages := map[string]string{}
	for _, r := range s.Table.Rows {
		var sb strings.Builder
		fmt.Fprintf(&sb, "<html><body><h1>%s</h1>\n<table>\n", html.EscapeString(s.Title))
		for _, c := range s.BodyCols {
			v := s.Table.Get(r, c)
			cell := "NULL"
			if !v.IsZero() {
				cell = html.EscapeString(v.Text())
			}
			fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td></tr>\n", html.EscapeString(c), cell)
		}
		sb.WriteString("</table>\n</body></html>")
		pages[sanitize(s.Table.Get(r, s.PathCol).Text())+".html"] = sb.String()
	}
	return pages
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
