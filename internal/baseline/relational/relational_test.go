package relational

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
)

func data(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", `
collection Publications { }
object pub1 in Publications {
    title "Alpha" author "Ann" author "Bo" year 1997 journal "J1" category "X"
}
object pub2 in Publications {
    title "Beta" author "Cy" year 1998 booktitle "Conf" category "X" category "Y"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestMaximalSchema(t *testing.T) {
	g := data(t)
	schema := MaximalSchema(g, "Publications")
	want := []string{"author", "booktitle", "category", "journal", "title", "year"}
	if len(schema) != len(want) {
		t.Fatalf("schema = %v", schema)
	}
	for i := range want {
		if schema[i] != want[i] {
			t.Errorf("schema[%d] = %s, want %s", i, schema[i], want[i])
		}
	}
}

func TestLoadCollectionNullPaddingAndLoss(t *testing.T) {
	g := data(t)
	db := NewDB()
	table, err := db.LoadCollection(g, "Publications",
		[]string{"title", "year", "journal", "booktitle", "author"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// pub1 has no booktitle; pub2 no journal: 2 NULLs.
	if table.NullCount() != 2 {
		t.Errorf("nulls = %d, want 2", table.NullCount())
	}
	if d := table.NullDensity(); d <= 0 || d >= 1 {
		t.Errorf("density = %f", d)
	}
	// Lost: pub1's second author (scalar column) + categories outside
	// the schema (1 for pub1, 2 for pub2).
	if db.LostValues != 4 {
		t.Errorf("lost = %d, want 4", db.LostValues)
	}
}

func TestJunctionTablePreservesMultiValues(t *testing.T) {
	g := data(t)
	db := NewDB()
	_, err := db.LoadCollection(g, "Publications",
		[]string{"title", "year", "journal", "booktitle", "author", "category"},
		[]string{"author", "category"})
	if err != nil {
		t.Fatal(err)
	}
	if db.LostValues != 0 {
		t.Errorf("lost = %d, want 0 with junctions", db.LostValues)
	}
	authors := db.Tables["Publications_author"]
	if len(authors.Rows) != 3 {
		t.Errorf("author junction rows = %d, want 3", len(authors.Rows))
	}
	cats := db.Tables["Publications_category"]
	if len(cats.Rows) != 3 {
		t.Errorf("category junction rows = %d, want 3", len(cats.Rows))
	}
}

func TestSelectProjectOrder(t *testing.T) {
	g := data(t)
	db := NewDB()
	table, _ := db.LoadCollection(g, "Publications", []string{"title", "year"}, nil)
	sel := table.Select(func(r Row) bool {
		y := table.Get(r, "year")
		n, _ := y.AsInt()
		return n >= 1998
	})
	if len(sel.Rows) != 1 {
		t.Fatalf("select rows = %d", len(sel.Rows))
	}
	proj, err := sel.Project("title")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Cols) != 1 || proj.Rows[0][0] != graph.Str("Beta") {
		t.Errorf("projection = %v", proj.Rows)
	}
	if _, err := sel.Project("nosuch"); err == nil {
		t.Error("projecting missing column should fail")
	}
	ordered := table.OrderBy("year")
	if y := ordered.Get(ordered.Rows[0], "year"); y != graph.Int(1997) {
		t.Errorf("order by year first = %v", y)
	}
}

func TestHashJoin(t *testing.T) {
	g := data(t)
	db := NewDB()
	pubs, _ := db.LoadCollection(g, "Publications", []string{"title"}, []string{"category"})
	cats := db.Tables["Publications_category"]
	joined, err := HashJoin(pubs, "id", cats, "id")
	if err != nil {
		t.Fatal(err)
	}
	// pub1 x 1 category + pub2 x 2 categories = 3 rows.
	if len(joined.Rows) != 3 {
		t.Errorf("join rows = %d, want 3", len(joined.Rows))
	}
	if _, err := HashJoin(pubs, "nope", cats, "id"); err == nil {
		t.Error("bad join column should fail")
	}
}

func TestPageGeneration(t *testing.T) {
	g := data(t)
	db := NewDB()
	table, _ := db.LoadCollection(g, "Publications", []string{"title", "year", "journal"}, nil)
	pages := PageSpec{
		Table:    table,
		PathCol:  "id",
		Title:    "Publication",
		BodyCols: []string{"title", "year", "journal"},
	}.GeneratePages()
	if len(pages) != 2 {
		t.Fatalf("pages = %d", len(pages))
	}
	p1 := pages["pub1.html"]
	if !strings.Contains(p1, "Alpha") || !strings.Contains(p1, "1997") {
		t.Errorf("pub1 page:\n%s", p1)
	}
	// NULLs are visible in the page — the irregularity leaks to users.
	if !strings.Contains(pages["pub2.html"], "NULL") {
		t.Error("pub2 page should show NULL journal")
	}
}

func TestInsertArityCheck(t *testing.T) {
	table := NewTable("t", "a", "b")
	if err := table.Insert(Row{graph.Int(1)}); err == nil {
		t.Error("short row should fail")
	}
}
