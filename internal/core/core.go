// Package core is STRUDEL's top-level API, wiring the paper's
// architecture (Fig. 1) end to end: wrappers feed the mediator, which
// warehouses an integrated data graph in the repository; one or more
// site-definition queries produce the site graph; the HTML generator
// renders the browsable site; the site schema supports verification
// of integrity constraints; and the decomposed query supports dynamic
// (click-time) evaluation.
//
// Typical use:
//
//	b := core.NewBuilder("homepage")
//	b.AddSource("refs.bib", "bibtex", bibText)
//	b.AddQuery(queryText)
//	b.AddTemplate("RootPage", rootTemplate)
//	res, err := b.Build()
//	res.Site.WriteTo("out/")
package core

import (
	"fmt"
	"time"

	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/mediator"
	"strudel/internal/optimizer"
	"strudel/internal/pool"
	"strudel/internal/repository"
	"strudel/internal/schema"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/template"
)

// Builder assembles a STRUDEL site from sources, queries, templates
// and constraints.
type Builder struct {
	name        string
	repo        *repository.Repository
	med         *mediator.Mediator
	dataGraph   *graph.Graph // explicit data graph, bypassing the mediator
	queries     []*struql.Query
	templates   map[string]*template.Template
	embedOnly   map[string]bool
	index       string
	rootColl    string
	constraints []schema.Constraint
	resolver    func(string) (string, error)
	optimize    bool
	introspect  bool
	workers     int
	telem       *telemetry.Registry

	// Differential evaluation state (dataGraph mode only): journals of
	// in-place data-graph mutations, and the materialized binding
	// relations primed by the last full build. matLog feeds
	// RebuildWithDelta's differential fast path, dynLog feeds
	// RebuildDynamic's selective cache eviction; they are separate
	// because each consumer drains its journal independently.
	differential bool
	matLog       *graph.ChangeLog
	dynLog       *graph.ChangeLog
	mat          *struql.Materialized
}

// NewBuilder creates a builder. The repository is memory-only; use
// Repository() to persist it.
func NewBuilder(name string) *Builder {
	repo := repository.New("")
	return &Builder{
		name:         name,
		repo:         repo,
		med:          mediator.New(repo, "DataGraph"),
		templates:    map[string]*template.Template{},
		embedOnly:    map[string]bool{},
		differential: true,
	}
}

// SetName renames the site. Manifest loaders create the builder before
// the naming directive is parsed, so the name must be settable after
// the fact; it feeds build traces, explain reports and pprof labels.
func (b *Builder) SetName(name string) { b.name = name }

// Repository exposes the underlying repository (e.g. for Save).
func (b *Builder) Repository() *repository.Repository { return b.repo }

// Registry exposes the predicate registry for custom predicates.
func (b *Builder) Registry() *struql.Registry { return b.med.Registry() }

// AddSource registers an external source with a built-in wrapper kind
// ("bibtex", "csv", "structured", "html", "datadef").
func (b *Builder) AddSource(name, kind, content string) error {
	return b.med.AddSource(name, kind, content)
}

// AddSourceFunc registers an external source whose content comes from
// a fetch function called on every refresh — a remote source that may
// change, fail, or hang. Pair with SetResilience to bound how failures
// are handled.
func (b *Builder) AddSourceFunc(name, kind string, fetch func() (string, error)) error {
	return b.med.AddSourceFunc(name, kind, fetch)
}

// SetResilience configures the mediator's fault tolerance: retries
// with backoff, per-fetch deadlines, and per-source circuit breakers.
// The zero value means one attempt, no deadline, no breakers.
func (b *Builder) SetResilience(cfg mediator.Resilience) { b.med.SetResilience(cfg) }

// LastRefresh reports how the most recent mediated refresh went —
// which sources are fresh, degraded (serving last-good data), or
// failed. Nil before the first refresh or when SetDataGraph bypasses
// the mediator.
func (b *Builder) LastRefresh() *mediator.RefreshReport { return b.med.LastReport() }

// AddMapping registers a GAV mediation query (its INPUT names a
// source; its output builds the integrated data graph).
func (b *Builder) AddMapping(querySrc string) error {
	q, err := struql.Parse(querySrc)
	if err != nil {
		return err
	}
	return b.med.AddMapping(q)
}

// SetDataGraph supplies the data graph directly, bypassing wrappers
// and mediation (useful when the data is already in graph form). The
// builder watches the graph's mutation journal from here on, which is
// what lets RebuildWithDelta maintain the site differentially and
// RebuildDynamic evict caches selectively.
func (b *Builder) SetDataGraph(g *graph.Graph) {
	if b.dataGraph != nil {
		if b.matLog != nil {
			b.dataGraph.Unwatch(b.matLog)
		}
		if b.dynLog != nil {
			b.dataGraph.Unwatch(b.dynLog)
		}
	}
	b.dataGraph = g
	b.mat = nil
	b.matLog, b.dynLog = graph.NewChangeLog(), graph.NewChangeLog()
	g.Watch(b.matLog)
	g.Watch(b.dynLog)
}

// SetDifferential toggles differential site maintenance (on by
// default). When on, a full build over a SetDataGraph graph primes
// materialized binding relations, and RebuildWithDelta propagates the
// journaled mutations through them instead of re-evaluating the
// site-definition queries — falling back to a full rebuild whenever
// the maintained state cannot be trusted.
func (b *Builder) SetDifferential(on bool) {
	b.differential = on
	if !on {
		b.mat = nil
	}
}

// BindingDump renders the maintained binding relations per query
// block, in from-scratch order, or nil when no materialization is
// primed. Test and debug surface: two builders over identical data
// must dump identically, whether the relations were primed by a full
// build or maintained through deltas.
func (b *Builder) BindingDump() map[int][]string {
	if b.mat == nil || !b.mat.Valid() {
		return nil
	}
	return b.mat.BindingDump()
}

// AddQuery appends a site-definition query. Multiple queries compose:
// they build parts of the same site graph, with stable Skolem
// identities across them.
func (b *Builder) AddQuery(src string) error {
	q, err := struql.Parse(src)
	if err != nil {
		return err
	}
	b.queries = append(b.queries, q)
	// Any primed materialization describes the old query set.
	b.mat = nil
	return nil
}

// AddTemplate registers an HTML template under an association key
// (object name, Skolem function, or collection).
func (b *Builder) AddTemplate(key, src string) error {
	t, err := template.Parse(key, src)
	if err != nil {
		return err
	}
	b.templates[key] = t
	return nil
}

// AddTemplates registers pre-parsed templates.
func (b *Builder) AddTemplates(ts map[string]*template.Template) {
	for k, t := range ts {
		b.templates[k] = t
	}
}

// SetEmbedOnly marks association keys whose objects are always
// embedded, never standalone pages.
func (b *Builder) SetEmbedOnly(keys ...string) {
	for _, k := range keys {
		b.embedOnly[k] = true
	}
}

// SetIndex names the association key rendered as index.html.
func (b *Builder) SetIndex(key string) { b.index = key }

// SetRootCollection names the collection holding the site roots, used
// by dynamic evaluation.
func (b *Builder) SetRootCollection(coll string) { b.rootColl = coll }

// AddConstraint registers an integrity constraint checked at build
// time against both the site schema and the concrete site graph.
func (b *Builder) AddConstraint(c schema.Constraint) {
	b.constraints = append(b.constraints, c)
}

// SetFileResolver lets text/HTML file atoms embed their contents.
func (b *Builder) SetFileResolver(fn func(string) (string, error)) { b.resolver = fn }

// SetWorkers bounds the parallelism of the whole build pipeline —
// query evaluation, page generation, and dynamic materialization all
// share one worker pool per build. 0 means runtime.GOMAXPROCS(0), 1
// runs the pipeline sequentially. The built site is byte-identical at
// any worker count.
func (b *Builder) SetWorkers(n int) { b.workers = n }

// buildPool creates the per-build worker pool, instrumented when
// telemetry is attached and named for pprof goroutine labels.
func (b *Builder) buildPool() *pool.Pool {
	p := pool.New(b.workers)
	p.SetName(b.name)
	if b.telem != nil {
		p.Instrument(b.telem)
	}
	return p
}

// EnableOptimizer routes every where conjunction through the
// cost-based query optimizer with the repository's indexes instead of
// the interpreter's built-in greedy strategy (paper Sec. 2.4).
func (b *Builder) EnableOptimizer() { b.optimize = true }

// EnableIntrospection makes builds record page provenance: per
// constructed site-graph node, the Skolem function, binding tuples and
// consumed source objects (Result.PageProvenance, `strudel why`,
// /debug/provenance). Off by default — recording costs one map update
// per construction clause per binding row.
func (b *Builder) EnableIntrospection() { b.introspect = true }

// SetTelemetry attaches a metrics registry: the repository, the
// optimizer (when enabled) and dynamic evaluation all report into it,
// and builds are traced span by span regardless. Pass nil to detach.
func (b *Builder) SetTelemetry(reg *telemetry.Registry) {
	b.telem = reg
	b.med.Instrument(reg)
	if reg != nil {
		b.repo.Instrument(reg)
	}
}

// Stats reports what a build did. The phase durations are the
// durations of the corresponding spans of the build trace (see
// Result.Trace), so a printed trace timeline and Stats always agree.
type Stats struct {
	DataNodes, DataEdges int
	SiteNodes, SiteEdges int
	Pages                int
	// PagesReused and PagesPruned report incremental-rebuild outcomes:
	// pages carried over unrendered from the previous result, and
	// previous paths no longer produced. Both are 0 for full builds.
	PagesReused, PagesPruned int
	Bindings                 int
	MediationTime            time.Duration
	QueryTime                time.Duration
	VerifyTime               time.Duration
	GenerateTime             time.Duration
	TotalTime                time.Duration
	// Per-phase heap-allocation deltas (bytes), sampled from the
	// process-wide runtime allocation counter at the same boundaries
	// as the durations. Concurrent activity (served requests, another
	// build) is attributed to whichever phase was running — treat
	// these as profiles, not accounting.
	MediationAlloc uint64
	QueryAlloc     uint64
	VerifyAlloc    uint64
	GenerateAlloc  uint64
	TotalAlloc     uint64
}

// Result is a completed build.
type Result struct {
	DataGraph *graph.Graph
	SiteGraph *graph.Graph
	Schema    *schema.SiteSchema
	Site      *sitegen.Site
	Stats     Stats
	// BuiltAt is when the build (or rebuild) completed — including
	// no-op rebuilds, where the content was re-validated as current.
	// The serving layer reports the age of served content against it.
	BuiltAt time.Time
	// Trace is the build-scoped span tree (mediation → query → verify
	// → generate); Trace.Summary() renders a timeline.
	Trace *telemetry.Trace
	// Refresh reports per-source mediation outcomes (fresh, degraded
	// to last-good data, failed) and, from the second refresh on, the
	// warehouse-level data delta. Nil when SetDataGraph bypassed the
	// mediator.
	Refresh *mediator.RefreshReport
	// Incremental describes how a Rebuild proceeded (delta, impact,
	// page reuse). Nil for full Build calls.
	Incremental *RebuildInfo
	// Provenance holds the per-node derivation records collected when
	// EnableIntrospection is set; nil otherwise. Use PageProvenance for
	// the page-level view.
	Provenance *struql.Provenance
	// Violations are constraint failures; Build returns them without
	// error so callers can decide whether to publish anyway.
	Violations []error
	// DomainWarnings flag variables of the site-definition queries
	// that are not range-restricted and therefore range over the
	// active domain (struql.RangeCheckWith).
	DomainWarnings []struql.DomainWarning
}

// dataGraphFor produces the integrated data graph: the explicit one if
// set, else the mediator's warehouse.
func (b *Builder) buildDataGraph() (*graph.Graph, error) {
	if b.dataGraph != nil {
		return b.dataGraph, nil
	}
	return b.med.Refresh()
}

// optimizerContext indexes the data graph and builds the planning
// context the optimizer hook evaluates conjunctions through.
func (b *Builder) optimizerContext(data *graph.Graph) *optimizer.Context {
	b.repo.Database().Attach(data)
	b.repo.Invalidate(data.Name())
	return &optimizer.Context{
		Graph:     data,
		Index:     b.repo.Index(data.Name()),
		Registry:  b.Registry(),
		Telemetry: b.telem,
	}
}

// queryRun is one site-definition query's per-evaluation statistics.
type queryRun struct {
	bindings int
	newNodes int
	plan     *struql.PlanNode // nil unless profiling
}

// queryEval is the result of running all site-definition queries.
type queryEval struct {
	site     *graph.Graph
	bindings int
	perQuery []queryRun
	// prov records page provenance; nil unless EnableIntrospection.
	prov *struql.Provenance
}

// evalQueries runs the site-definition queries into one site graph,
// tracing each query as a child span of sp (which may be nil). With
// profile set, every query carries an EXPLAIN profiler and the
// per-block plans are returned; when introspection is enabled, node
// provenance is recorded alongside.
func (b *Builder) evalQueries(data *graph.Graph, sp *telemetry.Span, p *pool.Pool, profile bool, caps []*struql.Capture) (*queryEval, error) {
	if len(b.queries) == 0 {
		return nil, fmt.Errorf("core: site %q has no site-definition query", b.name)
	}
	outName := b.queries[0].Output
	if outName == "" {
		outName = b.name + "-site"
	}
	qe := &queryEval{site: data.NewSibling(outName)}
	opts := &struql.Options{Output: qe.site, Registry: b.Registry(), Pool: p}
	if b.optimize {
		// Index the data graph and plan every conjunction against it.
		octx := b.optimizerContext(data)
		opts.WherePlanner = optimizer.Hook(octx)
		if profile {
			opts.PlannerProfiled = optimizer.ProfiledHook(octx)
		}
	}
	if b.introspect {
		qe.prov = struql.NewProvenance()
		opts.Provenance = qe.prov
	}
	for i, q := range b.queries {
		var prof *struql.Profiler
		if profile {
			prof = struql.NewProfiler()
		}
		opts.Profiler = prof
		opts.Capture = nil
		if caps != nil {
			opts.Capture = caps[i]
		}
		var qs *telemetry.Span
		if sp != nil {
			qs = sp.Child(fmt.Sprintf("query[%d]", i))
		}
		res, err := struql.Eval(q, data, opts)
		if qs != nil {
			if err == nil {
				qs.SetAttr("bindings", res.Bindings)
				qs.SetAttr("new_nodes", res.NewNodes)
			}
			qs.Finish()
		}
		if err != nil {
			return nil, fmt.Errorf("core: evaluating site query: %w", err)
		}
		qe.bindings += res.Bindings
		qe.perQuery = append(qe.perQuery, queryRun{
			bindings: res.Bindings,
			newNodes: res.NewNodes,
			plan:     prof.Plan(),
		})
	}
	return qe, nil
}

// canDifferential reports whether a full build should prime
// differential state: an explicit data graph whose journal is watched,
// with the stock interpreter (the materialized plans replicate its
// greedy ordering) and no provenance recording (which the replica does
// not reproduce).
func (b *Builder) canDifferential() bool {
	return b.differential && b.dataGraph != nil && b.matLog != nil &&
		!b.optimize && !b.introspect && len(b.queries) > 0
}

// captureSet allocates one binding capture per query when the build
// should prime differential state, else nil.
func (b *Builder) captureSet() []*struql.Capture {
	if !b.canDifferential() {
		return nil
	}
	caps := make([]*struql.Capture, len(b.queries))
	for i := range caps {
		caps[i] = struql.NewCapture()
	}
	return caps
}

// primeDifferential rebuilds the materialized binding relations from a
// completed full evaluation and resets the journal baseline to "now".
func (b *Builder) primeDifferential(data, site *graph.Graph, caps []*struql.Capture) {
	b.mat = nil
	if caps == nil {
		return
	}
	mat, err := struql.NewMaterialized(b.queries, data, site, b.Registry(), caps, 0)
	if err != nil {
		return // differential stays off until the next full build
	}
	b.matLog.Take() // the site now reflects everything journaled so far
	b.mat = mat
}

// siteSchema merges the per-query schemas.
func (b *Builder) siteSchema() *schema.SiteSchema {
	schemas := make([]*schema.SiteSchema, len(b.queries))
	for i, q := range b.queries {
		schemas[i] = schema.Build(q)
	}
	return schema.Merge(schemas...)
}

// Build runs the full pipeline: mediate, query, verify, generate.
// Each phase is a child span of the build trace (Result.Trace), and
// the Stats durations are those spans' durations — the trace timeline
// and Stats cannot disagree.
func (b *Builder) Build() (*Result, error) {
	tr := telemetry.NewTrace("build " + b.name)
	res := &Result{Trace: tr}
	pl := b.buildPool()
	a0 := telemetry.AllocBytes()
	defer func() {
		tr.Finish()
		res.Stats.TotalTime = tr.Duration()
		res.Stats.TotalAlloc = telemetry.AllocBytes() - a0
		res.BuiltAt = time.Now()
	}()

	tr.Root().SetAttr("site", b.name)
	tr.Root().SetAttr("workers", pl.Workers())

	med := tr.Root().Child("mediation")
	data, err := b.buildDataGraph()
	if err == nil {
		ds := data.Stats()
		med.SetAttr("nodes", ds.Nodes)
		med.SetAttr("edges", ds.Edges)
	}
	med.Finish()
	res.Stats.MediationTime = med.Duration()
	aMed := telemetry.AllocBytes()
	res.Stats.MediationAlloc = aMed - a0
	if err != nil {
		return nil, err
	}
	res.DataGraph = data
	if b.dataGraph == nil {
		res.Refresh = b.med.LastReport()
	}

	qsp := tr.Root().Child("query")
	caps := b.captureSet()
	qe, err := b.evalQueries(data, qsp, pl, false, caps)
	if err == nil {
		qsp.SetAttr("bindings", qe.bindings)
	}
	qsp.Finish()
	res.Stats.QueryTime = qsp.Duration()
	aQuery := telemetry.AllocBytes()
	res.Stats.QueryAlloc = aQuery - aMed
	if err != nil {
		return nil, err
	}
	site := qe.site
	res.SiteGraph = site
	res.Stats.Bindings = qe.bindings
	res.Provenance = qe.prov

	ver := tr.Root().Child("verify")
	res.Schema = b.siteSchema()
	res.Violations = schema.VerifyAll(res.Schema, site, b.constraints)
	for _, q := range b.queries {
		res.DomainWarnings = append(res.DomainWarnings,
			struql.RangeCheckWith(q, data.HasCollection)...)
	}
	ver.SetAttr("violations", len(res.Violations))
	for _, v := range res.Violations {
		ver.AddEvent("violation", "error", v.Error())
	}
	ver.Finish()
	res.Stats.VerifyTime = ver.Duration()
	aVerify := telemetry.AllocBytes()
	res.Stats.VerifyAlloc = aVerify - aQuery

	gsp := tr.Root().Child("generate")
	gen := sitegen.New(site, sitegen.Config{
		Templates:    b.templates,
		EmbedOnly:    b.embedOnly,
		Index:        b.index,
		FileResolver: b.resolver,
		Pool:         pl,
	})
	htmlSite, err := gen.Generate()
	if err == nil {
		gsp.SetAttr("pages", len(htmlSite.Pages))
	}
	gsp.Finish()
	res.Stats.GenerateTime = gsp.Duration()
	res.Stats.GenerateAlloc = telemetry.AllocBytes() - aVerify
	if err != nil {
		return nil, err
	}
	res.Site = htmlSite

	b.primeDifferential(data, site, caps)

	ds, ss := data.Stats(), site.Stats()
	res.Stats.DataNodes, res.Stats.DataEdges = ds.Nodes, ds.Edges
	res.Stats.SiteNodes, res.Stats.SiteEdges = ss.Nodes, ss.Edges
	res.Stats.Pages = len(htmlSite.Pages)
	return res, nil
}

// PageProvenance returns the provenance of one generated page, looked
// up by path ("YearPage_1997.html", with or without the extension) or
// by the page object's symbolic name ("YearPage(1997)"). Requires a
// build with EnableIntrospection set.
func (r *Result) PageProvenance(page string) (*sitegen.PageProvenance, bool) {
	if r == nil || r.Provenance == nil || r.Site == nil || r.SiteGraph == nil {
		return nil, false
	}
	for _, path := range []string{page, page + ".html"} {
		if pp, ok := sitegen.PageProvenanceFor(r.SiteGraph, r.Site, path, r.Provenance); ok {
			return pp, true
		}
	}
	for path, pg := range r.Site.Pages {
		if pg.Name == page {
			return sitegen.PageProvenanceFor(r.SiteGraph, r.Site, path, r.Provenance)
		}
	}
	return nil, false
}

// BuildDynamic prepares click-time evaluation instead of full
// materialization: the first site-definition query is decomposed into
// per-page queries over the (mediated) data graph, and a renderer
// using the builder's templates is returned. RootCollection must be
// set (the precomputed entry points).
func (b *Builder) BuildDynamic() (*incremental.Renderer, error) {
	if len(b.queries) != 1 {
		return nil, fmt.Errorf("core: dynamic evaluation needs exactly one site-definition query, have %d", len(b.queries))
	}
	if b.rootColl == "" {
		return nil, fmt.Errorf("core: dynamic evaluation needs SetRootCollection")
	}
	data, err := b.buildDataGraph()
	if err != nil {
		return nil, err
	}
	if b.dynLog != nil {
		// The decomposition reflects the data as of now.
		b.dynLog.Take()
	}
	dec := incremental.Decompose(b.queries[0], data, b.Registry())
	dec.UsePool(b.buildPool())
	if b.optimize {
		dec.UsePlanner(optimizer.Hook(b.optimizerContext(data)))
	}
	r := &incremental.Renderer{
		Dec:       dec,
		Templates: b.templates,
		EmbedOnly: b.embedOnly,
		BuiltAt:   time.Now(),
	}
	if b.telem != nil {
		r.Instrument(b.telem)
	}
	return r, nil
}
