package core

import (
	"strings"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

func bibBuilder(t *testing.T, n int) *Builder {
	t.Helper()
	spec := workload.BibliographySpec()
	b := NewBuilder("homepage")
	b.SetDataGraph(workload.Bibliography(n, 42))
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetEmbedOnly("PaperPresentation")
	b.SetIndex(spec.Index)
	b.SetRootCollection(spec.RootCollection)
	return b
}

func TestBuildEndToEnd(t *testing.T) {
	b := bibBuilder(t, 25)
	b.AddConstraint(schema.Reachable{Root: "RootPage"})
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pages == 0 || res.Stats.SiteNodes == 0 || res.Stats.Bindings == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	idx, ok := res.Site.Pages["index.html"]
	if !ok {
		t.Fatalf("no index page: %v", res.Site.Paths())
	}
	if !strings.Contains(idx.HTML, "Publications by Year") {
		t.Errorf("index wrong:\n%s", idx.HTML)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	if len(res.Schema.Funcs) != 6 {
		t.Errorf("schema funcs = %v", res.Schema.Funcs)
	}
}

func TestBuildFromSources(t *testing.T) {
	b := NewBuilder("org")
	src := workload.Organization(20, 5, 3, 9)
	for _, s := range []struct{ name, kind, content string }{
		{"people.csv", "csv", src.PeopleCSV},
		{"departments.csv", "csv", src.DepartmentsCSV},
		{"projects.txt", "structured", src.ProjectsTxt},
	} {
		if err := b.AddSource(s.name, s.kind, s.content); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
	}
	spec := workload.OrgSpec(false)
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetIndex(spec.Index)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 20 person pages + 5 project pages + 3 dept pages + home +
	// 2 indexes.
	if res.Stats.Pages != 31 {
		t.Errorf("pages = %d, want 31: %v", res.Stats.Pages, res.Site.Paths())
	}
	// A person page links to their department page.
	var person string
	for path, p := range res.Site.Pages {
		if strings.HasPrefix(path, "PersonPage") {
			person = p.HTML
			break
		}
	}
	if !strings.Contains(person, "department page</a>") {
		t.Errorf("person page missing dept link:\n%s", person)
	}
}

func TestMultiQueryComposition(t *testing.T) {
	// The suciu example: a second query adds a navigation bar to the
	// site graph built by the first.
	b := NewBuilder("composed")
	b.SetDataGraph(workload.Bibliography(5, 1))
	if err := b.AddQuery(`
INPUT BIBTEX
WHERE Publications(x)
CREATE Page(x)
LINK Page(x) -> "self" -> x
COLLECT Pages(Page(x))
OUTPUT Site`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery(`
INPUT BIBTEX
CREATE NavBar()
WHERE Publications(x)
CREATE Page(x)
LINK NavBar() -> "entry" -> Page(x),
     Page(x) -> "nav" -> NavBar()
OUTPUT Site`); err != nil {
		t.Fatal(err)
	}
	b.AddTemplate("Page", `page`)
	b.AddTemplate("NavBar", `nav`)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nav, ok := res.SiteGraph.NodeByName("NavBar()")
	if !ok {
		t.Fatal("NavBar missing")
	}
	if len(res.SiteGraph.OutLabel(nav, "entry")) != 5 {
		t.Error("nav entries wrong")
	}
	// Composition shares Skolem identity: the Page(x) nodes got nav
	// edges from the second query.
	for _, m := range res.SiteGraph.Collection("Pages") {
		if len(res.SiteGraph.OutLabel(m.OID(), "nav")) != 1 {
			t.Error("page missing nav edge")
		}
	}
	if len(res.Schema.Funcs) != 2 {
		t.Errorf("merged schema funcs = %v", res.Schema.Funcs)
	}
}

func TestConstraintViolationsReported(t *testing.T) {
	b := bibBuilder(t, 5)
	b.AddConstraint(schema.Forbid{Label: "proprietary"})
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 3 query copies all labels through an arc variable, so
	// the conservative schema check flags it; whether the graph check
	// also fires depends on the generated data.
	if len(res.Violations) == 0 {
		t.Error("expected a conservative violation")
	}
}

func TestBuildDynamic(t *testing.T) {
	b := bibBuilder(t, 10)
	r, err := b.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	roots, err := r.Dec.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("roots = %v", roots)
	}
	html, err := r.RenderPage(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "Publications by Year") {
		t.Errorf("dynamic root:\n%s", html)
	}
}

func TestBuildErrors(t *testing.T) {
	b := NewBuilder("x")
	b.SetDataGraph(graph.New("g"))
	if _, err := b.Build(); err == nil {
		t.Error("build without query should fail")
	}
	if err := b.AddQuery("WHERE ((("); err == nil {
		t.Error("bad query should fail")
	}
	if err := b.AddTemplate("t", "<SIF x>"); err == nil {
		t.Error("bad template should fail")
	}
	if err := b.AddMapping("WHERE ((("); err == nil {
		t.Error("bad mapping should fail")
	}
	if _, err := b.BuildDynamic(); err == nil {
		t.Error("dynamic without query should fail")
	}
	b2 := NewBuilder("y")
	b2.SetDataGraph(graph.New("g"))
	b2.AddQuery(`WHERE C(x) COLLECT D(x)`)
	if _, err := b2.BuildDynamic(); err == nil {
		t.Error("dynamic without root collection should fail")
	}
}

func TestMultipleVersionsFromSameData(t *testing.T) {
	// The paper's headline experiment: the sports-only site derives
	// from the same data with two extra predicates and identical
	// templates.
	data := workload.Articles(60, 3)
	build := func(sports bool) *Result {
		spec := workload.ArticleSpec(sports)
		b := NewBuilder(spec.Name)
		b.SetDataGraph(data)
		if err := b.AddQuery(spec.Query); err != nil {
			t.Fatal(err)
		}
		b.AddTemplates(spec.Templates)
		b.SetIndex(spec.Index)
		res, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := build(false)
	sports := build(true)
	if sports.Stats.Pages >= full.Stats.Pages {
		t.Errorf("sports site (%d pages) should be smaller than full (%d)",
			sports.Stats.Pages, full.Stats.Pages)
	}
	// Every sports page's sections include sports articles only.
	for path := range sports.Site.Pages {
		if strings.HasPrefix(path, "SectionPage") && !strings.Contains(path, "sports") {
			// Non-sports sections may still exist (multi-section
			// articles appear in all their sections), which matches
			// the paper's sports-only site structure.
			break
		}
	}
}

func TestDomainWarningsSurfaced(t *testing.T) {
	b := NewBuilder("w")
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "x", graph.Str("v"))
	b.SetDataGraph(g)
	// The complement query is domain-dependent in all three variables.
	if err := b.AddQuery(`
WHERE not(p -> l -> q)
CREATE F(p), F(q)
LINK F(p) -> l -> F(q)`); err != nil {
		t.Fatal(err)
	}
	b.AddTemplate("F", "x")
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DomainWarnings) != 3 {
		t.Errorf("warnings = %v", res.DomainWarnings)
	}
}

func TestOptimizedBuildMatchesInterpreter(t *testing.T) {
	// Routing the where stage through the cost-based optimizer must
	// not change the generated site.
	plain := bibBuilder(t, 30)
	resPlain, err := plain.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := bibBuilder(t, 30)
	opt.EnableOptimizer()
	resOpt, err := opt.Build()
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.SiteGraph.DumpString() != resOpt.SiteGraph.DumpString() {
		t.Error("optimized evaluation changed the site graph")
	}
	if len(resPlain.Site.Pages) != len(resOpt.Site.Pages) {
		t.Errorf("pages %d vs %d", len(resPlain.Site.Pages), len(resOpt.Site.Pages))
	}
	for path, p := range resPlain.Site.Pages {
		if resOpt.Site.Pages[path] == nil || resOpt.Site.Pages[path].HTML != p.HTML {
			t.Errorf("page %s differs under optimizer", path)
		}
	}
}

func TestOptimizedBuildMatchesInterpreterCNN(t *testing.T) {
	data := workload.Articles(60, 3)
	build := func(opt bool) *Result {
		spec := workload.ArticleSpec(false)
		b := NewBuilder(spec.Name)
		b.SetDataGraph(data)
		if err := b.AddQuery(spec.Query); err != nil {
			t.Fatal(err)
		}
		b.AddTemplates(spec.Templates)
		b.SetIndex(spec.Index)
		if opt {
			b.EnableOptimizer()
		}
		res, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, opt := build(false), build(true)
	if plain.SiteGraph.DumpString() != opt.SiteGraph.DumpString() {
		t.Error("optimizer changed the CNN site graph")
	}
}

// TestBuildTraceConsistentWithStats checks the contract behind the
// -trace flag: the Stats phase durations are the trace spans'
// durations, so a printed timeline and Stats cannot disagree.
func TestBuildTraceConsistentWithStats(t *testing.T) {
	res, err := bibBuilder(t, 25).Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no build trace")
	}
	phases := map[string]time.Duration{}
	for _, sp := range res.Trace.Root().Children() {
		phases[sp.Name] = sp.Duration()
	}
	for name, want := range map[string]time.Duration{
		"mediation": res.Stats.MediationTime,
		"query":     res.Stats.QueryTime,
		"verify":    res.Stats.VerifyTime,
		"generate":  res.Stats.GenerateTime,
	} {
		if got, ok := phases[name]; !ok || got != want {
			t.Errorf("phase %s: span %v, stats %v", name, got, want)
		}
	}
	if sum := res.Stats.MediationTime + res.Stats.QueryTime +
		res.Stats.VerifyTime + res.Stats.GenerateTime; res.Stats.TotalTime < sum {
		t.Errorf("total %v < phase sum %v", res.Stats.TotalTime, sum)
	}
	summary := res.Trace.Summary()
	for _, want := range []string{"build homepage", "mediation", "query[0]", "verify", "generate"} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q:\n%s", want, summary)
		}
	}
}

// TestSetTelemetryWiresPipeline builds with the optimizer under a
// registry and checks every layer reported: plan choices, index
// builds and lookups, and (via BuildDynamic) the dynamic cache.
func TestSetTelemetryWiresPipeline(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := bibBuilder(t, 25)
	b.EnableOptimizer()
	b.SetTelemetry(reg)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"strudel_optimizer_plan_choice_total{method=",
		"strudel_optimizer_step_rows_total{kind=\"actual\"}",
		"strudel_repository_index_builds_total 1",
		"strudel_repository_index_lookups_total{index=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	// Dynamic evaluation reports the page cache into the same registry.
	db := bibBuilder(t, 10)
	db.EnableOptimizer()
	db.SetTelemetry(reg)
	r, err := db.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	roots, err := r.Dec.Roots(workload.BibliographySpec().RootCollection)
	if err != nil || len(roots) == 0 {
		t.Fatalf("roots = %v, %v", roots, err)
	}
	if _, err := r.RenderPage(roots[0]); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	reg.WritePrometheus(&sb)
	out = sb.String()
	for _, want := range []string{
		`strudel_dynamic_cache_events_total{event="miss"}`,
		"strudel_dynamic_render_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dynamic metrics missing %q:\n%s", want, out)
		}
	}
}
