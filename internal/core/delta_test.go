package core

import (
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

// retitle swaps one publication's title in place and returns the
// corresponding conservative delta.
func retitle(t *testing.T, g *graph.Graph, name, newTitle string) *graph.Delta {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("%s missing", name)
	}
	old, ok := g.First(id, "title")
	if !ok {
		t.Fatalf("%s has no title", name)
	}
	if !g.RemoveEdge(id, "title", old) {
		t.Fatalf("cannot remove %s title", name)
	}
	if err := g.AddEdge(id, "title", graph.Str(newTitle)); err != nil {
		t.Fatal(err)
	}
	return &graph.Delta{ChangedObjects: []string{name}, TouchedLabels: []string{"title"}}
}

// TestRebuildWithDeltaSelective is the regression guard of the delta
// pipeline: touching one object re-renders only pages the schema
// analysis marks affected — verified through the telemetry counters —
// and the result is byte-identical to a from-scratch build.
func TestRebuildWithDeltaSelective(t *testing.T) {
	const n = 30
	reg := telemetry.NewRegistry()
	b := bibBuilder(t, n)
	b.SetTelemetry(reg)
	// Pin the query-re-evaluation path: with differential maintenance on
	// (the default, covered by TestRebuildWithDeltaDifferential and the
	// top-level suite) the journal fast path would take over.
	b.SetDifferential(false)
	data := workload.Bibliography(n, 42)
	b.SetDataGraph(data)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	delta := retitle(t, data, "pub7", "A Fresh Title")
	res, err := b.RebuildWithDelta(prev, delta)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Incremental
	if info == nil || info.Mode != "selective" {
		t.Fatalf("incremental info = %+v, want selective mode", info)
	}
	if info.Site.Reused == 0 {
		t.Fatal("a one-object touch must reuse pages")
	}
	if info.Site.Rendered >= len(res.Site.Pages) {
		t.Fatalf("rendered %d of %d pages — not selective", info.Site.Rendered, len(res.Site.Pages))
	}

	// Guard: every re-rendered page's class lies in the schema
	// analysis's render closure — the delta rebuild renders no page the
	// analysis does not mark affected.
	closure := info.Impact.RenderClosure(res.Schema)
	for _, path := range info.Site.RenderedPaths {
		p := res.Site.Pages[path]
		if p == nil {
			t.Fatalf("rendered path %s missing from site", path)
		}
		class := p.Name
		if i := strings.IndexByte(class, '('); i > 0 {
			class = class[:i]
		}
		if !closure[class] {
			t.Errorf("page %s (class %s) re-rendered outside the render closure %v", path, class, closure)
		}
	}

	// The telemetry counters saw the same outcome the stats report.
	rendered := reg.Counter("strudel_delta_pages_total",
		"Pages processed by incremental rebuilds, by outcome (rendered, reused, pruned).",
		"action", "rendered").Value()
	reused := reg.Counter("strudel_delta_pages_total",
		"Pages processed by incremental rebuilds, by outcome (rendered, reused, pruned).",
		"action", "reused").Value()
	if int(rendered) != info.Site.Rendered || int(reused) != info.Site.Reused {
		t.Errorf("counters rendered=%d reused=%d, stats rendered=%d reused=%d",
			rendered, reused, info.Site.Rendered, info.Site.Reused)
	}
	if res.Stats.PagesReused != info.Site.Reused {
		t.Errorf("Stats.PagesReused = %d, want %d", res.Stats.PagesReused, info.Site.Reused)
	}

	// Byte-identical to a from-scratch build over identically edited data.
	fresh := bibBuilder(t, n)
	freshData := workload.Bibliography(n, 42)
	retitle(t, freshData, "pub7", "A Fresh Title")
	fresh.SetDataGraph(freshData)
	want, err := fresh.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Site.Pages) != len(want.Site.Pages) {
		t.Fatalf("delta site has %d pages, full build has %d", len(res.Site.Pages), len(want.Site.Pages))
	}
	for path, wp := range want.Site.Pages {
		gp := res.Site.Pages[path]
		if gp == nil || gp.HTML != wp.HTML {
			t.Errorf("%s differs from full rebuild", path)
		}
	}
}

// TestRebuildWithDeltaDifferential: with a data graph set and a prior
// full build, the default rebuild path is the differential one — the
// journaled mutation propagates through the materialized bindings, no
// query re-evaluation, and the pages still match a scratch build.
func TestRebuildWithDeltaDifferential(t *testing.T) {
	const n = 30
	b := bibBuilder(t, n)
	data := workload.Bibliography(n, 42)
	b.SetDataGraph(data)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delta := retitle(t, data, "pub7", "A Fresh Title")
	res, err := b.RebuildWithDelta(prev, delta)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Incremental
	if info == nil || info.Mode != "differential" {
		t.Fatalf("incremental info = %+v, want differential mode", info)
	}
	if info.Eval == nil || info.Eval.RowsRetained == 0 {
		t.Fatalf("differential rebuild retained no tuples: %+v", info.Eval)
	}
	if info.Site.Reused == 0 {
		t.Fatal("a one-object touch must reuse pages")
	}
	fresh := bibBuilder(t, n)
	freshData := workload.Bibliography(n, 42)
	retitle(t, freshData, "pub7", "A Fresh Title")
	fresh.SetDataGraph(freshData)
	want, err := fresh.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Site.Pages) != len(want.Site.Pages) {
		t.Fatalf("differential site has %d pages, full build has %d", len(res.Site.Pages), len(want.Site.Pages))
	}
	for path, wp := range want.Site.Pages {
		gp := res.Site.Pages[path]
		if gp == nil || gp.HTML != wp.HTML {
			t.Errorf("%s differs from full rebuild", path)
		}
	}
}

func TestRebuildWithDeltaNoop(t *testing.T) {
	b := bibBuilder(t, 10)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RebuildWithDelta(prev, &graph.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil || res.Incremental.Mode != "noop" {
		t.Fatalf("incremental info = %+v, want noop", res.Incremental)
	}
	if res.Site != prev.Site {
		t.Error("noop rebuild must reuse the previous site wholesale")
	}
	if res.Stats.PagesReused != len(prev.Site.Pages) {
		t.Errorf("PagesReused = %d, want %d", res.Stats.PagesReused, len(prev.Site.Pages))
	}
}

func TestRebuildWithNilDeltaIsFull(t *testing.T) {
	b := bibBuilder(t, 10)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.RebuildWithDelta(prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental == nil || res.Incremental.Mode != "full" {
		t.Fatalf("incremental info = %+v, want full", res.Incremental)
	}
	if res.Incremental.Site.Reused != 0 {
		t.Error("a full rebuild must not claim reused pages")
	}
}

// TestRebuildDynamicAdoptsCache: a title-only source edit must carry
// the cached pages of label-constrained classes (YearPage,
// CategoryPage — their blocks filter on l = "year" / l = "category")
// into the refreshed renderer, while affected classes recompute.
func TestRebuildDynamicAdoptsCache(t *testing.T) {
	content := workload.BibliographyBibTeX(8, 3)
	spec := workload.BibliographySpec()
	reg := telemetry.NewRegistry()
	b := NewBuilder("dyn")
	b.SetTelemetry(reg)
	if err := b.AddSourceFunc("refs.bib", "bibtex", func() (string, error) { return content, nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetEmbedOnly("PaperPresentation")
	b.SetRootCollection(spec.RootCollection)

	prev, err := b.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prev.Dec.MaterializeAll(spec.RootCollection); err != nil {
		t.Fatal(err)
	}
	if len(prev.Dec.CachedKeys()) == 0 {
		t.Fatal("materialization left the cache empty")
	}

	// Unchanged sources: the previous renderer is kept as-is.
	same, err := b.RebuildDynamic(prev)
	if err != nil {
		t.Fatal(err)
	}
	if same != prev {
		t.Fatal("unchanged refresh must return the previous renderer")
	}

	old := content
	content = strings.Replace(content, "title = {", "title = {Revised ", 1)
	if content == old {
		t.Fatal("edit did not change the source")
	}
	next, err := b.RebuildDynamic(prev)
	if err != nil {
		t.Fatal(err)
	}
	if next == prev {
		t.Fatal("edited source must produce a new renderer")
	}
	adopted := reg.Counter("strudel_dynamic_cache_events_total",
		"Dynamic page-cache events (hit, miss, evict).", "event", "adopt").Value()
	if adopted == 0 {
		t.Fatalf("no cache entries adopted; cached keys were %v", prev.Dec.CachedKeys())
	}
	for _, key := range next.Dec.CachedKeys() {
		if strings.HasPrefix(key, "PaperPresentation") || strings.HasPrefix(key, "AbstractPage") {
			t.Errorf("affected class entry %s survived the refresh", key)
		}
	}
	// Adopted entries must render, and recomputed pages must see the
	// edit: the root page lists years (adopted), and rendering a paper
	// page recomputes with the revised title.
	roots, err := next.Dec.Roots(spec.RootCollection)
	if err != nil || len(roots) == 0 {
		t.Fatalf("roots after refresh: %v, %v", roots, err)
	}
	html, err := next.RenderPage(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if html == "" {
		t.Fatal("root page rendered empty")
	}
}

// TestRebuildMediatedRefresh drives the incremental path end to end
// through the mediator: the refresh report's warehouse delta feeds the
// rebuild, and an unchanged source yields a noop.
func TestRebuildMediatedRefresh(t *testing.T) {
	content := `
collection Publications { }
object pub1 in Publications { title "Alpha" year 1997 }
object pub2 in Publications { title "Beta" year 1998 }
`
	spec := workload.BibliographySpec()
	b := NewBuilder("med")
	if err := b.AddSourceFunc("bib", "datadef", func() (string, error) { return content, nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	b.AddTemplates(spec.Templates)
	b.SetEmbedOnly("PaperPresentation")
	b.SetIndex(spec.Index)

	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged source: the rebuild is a noop.
	res, err := b.Rebuild(prev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental.Mode != "noop" {
		t.Fatalf("unchanged source rebuild mode = %s, want noop (delta %v)",
			res.Incremental.Mode, res.Refresh.Warehouse)
	}

	// Edit the source: the rebuild is selective and matches scratch.
	content = strings.Replace(content, `"Alpha"`, `"Alpha v2"`, 1)
	res2, err := b.Rebuild(res)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental.Mode != "selective" {
		t.Fatalf("edited source rebuild mode = %s, want selective (%s)",
			res2.Incremental.Mode, res2.Incremental.Summary())
	}
	if res2.Incremental.Site.Reused == 0 {
		t.Error("selective rebuild must reuse unaffected pages")
	}
	scratch := NewBuilder("med2")
	if err := scratch.AddSourceFunc("bib", "datadef", func() (string, error) { return content, nil }); err != nil {
		t.Fatal(err)
	}
	if err := scratch.AddQuery(spec.Query); err != nil {
		t.Fatal(err)
	}
	scratch.AddTemplates(spec.Templates)
	scratch.SetEmbedOnly("PaperPresentation")
	scratch.SetIndex(spec.Index)
	want, err := scratch.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Site.Pages) != len(want.Site.Pages) {
		t.Fatalf("delta site has %d pages, scratch has %d", len(res2.Site.Pages), len(want.Site.Pages))
	}
	for path, wp := range want.Site.Pages {
		gp := res2.Site.Pages[path]
		if gp == nil || gp.HTML != wp.HTML {
			t.Errorf("%s differs from scratch build", path)
		}
	}
}
