package core

import (
	"strings"
	"testing"

	"strudel/internal/workload"
)

// TestRebuildReportsInvalidatedPages: the rebuild observable lists
// exactly the pages whose ETag changed — the set a serving edge must
// refetch — and a noop rebuild reports none.
func TestRebuildReportsInvalidatedPages(t *testing.T) {
	const n = 30
	b := bibBuilder(t, n)
	b.SetDifferential(false)
	data := workload.Bibliography(n, 42)
	b.SetDataGraph(data)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	delta := retitle(t, data, "pub7", "A Fresh Title")
	res, err := b.RebuildWithDelta(prev, delta)
	if err != nil {
		t.Fatal(err)
	}
	info := res.Incremental
	if info == nil || len(info.Invalidated) == 0 {
		t.Fatalf("no invalidated pages reported: %+v", info)
	}
	if len(info.Invalidated) == len(res.Site.Pages) {
		t.Fatalf("all %d pages invalidated by a one-object retitle", len(info.Invalidated))
	}
	// The report must agree with a direct ETag diff of the two builds.
	want := map[string]bool{}
	for path, p := range res.Site.Pages {
		if pp, ok := prev.Site.Pages[path]; !ok || pp.ETag != p.ETag {
			want[path] = true
		}
	}
	if len(want) != len(info.Invalidated) {
		t.Fatalf("Invalidated has %d paths, ETag diff says %d", len(info.Invalidated), len(want))
	}
	for _, path := range info.Invalidated {
		if !want[path] {
			t.Errorf("path %s reported invalidated but its ETag is unchanged", path)
		}
	}

	// A delta that cannot affect the site carries every tag over.
	noop, err := b.RebuildWithDelta(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = noop // nil delta forces a full rebuild; equal content must keep tags
	if noop.Incremental != nil && noop.Incremental.Mode == "full" {
		for path, p := range noop.Site.Pages {
			if res.Site.Pages[path].ETag != p.ETag {
				t.Errorf("full rebuild of identical data changed ETag of %s", path)
			}
		}
	}
	if s := res.Incremental.Summary(); !strings.Contains(s, "invalidated") {
		t.Errorf("Summary() omits invalidation count: %q", s)
	}
}
