// EXPLAIN at the site level: evaluate the site-definition queries with
// per-operator profiling and report, per query, the block-structured
// plan with estimated vs actual cardinalities. This is the `strudel
// explain` verb and the /debug/explain endpoint; it runs the real
// query stage (same planner, same physical operators), so the plan it
// prints is the plan builds execute.
package core

import (
	"fmt"
	"io"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// QueryExplain is one site-definition query's profiled evaluation.
type QueryExplain struct {
	Index    int              `json:"index"`
	Source   string           `json:"source,omitempty"`
	Bindings int              `json:"bindings"`
	NewNodes int              `json:"new_nodes"`
	Plan     *struql.PlanNode `json:"plan"`
	// Blocks reports, per query block, whether differential
	// maintenance applies on incremental rebuilds or the block falls
	// back to a full re-bind (and why).
	Blocks []struql.BlockMode `json:"blocks,omitempty"`
}

// Explain is the profiled evaluation of a site's whole query stage.
type Explain struct {
	Site      string         `json:"site"`
	Optimizer bool           `json:"optimizer"`
	Workers   int            `json:"workers"`
	DataNodes int            `json:"data_nodes"`
	DataEdges int            `json:"data_edges"`
	Queries   []QueryExplain `json:"queries"`
}

// ExplainData profiles the query stage over an already-integrated data
// graph. It deliberately does not refresh the mediator: explaining a
// serving site must not advance its delta baseline (a refresh here
// would make the next incremental rebuild diff against data the site
// never rendered).
func (b *Builder) ExplainData(data *graph.Graph) (*Explain, error) {
	qe, err := b.evalQueries(data, nil, b.buildPool(), true, nil)
	if err != nil {
		return nil, err
	}
	// Static maintenance-mode classification; best-effort (a query the
	// differential layer cannot even plan just omits the block lines).
	modes, _ := struql.ClassifyBlocks(b.queries, data, b.Registry())
	ds := data.Stats()
	ex := &Explain{
		Site:      b.name,
		Optimizer: b.optimize,
		Workers:   b.buildPool().Workers(),
		DataNodes: ds.Nodes,
		DataEdges: ds.Edges,
	}
	for i, qr := range qe.perQuery {
		src := ""
		if b.queries[i].Source != "" {
			src = b.queries[i].Source
		}
		var blocks []struql.BlockMode
		for _, bm := range modes {
			if bm.Query == i {
				blocks = append(blocks, bm)
			}
		}
		ex.Queries = append(ex.Queries, QueryExplain{
			Index:    i,
			Source:   src,
			Bindings: qr.bindings,
			NewNodes: qr.newNodes,
			Plan:     qr.plan,
			Blocks:   blocks,
		})
	}
	return ex, nil
}

// Explain integrates the data graph (mediating if sources are
// registered) and profiles the query stage over it.
func (b *Builder) Explain() (*Explain, error) {
	data, err := b.buildDataGraph()
	if err != nil {
		return nil, err
	}
	return b.ExplainData(data)
}

// WriteText renders the explain report as an indented plan listing.
func (e *Explain) WriteText(w io.Writer) {
	planner := "interpreter"
	if e.Optimizer {
		planner = "cost-based optimizer"
	}
	fmt.Fprintf(w, "site %s: %d nodes, %d edges, planner: %s, workers: %d\n",
		e.Site, e.DataNodes, e.DataEdges, planner, e.Workers)
	for _, q := range e.Queries {
		fmt.Fprintf(w, "query[%d]: %d bindings, %d new nodes\n",
			q.Index, q.Bindings, q.NewNodes)
		if q.Plan != nil {
			q.Plan.WriteText(w)
		}
		for _, bm := range q.Blocks {
			if bm.Mode == "differential" {
				fmt.Fprintf(w, "  block %d: differential maintenance\n", bm.Block)
			} else {
				fmt.Fprintf(w, "  block %d: full re-bind on change (%s)\n", bm.Block, bm.Reason)
			}
		}
	}
}
