package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/schema"
	"strudel/internal/struql"
)

func TestBuilderExplain(t *testing.T) {
	b := bibBuilder(t, 25)
	ex, err := b.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if ex.Site != "homepage" || ex.DataNodes == 0 || ex.DataEdges == 0 {
		t.Errorf("explain header = %+v", ex)
	}
	if len(ex.Queries) != 1 {
		t.Fatalf("queries = %d, want 1", len(ex.Queries))
	}
	q := ex.Queries[0]
	if q.Plan == nil {
		t.Fatal("no plan")
	}
	// The per-operator row counts must sum consistently with the
	// query's result.
	if got := q.Plan.TotalRows(); got != q.Bindings {
		t.Errorf("plan rows = %d, bindings = %d", got, q.Bindings)
	}
	// Explain must report exactly what a real build computes.
	res, err := bibBuilder(t, 25).Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Bindings != res.Stats.Bindings {
		t.Errorf("explain bindings = %d, build bindings = %d", q.Bindings, res.Stats.Bindings)
	}

	var sb strings.Builder
	ex.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"site homepage", "planner: interpreter", "query[0]", "block #0"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain text missing %q:\n%s", want, out)
		}
	}

	// The report must round-trip as JSON (the /debug/explain payload).
	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Explain
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Queries[0].Bindings != q.Bindings {
		t.Errorf("JSON round-trip lost bindings: %d != %d", back.Queries[0].Bindings, q.Bindings)
	}
}

func TestBuilderExplainOptimizer(t *testing.T) {
	b := bibBuilder(t, 25)
	b.EnableOptimizer()
	ex, err := b.Explain()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	ex.WriteText(&sb)
	if !strings.Contains(sb.String(), "planner: cost-based optimizer") {
		t.Errorf("optimizer not reported:\n%s", sb.String())
	}
	// Optimizer steps carry estimates; the interpreter's don't.
	sawEstimate := false
	var walk func(n *struql.PlanNode)
	walk = func(n *struql.PlanNode) {
		if n == nil {
			return
		}
		for _, s := range n.Steps {
			if s.EstRows >= 0 {
				sawEstimate = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ex.Queries[0].Plan)
	if !sawEstimate {
		t.Error("no step carries an optimizer estimate")
	}
	if got := ex.Queries[0].Plan.TotalRows(); got != ex.Queries[0].Bindings {
		t.Errorf("plan rows = %d, bindings = %d", got, ex.Queries[0].Bindings)
	}
}

// TestExplainWorkerInvariance: profiling stats (except wall time) are
// identical at any worker count.
func TestExplainWorkerInvariance(t *testing.T) {
	var base *Explain
	for _, workers := range []int{1, 4, 16} {
		b := bibBuilder(t, 30)
		b.SetWorkers(workers)
		ex, err := b.Explain()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range ex.Queries {
			q.Plan.StripWall()
		}
		ex.Workers = 0
		if base == nil {
			base = ex
			continue
		}
		if !reflect.DeepEqual(base, ex) {
			t.Errorf("explain at workers=%d differs", workers)
		}
	}
}

func TestPageProvenance(t *testing.T) {
	b := bibBuilder(t, 25)
	b.EnableIntrospection()
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance == nil {
		t.Fatal("introspection enabled but no provenance collected")
	}
	pp, ok := res.PageProvenance("index.html")
	if !ok {
		t.Fatalf("no provenance for index.html; pages: %v", res.Site.Paths())
	}
	if pp.Func == "" || pp.TupleCount == 0 {
		t.Errorf("index provenance = %+v", pp)
	}
	// The root page transitively depends on every publication.
	if len(pp.Sources) == 0 {
		t.Error("index page has no sources")
	}
	var sb strings.Builder
	pp.WriteText(&sb)
	for _, want := range []string{"page index.html", "skolem", "sources"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("why output missing %q:\n%s", want, sb.String())
		}
	}
	// Name-based lookup (without .html) works too.
	if _, ok := res.PageProvenance("index"); !ok {
		t.Error("lookup by bare name failed")
	}
	if _, ok := res.PageProvenance("no-such-page"); ok {
		t.Error("lookup of unknown page succeeded")
	}
	// Without introspection there is no provenance.
	plain, err := bibBuilder(t, 25).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.PageProvenance("index.html"); ok {
		t.Error("provenance present without EnableIntrospection")
	}
}

// TestProvenanceAgreesWithRenderClosure cross-checks the two
// dependency analyses: when one source object changes, every page
// whose recorded provenance includes that object must belong to a
// Skolem function in the schema impact's render closure — the page
// classes the incremental rebuilder would consider re-rendering.
func TestProvenanceAgreesWithRenderClosure(t *testing.T) {
	b := bibBuilder(t, 25)
	b.EnableIntrospection()
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Pick one real source object out of the data graph.
	pubs := res.DataGraph.Collection("Publications")
	if len(pubs) == 0 {
		t.Fatal("no publications")
	}
	changed := res.DataGraph.NodeName(pubs[0].OID())
	delta := &graph.Delta{
		ChangedObjects: []string{changed},
		TouchedLabels:  []string{"title"},
	}
	closure := schema.Analyze(res.Schema, delta).RenderClosure(res.Schema)
	if len(closure) == 0 {
		t.Fatal("empty render closure for a changed publication")
	}
	checked := 0
	for path := range res.Site.Pages {
		pp, ok := res.PageProvenance(path)
		if !ok {
			continue
		}
		depends := false
		for _, s := range pp.Sources {
			if s.Name == changed {
				depends = true
			}
		}
		if depends && pp.Func != "" {
			checked++
			if !closure[pp.Func] {
				t.Errorf("page %s depends on %s but %s is outside the render closure %v",
					path, changed, pp.Func, closure)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no page's provenance mentions the changed object")
	}
}
