package core

import (
	"strings"
	"testing"

	"strudel/internal/telemetry"
)

// TestBuildWorkersByteIdentical: the full built site — every page's
// HTML, title and path — is byte-identical at workers 1, 4 and 16.
func TestBuildWorkersByteIdentical(t *testing.T) {
	base := bibBuilder(t, 40)
	base.SetWorkers(1)
	want, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 16} {
		b := bibBuilder(t, 40)
		b.SetWorkers(w)
		got, err := b.Build()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got.Site.Pages) != len(want.Site.Pages) {
			t.Fatalf("workers=%d: %d pages, want %d", w, len(got.Site.Pages), len(want.Site.Pages))
		}
		for path, wp := range want.Site.Pages {
			gp, ok := got.Site.Pages[path]
			if !ok {
				t.Fatalf("workers=%d: missing page %s", w, path)
			}
			if gp.HTML != wp.HTML || gp.Title != wp.Title {
				t.Fatalf("workers=%d: page %s differs from sequential build", w, path)
			}
		}
		if got.Stats.Bindings != want.Stats.Bindings {
			t.Errorf("workers=%d: bindings = %d, want %d", w, got.Stats.Bindings, want.Stats.Bindings)
		}
	}
}

// TestBuildPoolInstrumented: with telemetry attached, the per-build
// pool reports its gauges into the registry.
func TestBuildPoolInstrumented(t *testing.T) {
	b := bibBuilder(t, 10)
	reg := telemetry.NewRegistry()
	b.SetTelemetry(reg)
	b.SetWorkers(4)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{"strudel_pool_workers_busy", "strudel_pool_queue_depth"} {
		if !strings.Contains(text, want) {
			t.Errorf("registry missing %s:\n%s", want, text)
		}
	}
}

// TestBuildDynamicWorkersDeterministic: dynamic materialization through
// the builder produces the same page set at any worker count.
func TestBuildDynamicWorkersDeterministic(t *testing.T) {
	counts := map[int]int{}
	for _, w := range []int{1, 8} {
		b := bibBuilder(t, 25)
		b.SetWorkers(w)
		r, err := b.BuildDynamic()
		if err != nil {
			t.Fatal(err)
		}
		n, err := r.Dec.MaterializeAll("Roots")
		if err != nil {
			t.Fatal(err)
		}
		counts[w] = n
	}
	if counts[1] == 0 || counts[1] != counts[8] {
		t.Errorf("materialized pages differ: %v", counts)
	}
}
