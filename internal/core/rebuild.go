// Incremental rebuilds: instead of re-rendering every page on each
// data refresh, the builder diffs the data graph, maps the delta
// through the site schema, re-evaluates the site-definition queries,
// and re-renders only the pages whose reverse-reachability cone in the
// new site graph intersects the changed objects. Query evaluation is
// always re-run in full (StruQL evaluation is cheap relative to
// rendering and re-evaluating is trivially conservative); page
// rendering — the expensive phase — is selective.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/mediator"
	"strudel/internal/optimizer"
	"strudel/internal/schema"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
)

// RebuildInfo describes how an incremental rebuild proceeded.
type RebuildInfo struct {
	// Mode is "noop" (nothing changed, previous result reused), "full"
	// (no usable baseline or delta — everything re-rendered),
	// "selective" (queries re-evaluated in full, only affected pages
	// re-rendered), or "differential" (the journaled mutations were
	// propagated through materialized binding relations; the queries
	// were not re-evaluated at all).
	Mode string
	// Data is the data-graph delta the rebuild keyed on (nil when
	// unknown, forcing a full rebuild).
	Data *graph.Delta
	// Impact is the delta mapped through the site schema.
	Impact *schema.Impact
	// Site reports page-level reuse (nil in noop mode).
	Site *sitegen.DeltaStats
	// Eval reports what differential evaluation did (differential mode
	// only): tuples retained vs recomputed, blocks maintained vs
	// re-bound, output lists repaired.
	Eval *struql.MatStats
	// Invalidated lists the paths whose ETag changed relative to the
	// previous build, sorted (new pages included, vanished pages not) —
	// exactly the URLs HTTP caches must refetch after the swap. Empty
	// in noop mode: every tag carried over.
	Invalidated []string
}

// invalidatedPaths diffs two builds by ETag: the pages a serving edge
// (or any downstream HTTP cache keyed on our strong tags) can no
// longer answer 304 for.
func invalidatedPaths(prev, next *sitegen.Site) []string {
	var out []string
	for path, p := range next.Pages {
		if pp, ok := prev.Pages[path]; !ok || pp.ETag != p.ETag {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders a one-line digest for logs.
func (ri *RebuildInfo) Summary() string {
	if ri == nil {
		return "rebuild: full (no delta info)"
	}
	switch ri.Mode {
	case "noop":
		return "rebuild: noop (data unchanged)"
	case "differential":
		s := "rebuild: differential"
		if ri.Eval != nil {
			s += fmt.Sprintf(", %d tuples retained, %d recomputed, %d added, %d removed",
				ri.Eval.RowsRetained, ri.Eval.RowsRechecked, ri.Eval.RowsAdded, ri.Eval.RowsRemoved)
		}
		if ri.Site != nil {
			s += fmt.Sprintf(", %d rendered, %d reused", ri.Site.Rendered, ri.Site.Reused)
		}
		return s
	case "full":
		reason := "no baseline"
		if ri.Site != nil && ri.Site.Reason != "" {
			reason = ri.Site.Reason
		}
		return "rebuild: full (" + reason + ")"
	default:
		s := fmt.Sprintf("rebuild: selective, %d rendered, %d reused", ri.Site.Rendered, ri.Site.Reused)
		if n := len(ri.Site.PrunedPaths); n > 0 {
			s += fmt.Sprintf(", %d pruned", n)
		}
		if n := len(ri.Invalidated); n > 0 {
			s += fmt.Sprintf(", %d invalidated", n)
		}
		return s
	}
}

// deltaPages returns the telemetry counter for page outcomes during
// incremental rebuilds, or nil when telemetry is detached.
func (b *Builder) deltaPages(action string) *telemetry.Counter {
	if b.telem == nil {
		return nil
	}
	return b.telem.Counter("strudel_delta_pages_total",
		"Pages processed by incremental rebuilds, by outcome (rendered, reused, pruned).",
		"action", action)
}

func (b *Builder) countRebuild(mode string) {
	if b.telem != nil {
		b.telem.Counter("strudel_delta_rebuilds_total",
			"Incremental rebuilds, by mode (noop, selective, full).",
			"mode", mode).Inc()
	}
}

func addCount(c *telemetry.Counter, n int) {
	if c != nil && n > 0 {
		c.Add(n)
	}
}

// Rebuild refreshes the mediated data graph and rebuilds the site
// incrementally against a previous result: the mediator reports the
// warehouse-level delta, and only pages the delta can reach re-render.
// A nil prev, a first refresh (no delta baseline), or an explicit
// SetDataGraph (whose mutations the builder cannot observe — use
// RebuildWithDelta) all degrade to a full build. The returned result
// is byte-identical to a from-scratch Build over the same data.
func (b *Builder) Rebuild(prev *Result) (*Result, error) {
	if prev == nil || prev.Site == nil || prev.SiteGraph == nil {
		return b.Build()
	}
	if b.dataGraph != nil {
		// In-place mutations are invisible here; only the caller knows
		// what changed.
		return b.Build()
	}
	data, report, err := b.med.RefreshWithReport()
	if err != nil {
		return nil, err
	}
	return b.rebuildFrom(prev, data, report, report.Warehouse)
}

// RebuildWithDelta rebuilds incrementally from an explicitly supplied
// data graph delta — the caller mutated the graph set via SetDataGraph
// and knows (or computed via graph.Diff) what changed. The delta must
// over-approximate the actual change; a nil delta forces a full build.
//
// With differential evaluation primed (SetDataGraph + a prior full
// Build, SetDifferential on), the supplied delta is not even needed:
// the builder drains the data graph's mutation journal and propagates
// it through the materialized binding relations, updating the previous
// site graph in place and re-rendering only the pages whose
// reverse-reachability cone the propagation touched. Whenever the
// journal or the maintained state cannot be trusted, the call falls
// back to the query-re-evaluation path above. Either way the result is
// byte-identical to a from-scratch Build.
func (b *Builder) RebuildWithDelta(prev *Result, delta *graph.Delta) (*Result, error) {
	if prev == nil || prev.Site == nil || prev.SiteGraph == nil {
		return b.Build()
	}
	data, err := b.buildDataGraph()
	if err != nil {
		return nil, err
	}
	if delta != nil {
		// A nil delta is an explicit request for a full rebuild — honor
		// it rather than trusting the journal.
		if res, err := b.tryDifferential(prev, data); res != nil || err != nil {
			if err == errDiffAbort {
				// The apply died partway: the previous site graph may hold a
				// partial mutation, so regenerate with no page reuse at all.
				return b.rebuildFrom(prev, data, nil, nil)
			}
			return res, err
		}
	}
	var report *mediator.RefreshReport
	if b.dataGraph == nil {
		report = b.med.LastReport()
	}
	return b.rebuildFrom(prev, data, report, delta)
}

// errDiffAbort signals that a differential apply failed after possibly
// mutating the previous site graph: the caller must do a full rebuild
// without reusing any previously rendered page.
var errDiffAbort = errors.New("core: differential apply aborted")

// tryDifferential attempts the differential fast path against prev.
// It returns (nil, nil) when ineligible — the caller falls back to
// query re-evaluation with the previous site intact — and errDiffAbort
// when the maintained site graph can no longer back page reuse.
func (b *Builder) tryDifferential(prev *Result, data *graph.Graph) (*Result, error) {
	if !b.canDifferential() || !b.mat.Valid() {
		return nil, nil
	}
	if prev.SiteGraph != b.mat.Output() {
		return nil, nil // prev is not the site the materialization maintains
	}
	if prev.Site.Collisions != 0 {
		// Collision suffixes depend on OID enumeration order, which
		// in-place maintenance does not reproduce.
		return nil, nil
	}
	ops, ok := b.matLog.Take()
	if !ok {
		b.mat.Invalidate("change log overflowed")
		b.mat = nil
		return nil, nil
	}

	tr := telemetry.NewTrace("rebuild " + b.name)
	res := &Result{Trace: tr, DataGraph: data}
	pl := b.buildPool()
	a0 := telemetry.AllocBytes()
	defer func() {
		tr.Finish()
		res.Stats.TotalTime = tr.Duration()
		res.Stats.TotalAlloc = telemetry.AllocBytes() - a0
		res.BuiltAt = time.Now()
	}()
	tr.Root().SetAttr("site", b.name)
	tr.Root().SetAttr("workers", pl.Workers())

	// NumNodes/NumEdges, not Stats(): the label census walks every edge,
	// which would put an O(site) scan on the single-digit-ms fast path.
	res.Stats.DataNodes, res.Stats.DataEdges = data.NumNodes(), data.NumEdges()
	sch := prev.Schema
	if sch == nil {
		sch = b.siteSchema()
	}
	res.Schema = sch

	if len(ops) == 0 {
		info := &RebuildInfo{Mode: "noop"}
		res.Incremental = info
		res.SiteGraph = prev.SiteGraph
		res.Site = prev.Site
		res.Provenance = prev.Provenance
		res.Violations = prev.Violations
		res.DomainWarnings = prev.DomainWarnings
		res.Stats.SiteNodes, res.Stats.SiteEdges = prev.SiteGraph.NumNodes(), prev.SiteGraph.NumEdges()
		res.Stats.Pages = len(prev.Site.Pages)
		res.Stats.PagesReused = len(prev.Site.Pages)
		addCount(b.deltaPages("reused"), len(prev.Site.Pages))
		b.countRebuild("noop")
		tr.Root().SetAttr("mode", "noop")
		return res, nil
	}

	qsp := tr.Root().Child("query")
	st, err := b.mat.Apply(ops)
	qsp.Finish()
	res.Stats.QueryTime = qsp.Duration()
	aQuery := telemetry.AllocBytes()
	res.Stats.QueryAlloc = aQuery - a0
	if err != nil {
		b.mat = nil
		return nil, errDiffAbort
	}
	b.countDiff(st)
	site := prev.SiteGraph // maintained in place
	res.SiteGraph = site
	res.Stats.Bindings = st.RowsRetained + st.RowsAdded
	info := &RebuildInfo{Mode: "differential", Eval: st}
	res.Incremental = info

	ver := tr.Root().Child("verify")
	res.Violations = schema.VerifyAll(sch, site, b.constraints)
	for _, q := range b.queries {
		res.DomainWarnings = append(res.DomainWarnings,
			struql.RangeCheckWith(q, data.HasCollection)...)
	}
	ver.Finish()
	res.Stats.VerifyTime = ver.Duration()
	aVerify := telemetry.AllocBytes()
	res.Stats.VerifyAlloc = aVerify - aQuery

	cone := site.ReverseReachable(st.Touched)

	gsp := tr.Root().Child("generate")
	gen := sitegen.New(site, sitegen.Config{
		Templates:    b.templates,
		EmbedOnly:    b.embedOnly,
		Index:        b.index,
		FileResolver: b.resolver,
		Pool:         pl,
	})
	htmlSite, dstats, err := gen.RegenerateConeContext(context.Background(), prev.Site, cone, !st.Renumbered)
	if err == nil && htmlSite == nil {
		// Name-keyed wholesale reuse unavailable (unnamed page or path
		// shift): take the conservative predicate path, which re-derives
		// the full assignment and falls back to a full render as needed.
		affected := func(oid graph.OID) bool {
			_, ok := cone[oid]
			return ok
		}
		htmlSite, dstats, err = gen.RegenerateDeltaContext(context.Background(), prev.Site, affected)
	}
	gsp.Finish()
	res.Stats.GenerateTime = gsp.Duration()
	res.Stats.GenerateAlloc = telemetry.AllocBytes() - aVerify
	if err != nil {
		return nil, err
	}
	if htmlSite.Collisions != 0 {
		// A new collision suffix may not match what a from-scratch build
		// would assign; hand the whole rebuild back to the full path.
		b.mat.Invalidate("path collision in maintained site")
		b.mat = nil
		return nil, errDiffAbort
	}
	res.Site = htmlSite
	info.Site = dstats
	info.Invalidated = invalidatedPaths(prev.Site, htmlSite)
	tr.Root().SetAttr("mode", info.Mode)
	gsp.SetAttr("rendered", dstats.Rendered)
	gsp.SetAttr("reused", dstats.Reused)
	b.countRebuild("differential")
	addCount(b.deltaPages("rendered"), dstats.Rendered)
	addCount(b.deltaPages("reused"), dstats.Reused)
	addCount(b.deltaPages("pruned"), len(dstats.PrunedPaths))

	res.Stats.SiteNodes, res.Stats.SiteEdges = site.NumNodes(), site.NumEdges()
	res.Stats.Pages = len(htmlSite.Pages)
	res.Stats.PagesReused = dstats.Reused
	res.Stats.PagesPruned = len(dstats.PrunedPaths)
	return res, nil
}

// countDiff feeds differential-apply telemetry.
func (b *Builder) countDiff(st *struql.MatStats) {
	if b.telem == nil {
		return
	}
	tuples := func(kind string, n int) {
		if n > 0 {
			b.telem.Counter("strudel_diff_tuples_total",
				"Binding tuples processed by differential evaluation, by outcome.",
				"kind", kind).Add(n)
		}
	}
	tuples("retained", st.RowsRetained)
	tuples("recomputed", st.RowsRechecked)
	tuples("added", st.RowsAdded)
	tuples("removed", st.RowsRemoved)
	blocks := func(mode string, n int) {
		if n > 0 {
			b.telem.Counter("strudel_diff_blocks_total",
				"Query blocks touched by differential evaluation, by maintenance mode.",
				"mode", mode).Add(n)
		}
	}
	blocks("differential", st.BlocksDifferential)
	blocks("fallback", st.BlocksFallback)
	blocks("rebound", st.BlocksRebound)
}

// rebuildFrom is the shared incremental pipeline: analyze the delta,
// short-circuit when nothing can change, else re-evaluate the queries
// and regenerate selectively.
func (b *Builder) rebuildFrom(prev *Result, data *graph.Graph, report *mediator.RefreshReport, delta *graph.Delta) (*Result, error) {
	tr := telemetry.NewTrace("rebuild " + b.name)
	res := &Result{Trace: tr, DataGraph: data, Refresh: report}
	pl := b.buildPool()
	a0 := telemetry.AllocBytes()
	defer func() {
		tr.Finish()
		res.Stats.TotalTime = tr.Duration()
		res.Stats.TotalAlloc = telemetry.AllocBytes() - a0
		res.BuiltAt = time.Now()
	}()

	tr.Root().SetAttr("site", b.name)
	tr.Root().SetAttr("workers", pl.Workers())

	sch := b.siteSchema()
	impact := schema.Analyze(sch, delta)
	info := &RebuildInfo{Data: delta, Impact: impact}
	res.Incremental = info

	ds := data.Stats()
	res.Stats.DataNodes, res.Stats.DataEdges = ds.Nodes, ds.Edges

	// Nothing the schema can see changed: the site graph — a function
	// of the data graph and the queries — is provably identical, so the
	// previous site is the new site.
	if delta != nil && impact.Empty() {
		info.Mode = "noop"
		res.SiteGraph = prev.SiteGraph
		res.Schema = prev.Schema
		res.Site = prev.Site
		res.Provenance = prev.Provenance
		res.Violations = prev.Violations
		res.DomainWarnings = prev.DomainWarnings
		ss := prev.SiteGraph.Stats()
		res.Stats.SiteNodes, res.Stats.SiteEdges = ss.Nodes, ss.Edges
		res.Stats.Pages = len(prev.Site.Pages)
		res.Stats.PagesReused = len(prev.Site.Pages)
		addCount(b.deltaPages("reused"), len(prev.Site.Pages))
		b.countRebuild("noop")
		tr.Root().SetAttr("mode", "noop")
		return res, nil
	}

	// Re-evaluate the site-definition queries in full — conservative by
	// construction — then diff the site graphs to find which pages'
	// dependency cones the change touches.
	qsp := tr.Root().Child("query")
	caps := b.captureSet()
	qe, err := b.evalQueries(data, qsp, pl, false, caps)
	if err == nil {
		qsp.SetAttr("bindings", qe.bindings)
	}
	qsp.Finish()
	res.Stats.QueryTime = qsp.Duration()
	aQuery := telemetry.AllocBytes()
	res.Stats.QueryAlloc = aQuery - a0
	if err != nil {
		return nil, err
	}
	site := qe.site
	res.SiteGraph = site
	res.Stats.Bindings = qe.bindings
	res.Provenance = qe.prov

	ver := tr.Root().Child("verify")
	res.Schema = sch
	res.Violations = schema.VerifyAll(sch, site, b.constraints)
	for _, q := range b.queries {
		res.DomainWarnings = append(res.DomainWarnings,
			struql.RangeCheckWith(q, data.HasCollection)...)
	}
	ver.Finish()
	res.Stats.VerifyTime = ver.Duration()
	aVerify := telemetry.AllocBytes()
	res.Stats.VerifyAlloc = aVerify - aQuery

	var affected func(graph.OID) bool
	if delta != nil {
		siteDelta := graph.Diff(prev.SiteGraph, site)
		var starts []graph.OID
		resolvable := true
		for _, key := range append(append([]string{}, siteDelta.AddedObjects...), siteDelta.ChangedObjects...) {
			oid, ok := site.ResolveKey(key)
			if !ok {
				// A changed object we cannot locate in the new site
				// graph (should not happen for added/changed keys):
				// give up on selectivity rather than risk staleness.
				resolvable = false
				break
			}
			starts = append(starts, oid)
		}
		if resolvable {
			cone := site.ReverseReachable(starts)
			affected = func(oid graph.OID) bool {
				_, ok := cone[oid]
				return ok
			}
		}
	}

	gsp := tr.Root().Child("generate")
	gen := sitegen.New(site, sitegen.Config{
		Templates:    b.templates,
		EmbedOnly:    b.embedOnly,
		Index:        b.index,
		FileResolver: b.resolver,
		Pool:         pl,
	})
	htmlSite, dstats, err := gen.RegenerateDeltaContext(context.Background(), prev.Site, affected)
	gsp.Finish()
	res.Stats.GenerateTime = gsp.Duration()
	res.Stats.GenerateAlloc = telemetry.AllocBytes() - aVerify
	if err != nil {
		return nil, err
	}
	res.Site = htmlSite
	info.Site = dstats
	info.Invalidated = invalidatedPaths(prev.Site, htmlSite)
	if dstats.Full {
		info.Mode = "full"
	} else {
		info.Mode = "selective"
	}
	b.primeDifferential(data, site, caps)
	tr.Root().SetAttr("mode", info.Mode)
	gsp.SetAttr("rendered", dstats.Rendered)
	gsp.SetAttr("reused", dstats.Reused)
	b.countRebuild(info.Mode)
	addCount(b.deltaPages("rendered"), dstats.Rendered)
	addCount(b.deltaPages("reused"), dstats.Reused)
	addCount(b.deltaPages("pruned"), len(dstats.PrunedPaths))

	ss := site.Stats()
	res.Stats.SiteNodes, res.Stats.SiteEdges = ss.Nodes, ss.Edges
	res.Stats.Pages = len(htmlSite.Pages)
	res.Stats.PagesReused = dstats.Reused
	res.Stats.PagesPruned = len(dstats.PrunedPaths)
	return res, nil
}

// RebuildDynamic refreshes the mediated data graph and returns a
// renderer for click-time evaluation, carrying over the previous
// renderer's page cache for classes the refresh delta cannot affect.
// When the data did not change at all, prev itself is returned. A nil
// prev, or no delta baseline, builds a fresh (cold-cache) renderer.
func (b *Builder) RebuildDynamic(prev *incremental.Renderer) (*incremental.Renderer, error) {
	if prev == nil {
		return b.BuildDynamic()
	}
	if b.dataGraph != nil {
		// In-place data mutation: same decomposition, and the mutation
		// journal tells us exactly which cached classes to evict. An
		// overflowed (or absent) journal degrades to dropping everything.
		if b.dynLog != nil {
			if ops, ok := b.dynLog.Take(); ok {
				prev.Dec.InvalidateDelta(graph.OpsDelta(ops))
			} else {
				prev.Dec.InvalidateCache()
			}
		} else {
			prev.Dec.InvalidateDelta(nil)
		}
		prev.BuiltAt = time.Now()
		return prev, nil
	}
	data, report, err := b.med.RefreshWithReport()
	if err != nil {
		return nil, err
	}
	delta := report.Warehouse
	if delta != nil && delta.Empty() {
		// The refresh re-validated the data as unchanged: the content is
		// current as of now, even though nothing was recomputed.
		prev.BuiltAt = time.Now()
		return prev, nil
	}
	if len(b.queries) != 1 {
		return nil, fmt.Errorf("core: dynamic evaluation needs exactly one site-definition query, have %d", len(b.queries))
	}
	dec := incremental.Decompose(b.queries[0], data, b.Registry())
	dec.UsePool(b.buildPool())
	if b.optimize {
		dec.UsePlanner(optimizer.Hook(b.optimizerContext(data)))
	}
	adopted := 0
	if delta != nil {
		adopted = dec.AdoptCache(prev.Dec, schema.Analyze(dec.Schema(), delta))
	}
	r := &incremental.Renderer{
		Dec:       dec,
		Templates: b.templates,
		EmbedOnly: b.embedOnly,
		URLFor:    prev.URLFor,
		MaxDepth:  prev.MaxDepth,
		BuiltAt:   time.Now(),
	}
	if b.telem != nil {
		r.Instrument(b.telem)
		b.telem.Counter("strudel_dynamic_cache_events_total",
			"Dynamic page-cache events (hit, miss, evict).", "event", "adopt").Add(adopted)
	}
	return r, nil
}
