package datadef

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

// fig2 is the paper's Fig. 2 data-graph fragment, lightly abbreviated.
const fig2 = `
collection Publications {
    abstract text
    postscript ps
}
object pub1 in Publications {
    title "Specifying Representations..."
    author "Norman Ramsey"
    author "Mary Fernandez"
    year 1997
    month "May"
    journal "Transactions on Programming..."
    pub-type "article"
    abstract "abstracts/toplas97.txt"
    postscript "papers/toplas97.ps.gz"
    volume "19 (3)"
    category "Architecture Specifications"
    category "Programming Languages"
}
object pub2 in Publications {
    title "Optimizing Regular..."
    author "Mary Fernandez"
    author "Dan Suciu"
    year 1998
    booktitle "Proc. of ICDE"
    pub-type "inproceedings"
    abstract "abstracts/icde98.txt"
    postscript "papers/icde98.ps.gz"
    category "Semistructured Data"
    category "Programming Languages"
}
`

func TestParseFig2(t *testing.T) {
	res, err := Parse("BIBTEX", fig2)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	pubs := g.Collection("Publications")
	if len(pubs) != 2 {
		t.Fatalf("Publications has %d members, want 2", len(pubs))
	}
	p1, ok := g.NodeByName("pub1")
	if !ok {
		t.Fatal("pub1 missing")
	}
	// Irregular structure: pub1 has month+journal, pub2 has booktitle.
	if _, ok := g.First(p1, "month"); !ok {
		t.Error("pub1 should have month")
	}
	p2, _ := g.NodeByName("pub2")
	if _, ok := g.First(p2, "month"); ok {
		t.Error("pub2 should not have month")
	}
	if _, ok := g.First(p2, "booktitle"); !ok {
		t.Error("pub2 should have booktitle")
	}
	// Multi-valued attribute.
	if authors := g.OutLabel(p1, "author"); len(authors) != 2 {
		t.Errorf("pub1 has %d authors, want 2", len(authors))
	}
	// Type directives: abstract is a text file, postscript a ps file.
	abs, _ := g.First(p1, "abstract")
	if abs.Kind() != graph.KindFile || abs.FileType() != graph.FileText {
		t.Errorf("abstract = %v, want text file", abs)
	}
	ps, _ := g.First(p1, "postscript")
	if ps.FileType() != graph.FilePostScript {
		t.Errorf("postscript = %v, want ps file", ps)
	}
	// Integers parse as ints.
	year, _ := g.First(p1, "year")
	if n, ok := year.AsInt(); !ok || n != 1997 {
		t.Errorf("year = %v", year)
	}
	// Directives returned.
	if res.Directives["Publications"]["abstract"] != "text" {
		t.Errorf("directives = %v", res.Directives)
	}
}

func TestParseValueForms(t *testing.T) {
	src := `
object x {
    count 42
    weight 3.5
    neg -7
    flag true
    off false
    home url("http://example.com")
    pic image("logo.gif")
    page html("index.html")
    friend y
    addr { city "Summit" zip 7901 }
}
object y { name "wye" }
`
	res, err := Parse("g", src)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	x, _ := g.NodeByName("x")
	check := func(attr string, want graph.Value) {
		t.Helper()
		v, ok := g.First(x, attr)
		if !ok || v != want {
			t.Errorf("%s = %v, want %v", attr, v, want)
		}
	}
	check("count", graph.Int(42))
	check("weight", graph.Float(3.5))
	check("neg", graph.Int(-7))
	check("flag", graph.Bool(true))
	check("off", graph.Bool(false))
	check("home", graph.URL("http://example.com"))
	check("pic", graph.File("logo.gif", graph.FileImage))
	check("page", graph.File("index.html", graph.FileHTML))
	y, _ := g.NodeByName("y")
	if v, ok := g.First(x, "friend"); !ok || v != graph.NodeValue(y) {
		t.Errorf("friend = %v, want node y", v)
	}
	// Nested object.
	addr, ok := g.First(x, "addr")
	if !ok || !addr.IsNode() {
		t.Fatalf("addr = %v", addr)
	}
	city, _ := g.First(addr.OID(), "city")
	if city != graph.Str("Summit") {
		t.Errorf("city = %v", city)
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
object a { next b }
object b { next a }
`
	res, err := Parse("g", src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Graph.NodeByName("a")
	b, _ := res.Graph.NodeByName("b")
	if v, _ := res.Graph.First(a, "next"); v != graph.NodeValue(b) {
		t.Error("forward reference a->b broken")
	}
	if v, _ := res.Graph.First(b, "next"); v != graph.NodeValue(a) {
		t.Error("back reference b->a broken")
	}
}

func TestParseMultipleCollections(t *testing.T) {
	src := `object p in People, Directors { name "Ann" }`
	res, err := Parse("g", src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Graph.NodeByName("p")
	for _, c := range []string{"People", "Directors"} {
		if !res.Graph.InCollection(c, graph.NodeValue(p)) {
			t.Errorf("p missing from %s", c)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// a comment
# another comment
object a { x "1" } // trailing
`
	if _, err := Parse("g", src); err != nil {
		t.Fatal(err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	res, err := Parse("g", `object a { s "line\nbreak \"quoted\" tab\t\\" }`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Graph.NodeByName("a")
	v, _ := res.Graph.First(a, "s")
	if v.Text() != "line\nbreak \"quoted\" tab\t\\" {
		t.Errorf("escapes = %q", v.Text())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"bad top-level", `frob x { }`, "expected 'collection' or 'object'"},
		{"unterminated string", `object a { s "abc`, "unterminated string"},
		{"newline in string", "object a { s \"ab\nc\" }", "newline in string"},
		{"bad escape", `object a { s "a\q" }`, "unknown escape"},
		{"undeclared ref", `object a { next nosuch }`, "undeclared object"},
		{"missing value", `object a { attr }`, "expected a value"},
		{"unknown type", `object a { x pdf("f") }`, "unknown value type"},
		{"bad int in typed", `object a { x int("zz") }`, "bad int literal"},
		{"stray char", `object a { x "1" } %`, "unexpected character"},
		{"missing brace", `object a  x "1" }`, "expected '{'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("g", c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseIntoMergesFiles(t *testing.T) {
	g := graph.New("merged")
	if err := ParseInto(g, `object a in C { val 1 }`); err != nil {
		t.Fatal(err)
	}
	if err := ParseInto(g, `object b in C { friend a }`); err != nil {
		t.Fatal(err)
	}
	if len(g.Collection("C")) != 2 {
		t.Errorf("C has %d members", len(g.Collection("C")))
	}
	a, _ := g.NodeByName("a")
	b, _ := g.NodeByName("b")
	if v, _ := g.First(b, "friend"); v != graph.NodeValue(a) {
		t.Error("cross-file reference broken")
	}
}

func TestRoundTrip(t *testing.T) {
	res, err := Parse("BIBTEX", fig2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, res.Graph); err != nil {
		t.Fatal(err)
	}
	res2, err := Parse("BIBTEX2", sb.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, sb.String())
	}
	g1, g2 := res.Graph, res2.Graph
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Errorf("round trip changed size: %v vs %v", g1.Stats(), g2.Stats())
	}
	// Attribute-level check for one object.
	p1a, _ := g1.NodeByName("pub1")
	p1b, _ := g2.NodeByName("pub1")
	ea, eb := g1.Out(p1a), g2.Out(p1b)
	if len(ea) != len(eb) {
		t.Fatalf("pub1 edges %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Label != eb[i].Label || ea[i].To.String() != eb[i].To.String() {
			t.Errorf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestWriteEmptyCollection(t *testing.T) {
	g := graph.New("g")
	g.DeclareCollection("Empty")
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "collection Empty { }") {
		t.Errorf("output: %s", sb.String())
	}
}

func TestWriteRejectsAtomCollectionMembers(t *testing.T) {
	g := graph.New("g")
	g.AddToCollection("C", graph.Str("atom"))
	if err := Write(&strings.Builder{}, g); err == nil {
		t.Fatal("expected error for atomic collection member")
	}
}

// TestQuickWriteParseRoundTrip: arbitrary graphs with named nodes
// survive a serialize/parse cycle exactly.
func TestQuickWriteParseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomNamedGraph(seed)
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			return false
		}
		g2, err := Parse("rt", sb.String())
		if err != nil {
			return false
		}
		return g.DumpString() == strings.Replace(g2.Graph.DumpString(), "graph rt:", "graph rnd:", 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func randomNamedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("rnd")
	n := 2 + rng.Intn(10)
	var ids []graph.OID
	for i := 0; i < n; i++ {
		ids = append(ids, g.NewNode(fmt.Sprintf("obj%d", i)))
	}
	labels := []string{"alpha", "beta", "gamma"}
	for i := 0; i < n*2; i++ {
		from := ids[rng.Intn(len(ids))]
		label := labels[rng.Intn(len(labels))]
		switch rng.Intn(7) {
		case 0:
			g.AddEdge(from, label, graph.NodeValue(ids[rng.Intn(len(ids))]))
		case 1:
			g.AddEdge(from, label, graph.Int(int64(rng.Intn(200)-100)))
		case 2:
			g.AddEdge(from, label, graph.Float(float64(rng.Intn(100))+0.5))
		case 3:
			g.AddEdge(from, label, graph.Bool(rng.Intn(2) == 0))
		case 4:
			g.AddEdge(from, label, graph.URL(fmt.Sprintf("http://h/%d", rng.Intn(9))))
		case 5:
			g.AddEdge(from, label, graph.File(fmt.Sprintf("f%d.x", rng.Intn(9)), graph.FileType(1+rng.Intn(4))))
		default:
			g.AddEdge(from, label, graph.Str(fmt.Sprintf("text %d \"quoted\"\nline", rng.Intn(9))))
		}
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		g.AddToCollection("Things", graph.NodeValue(ids[rng.Intn(len(ids))]))
	}
	return g
}
