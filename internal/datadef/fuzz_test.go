package datadef

import (
	"strings"
	"testing"
)

// FuzzParse asserts the datadef parser never panics, and that graphs
// it accepts serialize and re-parse to the same shape.
func FuzzParse(f *testing.F) {
	f.Add(fig2)
	f.Add(`object a { x "1" y 2 z 3.5 b true u url("http://x") }`)
	f.Add(`collection C { a text } object o in C { a "f.txt" nested { k "v" } }`)
	f.Add(`object a { next b } object b { next a }`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse("g", src)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, res.Graph); err != nil {
			return // e.g. atomic collection members
		}
		res2, err := Parse("g2", sb.String())
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, sb.String())
		}
		if res.Graph.NumEdges() != res2.Graph.NumEdges() {
			t.Fatalf("edge count changed: %d vs %d", res.Graph.NumEdges(), res2.Graph.NumEdges())
		}
	})
}
