// Package datadef implements STRUDEL's data-definition language, the
// common exchange format between wrappers and the data repository
// (paper Sec. 2.2, Fig. 2). A file declares collections with default
// attribute types and objects with attribute/value pairs:
//
//	collection Publications { abstract text postscript ps }
//	object pub1 in Publications {
//	    title  "Specifying Representations..."
//	    author "Norman Ramsey"
//	    year   1997
//	    postscript "papers/toplas97.ps.gz"
//	}
//
// Values may be strings, numbers, booleans, typed atoms such as
// url("...") or image("..."), references to other objects by name,
// and nested anonymous objects written as { attr value ... }.
package datadef

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokFloat
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return "token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer scans datadef source into tokens. Comments run from // or #
// to end of line.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("datadef: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", line: l.line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", line: l.line}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case '"':
		return l.scanString()
	}
	if c == '-' || c >= '0' && c <= '9' {
		return l.scanNumber()
	}
	// Decode the rune the same way scanIdent will: a Latin-1 byte that
	// is not valid UTF-8 must be rejected here, or scanIdent would
	// make no progress.
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isIdentStart(r) {
		return l.scanIdent(), nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#' || c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// scanString scans a double-quoted literal and decodes it with the
// full Go escape set (strconv.Unquote), matching what the writer's
// strconv.Quote emits.
func (l *lexer) scanString() (token, error) {
	start := l.line
	begin := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			l.pos++
			text, err := strconv.Unquote(l.src[begin:l.pos])
			if err != nil {
				return token{}, l.errf("bad string literal %s: unknown escape or malformed quoting", l.src[begin:l.pos])
			}
			return token{kind: tokString, text: text, line: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			l.pos += 2
		case '\n':
			return token{}, l.errf("newline in string literal")
		default:
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string literal")
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
		digits++
	}
	if digits == 0 {
		return token{}, l.errf("malformed number")
	}
	kind := tokInt
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	return token{kind: kind, text: l.src[start:l.pos], line: l.line}, nil
}

func (l *lexer) scanIdent() token {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
