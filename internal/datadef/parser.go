package datadef

import (
	"fmt"
	"strconv"

	"strudel/internal/graph"
)

// TypeDirectives records the default value types declared per
// collection: attribute name → type name ("text", "ps", "url", ...).
// The directives are not constraints; explicit typed values in the
// input override them (paper Sec. 3.1).
type TypeDirectives map[string]map[string]string

// Result is the outcome of parsing a datadef source: a graph plus the
// collection type directives encountered.
type Result struct {
	Graph      *graph.Graph
	Directives TypeDirectives
}

// Parse parses datadef source into a fresh standalone graph with the
// given name.
func Parse(name, src string) (*Result, error) {
	g := graph.New(name)
	p := &parser{lex: newLexer(src), g: g, directives: TypeDirectives{}}
	if err := p.run(); err != nil {
		return nil, err
	}
	return &Result{Graph: g, Directives: p.directives}, nil
}

// ParseInto parses datadef source into an existing graph, so multiple
// source files can be merged (object names are shared across files).
func ParseInto(g *graph.Graph, src string) error {
	p := &parser{lex: newLexer(src), g: g, directives: TypeDirectives{}}
	return p.run()
}

type parser struct {
	lex        *lexer
	g          *graph.Graph
	directives TypeDirectives
	tok        token
	// pendingRefs are attribute values written as bare identifiers:
	// references to objects that may be declared later in the file.
	pendingRefs []pendingRef
	// declared tracks object names declared in this source.
	declared map[string]bool
}

type pendingRef struct {
	from  graph.OID
	label string
	name  string
	line  int
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("datadef: line %d: expected %v, found %v %q", p.tok.line, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) run() error {
	p.declared = map[string]bool{}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		switch kw.text {
		case "collection":
			if err := p.parseCollection(); err != nil {
				return err
			}
		case "object":
			if err := p.parseObject(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("datadef: line %d: expected 'collection' or 'object', found %q", kw.line, kw.text)
		}
	}
	return p.resolveRefs()
}

// parseCollection handles: collection NAME { (attr type)* }
func (p *parser) parseCollection() error {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	p.g.DeclareCollection(nameTok.text)
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind == tokIdent {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		typTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		m := p.directives[nameTok.text]
		if m == nil {
			m = map[string]string{}
			p.directives[nameTok.text] = m
		}
		m[attr] = typTok.text
	}
	_, err = p.expect(tokRBrace)
	return err
}

// parseObject handles: object NAME (in C1, C2...)? { (attr value)* }
func (p *parser) parseObject() error {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	oid := p.g.NewNode(nameTok.text)
	p.declared[nameTok.text] = true
	var colls []string
	if p.tok.kind == tokIdent && p.tok.text == "in" {
		if err := p.advance(); err != nil {
			return err
		}
		for {
			collTok, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			colls = append(colls, collTok.text)
			p.g.AddToCollection(collTok.text, graph.NodeValue(oid))
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	if err := p.parseAttrs(oid, colls); err != nil {
		return err
	}
	_, err = p.expect(tokRBrace)
	return err
}

// parseAttrs parses attr/value pairs until the closing brace.
func (p *parser) parseAttrs(oid graph.OID, colls []string) error {
	for p.tok.kind == tokIdent {
		attr := p.tok.text
		attrLine := p.tok.line
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.parseValue(oid, attr, attrLine, colls); err != nil {
			return err
		}
	}
	return nil
}

// parseValue parses one attribute value and adds the edge.
func (p *parser) parseValue(oid graph.OID, attr string, line int, colls []string) error {
	switch p.tok.kind {
	case tokString:
		v := p.typedValue(attr, p.tok.text, colls)
		if err := p.g.AddEdge(oid, attr, v); err != nil {
			return err
		}
		return p.advance()
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return fmt.Errorf("datadef: line %d: %v", p.tok.line, err)
		}
		if err := p.g.AddEdge(oid, attr, graph.Int(n)); err != nil {
			return err
		}
		return p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return fmt.Errorf("datadef: line %d: %v", p.tok.line, err)
		}
		if err := p.g.AddEdge(oid, attr, graph.Float(f)); err != nil {
			return err
		}
		return p.advance()
	case tokLBrace:
		// Nested anonymous object: attr { sub value ... }
		if err := p.advance(); err != nil {
			return err
		}
		sub := p.g.NewNode("")
		if err := p.g.AddEdge(oid, attr, graph.NodeValue(sub)); err != nil {
			return err
		}
		if err := p.parseAttrs(sub, nil); err != nil {
			return err
		}
		_, err := p.expect(tokRBrace)
		return err
	case tokIdent:
		word := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		switch word {
		case "true", "false":
			return p.g.AddEdge(oid, attr, graph.Bool(word == "true"))
		}
		if p.tok.kind == tokLParen {
			// Typed value: url("..."), ps("..."), text("..."), etc.
			if err := p.advance(); err != nil {
				return err
			}
			lit, err := p.expect(tokString)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			v, err := typedAtom(word, lit.text)
			if err != nil {
				return fmt.Errorf("datadef: line %d: %v", lit.line, err)
			}
			return p.g.AddEdge(oid, attr, v)
		}
		// Bare identifier: reference to another object, possibly
		// declared later.
		p.pendingRefs = append(p.pendingRefs, pendingRef{from: oid, label: attr, name: word, line: line})
		return nil
	default:
		return fmt.Errorf("datadef: line %d: expected a value for attribute %q, found %v", p.tok.line, attr, p.tok.kind)
	}
}

// typedValue applies collection type directives to a string literal.
func (p *parser) typedValue(attr, lit string, colls []string) graph.Value {
	for _, c := range colls {
		if typ, ok := p.directives[c][attr]; ok {
			if v, err := typedAtom(typ, lit); err == nil {
				return v
			}
		}
	}
	return graph.Str(lit)
}

// typedAtom builds an atom of the named type from a string literal.
func typedAtom(typ, lit string) (graph.Value, error) {
	switch typ {
	case "string", "str":
		return graph.Str(lit), nil
	case "url":
		return graph.URL(lit), nil
	case "int":
		n, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return graph.Value{}, fmt.Errorf("bad int literal %q", lit)
		}
		return graph.Int(n), nil
	case "float":
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return graph.Value{}, fmt.Errorf("bad float literal %q", lit)
		}
		return graph.Float(f), nil
	case "bool":
		b, err := strconv.ParseBool(lit)
		if err != nil {
			return graph.Value{}, fmt.Errorf("bad bool literal %q", lit)
		}
		return graph.Bool(b), nil
	}
	if ft, ok := graph.FileTypeByName(typ); ok {
		return graph.File(lit, ft), nil
	}
	return graph.Value{}, fmt.Errorf("unknown value type %q", typ)
}

// resolveRefs binds bare-identifier values to the objects they name.
func (p *parser) resolveRefs() error {
	for _, r := range p.pendingRefs {
		oid, ok := p.g.NodeByName(r.name)
		if !ok {
			return fmt.Errorf("datadef: line %d: attribute %q references undeclared object %q", r.line, r.label, r.name)
		}
		if err := p.g.AddEdge(r.from, r.label, graph.NodeValue(oid)); err != nil {
			return err
		}
	}
	p.pendingRefs = nil
	return nil
}
