package datadef

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"strudel/internal/graph"
)

// Write serializes a graph in the data-definition language. Nodes with
// symbolic names keep them; anonymous nodes are written as o<oid>.
// The output round-trips through Parse (modulo anonymous node names).
func Write(w io.Writer, g *graph.Graph) error {
	// Collection membership per node, for "in" clauses.
	memberOf := map[graph.OID][]string{}
	atomMembers := map[string][]graph.Value{}
	for _, c := range g.Collections() {
		for _, m := range g.Collection(c) {
			if m.IsNode() {
				memberOf[m.OID()] = append(memberOf[m.OID()], c)
			} else {
				atomMembers[c] = append(atomMembers[c], m)
			}
		}
	}
	// Collections with atom members cannot be expressed as object "in"
	// clauses; reject them rather than silently dropping data.
	for c, atoms := range atomMembers {
		if len(atoms) > 0 {
			return fmt.Errorf("datadef: collection %q has %d atomic members, which the data-definition language cannot express", c, len(atoms))
		}
	}
	// Empty collections still need declaring.
	for _, c := range g.Collections() {
		empty := true
		for _, m := range g.Collection(c) {
			if m.IsNode() {
				empty = false
				break
			}
		}
		if empty {
			if _, err := fmt.Fprintf(w, "collection %s { }\n", c); err != nil {
				return err
			}
		}
	}
	for _, id := range g.Nodes() {
		if err := writeObject(w, g, id, memberOf[id]); err != nil {
			return err
		}
	}
	return nil
}

func objName(g *graph.Graph, id graph.OID) string {
	if n := g.NodeName(id); n != "" {
		return n
	}
	return "o" + strconv.FormatUint(uint64(id), 10)
}

func writeObject(w io.Writer, g *graph.Graph, id graph.OID, colls []string) error {
	sort.Strings(colls)
	if _, err := fmt.Fprintf(w, "object %s", objName(g, id)); err != nil {
		return err
	}
	for i, c := range colls {
		sep := ", "
		if i == 0 {
			sep = " in "
		}
		if _, err := fmt.Fprintf(w, "%s%s", sep, c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, " {"); err != nil {
		return err
	}
	for _, e := range g.Out(id) {
		if _, err := fmt.Fprintf(w, "    %s %s\n", e.Label, formatValue(g, e.To)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func formatValue(g *graph.Graph, v graph.Value) string {
	switch v.Kind() {
	case graph.KindNode:
		return objName(g, v.OID())
	case graph.KindString:
		return strconv.Quote(v.Text())
	case graph.KindURL:
		return "url(" + strconv.Quote(v.Text()) + ")"
	case graph.KindFile:
		return v.FileType().String() + "(" + strconv.Quote(v.Text()) + ")"
	default:
		return v.Text()
	}
}
