package fsx

import (
	"fmt"
	"io"
	"io/fs"
	"sync"
	"syscall"
)

// FaultFS wraps an FS with deterministic fault injection for crash and
// error-path testing. Every *mutating* operation (MkdirAll, WriteFile,
// Rename, Remove, RemoveAll, Sync) is assigned a sequential index,
// starting at 0, and faults are scheduled against those indexes:
//
//   - FailAt(n, err): operation n returns err without executing.
//   - LimitBytes(k): WriteFile calls have a shared budget of k payload
//     bytes; the call that exceeds it writes the prefix that fits —
//     exactly what a real ENOSPC leaves behind — and returns ENOSPC.
//   - FailSync(err): every Sync returns err (EIO on fsync is the
//     classic torn-write escape hatch; callers must treat it as fatal).
//   - CrashAt(n): operation n and every later mutating operation are
//     silently *dropped* — they return success but change nothing —
//     simulating power loss at that write boundary. Reads pass through
//     untouched, so after the "crash" the filesystem is observed
//     exactly as a reboot would find it.
//
// Index assignment, fault checks and execution happen under one mutex,
// so concurrent use is linearizable and the sweep in the publication
// tests is deterministic as long as callers issue operations in a
// deterministic order.
type FaultFS struct {
	mu      sync.Mutex
	base    FS
	n       int // next mutating-op index
	crashAt int // ops >= crashAt are dropped; -1 = never
	crashed bool
	failAt  map[int]error
	syncErr error
	limit   int64 // remaining WriteFile payload budget; -1 = unlimited
	journal []string
}

// NewFaultFS wraps base with no faults scheduled.
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{base: base, crashAt: -1, limit: -1, failAt: map[int]error{}}
}

// CrashAt schedules a simulated power loss: mutating operation n
// (0-based) and everything after it succeed without effect. n < 0
// disables.
func (f *FaultFS) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
	if n < 0 {
		f.crashed = false
	}
}

// FailAt makes mutating operation n (0-based) fail with err.
func (f *FaultFS) FailAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt[n] = err
}

// FailSync makes every subsequent Sync fail with err (nil disables).
func (f *FaultFS) FailSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// LimitBytes caps the total payload bytes WriteFile may write from now
// on; the call that exceeds the budget writes the prefix that fits and
// returns syscall.ENOSPC. k < 0 removes the cap.
func (f *FaultFS) LimitBytes(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = k
}

// Ops returns how many mutating operations have been issued (dropped
// and failed ones included). Running a workload once against a
// fault-free FaultFS and reading Ops gives the sweep bound for
// CrashAt.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the scheduled crash point was reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Journal returns the mutating-operation log ("<index> <op> <path>"),
// for diagnosing a failed sweep iteration.
func (f *FaultFS) Journal() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.journal))
	copy(out, f.journal)
	return out
}

// begin assigns the next op index and resolves scheduled faults. The
// caller must hold f.mu. It returns (fault error, execute?).
func (f *FaultFS) begin(op, name string) (error, bool) {
	i := f.n
	f.n++
	f.journal = append(f.journal, fmt.Sprintf("%d %s %s", i, op, name))
	if f.crashAt >= 0 && i >= f.crashAt {
		f.crashed = true
		return nil, false // dropped: silent success, no effect
	}
	if err := f.failAt[i]; err != nil {
		return fmt.Errorf("%s %s: injected: %w", op, name, err), false
	}
	return nil, true
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("mkdirall", path); !run {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("write", name); !run {
		return err
	}
	if f.limit >= 0 {
		if int64(len(data)) > f.limit {
			// ENOSPC mid-write: the prefix that fits lands on disk.
			prefix := data[:f.limit]
			f.limit = 0
			f.base.WriteFile(name, prefix, perm)
			return fmt.Errorf("write %s: injected: %w", name, syscall.ENOSPC)
		}
		f.limit -= int64(len(data))
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("rename", oldpath+" -> "+newpath); !run {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("remove", name); !run {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("removeall", path); !run {
		return err
	}
	return f.base.RemoveAll(path)
}

func (f *FaultFS) Sync(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err, run := f.begin("sync", name); !run {
		return err
	}
	if f.syncErr != nil {
		return fmt.Errorf("sync %s: injected: %w", name, f.syncErr)
	}
	return f.base.Sync(name)
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error)    { return f.base.Open(name) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.base.ReadDir(name) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error)      { return f.base.Stat(name) }
