// Package fsx abstracts the slice of filesystem behaviour STRUDEL's
// persistence and publication layers depend on, so crash safety can be
// proven rather than assumed: every component that writes site or
// repository state takes an fsx.FS, production code passes OS, and the
// fault-injection harness (FaultFS) substitutes a filesystem that
// fails or silently loses writes at any chosen operation boundary.
//
// Durability model. An FS write (WriteFile, Rename, Remove, MkdirAll)
// becomes durable only once Sync is called on the file — and, for the
// existence of a directory entry, on its parent directory. The helpers
// WriteFileAtomic and WriteFileDurable encode the two disciplines used
// throughout the code base: atomic-but-volatile (temp + rename, so a
// concurrent reader never sees a torn file) and atomic-and-durable
// (additionally fsyncing the temp file before the rename and the
// parent directory after it, so the rename survives power loss).
//
// FaultFS simulates crashes at write granularity: every mutating
// operation that executed before the crash point is treated as durable
// and every operation from the crash point on is silently dropped.
// This is coarser than real power loss — a real disk may also lose
// *earlier* writes that were never fsynced — but it is exactly the
// granularity needed to prove commit-point atomicity: a publication
// protocol is crash-safe iff for every operation boundary the
// recovered state is a consistent old or new snapshot, never a mix.
package fsx

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the injectable filesystem surface. Paths are OS paths, not
// fs.FS-rooted names. Read operations (Open, ReadDir, Stat) are never
// fault-injected by FaultFS's crash mode: after a simulated crash they
// observe the state as of the crash point, exactly like a reboot.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// WriteFile creates or truncates name with data. The write is
	// atomic only at the whole-call level of the simulation; on a real
	// filesystem a crash or ENOSPC can leave a prefix. Callers that
	// need reader-visible atomicity use WriteFileAtomic.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// RemoveAll deletes a path and anything under it.
	RemoveAll(path string) error
	// Sync fsyncs the file or directory at name.
	Sync(name string) error
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a path.
	Stat(name string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) Open(name string) (io.ReadCloser, error)    { return os.Open(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) Sync(name string) error {
	// os.Open suffices for fsync on both files and directories.
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fsync %s: %w", name, err)
	}
	return f.Close()
}

// ReadFile reads the whole of name through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// tempName is the deterministic staging name WriteFileAtomic and
// WriteFileDurable use. Determinism matters: the fault-injection sweep
// replays the exact same operation sequence on every run. Concurrent
// writers of the *same* target path are not supported (writers of
// different paths never collide).
func tempName(name string) string { return name + ".tmp" }

// IsTempName reports whether a file name is a staging remnant left by
// an interrupted WriteFileAtomic/WriteFileDurable (or a staged
// publication directory, which uses the same suffix). Recovery deletes
// such remnants.
func IsTempName(name string) bool { return filepath.Ext(name) == ".tmp" }

// WriteFileAtomic writes data to name via a temp file in the same
// directory plus a rename, so a concurrent reader of name observes
// either the old or the new content in full, never a prefix. The
// write is NOT durable: nothing is fsynced, and a crash may lose it —
// use WriteFileDurable where the content must survive power loss.
func WriteFileAtomic(fsys FS, name string, data []byte, perm fs.FileMode) error {
	tmp := tempName(name)
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// WriteFileDurable is WriteFileAtomic plus durability: the temp file
// is fsynced before the rename and the parent directory after it, so
// after WriteFileDurable returns the new content survives power loss.
func WriteFileDurable(fsys FS, name string, data []byte, perm fs.FileMode) error {
	tmp := tempName(name)
	if err := fsys.WriteFile(tmp, data, perm); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Sync(tmp); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Sync(filepath.Dir(name))
}
