package fsx

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(sub, "f.txt")
	if err := OS.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := OS.Sync(name); err != nil {
		t.Fatal(err)
	}
	if err := OS.Sync(sub); err != nil {
		t.Fatalf("directory fsync: %v", err)
	}
	got, err := ReadFile(OS, name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	moved := filepath.Join(sub, "g.txt")
	if err := OS.Rename(name, moved); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if _, err := OS.Stat(moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.RemoveAll(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "page.html")
	for i := 0; i < 3; i++ {
		if err := WriteFileAtomic(OS, name, []byte("v"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, _ := OS.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("want only the target file, got %v", ents)
	}
	if !IsTempName("page.html.tmp") || IsTempName("page.html") {
		t.Fatal("IsTempName misclassifies staging names")
	}
}

func TestFaultFSFailAt(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS)
	boom := errors.New("boom")
	f.FailAt(1, boom)
	if err := f.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil { // op 0
		t.Fatal(err)
	}
	err := f.WriteFile(filepath.Join(dir, "b"), []byte("x"), 0o644) // op 1
	if !errors.Is(err, boom) {
		t.Fatalf("op 1 err = %v, want boom", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "b")); !errors.Is(serr, fs.ErrNotExist) {
		t.Fatal("failed op must not execute")
	}
	if f.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", f.Ops())
	}
}

func TestFaultFSENOSPCWritesPrefix(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS)
	f.LimitBytes(10)
	if err := f.WriteFile(filepath.Join(dir, "a"), []byte("123456"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := f.WriteFile(filepath.Join(dir, "b"), []byte("789012345"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "b"))
	if string(got) != "7890" {
		t.Fatalf("torn file = %q, want the 4-byte prefix that fit", got)
	}
	// Budget is exhausted now: even a 1-byte write fails.
	if err := f.WriteFile(filepath.Join(dir, "c"), []byte("x"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-exhaustion err = %v, want ENOSPC", err)
	}
}

func TestFaultFSFailSync(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS)
	f.FailSync(syscall.EIO)
	name := filepath.Join(dir, "a")
	if err := f.WriteFile(name, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(name); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	// WriteFileDurable must surface the sync failure, not swallow it.
	if err := WriteFileDurable(f, filepath.Join(dir, "d"), []byte("x"), 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("durable write err = %v, want EIO", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "d")); !errors.Is(serr, fs.ErrNotExist) {
		t.Fatal("a durable write whose fsync failed must not be renamed into place")
	}
}

func TestFaultFSCrashDropsWrites(t *testing.T) {
	dir := t.TempDir()
	f := NewFaultFS(OS)
	f.CrashAt(2)
	a, b, c := filepath.Join(dir, "a"), filepath.Join(dir, "b"), filepath.Join(dir, "c")
	if err := f.WriteFile(a, []byte("1"), 0o644); err != nil { // op 0: executes
		t.Fatal(err)
	}
	if err := f.WriteFile(b, []byte("2"), 0o644); err != nil { // op 1: executes
		t.Fatal(err)
	}
	if err := f.WriteFile(c, []byte("3"), 0o644); err != nil { // op 2: dropped
		t.Fatalf("dropped op must report success, got %v", err)
	}
	if err := f.Remove(a); err != nil { // op 3: dropped
		t.Fatal(err)
	}
	if !f.Crashed() {
		t.Fatal("crash point not reached")
	}
	// Reads see the pre-crash state: a and b exist, c never landed.
	if _, err := f.Stat(a); err != nil {
		t.Fatal("pre-crash write lost")
	}
	if _, err := f.Stat(c); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("post-crash write landed")
	}
	if got := f.Journal(); len(got) != 4 {
		t.Fatalf("journal = %v, want 4 ops", got)
	}
}

func TestFaultFSOpsDeterministic(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		f := NewFaultFS(OS)
		WriteFileDurable(f, filepath.Join(dir, "x"), []byte("1"), 0o644)
		WriteFileAtomic(f, filepath.Join(dir, "y"), []byte("2"), 0o644)
		j := f.Journal()
		// Strip the per-run temp dir so the two journals compare equal.
		for i := range j {
			j[i] = strings.ReplaceAll(j[i], dir, "$DIR")
		}
		return j
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
