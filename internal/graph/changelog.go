// Change logging: a Graph can journal its mutations into attached
// ChangeLogs, giving incremental consumers (the differential StruQL
// evaluator, the dynamic-evaluation cache) an exact record of what
// changed between two points in time — no O(graph) Diff required.
// Composite mutations (RemoveNode) are journaled as their constituent
// edge/membership removals followed by the node removal itself, so a
// consumer can replay the log op by op.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// OpKind discriminates journal entries.
type OpKind uint8

// Journal entry kinds. RemoveNode emits OpRemoveEdge/OpRemoveMember
// entries for every edge and membership it cascades over, then one
// OpRemoveNode.
const (
	OpAddEdge OpKind = iota
	OpRemoveEdge
	OpAddMember
	OpRemoveMember
	OpAddNode
	OpRemoveNode
	OpNewCollection
)

func (k OpKind) String() string {
	return [...]string{"add-edge", "remove-edge", "add-member", "remove-member",
		"add-node", "remove-node", "new-collection"}[k]
}

// Op is one journaled mutation.
type Op struct {
	Kind OpKind
	// Edge is set for OpAddEdge/OpRemoveEdge.
	Edge Edge
	// Coll and Member are set for OpAddMember/OpRemoveMember; Coll alone
	// for OpNewCollection.
	Coll   string
	Member Value
	// Node is set for OpAddNode/OpRemoveNode.
	Node OID
	// Name is the symbolic name of the touched object when one was
	// bound at log time (the edge source, the member node, or the node
	// itself) — captured here because the node may be gone by the time
	// the log is consumed.
	Name string
}

// defaultLogLimit bounds a ChangeLog's buffered ops. Past it the log
// overflows: Take reports the journal as unusable and the consumer
// must fall back to a full recomputation.
const defaultLogLimit = 1 << 20

// ChangeLog accumulates a graph's mutations between Take calls. It has
// its own lock (never the graph's), so readers of the log and writers
// of the graph do not contend beyond the append itself.
type ChangeLog struct {
	mu       sync.Mutex
	ops      []Op
	overflow bool
	limit    int
}

// NewChangeLog creates an empty change log.
func NewChangeLog() *ChangeLog {
	return &ChangeLog{limit: defaultLogLimit}
}

func (l *ChangeLog) add(op Op) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.overflow {
		return
	}
	if len(l.ops) >= l.limit {
		l.overflow = true
		l.ops = nil
		return
	}
	l.ops = append(l.ops, op)
}

// Take drains the log, returning the buffered ops in mutation order.
// ok is false when the log overflowed since the last Take — the ops
// are incomplete and the caller must treat the change as unbounded.
// Either way the log is reset.
func (l *ChangeLog) Take() (ops []Op, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ops, ok = l.ops, !l.overflow
	l.ops, l.overflow = nil, false
	return ops, ok
}

// Len reports the number of buffered ops (0 after an overflow).
func (l *ChangeLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// Watch attaches a change log to the graph: every subsequent mutation
// is journaled into it. Multiple logs may watch one graph.
func (g *Graph) Watch(l *ChangeLog) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, w := range g.watchers {
		if w == l {
			return
		}
	}
	g.watchers = append(g.watchers, l)
}

// Unwatch detaches a change log.
func (g *Graph) Unwatch(l *ChangeLog) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, w := range g.watchers {
		if w == l {
			g.watchers = append(g.watchers[:i:i], g.watchers[i+1:]...)
			return
		}
	}
}

// logOp journals one op to every watcher. Called with g.mu held; the
// per-log lock never takes g.mu, so the order is deadlock-free.
func (g *Graph) logOp(op Op) {
	for _, w := range g.watchers {
		w.add(op)
	}
}

// nameOfLocked returns a node's symbolic name. Caller holds g.mu.
func (g *Graph) nameOfLocked(id OID) string {
	if nd, ok := g.nodes[id]; ok {
		return nd.name
	}
	return ""
}

// OpsDelta summarizes a journal as a graph.Delta, for consumers keyed
// on the coarser delta representation (schema impact analysis). Ops
// without a recoverable name still contribute their labels and
// collections, which is what the schema analysis keys on.
func OpsDelta(ops []Op) *Delta {
	d := &Delta{}
	seen := map[string]map[string]struct{}{}
	addName := func(kind, name string) {
		if name == "" {
			return
		}
		set, ok := seen[kind]
		if !ok {
			set = map[string]struct{}{}
			seen[kind] = set
		}
		if _, dup := set[name]; dup {
			return
		}
		set[name] = struct{}{}
		switch kind {
		case "added":
			d.AddedObjects = append(d.AddedObjects, name)
		case "removed":
			d.RemovedObjects = append(d.RemovedObjects, name)
		default:
			d.ChangedObjects = append(d.ChangedObjects, name)
		}
	}
	// Unnamed objects fall back to their OID key, matching Diff's
	// convention.
	keyOr := func(name string, id OID) string {
		if name != "" {
			return name
		}
		return fmt.Sprintf("&%d", uint64(id))
	}
	labels := map[string]struct{}{}
	colls := map[string]struct{}{}
	for _, op := range ops {
		switch op.Kind {
		case OpAddEdge, OpRemoveEdge:
			addName("changed", keyOr(op.Name, op.Edge.From))
			labels[op.Edge.Label] = struct{}{}
		case OpAddMember, OpRemoveMember:
			if op.Member.IsNode() {
				addName("changed", keyOr(op.Name, op.Member.OID()))
			}
			colls[op.Coll] = struct{}{}
		case OpAddNode:
			addName("added", keyOr(op.Name, op.Node))
		case OpRemoveNode:
			addName("removed", keyOr(op.Name, op.Node))
		case OpNewCollection:
			colls[op.Coll] = struct{}{}
		}
	}
	for l := range labels {
		d.TouchedLabels = append(d.TouchedLabels, l)
	}
	for c := range colls {
		d.TouchedCollections = append(d.TouchedCollections, c)
	}
	sort.Strings(d.AddedObjects)
	sort.Strings(d.RemovedObjects)
	sort.Strings(d.ChangedObjects)
	sort.Strings(d.TouchedLabels)
	sort.Strings(d.TouchedCollections)
	return d
}
