package graph

import "strconv"

// Eq reports whether two values are equal under STRUDEL's dynamic
// coercion rules. Atomic values of different kinds are coerced when
// compared at run time: integers and floats compare numerically,
// numeric strings compare with numbers, and URL/file atoms compare
// with strings by their text. Nodes are equal only by identity.
func Eq(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Compare compares two values under dynamic coercion. It returns
// (-1|0|1, true) when the values are comparable and (0, false)
// otherwise. Nodes compare only with nodes, by OID, which gives a
// stable but semantically arbitrary order used for deterministic
// output.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindInvalid || b.kind == KindInvalid {
		return 0, false
	}
	if a.kind == KindNode || b.kind == KindNode {
		if a.kind != KindNode || b.kind != KindNode {
			return 0, false
		}
		return cmpOrder(uint64(a.oid), uint64(b.oid)), true
	}
	// Same-kind fast paths.
	if a.kind == b.kind {
		switch a.kind {
		case KindInt:
			return cmpOrder(a.i, b.i), true
		case KindFloat:
			return cmpOrder(a.f, b.f), true
		case KindBool:
			return cmpBool(a.b, b.b), true
		default: // string-like
			return cmpOrder(a.s, b.s), true
		}
	}
	// Numeric coercion.
	if an, aok := a.numeric(); aok {
		if bn, bok := b.numeric(); bok {
			return cmpOrder(an, bn), true
		}
	}
	// Boolean coercion from strings.
	if a.kind == KindBool || b.kind == KindBool {
		if ab, aok := a.boolean(); aok {
			if bb, bok := b.boolean(); bok {
				return cmpBool(ab, bb), true
			}
		}
		return 0, false
	}
	// String coercion: everything with a textual payload.
	as, aok := a.coerceString()
	bs, bok := b.coerceString()
	if aok && bok {
		return cmpOrder(as, bs), true
	}
	return 0, false
}

// numeric attempts to view the value as a float64: ints and floats
// directly, strings by parsing.
func (v Value) numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindString:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// boolean attempts to view the value as a bool: bools directly,
// strings by parsing.
func (v Value) boolean() (bool, bool) {
	switch v.kind {
	case KindBool:
		return v.b, true
	case KindString:
		b, err := strconv.ParseBool(v.s)
		return b, err == nil
	default:
		return false, false
	}
}

// coerceString views string-like atoms (string, URL, file) as text.
// Numeric and boolean atoms also coerce so that mixed comparisons
// such as year values stored as either 1997 or "1997" behave sanely
// when one side is clearly non-numeric.
func (v Value) coerceString() (string, bool) {
	switch v.kind {
	case KindString, KindURL, KindFile:
		return v.s, true
	case KindInt, KindFloat, KindBool:
		return v.Text(), true
	default:
		return "", false
	}
}

func cmpOrder[T int64 | float64 | uint64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// Less is a total order over all values, used only for deterministic
// iteration and sorting in output (not query semantics). It orders
// first by kind, then within a kind by payload.
func Less(a, b Value) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	switch a.kind {
	case KindNode:
		return a.oid < b.oid
	case KindInt:
		return a.i < b.i
	case KindFloat:
		return a.f < b.f
	case KindBool:
		return !a.b && b.b
	case KindFile:
		if a.ft != b.ft {
			return a.ft < b.ft
		}
		return a.s < b.s
	default:
		return a.s < b.s
	}
}
