package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a set of named graphs sharing one OID space, so graphs
// may share objects and collections (a data graph and the site graphs
// derived from it typically live in the same database).
type Database struct {
	mu     sync.RWMutex
	graphs map[string]*Graph
	alloc  *oidAllocator
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{graphs: make(map[string]*Graph), alloc: newAllocator()}
}

// NewGraph creates (or returns, if it already exists) the graph with
// the given name.
func (db *Database) NewGraph(name string) *Graph {
	db.mu.Lock()
	defer db.mu.Unlock()
	if g, ok := db.graphs[name]; ok {
		return g
	}
	g := newGraph(name, db.alloc)
	db.graphs[name] = g
	return g
}

// Graph returns the named graph.
func (db *Database) Graph(name string) (*Graph, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	g, ok := db.graphs[name]
	return g, ok
}

// MustGraph returns the named graph or panics; for tests and examples.
func (db *Database) MustGraph(name string) *Graph {
	g, ok := db.Graph(name)
	if !ok {
		panic(fmt.Sprintf("graph: database has no graph %q", name))
	}
	return g
}

// Sibling creates a graph that shares the database's OID space but is
// NOT registered: readers of the database cannot see it. It is the
// staging half of an atomic swap — build the replacement off to the
// side, then Attach it to publish, so a failed build leaves the
// registered graphs untouched.
func (db *Database) Sibling(name string) *Graph {
	db.mu.Lock()
	defer db.mu.Unlock()
	return newGraph(name, db.alloc)
}

// Attach registers an externally built standalone graph under its own
// name, adopting the database's OID space for future allocations. The
// graph's existing OIDs are reserved so they cannot collide.
func (db *Database) Attach(g *Graph) {
	db.mu.Lock()
	defer db.mu.Unlock()
	g.mu.Lock()
	for id := range g.nodes {
		db.alloc.reserve(id)
	}
	g.alloc = db.alloc
	g.mu.Unlock()
	db.graphs[g.name] = g
}

// Drop removes the named graph from the database.
func (db *Database) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.graphs, name)
}

// Names returns the graph names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.graphs))
	for n := range db.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
