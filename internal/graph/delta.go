package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Delta describes the difference between two graphs at object
// granularity. Objects are identified by symbolic node name where one
// exists; unnamed nodes fall back to their OID key ("&17"), which makes
// cross-rebuild comparison of unnamed objects conservative: an unnamed
// object whose OID shifted between builds is reported as one removal
// plus one addition.
//
// An object is "changed" when its canonical out-edge set or its
// collection memberships differ between the two graphs. TouchedLabels
// holds every edge label that appears in the symmetric difference of
// edge sets (plus all labels of added and removed objects);
// TouchedCollections holds every collection whose membership changed.
type Delta struct {
	AddedObjects       []string
	RemovedObjects     []string
	ChangedObjects     []string
	TouchedLabels      []string
	TouchedCollections []string
}

// Empty reports whether the delta records no difference at all.
func (d *Delta) Empty() bool {
	return d == nil ||
		(len(d.AddedObjects) == 0 && len(d.RemovedObjects) == 0 &&
			len(d.ChangedObjects) == 0 && len(d.TouchedLabels) == 0 &&
			len(d.TouchedCollections) == 0)
}

// HasLabel reports whether edges with the given label changed.
func (d *Delta) HasLabel(label string) bool {
	if d == nil {
		return false
	}
	for _, l := range d.TouchedLabels {
		if l == label {
			return true
		}
	}
	return false
}

// HasCollection reports whether the named collection's membership
// changed.
func (d *Delta) HasCollection(name string) bool {
	if d == nil {
		return false
	}
	for _, c := range d.TouchedCollections {
		if c == name {
			return true
		}
	}
	return false
}

// AnyEdgeChange reports whether any edge — of any label — was added or
// removed. It is the trigger for conditions that are sensitive to the
// whole active domain (unconstrained arc variables, negation).
func (d *Delta) AnyEdgeChange() bool {
	return d != nil && len(d.TouchedLabels) > 0
}

// Objects returns every affected object key (added, removed and
// changed), sorted.
func (d *Delta) Objects() []string {
	if d == nil {
		return nil
	}
	out := make([]string, 0, len(d.AddedObjects)+len(d.RemovedObjects)+len(d.ChangedObjects))
	out = append(out, d.AddedObjects...)
	out = append(out, d.RemovedObjects...)
	out = append(out, d.ChangedObjects...)
	sort.Strings(out)
	return out
}

// Summary renders a compact one-line description for logs.
func (d *Delta) Summary() string {
	if d.Empty() {
		return "delta: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "delta: +%d -%d ~%d objects",
		len(d.AddedObjects), len(d.RemovedObjects), len(d.ChangedObjects))
	if len(d.TouchedLabels) > 0 {
		fmt.Fprintf(&b, ", labels %s", strings.Join(d.TouchedLabels, ","))
	}
	if len(d.TouchedCollections) > 0 {
		fmt.Fprintf(&b, ", collections %s", strings.Join(d.TouchedCollections, ","))
	}
	return b.String()
}

// objSnap is one object's canonical comparison form: its out-edges as
// "label\x00targetKey" strings and the collections it belongs to.
type objSnap struct {
	edges   map[string]struct{}
	members map[string]struct{}
}

// snapshot captures a graph in identity-keyed canonical form. The names
// map is the authority for node identity (nodeData.name can be empty
// for nodes that entered the graph implicitly through AddEdge); when
// several names bind one OID the lexicographically smallest wins.
func (g *Graph) snapshot() (objs map[string]*objSnap, colls map[string]map[string]struct{}) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	keyOf := make(map[OID]string, len(g.nodes))
	for name, id := range g.names {
		if prev, ok := keyOf[id]; !ok || name < prev {
			keyOf[id] = name
		}
	}
	for id := range g.nodes {
		if _, ok := keyOf[id]; !ok {
			keyOf[id] = "&" + strconv.FormatUint(uint64(id), 10)
		}
	}
	valKey := func(v Value) string {
		if v.IsNode() {
			if k, ok := keyOf[v.OID()]; ok {
				return k
			}
			return "&" + strconv.FormatUint(uint64(v.OID()), 10)
		}
		return v.String()
	}

	objs = make(map[string]*objSnap, len(g.nodes))
	for id, nd := range g.nodes {
		s := &objSnap{edges: make(map[string]struct{}, len(nd.out))}
		for _, e := range nd.out {
			s.edges[e.Label+"\x00"+valKey(e.To)] = struct{}{}
		}
		objs[keyOf[id]] = s
	}
	colls = make(map[string]map[string]struct{}, len(g.colls))
	for name, c := range g.colls {
		set := make(map[string]struct{}, len(c.members))
		for _, v := range c.members {
			k := valKey(v)
			set[k] = struct{}{}
			if v.IsNode() {
				if s, ok := objs[k]; ok {
					if s.members == nil {
						s.members = make(map[string]struct{})
					}
					s.members[name] = struct{}{}
				}
			}
		}
		colls[name] = set
	}
	return objs, colls
}

// Diff computes the object-level delta from old to new. A nil old graph
// yields a delta in which every object of new is added; a nil new graph
// marks every object of old removed.
func Diff(old, new *Graph) *Delta {
	var (
		oldObjs  map[string]*objSnap
		oldColls map[string]map[string]struct{}
		newObjs  map[string]*objSnap
		newColls map[string]map[string]struct{}
	)
	if old != nil {
		oldObjs, oldColls = old.snapshot()
	}
	if new != nil {
		newObjs, newColls = new.snapshot()
	}

	d := &Delta{}
	labels := map[string]struct{}{}
	touchLabels := func(edgeKeys map[string]struct{}) {
		for k := range edgeKeys {
			if i := strings.IndexByte(k, 0); i >= 0 {
				labels[k[:i]] = struct{}{}
			}
		}
	}
	sameSet := func(a, b map[string]struct{}) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	}

	for key, ns := range newObjs {
		os, ok := oldObjs[key]
		if !ok {
			d.AddedObjects = append(d.AddedObjects, key)
			touchLabels(ns.edges)
			continue
		}
		if !sameSet(os.edges, ns.edges) || !sameSet(os.members, ns.members) {
			d.ChangedObjects = append(d.ChangedObjects, key)
			// Symmetric difference of the edge sets.
			for k := range ns.edges {
				if _, dup := os.edges[k]; !dup {
					if i := strings.IndexByte(k, 0); i >= 0 {
						labels[k[:i]] = struct{}{}
					}
				}
			}
			for k := range os.edges {
				if _, dup := ns.edges[k]; !dup {
					if i := strings.IndexByte(k, 0); i >= 0 {
						labels[k[:i]] = struct{}{}
					}
				}
			}
		}
	}
	for key, os := range oldObjs {
		if _, ok := newObjs[key]; !ok {
			d.RemovedObjects = append(d.RemovedObjects, key)
			touchLabels(os.edges)
		}
	}

	collSet := map[string]struct{}{}
	for name, ns := range newColls {
		if os, ok := oldColls[name]; !ok || !sameSet(os, ns) {
			collSet[name] = struct{}{}
		}
	}
	for name := range oldColls {
		if _, ok := newColls[name]; !ok {
			collSet[name] = struct{}{}
		}
	}

	for l := range labels {
		d.TouchedLabels = append(d.TouchedLabels, l)
	}
	for c := range collSet {
		d.TouchedCollections = append(d.TouchedCollections, c)
	}
	sort.Strings(d.AddedObjects)
	sort.Strings(d.RemovedObjects)
	sort.Strings(d.ChangedObjects)
	sort.Strings(d.TouchedLabels)
	sort.Strings(d.TouchedCollections)
	return d
}

// ResolveKey maps a Delta object key back to an OID in this graph.
// Symbolic names take precedence; "&17"-style keys resolve by OID.
func (g *Graph) ResolveKey(key string) (OID, bool) {
	if id, ok := g.NodeByName(key); ok {
		return id, true
	}
	if strings.HasPrefix(key, "&") {
		n, err := strconv.ParseUint(key[1:], 10, 64)
		if err == nil && g.HasNode(OID(n)) {
			return OID(n), true
		}
	}
	return InvalidOID, false
}

// ReverseReachable returns every node from which any start node can be
// reached by following node-to-node edges (the starts themselves
// included). It is the dependency cone used to decide which pages can
// observe a change: a page whose subtree embeds or links a changed
// object lies on a reverse path from it.
func (g *Graph) ReverseReachable(starts []OID) map[OID]struct{} {
	seen := map[OID]struct{}{}
	var stack []OID
	for _, s := range starts {
		if !g.HasNode(s) {
			continue
		}
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.In(n) {
			if _, ok := seen[e.From]; !ok {
				seen[e.From] = struct{}{}
				stack = append(stack, e.From)
			}
		}
	}
	return seen
}
