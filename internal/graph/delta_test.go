package graph

import (
	"reflect"
	"testing"
)

// buildPair constructs two independently allocated graphs with the same
// named content; OIDs intentionally differ between the two.
func buildPair() (*Graph, *Graph) {
	old := New("old")
	a := old.NewNode("a")
	b := old.NewNode("b")
	old.AddEdge(a, "title", Str("A"))
	old.AddEdge(a, "link", NodeValue(b))
	old.AddEdge(b, "title", Str("B"))
	old.AddToCollection("Things", NodeValue(a))
	old.AddToCollection("Things", NodeValue(b))

	new := New("new")
	new.NewNode("pad") // shift the OID space
	b2 := new.NewNode("b")
	a2 := new.NewNode("a")
	new.AddEdge(a2, "title", Str("A"))
	new.AddEdge(a2, "link", NodeValue(b2))
	new.AddEdge(b2, "title", Str("B"))
	new.AddToCollection("Things", NodeValue(a2))
	new.AddToCollection("Things", NodeValue(b2))
	new.RemoveNode(new.names["pad"])
	return old, new
}

func TestDiffIdenticalNamedGraphs(t *testing.T) {
	old, new := buildPair()
	if d := Diff(old, new); !d.Empty() {
		t.Fatalf("identical graphs with shifted OIDs should diff empty, got %s", d.Summary())
	}
}

func TestDiffEditKinds(t *testing.T) {
	old, new := buildPair()
	a, _ := new.NodeByName("a")
	b, _ := new.NodeByName("b")
	// Mutate a's title, add node c, remove b from the collection.
	new.RemoveEdge(a, "title", Str("A"))
	new.AddEdge(a, "title", Str("A2"))
	c := new.NewNode("c")
	new.AddEdge(c, "year", Int(1998))
	new.AddToCollection("Things", NodeValue(c))
	new.RemoveFromCollection("Things", NodeValue(b))

	d := Diff(old, new)
	if !reflect.DeepEqual(d.AddedObjects, []string{"c"}) {
		t.Errorf("added = %v, want [c]", d.AddedObjects)
	}
	if len(d.RemovedObjects) != 0 {
		t.Errorf("removed = %v, want none", d.RemovedObjects)
	}
	// a changed (title edge), b changed (membership).
	if !reflect.DeepEqual(d.ChangedObjects, []string{"a", "b"}) {
		t.Errorf("changed = %v, want [a b]", d.ChangedObjects)
	}
	if !reflect.DeepEqual(d.TouchedLabels, []string{"title", "year"}) {
		t.Errorf("labels = %v, want [title year]", d.TouchedLabels)
	}
	if !d.HasCollection("Things") || d.HasCollection("Other") {
		t.Errorf("collections = %v, want [Things]", d.TouchedCollections)
	}
}

func TestDiffRemovedNode(t *testing.T) {
	old, new := buildPair()
	b, _ := new.NodeByName("b")
	new.RemoveNode(b)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.RemovedObjects, []string{"b"}) {
		t.Errorf("removed = %v, want [b]", d.RemovedObjects)
	}
	// a lost its link edge, so it is changed.
	if !reflect.DeepEqual(d.ChangedObjects, []string{"a"}) {
		t.Errorf("changed = %v, want [a]", d.ChangedObjects)
	}
	if !d.HasCollection("Things") {
		t.Errorf("expected Things membership change, got %v", d.TouchedCollections)
	}
	if !d.HasLabel("link") || !d.HasLabel("title") {
		t.Errorf("labels = %v, want link and title", d.TouchedLabels)
	}
}

func TestRemoveNodeInvariants(t *testing.T) {
	g := New("g")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddEdge(a, "x", NodeValue(b))
	g.AddEdge(a, "y", NodeValue(b))
	g.AddEdge(b, "self", NodeValue(b))
	g.AddEdge(b, "t", Str("v"))
	g.AddToCollection("C", NodeValue(b))
	if !g.RemoveNode(b) {
		t.Fatal("RemoveNode(b) = false")
	}
	if g.NumEdges() != 0 {
		t.Errorf("edgeCount = %d after removing b, want 0", g.NumEdges())
	}
	if len(g.Out(a)) != 0 {
		t.Errorf("a still has out-edges: %v", g.Out(a))
	}
	if len(g.Collection("C")) != 0 {
		t.Errorf("C still has members: %v", g.Collection("C"))
	}
	if _, ok := g.NodeByName("b"); ok {
		t.Error("name b still bound")
	}
}

func TestReverseReachable(t *testing.T) {
	g := New("g")
	root := g.NewNode("root")
	mid := g.NewNode("mid")
	leaf := g.NewNode("leaf")
	other := g.NewNode("other")
	g.AddEdge(root, "child", NodeValue(mid))
	g.AddEdge(mid, "child", NodeValue(leaf))
	got := g.ReverseReachable([]OID{leaf})
	for _, want := range []OID{leaf, mid, root} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing %d in reverse cone", want)
		}
	}
	if _, ok := got[other]; ok {
		t.Error("unrelated node in reverse cone")
	}
}
