package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DisplayName renders a node for humans: its symbolic name when it has
// one, otherwise &oid.
func (g *Graph) DisplayName(id OID) string {
	if n := g.NodeName(id); n != "" {
		return n
	}
	return fmt.Sprintf("&%d", uint64(id))
}

// DisplayValue renders a value for humans, resolving node names.
func (g *Graph) DisplayValue(v Value) string {
	if v.IsNode() {
		return g.DisplayName(v.OID())
	}
	return v.String()
}

// Dump writes a deterministic textual rendering of the graph: its
// collections and, per node, its outgoing edges. Used by examples to
// print data-graph and site-graph fragments (paper Figs. 2 and 4) and
// by golden tests.
func (g *Graph) Dump(w io.Writer) {
	fmt.Fprintf(w, "graph %s: %d nodes, %d edges\n", g.name, g.NumNodes(), g.NumEdges())
	for _, c := range g.Collections() {
		members := g.Collection(c)
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = g.DisplayValue(m)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "collection %s { %s }\n", c, strings.Join(names, ", "))
	}
	for _, id := range g.Nodes() {
		out := g.Out(id)
		if len(out) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s {\n", g.DisplayName(id))
		lines := make([]string, len(out))
		for i, e := range out {
			lines[i] = fmt.Sprintf("  %s -> %s", e.Label, g.DisplayValue(e.To))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, "}")
	}
}

// DumpString returns Dump output as a string.
func (g *Graph) DumpString() string {
	var b strings.Builder
	g.Dump(&b)
	return b.String()
}

// DOT writes the graph in Graphviz DOT format for visualization.
func (g *Graph) DOT(w io.Writer) {
	fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, id := range g.Nodes() {
		fmt.Fprintf(w, "  n%d [label=%q];\n", uint64(id), g.DisplayName(id))
	}
	atomSeq := 0
	for _, id := range g.Nodes() {
		for _, e := range g.Out(id) {
			if e.To.IsNode() {
				fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", uint64(id), uint64(e.To.OID()), e.Label)
			} else {
				atomSeq++
				fmt.Fprintf(w, "  a%d [shape=box,label=%q];\n", atomSeq, e.To.Text())
				fmt.Fprintf(w, "  n%d -> a%d [label=%q];\n", uint64(id), atomSeq, e.Label)
			}
		}
	}
	fmt.Fprintln(w, "}")
}
