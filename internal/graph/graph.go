package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Edge is one labeled directed edge. From is always a node; To may be
// a node or an atomic value.
type Edge struct {
	From  OID
	Label string
	To    Value
}

func (e Edge) String() string {
	return fmt.Sprintf("&%d -%q-> %s", uint64(e.From), e.Label, e.To)
}

// Graph is one labeled directed graph: a set of nodes, labeled edges,
// and named collections of objects. Graphs belonging to the same
// Database share an OID space and may share objects. All methods are
// safe for concurrent use.
type Graph struct {
	mu    sync.RWMutex
	name  string
	alloc *oidAllocator

	nodes map[OID]*nodeData
	// names maps a symbolic node name ("pub1", "RootPage()") to its OID.
	names map[string]OID
	colls map[string]*collection
	// edgeCount caches the total number of edges for Stats.
	edgeCount int
	// watchers receive a journal entry for every mutation (changelog.go).
	watchers []*ChangeLog
}

type nodeData struct {
	name string
	out  []Edge
	in   []Edge // reverse adjacency; only edges whose To is a node land here
}

type collection struct {
	members []Value
	seen    map[Value]struct{}
}

// oidAllocator hands out database-unique OIDs.
type oidAllocator struct {
	mu   sync.Mutex
	next OID
}

func newAllocator() *oidAllocator { return &oidAllocator{next: 1} }

func (a *oidAllocator) take() OID {
	a.mu.Lock()
	defer a.mu.Unlock()
	id := a.next
	a.next++
	return id
}

// reserve advances the allocator past id so externally supplied OIDs
// (e.g. loaded from a snapshot) never collide with fresh ones.
func (a *oidAllocator) reserve(id OID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id >= a.next {
		a.next = id + 1
	}
}

// New creates a standalone graph with its own OID space.
func New(name string) *Graph {
	return newGraph(name, newAllocator())
}

// NewSibling creates a graph sharing g's OID space, so the two graphs
// can share objects (e.g. a site graph derived from a data graph).
func (g *Graph) NewSibling(name string) *Graph {
	return newGraph(name, g.alloc)
}

func newGraph(name string, alloc *oidAllocator) *Graph {
	return &Graph{
		name:  name,
		alloc: alloc,
		nodes: make(map[OID]*nodeData),
		names: make(map[string]OID),
		colls: make(map[string]*collection),
	}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NewNode allocates a fresh node with an optional symbolic name and
// returns its OID. If the name is already bound the existing node is
// returned; an empty name never binds.
func (g *Graph) NewNode(name string) OID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if name != "" {
		if id, ok := g.names[name]; ok {
			return id
		}
	}
	id := g.alloc.take()
	g.nodes[id] = &nodeData{name: name}
	if name != "" {
		g.names[name] = id
	}
	g.logOp(Op{Kind: OpAddNode, Node: id, Name: name})
	return id
}

// AddNode inserts an existing node (same database, e.g. an object
// shared with another graph) into this graph. It is a no-op if the
// node is already present.
func (g *Graph) AddNode(id OID, name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.alloc.reserve(id)
	if _, ok := g.nodes[id]; !ok {
		g.nodes[id] = &nodeData{name: name}
		g.logOp(Op{Kind: OpAddNode, Node: id, Name: name})
	}
	if name != "" {
		if _, bound := g.names[name]; !bound {
			g.names[name] = id
		}
	}
}

// HasNode reports whether the node belongs to this graph.
func (g *Graph) HasNode(id OID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[id]
	return ok
}

// NodeName returns the symbolic name of a node, or "" if unnamed.
func (g *Graph) NodeName(id OID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if nd, ok := g.nodes[id]; ok {
		return nd.name
	}
	return ""
}

// NodeByName resolves a symbolic node name.
func (g *Graph) NodeByName(name string) (OID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.names[name]
	return id, ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edgeCount
}

// Nodes returns all node OIDs in ascending order.
func (g *Graph) Nodes() []OID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]OID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddEdge adds a labeled edge from a node to a value. The target node
// of a node-valued edge is implicitly added to the graph if missing
// (graphs of the same database may share objects). Duplicate edges
// (same from, label, to) are ignored.
func (g *Graph) AddEdge(from OID, label string, to Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[from]
	if !ok {
		return fmt.Errorf("graph %q: edge source &%d is not a node of this graph", g.name, uint64(from))
	}
	if to.IsZero() {
		return fmt.Errorf("graph %q: edge %q from &%d has invalid target", g.name, label, uint64(from))
	}
	for _, e := range nd.out {
		if e.Label == label && e.To == to {
			return nil
		}
	}
	if to.IsNode() {
		g.alloc.reserve(to.OID())
		tn, ok := g.nodes[to.OID()]
		if !ok {
			tn = &nodeData{}
			g.nodes[to.OID()] = tn
			g.logOp(Op{Kind: OpAddNode, Node: to.OID()})
		}
		tn.in = append(tn.in, Edge{From: from, Label: label, To: to})
	}
	nd.out = append(nd.out, Edge{From: from, Label: label, To: to})
	g.edgeCount++
	g.logOp(Op{Kind: OpAddEdge, Edge: Edge{From: from, Label: label, To: to}, Name: nd.name})
	return nil
}

// EachOut calls fn for each outgoing edge of a node, in insertion
// order, without copying. Iteration stops early if fn returns false.
// fn must not mutate the graph (a writer blocked between fn calls
// would deadlock readers).
func (g *Graph) EachOut(id OID, fn func(Edge) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nd, ok := g.nodes[id]
	if !ok {
		return
	}
	for _, e := range nd.out {
		if !fn(e) {
			return
		}
	}
}

// Out returns the outgoing edges of a node, in insertion order.
func (g *Graph) Out(id OID) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nd, ok := g.nodes[id]
	if !ok {
		return nil
	}
	out := make([]Edge, len(nd.out))
	copy(out, nd.out)
	return out
}

// OutLabel returns the values reachable from a node via edges with the
// given label, in insertion order.
func (g *Graph) OutLabel(id OID, label string) []Value {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nd, ok := g.nodes[id]
	if !ok {
		return nil
	}
	var vals []Value
	for _, e := range nd.out {
		if e.Label == label {
			vals = append(vals, e.To)
		}
	}
	return vals
}

// First returns the first value of the given attribute, if any. It is
// the single-valued attribute accessor used by the template language.
func (g *Graph) First(id OID, label string) (Value, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nd, ok := g.nodes[id]
	if !ok {
		return Value{}, false
	}
	for _, e := range nd.out {
		if e.Label == label {
			return e.To, true
		}
	}
	return Value{}, false
}

// In returns the incoming node-to-node edges of a node.
func (g *Graph) In(id OID) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	nd, ok := g.nodes[id]
	if !ok {
		return nil
	}
	in := make([]Edge, len(nd.in))
	copy(in, nd.in)
	return in
}

// Edges calls fn for every edge in the graph, grouped by source node
// in ascending OID order. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(Edge) bool) {
	for _, id := range g.Nodes() {
		for _, e := range g.Out(id) {
			if !fn(e) {
				return
			}
		}
	}
}

// AllEdges returns every edge, grouped by source node in ascending
// OID order.
func (g *Graph) AllEdges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Labels returns the distinct edge labels in the graph, sorted. This
// is a schema query: the repository also maintains a label index, but
// the graph can always answer from first principles.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	set := make(map[string]struct{})
	for _, nd := range g.nodes {
		for _, e := range nd.out {
			set[e.Label] = struct{}{}
		}
	}
	g.mu.RUnlock()
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// AddToCollection inserts a value into a named collection, creating
// the collection if needed. Duplicates are ignored.
func (g *Graph) AddToCollection(name string, v Value) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.colls[name]
	if !ok {
		c = &collection{seen: make(map[Value]struct{})}
		g.colls[name] = c
		g.logOp(Op{Kind: OpNewCollection, Coll: name})
	}
	if _, dup := c.seen[v]; dup {
		return
	}
	c.seen[v] = struct{}{}
	c.members = append(c.members, v)
	var mname string
	if v.IsNode() {
		g.alloc.reserve(v.OID())
		if _, present := g.nodes[v.OID()]; !present {
			g.nodes[v.OID()] = &nodeData{}
			g.logOp(Op{Kind: OpAddNode, Node: v.OID()})
		}
		mname = g.nameOfLocked(v.OID())
	}
	g.logOp(Op{Kind: OpAddMember, Coll: name, Member: v, Name: mname})
}

// DeclareCollection ensures a (possibly empty) collection exists.
func (g *Graph) DeclareCollection(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.colls[name]; !ok {
		g.colls[name] = &collection{seen: make(map[Value]struct{})}
		g.logOp(Op{Kind: OpNewCollection, Coll: name})
	}
}

// Collection returns the members of a collection in insertion order.
func (g *Graph) Collection(name string) []Value {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.colls[name]
	if !ok {
		return nil
	}
	out := make([]Value, len(c.members))
	copy(out, c.members)
	return out
}

// InCollection reports membership of a value in a collection.
func (g *Graph) InCollection(name string, v Value) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.colls[name]
	if !ok {
		return false
	}
	_, member := c.seen[v]
	return member
}

// Collections returns the collection names, sorted. These are the
// entry points into the graph's objects.
func (g *Graph) Collections() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.colls))
	for n := range g.colls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasCollection reports whether a collection is declared.
func (g *Graph) HasCollection(name string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.colls[name]
	return ok
}

// Stats summarizes the size of a graph.
type Stats struct {
	Nodes       int
	Edges       int
	Collections int
	Labels      int
}

// Stats computes the graph's size summary.
func (g *Graph) Stats() Stats {
	return Stats{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Collections: len(g.Collections()),
		Labels:      len(g.Labels()),
	}
}

// Reachable returns the set of nodes reachable from start by following
// node-to-node edges (including start itself).
func (g *Graph) Reachable(start OID) map[OID]struct{} {
	seen := map[OID]struct{}{}
	if !g.HasNode(start) {
		return seen
	}
	stack := []OID{start}
	seen[start] = struct{}{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(n) {
			if e.To.IsNode() {
				t := e.To.OID()
				if _, ok := seen[t]; !ok {
					seen[t] = struct{}{}
					stack = append(stack, t)
				}
			}
		}
	}
	return seen
}
