package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		text string
	}{
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Str("hello"), KindString, "hello"},
		{URL("http://x"), KindURL, "http://x"},
		{File("a.ps", FilePostScript), KindFile, "a.ps"},
		{NodeValue(7), KindNode, "&7"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Text() != c.text {
			t.Errorf("%v: text = %q, want %q", c.v, c.v.Text(), c.text)
		}
	}
	if !NodeValue(7).IsNode() || Int(1).IsNode() {
		t.Error("IsNode misclassifies")
	}
	if !Int(1).IsAtom() || NodeValue(1).IsAtom() {
		t.Error("IsAtom misclassifies")
	}
	var zero Value
	if !zero.IsZero() || Int(0).IsZero() {
		t.Error("IsZero misclassifies")
	}
}

func TestValueOIDPanicsOnAtom(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OID on atom should panic")
		}
	}()
	Int(3).OID()
}

func TestFileTypeByName(t *testing.T) {
	for name, want := range map[string]FileType{
		"postscript": FilePostScript, "ps": FilePostScript,
		"text": FileText, "TXT": FileText,
		"image": FileImage, "html": FileHTML,
	} {
		got, ok := FileTypeByName(name)
		if !ok || got != want {
			t.Errorf("FileTypeByName(%q) = %v,%v; want %v,true", name, got, ok, want)
		}
	}
	if _, ok := FileTypeByName("pdf"); ok {
		t.Error("pdf should be unknown")
	}
}

func TestCompareCoercion(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Float(2.0), 0, true},
		{Int(3), Str("3"), 0, true},
		{Str("1997"), Int(1998), -1, true},
		{Str("abc"), Str("abd"), -1, true},
		{Bool(true), Str("true"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{URL("http://a"), Str("http://a"), 0, true},
		{File("x.ps", FilePostScript), Str("x.ps"), 0, true},
		{NodeValue(1), NodeValue(1), 0, true},
		{NodeValue(1), NodeValue(2), -1, true},
		{NodeValue(1), Int(1), 0, false},
		{Bool(true), Int(1), 0, false},
		{Str("abc"), Int(1), -1, true}, // string coercion of int: "abc" > "1"? No: cmp via string "abc" vs "1" => 'a' > '1' so +1. Fixed below.
	}
	// Correct the last expectation: "abc" vs "1" lexicographically is +1.
	cases[len(cases)-1].cmp = 1
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && got != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v; want %d,%v", c.a, c.b, got, ok, c.cmp, c.ok)
		}
	}
	if !Eq(Int(5), Str("5")) {
		t.Error("Eq(5, \"5\") should hold")
	}
	if Eq(Int(5), Str("6")) {
		t.Error("Eq(5, \"6\") should not hold")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	mk := func(tag uint8, n int64, s string) Value {
		switch tag % 5 {
		case 0:
			return Int(n)
		case 1:
			return Float(float64(n) / 2)
		case 2:
			return Str(s)
		case 3:
			return Bool(n%2 == 0)
		default:
			return NodeValue(OID(n&0xff + 1))
		}
	}
	prop := func(t1 uint8, n1 int64, s1 string, t2 uint8, n2 int64, s2 string) bool {
		a, b := mk(t1, n1, s1), mk(t2, n2, s2)
		ab, ok1 := Compare(a, b)
		ba, ok2 := Compare(b, a)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || ab == -ba
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLessTotalOrderProperty(t *testing.T) {
	vals := []Value{
		Int(1), Int(2), Float(1.5), Bool(false), Bool(true),
		Str("a"), Str("b"), URL("u"), File("f", FileText),
		File("f", FileImage), NodeValue(1), NodeValue(2),
	}
	for _, a := range vals {
		if Less(a, a) {
			t.Errorf("Less(%v,%v) must be false (irreflexive)", a, a)
		}
		for _, b := range vals {
			if a != b && Less(a, b) == Less(b, a) {
				t.Errorf("Less not antisymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestGraphNodesAndEdges(t *testing.T) {
	g := New("test")
	a := g.NewNode("a")
	b := g.NewNode("b")
	if a == b || a == InvalidOID {
		t.Fatalf("bad oids %d %d", a, b)
	}
	if got := g.NewNode("a"); got != a {
		t.Errorf("NewNode with existing name should return existing node")
	}
	if err := g.AddEdge(a, "child", NodeValue(b)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, "title", Str("Hello")); err != nil {
		t.Fatal(err)
	}
	// Duplicate edges are ignored.
	if err := g.AddEdge(a, "child", NodeValue(b)); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.AddEdge(999, "x", Str("y")); err == nil {
		t.Error("edge from unknown node should fail")
	}
	if err := g.AddEdge(a, "bad", Value{}); err == nil {
		t.Error("edge to zero value should fail")
	}
	out := g.Out(a)
	if len(out) != 2 {
		t.Fatalf("Out(a) = %d edges, want 2", len(out))
	}
	if v, ok := g.First(a, "title"); !ok || v.Text() != "Hello" {
		t.Errorf("First(a,title) = %v,%v", v, ok)
	}
	if _, ok := g.First(a, "missing"); ok {
		t.Error("First on missing label should report !ok")
	}
	if vs := g.OutLabel(a, "child"); len(vs) != 1 || vs[0] != NodeValue(b) {
		t.Errorf("OutLabel(a,child) = %v", vs)
	}
	in := g.In(b)
	if len(in) != 1 || in[0].From != a {
		t.Errorf("In(b) = %v", in)
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "child" || labels[1] != "title" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestGraphEdgeImplicitTarget(t *testing.T) {
	g := New("test")
	a := g.NewNode("a")
	// Edge to a node OID never seen before implicitly adds it.
	if err := g.AddEdge(a, "x", NodeValue(500)); err != nil {
		t.Fatal(err)
	}
	if !g.HasNode(500) {
		t.Fatal("target node should have been added")
	}
	// Fresh allocations must not collide with the reserved OID.
	if id := g.NewNode(""); id <= 500 {
		t.Errorf("NewNode after reserve = %d, want > 500", id)
	}
}

func TestCollections(t *testing.T) {
	g := New("test")
	a := g.NewNode("a")
	g.AddToCollection("Pubs", NodeValue(a))
	g.AddToCollection("Pubs", NodeValue(a)) // dup ignored
	g.AddToCollection("Pubs", Str("atom-member"))
	g.DeclareCollection("Empty")
	if got := g.Collection("Pubs"); len(got) != 2 {
		t.Errorf("Pubs = %v", got)
	}
	if !g.InCollection("Pubs", NodeValue(a)) {
		t.Error("a should be in Pubs")
	}
	if g.InCollection("Pubs", Str("nope")) || g.InCollection("Missing", Str("x")) {
		t.Error("false membership")
	}
	names := g.Collections()
	if len(names) != 2 || names[0] != "Empty" || names[1] != "Pubs" {
		t.Errorf("Collections = %v", names)
	}
	if !g.HasCollection("Empty") || g.HasCollection("Nope") {
		t.Error("HasCollection wrong")
	}
	// Node members added via collection are part of the graph.
	g.AddToCollection("Other", NodeValue(777))
	if !g.HasNode(777) {
		t.Error("collection node member should join the graph")
	}
}

func TestReachable(t *testing.T) {
	g := New("t")
	a, b, c, d := g.NewNode("a"), g.NewNode("b"), g.NewNode("c"), g.NewNode("d")
	_ = d
	g.AddEdge(a, "x", NodeValue(b))
	g.AddEdge(b, "y", NodeValue(c))
	g.AddEdge(c, "z", NodeValue(a)) // cycle
	g.AddEdge(a, "t", Str("atom"))
	r := g.Reachable(a)
	if len(r) != 3 {
		t.Fatalf("reachable = %d nodes, want 3", len(r))
	}
	if _, ok := r[d]; ok {
		t.Error("d should not be reachable")
	}
	if len(g.Reachable(999)) != 0 {
		t.Error("reachable from unknown node should be empty")
	}
}

func TestDatabaseSharedOIDs(t *testing.T) {
	db := NewDatabase()
	g1 := db.NewGraph("data")
	g2 := db.NewGraph("site")
	if db.NewGraph("data") != g1 {
		t.Error("NewGraph should be idempotent")
	}
	a := g1.NewNode("a")
	b := g2.NewNode("b")
	if a == b {
		t.Fatal("graphs in one database must not reuse OIDs")
	}
	// Sharing: the same node can be added to the other graph.
	g2.AddNode(a, "a")
	if !g2.HasNode(a) || g2.NodeName(a) != "a" {
		t.Error("shared node missing")
	}
	if _, ok := db.Graph("site"); !ok {
		t.Error("Graph lookup failed")
	}
	if names := db.Names(); len(names) != 2 || names[0] != "data" {
		t.Errorf("Names = %v", names)
	}
	db.Drop("site")
	if _, ok := db.Graph("site"); ok {
		t.Error("Drop failed")
	}
}

func TestDatabaseAttach(t *testing.T) {
	db := NewDatabase()
	g0 := db.NewGraph("existing")
	standalone := New("wrapped")
	n := standalone.NewNode("x")
	db.Attach(standalone)
	if _, ok := db.Graph("wrapped"); !ok {
		t.Fatal("attached graph not registered")
	}
	// New allocations in either graph must avoid the attached OIDs.
	m := g0.NewNode("")
	if m == n {
		t.Error("OID collision after Attach")
	}
}

func TestMustGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGraph should panic on missing graph")
		}
	}()
	NewDatabase().MustGraph("nope")
}

func TestDumpDeterministic(t *testing.T) {
	build := func() *Graph {
		g := New("d")
		a := g.NewNode("root")
		b := g.NewNode("leaf")
		g.AddEdge(a, "beta", Str("2"))
		g.AddEdge(a, "alpha", Str("1"))
		g.AddEdge(a, "child", NodeValue(b))
		g.AddToCollection("Roots", NodeValue(a))
		return g
	}
	d1, d2 := build().DumpString(), build().DumpString()
	if d1 != d2 {
		t.Error("Dump not deterministic")
	}
	for _, want := range []string{"collection Roots { root }", "alpha -> \"1\"", "child -> leaf"} {
		if !strings.Contains(d1, want) {
			t.Errorf("dump missing %q in:\n%s", want, d1)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := New("d")
	a := g.NewNode("root")
	b := g.NewNode("")
	g.AddEdge(a, "child", NodeValue(b))
	g.AddEdge(a, "title", Str("T"))
	var sb strings.Builder
	g.DOT(&sb)
	s := sb.String()
	for _, want := range []string{"digraph", "label=\"root\"", "label=\"child\"", "shape=box"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s)
		}
	}
}

func TestStats(t *testing.T) {
	g := New("s")
	a := g.NewNode("a")
	g.AddEdge(a, "x", Str("1"))
	g.AddToCollection("C", NodeValue(a))
	st := g.Stats()
	if st.Nodes != 1 || st.Edges != 1 || st.Collections != 1 || st.Labels != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestConcurrentMutation(t *testing.T) {
	g := New("c")
	root := g.NewNode("root")
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				n := g.NewNode("")
				g.AddEdge(root, "child", NodeValue(n))
				g.AddToCollection("All", NodeValue(n))
				g.Out(root)
				g.Collection("All")
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if g.NumNodes() != 801 {
		t.Errorf("NumNodes = %d, want 801", g.NumNodes())
	}
	if len(g.Collection("All")) != 800 {
		t.Errorf("collection size = %d, want 800", len(g.Collection("All")))
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := New("e")
	a := g.NewNode("a")
	for i := 0; i < 10; i++ {
		g.AddEdge(a, "x", Int(int64(i)))
	}
	count := 0
	g.Edges(func(Edge) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
	if len(g.AllEdges()) != 10 {
		t.Error("AllEdges wrong size")
	}
}

func TestEachOut(t *testing.T) {
	g := New("e")
	a := g.NewNode("a")
	for i := 0; i < 5; i++ {
		g.AddEdge(a, "x", Int(int64(i)))
	}
	var seen []Value
	g.EachOut(a, func(e Edge) bool {
		seen = append(seen, e.To)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != Int(0) {
		t.Errorf("seen = %v", seen)
	}
	g.EachOut(999, func(Edge) bool {
		t.Fatal("missing node should not iterate")
		return true
	})
}
