package graph

import "sort"

// RemoveEdge deletes the edge (from, label, to) if present, keeping the
// remaining out-edges in their original order and the target's reverse
// adjacency consistent. It reports whether an edge was removed.
func (g *Graph) RemoveEdge(from OID, label string, to Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[from]
	if !ok {
		return false
	}
	idx := -1
	for i, e := range nd.out {
		if e.Label == label && e.To == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	nd.out = append(nd.out[:idx:idx], nd.out[idx+1:]...)
	g.edgeCount--
	if to.IsNode() {
		if tn, ok := g.nodes[to.OID()]; ok {
			for i, e := range tn.in {
				if e.From == from && e.Label == label {
					tn.in = append(tn.in[:i:i], tn.in[i+1:]...)
					break
				}
			}
		}
	}
	g.logOp(Op{Kind: OpRemoveEdge, Edge: Edge{From: from, Label: label, To: to}, Name: nd.name})
	return true
}

// RemoveNode deletes a node together with all edges into and out of it,
// its name binding, and its collection memberships. It reports whether
// the node existed.
func (g *Graph) RemoveNode(id OID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[id]
	if !ok {
		return false
	}
	// Out-edges: drop the reverse entry on each node-valued target.
	for _, e := range nd.out {
		if e.To.IsNode() && e.To.OID() != id {
			if tn, ok := g.nodes[e.To.OID()]; ok {
				tn.in = dropIn(tn.in, id, "")
			}
		}
		g.logOp(Op{Kind: OpRemoveEdge, Edge: e, Name: nd.name})
	}
	g.edgeCount -= len(nd.out)
	// In-edges: drop the forward edge on each source node.
	for _, e := range nd.in {
		if e.From == id {
			continue // self-edge, already counted in nd.out
		}
		if sn, ok := g.nodes[e.From]; ok {
			kept := sn.out[:0:0]
			removed := 0
			for _, oe := range sn.out {
				if oe.To.IsNode() && oe.To.OID() == id {
					removed++
					g.logOp(Op{Kind: OpRemoveEdge, Edge: oe, Name: sn.name})
					continue
				}
				kept = append(kept, oe)
			}
			sn.out = kept
			g.edgeCount -= removed
		}
	}
	// Name bindings and collection memberships.
	for name, bound := range g.names {
		if bound == id {
			delete(g.names, name)
		}
	}
	v := NodeValue(id)
	// Deterministic membership-removal order for journal consumers.
	cnames := make([]string, 0, len(g.colls))
	for cn := range g.colls {
		cnames = append(cnames, cn)
	}
	sort.Strings(cnames)
	for _, cn := range cnames {
		c := g.colls[cn]
		if _, member := c.seen[v]; member {
			delete(c.seen, v)
			c.members = dropValue(c.members, v)
			g.logOp(Op{Kind: OpRemoveMember, Coll: cn, Member: v, Name: nd.name})
		}
	}
	delete(g.nodes, id)
	g.logOp(Op{Kind: OpRemoveNode, Node: id, Name: nd.name})
	return true
}

// RemoveFromCollection deletes a value from a named collection,
// preserving the order of the remaining members. It reports whether the
// value was a member.
func (g *Graph) RemoveFromCollection(name string, v Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.colls[name]
	if !ok {
		return false
	}
	if _, member := c.seen[v]; !member {
		return false
	}
	delete(c.seen, v)
	c.members = dropValue(c.members, v)
	var mname string
	if v.IsNode() {
		mname = g.nameOfLocked(v.OID())
	}
	g.logOp(Op{Kind: OpRemoveMember, Coll: name, Member: v, Name: mname})
	return true
}

// SetLabelOrder rearranges the edges with the given label out of a
// node to match order, which must be a permutation of their current
// target values. Edges with other labels keep their slots, so the
// relative order across labels is untouched. It reports whether the
// reorder was applied (false on unknown node or non-permutation).
func (g *Graph) SetLabelOrder(id OID, label string, order []Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[id]
	if !ok {
		return false
	}
	var slots []int
	for i, e := range nd.out {
		if e.Label == label {
			slots = append(slots, i)
		}
	}
	if len(slots) != len(order) {
		return false
	}
	counts := make(map[Value]int, len(order))
	for _, i := range slots {
		counts[nd.out[i].To]++
	}
	for _, v := range order {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	// Equal lengths with no negative count means exact permutation.
	for j, i := range slots {
		nd.out[i] = Edge{From: id, Label: label, To: order[j]}
	}
	return true
}

// SetMemberOrder rearranges a collection's members to match order,
// which must be a permutation of the current members. It reports
// whether the reorder was applied.
func (g *Graph) SetMemberOrder(name string, order []Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.colls[name]
	if !ok || len(order) != len(c.members) {
		return false
	}
	for _, v := range order {
		if _, member := c.seen[v]; !member {
			return false
		}
	}
	// Members are unique (seen-set), so a length-equal subset is a
	// permutation.
	copy(c.members, order)
	return true
}

// RenumberNodes reassigns fresh, ascending OIDs to the named nodes in
// the given order, so that iterating the graph's nodes by OID visits
// them in exactly that order (after any node not listed). All edges,
// reverse adjacencies, name bindings and collection members are
// rewritten; unlisted nodes keep their OIDs. Differential maintenance
// uses this to keep an in-place-updated graph's node enumeration
// identical to a from-scratch construction. The renumbering is not
// journaled — callers renumber graphs whose consumers key on names,
// not OIDs. Returns the old→new mapping, or nil when a name is
// unknown (the graph is then unchanged).
func (g *Graph) RenumberNodes(order []string) map[OID]OID {
	g.mu.Lock()
	defer g.mu.Unlock()
	mapping := make(map[OID]OID, len(order))
	for _, name := range order {
		id, ok := g.names[name]
		if !ok {
			return nil
		}
		mapping[id] = g.alloc.take() // fresh: beyond every OID in use
	}
	remap := func(id OID) OID {
		if n, ok := mapping[id]; ok {
			return n
		}
		return id
	}
	remapV := func(v Value) Value {
		if v.IsNode() {
			if n, ok := mapping[v.OID()]; ok {
				return NodeValue(n)
			}
		}
		return v
	}
	nodes := make(map[OID]*nodeData, len(g.nodes))
	for id, nd := range g.nodes {
		for i := range nd.out {
			nd.out[i].From = remap(nd.out[i].From)
			nd.out[i].To = remapV(nd.out[i].To)
		}
		for i := range nd.in {
			nd.in[i].From = remap(nd.in[i].From)
			nd.in[i].To = remapV(nd.in[i].To)
		}
		nodes[remap(id)] = nd
	}
	g.nodes = nodes
	for name, id := range g.names {
		g.names[name] = remap(id)
	}
	for _, c := range g.colls {
		seen := make(map[Value]struct{}, len(c.seen))
		for i, m := range c.members {
			c.members[i] = remapV(m)
			seen[c.members[i]] = struct{}{}
		}
		c.seen = seen
	}
	return mapping
}

// dropIn removes every reverse-adjacency entry from the given source
// (all labels when label is ""), preserving order.
func dropIn(in []Edge, from OID, label string) []Edge {
	kept := in[:0:0]
	for _, e := range in {
		if e.From == from && (label == "" || e.Label == label) {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// dropValue removes every occurrence of v, preserving order.
func dropValue(vals []Value, v Value) []Value {
	kept := vals[:0:0]
	for _, m := range vals {
		if m == v {
			continue
		}
		kept = append(kept, m)
	}
	return kept
}
