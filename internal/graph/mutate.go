package graph

// RemoveEdge deletes the edge (from, label, to) if present, keeping the
// remaining out-edges in their original order and the target's reverse
// adjacency consistent. It reports whether an edge was removed.
func (g *Graph) RemoveEdge(from OID, label string, to Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[from]
	if !ok {
		return false
	}
	idx := -1
	for i, e := range nd.out {
		if e.Label == label && e.To == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	nd.out = append(nd.out[:idx:idx], nd.out[idx+1:]...)
	g.edgeCount--
	if to.IsNode() {
		if tn, ok := g.nodes[to.OID()]; ok {
			for i, e := range tn.in {
				if e.From == from && e.Label == label {
					tn.in = append(tn.in[:i:i], tn.in[i+1:]...)
					break
				}
			}
		}
	}
	return true
}

// RemoveNode deletes a node together with all edges into and out of it,
// its name binding, and its collection memberships. It reports whether
// the node existed.
func (g *Graph) RemoveNode(id OID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	nd, ok := g.nodes[id]
	if !ok {
		return false
	}
	// Out-edges: drop the reverse entry on each node-valued target.
	for _, e := range nd.out {
		if e.To.IsNode() && e.To.OID() != id {
			if tn, ok := g.nodes[e.To.OID()]; ok {
				tn.in = dropIn(tn.in, id, "")
			}
		}
	}
	g.edgeCount -= len(nd.out)
	// In-edges: drop the forward edge on each source node.
	for _, e := range nd.in {
		if e.From == id {
			continue // self-edge, already counted in nd.out
		}
		if sn, ok := g.nodes[e.From]; ok {
			kept := sn.out[:0:0]
			removed := 0
			for _, oe := range sn.out {
				if oe.To.IsNode() && oe.To.OID() == id {
					removed++
					continue
				}
				kept = append(kept, oe)
			}
			sn.out = kept
			g.edgeCount -= removed
		}
	}
	// Name bindings and collection memberships.
	for name, bound := range g.names {
		if bound == id {
			delete(g.names, name)
		}
	}
	v := NodeValue(id)
	for _, c := range g.colls {
		if _, member := c.seen[v]; member {
			delete(c.seen, v)
			c.members = dropValue(c.members, v)
		}
	}
	delete(g.nodes, id)
	return true
}

// RemoveFromCollection deletes a value from a named collection,
// preserving the order of the remaining members. It reports whether the
// value was a member.
func (g *Graph) RemoveFromCollection(name string, v Value) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.colls[name]
	if !ok {
		return false
	}
	if _, member := c.seen[v]; !member {
		return false
	}
	delete(c.seen, v)
	c.members = dropValue(c.members, v)
	return true
}

// dropIn removes every reverse-adjacency entry from the given source
// (all labels when label is ""), preserving order.
func dropIn(in []Edge, from OID, label string) []Edge {
	kept := in[:0:0]
	for _, e := range in {
		if e.From == from && (label == "" || e.Label == label) {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// dropValue removes every occurrence of v, preserving order.
func dropValue(vals []Value, v Value) []Value {
	kept := vals[:0:0]
	for _, m := range vals {
		if m == v {
			continue
		}
		kept = append(kept, m)
	}
	return kept
}
