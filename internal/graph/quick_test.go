package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a graph from a seed: named nodes, random edges to
// nodes and atoms, random collections. Deterministic per seed.
func randomGraph(seed int64, nodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("rnd")
	ids := make([]OID, nodes)
	for i := range ids {
		ids[i] = g.NewNode(nodeName(i))
	}
	labels := []string{"a", "b", "c", "next", "title"}
	for i := 0; i < nodes*3; i++ {
		from := ids[rng.Intn(len(ids))]
		label := labels[rng.Intn(len(labels))]
		if rng.Intn(2) == 0 {
			g.AddEdge(from, label, NodeValue(ids[rng.Intn(len(ids))]))
		} else {
			g.AddEdge(from, label, randomAtom(rng))
		}
	}
	for i := 0; i < nodes/2; i++ {
		g.AddToCollection("C"+string(rune('A'+rng.Intn(3))), NodeValue(ids[rng.Intn(len(ids))]))
	}
	return g
}

func nodeName(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func randomAtom(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Int(int64(rng.Intn(1000)))
	case 1:
		return Float(float64(rng.Intn(100)) / 4)
	case 2:
		return Bool(rng.Intn(2) == 0)
	case 3:
		return File("f"+string(rune('0'+rng.Intn(10))), FileType(rng.Intn(5)))
	default:
		return Str("s" + string(rune('0'+rng.Intn(10))))
	}
}

// TestQuickEdgeCountConsistent: NumEdges always equals the number of
// edges enumerated.
func TestQuickEdgeCountConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed, 10+int(seed%20+20)%20)
		return g.NumEdges() == len(g.AllEdges())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickInOutDuality: every node-target edge appears in the
// target's In list, and every In entry has a matching Out edge.
func TestQuickInOutDuality(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed, 15)
		for _, id := range g.Nodes() {
			for _, e := range g.Out(id) {
				if !e.To.IsNode() {
					continue
				}
				found := false
				for _, in := range g.In(e.To.OID()) {
					if in == e {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			for _, in := range g.In(id) {
				found := false
				for _, out := range g.Out(in.From) {
					if out == in {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickReachableSubsetAndMonotone: reachable sets are subsets of
// the node set and contain the start.
func TestQuickReachableClosed(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed, 12)
		nodes := g.Nodes()
		if len(nodes) == 0 {
			return true
		}
		start := nodes[int(seed%int64(len(nodes))+int64(len(nodes)))%len(nodes)]
		reach := g.Reachable(start)
		if _, ok := reach[start]; !ok {
			return false
		}
		// Closure: every node edge from a reachable node stays inside.
		for id := range reach {
			for _, e := range g.Out(id) {
				if e.To.IsNode() {
					if _, ok := reach[e.To.OID()]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickDumpDeterministic: rebuilding the same graph dumps
// identically.
func TestQuickDumpDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		return randomGraph(seed, 10).DumpString() == randomGraph(seed, 10).DumpString()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompareEqConsistency: Eq agrees with Compare == 0, and
// comparison with self holds for all atoms.
func TestQuickCompareEqConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomAtom(rng), randomAtom(rng)
		cmp, ok := Compare(a, b)
		if ok && (cmp == 0) != Eq(a, b) {
			return false
		}
		if !Eq(a, a) {
			return false
		}
		selfCmp, selfOK := Compare(a, a)
		return selfOK && selfCmp == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
