// Package graph implements STRUDEL's semistructured data model: labeled
// directed graphs in the style of OEM. A database consists of a set of
// graphs; each graph consists of objects connected by directed edges
// labeled with string-valued attribute names. Objects are either nodes,
// identified by a unique object identifier (OID), or atomic values such
// as integers, strings, URLs and files. Objects are grouped into named
// collections; objects may belong to multiple collections, and objects
// in the same collection may have different representations.
package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// OID identifies a node within a Database. OIDs are never reused.
type OID uint64

// InvalidOID is the zero OID; no node ever has it.
const InvalidOID OID = 0

// Kind discriminates the variants of Value.
type Kind uint8

// The kinds of values that can appear in a graph. KindNode is an
// internal object; the remaining kinds are the atomic types that
// commonly appear in Web pages.
const (
	KindInvalid Kind = iota
	KindNode
	KindInt
	KindFloat
	KindBool
	KindString
	KindURL
	KindFile
)

func (k Kind) String() string {
	switch k {
	case KindNode:
		return "node"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindURL:
		return "url"
	case KindFile:
		return "file"
	default:
		return "invalid"
	}
}

// FileType classifies file-valued atoms. STRUDEL handles several file
// types that commonly appear in Web pages; the HTML generator uses the
// type to pick a rendering rule (e.g. PostScript files become links).
type FileType uint8

// Supported file types.
const (
	FileUnknown FileType = iota
	FilePostScript
	FileText
	FileImage
	FileHTML
)

func (t FileType) String() string {
	switch t {
	case FilePostScript:
		return "postscript"
	case FileText:
		return "text"
	case FileImage:
		return "image"
	case FileHTML:
		return "html"
	default:
		return "file"
	}
}

// FileTypeByName maps a datadef type directive ("postscript", "ps",
// "text", "image", "html") to a FileType. Unknown names map to
// FileUnknown with ok=false.
func FileTypeByName(name string) (FileType, bool) {
	switch strings.ToLower(name) {
	case "postscript", "ps":
		return FilePostScript, true
	case "text", "txt":
		return FileText, true
	case "image", "img":
		return FileImage, true
	case "html":
		return FileHTML, true
	default:
		return FileUnknown, false
	}
}

// Value is one object in a graph: either a node reference or an atomic
// value. Value is a small comparable struct so it can be used directly
// as a map key (indexes, Skolem memo tables, collection membership).
type Value struct {
	kind Kind
	oid  OID      // KindNode
	i    int64    // KindInt
	f    float64  // KindFloat
	b    bool     // KindBool
	s    string   // KindString, KindURL, KindFile (path)
	ft   FileType // KindFile
}

// NodeValue returns a Value referencing the node with the given OID.
func NodeValue(oid OID) Value { return Value{kind: KindNode, oid: oid} }

// Int returns an integer atom.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point atom.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a boolean atom.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// String returns a string atom.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// URL returns a URL atom.
func URL(v string) Value { return Value{kind: KindURL, s: v} }

// File returns a file atom with the given path and type.
func File(path string, t FileType) Value {
	return Value{kind: KindFile, s: path, ft: t}
}

// Kind reports the variant of v.
func (v Value) Kind() Kind { return v.kind }

// IsNode reports whether v references a node.
func (v Value) IsNode() bool { return v.kind == KindNode }

// IsAtom reports whether v is an atomic value.
func (v Value) IsAtom() bool { return v.kind != KindNode && v.kind != KindInvalid }

// IsZero reports whether v is the invalid zero Value.
func (v Value) IsZero() bool { return v.kind == KindInvalid }

// OID returns the node identifier; it panics if v is not a node.
func (v Value) OID() OID {
	if v.kind != KindNode {
		panic("graph: OID called on non-node value " + v.String())
	}
	return v.oid
}

// AsInt returns the integer payload and whether v is an integer atom.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload and whether v is a float atom.
func (v Value) AsFloat() (float64, bool) { return v.f, v.kind == KindFloat }

// AsBool returns the boolean payload and whether v is a boolean atom.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// AsString returns the string payload (string, URL or file path) and
// whether v carries one.
func (v Value) AsString() (string, bool) {
	switch v.kind {
	case KindString, KindURL, KindFile:
		return v.s, true
	default:
		return "", false
	}
}

// FileType returns the file type; it is FileUnknown unless v is a file.
func (v Value) FileType() FileType {
	if v.kind != KindFile {
		return FileUnknown
	}
	return v.ft
}

// Text renders the value's payload without type decoration, suitable
// for HTML emission of string-like atoms.
func (v Value) Text() string {
	switch v.kind {
	case KindNode:
		return fmt.Sprintf("&%d", uint64(v.oid))
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindString, KindURL, KindFile:
		return v.s
	default:
		return ""
	}
}

// String renders the value with type decoration for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindNode:
		return fmt.Sprintf("&%d", uint64(v.oid))
	case KindString:
		return strconv.Quote(v.s)
	case KindURL:
		return "url(" + v.s + ")"
	case KindFile:
		return v.ft.String() + "(" + v.s + ")"
	case KindInvalid:
		return "<invalid>"
	default:
		return v.Text()
	}
}
