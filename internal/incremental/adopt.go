package incremental

import (
	"strudel/internal/graph"
	"strudel/internal/schema"
)

// AdoptCache copies the cached pages of classes the impact analysis
// clears from a previous decomposition into this one, translating node
// references by symbolic name into the new input graph (OIDs are not
// stable across warehouse refreshes; names are). Entries of affected
// classes, and entries touching unnamed or vanished nodes, are dropped
// — conservatively recomputed on the next click. Returns the number of
// entries adopted.
func (d *Decomposition) AdoptCache(prev *Decomposition, im *schema.Impact) int {
	if prev == nil || im == nil || im.All {
		return 0
	}
	translate := func(v graph.Value) (graph.Value, bool) {
		if !v.IsNode() {
			return v, true
		}
		name := prev.input.NodeName(v.OID())
		if name == "" {
			return v, false
		}
		id, ok := d.input.NodeByName(name)
		if !ok {
			return v, false
		}
		return graph.NodeValue(id), true
	}
	translateRef := func(r PageRef) (PageRef, bool) {
		out := PageRef{Func: r.Func, Args: make([]graph.Value, len(r.Args))}
		for i, a := range r.Args {
			v, ok := translate(a)
			if !ok {
				return out, false
			}
			out.Args[i] = v
		}
		return out, true
	}

	prev.mu.Lock()
	entries := make([]*PageData, 0, len(prev.cache))
	for _, pd := range prev.cache {
		entries = append(entries, pd)
	}
	prev.mu.Unlock()

	adopted := 0
	for _, pd := range entries {
		if im.Affected(pd.Ref.Func) {
			continue
		}
		ref, ok := translateRef(pd.Ref)
		if !ok {
			continue
		}
		npd := &PageData{Ref: ref, Edges: make([]PageEdge, 0, len(pd.Edges))}
		ok = true
		for _, e := range pd.Edges {
			ne := PageEdge{Label: e.Label}
			if e.Page != nil {
				pref, pok := translateRef(*e.Page)
				if !pok {
					ok = false
					break
				}
				d.remember(&pref)
				ne.Page = &pref
			} else {
				v, vok := translate(e.Value)
				if !vok {
					ok = false
					break
				}
				ne.Value = v
			}
			npd.Edges = append(npd.Edges, ne)
		}
		if !ok {
			continue
		}
		key := d.remember(&npd.Ref)
		npd.Key = key
		d.mu.Lock()
		if _, exists := d.cache[key]; !exists {
			d.cache[key] = npd
			adopted++
		}
		d.mu.Unlock()
	}
	return adopted
}
