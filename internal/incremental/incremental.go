// Package incremental implements STRUDEL's dynamic site evaluation
// ([FER 98c], paper Secs. 1 and 6): instead of completely
// materializing a site graph before browsing, the site-definition
// query is decomposed into one query per Skolem function (per page
// class). Only the site's roots are precomputed; when a user clicks
// to a page, the page's query runs at click time against the data
// graph, and its result is cached to reduce click time for future
// visits. The entire spectrum between full materialization and pure
// click-time evaluation is thus available.
package incremental

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"strudel/internal/graph"
	"strudel/internal/pool"
	"strudel/internal/schema"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
)

// PageRef identifies one page: a Skolem function applied to values.
type PageRef struct {
	Func string
	Args []graph.Value
	// key caches the graph-resolved rendering (node args by name).
	key string
}

// Key renders the canonical page key, e.g. "YearPage(1997)"; it
// matches the node names the full evaluator gives Skolem nodes, so
// materialized and dynamic sites agree on identity.
func (r PageRef) Key() string {
	if r.key != "" {
		return r.key
	}
	return r.keyWith(nil)
}

func (r PageRef) keyWith(g *graph.Graph) string {
	if r.key != "" {
		return r.key
	}
	parts := make([]string, len(r.Args))
	for i, a := range r.Args {
		if g != nil && a.IsNode() {
			if n := g.NodeName(a.OID()); n != "" {
				parts[i] = n
				continue
			}
		}
		parts[i] = a.String()
	}
	return r.Func + "(" + strings.Join(parts, ",") + ")"
}

// PageEdge is one outgoing edge of a dynamically computed page.
type PageEdge struct {
	Label string
	// Page is set when the target is another page.
	Page *PageRef
	// Value is set when the target is an atom or a data-graph node.
	Value graph.Value
}

// PageData is the computed content of one page.
type PageData struct {
	Ref   PageRef
	Key   string
	Edges []PageEdge
}

// First returns the first value of an attribute among the page's
// atom-valued edges.
func (p *PageData) First(label string) (graph.Value, bool) {
	for _, e := range p.Edges {
		if e.Label == label && e.Page == nil {
			return e.Value, true
		}
	}
	return graph.Value{}, false
}

// pageClause is one link clause contributing edges to a function's
// pages, with the full condition conjunction governing it.
type pageClause struct {
	conds    []struql.Condition
	fromArgs []struql.Term
	label    struql.LabelTerm
	to       struql.LinkTarget
}

// collectClause is a collect clause with its governing conjunction,
// used to compute the site's roots.
type collectClause struct {
	conds      []struql.Condition
	collection string
	target     struql.LinkTarget
}

// Stats reports cache behaviour.
type Stats struct {
	CacheHits, CacheMisses int
	BindingsComputed       int
}

// decompMetrics are the decomposition's telemetry handles (nil when
// not instrumented); they mirror Stats plus eviction counts.
type decompMetrics struct {
	hits, misses, evictions, bindings *telemetry.Counter
}

// Decomposition is a site-definition query split into per-page
// queries over a data graph.
type Decomposition struct {
	input *graph.Graph
	reg   *struql.Registry
	// planner, when set, evaluates conjunctions through the query
	// optimizer instead of the interpreter (see UsePlanner).
	planner func([]struql.Condition, []struql.Binding) ([]struql.Binding, error)

	pages    map[string][]pageClause
	collects []collectClause
	// siteSchema is the query's site schema, kept for delta-driven
	// selective cache invalidation.
	siteSchema *schema.SiteSchema
	// pl bounds how many pages MaterializeAll computes concurrently; a
	// nil pool runs with runtime.GOMAXPROCS(0) workers. Set it (via
	// SetWorkers or UsePool) before materializing, not concurrently.
	pl *pool.Pool

	mu    sync.Mutex
	cache map[string]*PageData
	// known maps page keys to refs discovered so far, so a server can
	// resolve an incoming URL back to a page.
	known map[string]PageRef
	stats Stats
	met   *decompMetrics
}

// Decompose splits a query. The registry may be nil (built-ins only).
func Decompose(q *struql.Query, input *graph.Graph, reg *struql.Registry) *Decomposition {
	if reg == nil {
		reg = struql.NewRegistry()
	}
	d := &Decomposition{
		input: input,
		reg:   reg,
		pages: map[string][]pageClause{},
		cache: map[string]*PageData{},
		known: map[string]PageRef{},
	}
	var walk func(b *struql.Block, conds []struql.Condition)
	walk = func(b *struql.Block, conds []struql.Condition) {
		conds = append(conds[:len(conds):len(conds)], b.Where...)
		for _, l := range b.Links {
			fn := l.From.Skolem.Func
			d.pages[fn] = append(d.pages[fn], pageClause{
				conds:    conds,
				fromArgs: l.From.Skolem.Args,
				label:    l.Label,
				to:       l.To,
			})
		}
		for _, c := range b.Collects {
			d.collects = append(d.collects, collectClause{
				conds:      conds,
				collection: c.Collection,
				target:     c.Target,
			})
		}
		// Creates without links still define (empty) pages.
		for _, ct := range b.Creates {
			if _, ok := d.pages[ct.Func]; !ok {
				d.pages[ct.Func] = nil
			}
		}
		for _, ch := range b.Children {
			walk(ch, conds)
		}
	}
	walk(q.Root, nil)
	d.siteSchema = schema.Build(q)
	return d
}

// Schema returns the site schema of the decomposed query.
func (d *Decomposition) Schema() *schema.SiteSchema { return d.siteSchema }

// Instrument makes the decomposition report cache behaviour into a
// telemetry registry: page-cache hits, misses and evictions, and the
// number of binding rows computed at click time. Call before serving
// traffic; the existing Stats accessor keeps working either way.
func (d *Decomposition) Instrument(reg *telemetry.Registry) {
	cache := func(event string) *telemetry.Counter {
		return reg.Counter("strudel_dynamic_cache_events_total",
			"Dynamic page-cache events (hit, miss, evict).", "event", event)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = &decompMetrics{
		hits:      cache("hit"),
		misses:    cache("miss"),
		evictions: cache("evict"),
		bindings: reg.Counter("strudel_dynamic_bindings_total",
			"Binding rows computed by click-time query evaluation."),
	}
}

// SetWorkers bounds how many pages MaterializeAll computes
// concurrently; 0 means runtime.GOMAXPROCS(0), 1 materializes
// sequentially. Page contents, the page count and the cache are
// identical at any worker count.
func (d *Decomposition) SetWorkers(n int) { d.pl = pool.New(n) }

// UsePool makes MaterializeAll fan out over a shared (possibly
// instrumented) worker pool instead of a private one.
func (d *Decomposition) UsePool(p *pool.Pool) { d.pl = p }

// UsePlanner routes the per-page conjunctions through a planner hook
// (e.g. optimizer.Hook), so click-time evaluation also benefits from
// the repository's indexes.
func (d *Decomposition) UsePlanner(fn func([]struql.Condition, []struql.Binding) ([]struql.Binding, error)) {
	d.planner = fn
}

// evalBindings evaluates one conjunction via the planner when set.
func (d *Decomposition) evalBindings(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
	if d.planner != nil {
		return d.planner(conds, seed)
	}
	return struql.EvalBindings(d.input, d.reg, conds, seed)
}

// Input returns the data graph this decomposition evaluates over.
// Serving layers use it to expose ad-hoc queries against the same
// snapshot the click-time pages see; after a refresh swaps in a new
// renderer, its Input is the newly committed graph.
func (d *Decomposition) Input() *graph.Graph { return d.input }

// Functions lists the page classes (Skolem functions), sorted.
func (d *Decomposition) Functions() []string {
	out := make([]string, 0, len(d.pages))
	for f := range d.pages {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Stats returns a copy of the cache statistics.
func (d *Decomposition) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// InvalidateCache drops all cached pages (call after a data-graph
// change of unknown shape). Dropped entries count as evictions. When
// the change is known, InvalidateDelta keeps unaffected classes' pages.
func (d *Decomposition) InvalidateCache() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.cache)
	if d.met != nil {
		d.met.evictions.Add(n)
	}
	d.cache = map[string]*PageData{}
	return n
}

// InvalidateDelta drops only the cached pages of classes the delta can
// affect, per the site schema's dependency analysis, and returns the
// number of evicted entries. Cached PageData holds exactly the page's
// own out-edges (link targets are identified by key, not content), so
// direct class sensitivity — without the render closure — is sufficient
// for cache soundness. A nil delta degrades to InvalidateCache.
func (d *Decomposition) InvalidateDelta(delta *graph.Delta) int {
	return d.InvalidateImpact(schema.Analyze(d.siteSchema, delta))
}

// InvalidateImpact is InvalidateDelta for a precomputed impact.
func (d *Decomposition) InvalidateImpact(im *schema.Impact) int {
	if im == nil || im.All {
		return d.InvalidateCache()
	}
	if im.Empty() {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for key, pd := range d.cache {
		if im.Affected(pd.Ref.Func) {
			delete(d.cache, key)
			n++
		}
	}
	if d.met != nil && n > 0 {
		d.met.evictions.Add(n)
	}
	return n
}

// CachedKeys returns the keys of all cached pages, sorted; tests use it
// to observe which entries an invalidation kept.
func (d *Decomposition) CachedKeys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.cache))
	for k := range d.cache {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// addBindings records click-time binding rows in both Stats and the
// telemetry counter.
func (d *Decomposition) addBindings(n int) {
	d.mu.Lock()
	d.stats.BindingsComputed += n
	met := d.met
	d.mu.Unlock()
	if met != nil {
		met.bindings.Add(n)
	}
}

// Resolve maps a page key back to a discovered PageRef.
func (d *Decomposition) Resolve(key string) (PageRef, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.known[key]
	return r, ok
}

func (d *Decomposition) remember(r *PageRef) string {
	if r.key == "" {
		r.key = r.keyWith(d.input)
	}
	d.mu.Lock()
	d.known[r.key] = *r
	d.mu.Unlock()
	return r.key
}

// Roots precomputes the page references (and plain values) collected
// into a named collection — the precomputed entry points of the site.
func (d *Decomposition) Roots(collection string) ([]PageRef, error) {
	var out []PageRef
	seen := map[string]bool{}
	for _, c := range d.collects {
		if c.collection != collection || c.target.Skolem == nil {
			continue
		}
		rows, err := d.evalBindings(c.conds, nil)
		if err != nil {
			return nil, err
		}
		d.addBindings(len(rows))
		for _, row := range rows {
			ref, err := refFromSkolem(*c.target.Skolem, row)
			if err != nil {
				return nil, err
			}
			key := d.remember(&ref)
			if !seen[key] {
				seen[key] = true
				out = append(out, ref)
			}
		}
	}
	return out, nil
}

// PageContext is Page with trace propagation: when the context
// carries a span (a sampled request, or a traced materialization),
// the page computation is recorded as a child span named after the
// page key, with its binding count and cache outcome. An untraced
// context costs one context lookup.
func (d *Decomposition) PageContext(ctx context.Context, ref PageRef) (*PageData, error) {
	if telemetry.SpanFromContext(ctx) == nil {
		return d.Page(ref)
	}
	sp, _, finish := telemetry.StartSpan(ctx, "page "+ref.Key())
	defer finish()
	d.mu.Lock()
	_, cached := d.cache[ref.keyWith(d.input)]
	d.mu.Unlock()
	pd, err := d.Page(ref)
	sp.SetAttr("cached", cached)
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else {
		sp.SetAttr("edges", len(pd.Edges))
	}
	return pd, err
}

// Page computes (or returns from cache) one page's content.
func (d *Decomposition) Page(ref PageRef) (*PageData, error) {
	key := d.remember(&ref)
	d.mu.Lock()
	met := d.met
	if pd, ok := d.cache[key]; ok {
		d.stats.CacheHits++
		d.mu.Unlock()
		if met != nil {
			met.hits.Inc()
		}
		return pd, nil
	}
	d.stats.CacheMisses++
	clauses := d.pages[ref.Func]
	d.mu.Unlock()
	if met != nil {
		met.misses.Inc()
	}

	pd := &PageData{Ref: ref, Key: key}
	edgeSeen := map[string]bool{}
	type aggGroup struct {
		op    struql.AggOp
		label string
		seen  map[graph.Value]struct{}
		vals  []graph.Value
	}
	var aggGroups []*aggGroup
	for _, cl := range clauses {
		if len(cl.fromArgs) != len(ref.Args) {
			continue // a different arity overload of the function
		}
		// Seed the bindings with the page's own arguments.
		seed := struql.Binding{}
		ok := true
		for i, t := range cl.fromArgs {
			if t.IsVar() {
				if prev, bound := seed[t.Var]; bound && prev != ref.Args[i] {
					ok = false
					break
				}
				seed[t.Var] = ref.Args[i]
			} else if t.Const != ref.Args[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rows, err := d.evalBindings(cl.conds, []struql.Binding{seed})
		if err != nil {
			return nil, fmt.Errorf("incremental: page %s: %w", key, err)
		}
		d.addBindings(len(rows))
		// Aggregate targets group over all of this clause's rows.
		var grp *aggGroup
		if cl.to.Agg != nil && len(rows) > 0 {
			label := cl.label.Lit
			if cl.label.Var != "" {
				if lv, ok := rows[0][cl.label.Var]; ok {
					label, _ = lv.AsString()
				}
			}
			grp = &aggGroup{op: cl.to.Agg.Op, label: label, seen: map[graph.Value]struct{}{}}
			aggGroups = append(aggGroups, grp)
		}
		for _, row := range rows {
			if grp != nil {
				v, ok := row[cl.to.Agg.Var]
				if !ok {
					return nil, fmt.Errorf("incremental: page %s: aggregate variable %q unbound", key, cl.to.Agg.Var)
				}
				if _, dup := grp.seen[v]; !dup {
					grp.seen[v] = struct{}{}
					grp.vals = append(grp.vals, v)
				}
				continue
			}
			edge, err := d.edgeFor(cl, row)
			if err != nil {
				return nil, fmt.Errorf("incremental: page %s: %w", key, err)
			}
			sig := edgeSignature(edge)
			if !edgeSeen[sig] {
				edgeSeen[sig] = true
				pd.Edges = append(pd.Edges, edge)
			}
		}
	}
	for _, grp := range aggGroups {
		v, err := struql.Aggregate(grp.op, grp.vals)
		if err != nil {
			return nil, fmt.Errorf("incremental: page %s: %w", key, err)
		}
		pd.Edges = append(pd.Edges, PageEdge{Label: grp.label, Value: v})
	}
	d.mu.Lock()
	d.cache[key] = pd
	d.mu.Unlock()
	return pd, nil
}

func (d *Decomposition) edgeFor(cl pageClause, row struql.Binding) (PageEdge, error) {
	var e PageEdge
	switch {
	case cl.label.Var != "":
		lv, ok := row[cl.label.Var]
		if !ok {
			return e, fmt.Errorf("arc variable %q unbound", cl.label.Var)
		}
		e.Label, _ = lv.AsString()
	default:
		e.Label = cl.label.Lit
	}
	if cl.to.Skolem != nil {
		ref, err := refFromSkolem(*cl.to.Skolem, row)
		if err != nil {
			return e, err
		}
		d.remember(&ref)
		e.Page = &ref
		return e, nil
	}
	if cl.to.Term.IsVar() {
		v, ok := row[cl.to.Term.Var]
		if !ok {
			return e, fmt.Errorf("variable %q unbound", cl.to.Term.Var)
		}
		e.Value = v
		return e, nil
	}
	e.Value = cl.to.Term.Const
	return e, nil
}

func refFromSkolem(s struql.SkolemTerm, row struql.Binding) (PageRef, error) {
	ref := PageRef{Func: s.Func, Args: make([]graph.Value, len(s.Args))}
	for i, t := range s.Args {
		if t.IsVar() {
			v, ok := row[t.Var]
			if !ok {
				return ref, fmt.Errorf("variable %q unbound in Skolem term %s", t.Var, s)
			}
			ref.Args[i] = v
		} else {
			ref.Args[i] = t.Const
		}
	}
	return ref, nil
}

func edgeSignature(e PageEdge) string {
	if e.Page != nil {
		return e.Label + "\x00P" + e.Page.Key()
	}
	return e.Label + "\x00V" + e.Value.String()
}

// MaterializeAll walks the whole site breadth-first from the given
// root collection, computing every page. It is the "compute the
// complete site before users browse it" end of the spectrum, built on
// the same per-page queries, and returns the number of pages.
//
// Each breadth-first level materializes in parallel over the
// decomposition's pool (SetWorkers/UsePool; a nil pool uses
// runtime.GOMAXPROCS(0) workers): the frontier is deduplicated before
// dispatch so no page is computed twice, every Page call touches the
// shared cache only under the decomposition's lock, and the next
// frontier is assembled from the results in input order — so the page
// set, the cache contents and any reported error are identical at any
// worker count.
func (d *Decomposition) MaterializeAll(rootCollection string) (int, error) {
	return d.MaterializeAllContext(context.Background(), rootCollection)
}

// MaterializeAllContext is MaterializeAll with cancellation: a
// cancelled context aborts the walk between page computations.
func (d *Decomposition) MaterializeAllContext(ctx context.Context, rootCollection string) (int, error) {
	roots, err := d.Roots(rootCollection)
	if err != nil {
		return 0, err
	}
	visited := map[string]bool{}
	var frontier []PageRef
	schedule := func(refs []PageRef) {
		for _, ref := range refs {
			key := ref.keyWith(d.input)
			if !visited[key] {
				visited[key] = true
				frontier = append(frontier, ref)
			}
		}
	}
	schedule(roots)
	for len(frontier) > 0 {
		level := frontier
		frontier = nil
		computed, err := pool.Map(pool.WithPhase(ctx, "materialize"), d.pl, len(level), func(wctx context.Context, i int) (*PageData, error) {
			return d.PageContext(wctx, level[i])
		})
		if err != nil {
			return 0, err
		}
		for _, pd := range computed {
			for _, e := range pd.Edges {
				if e.Page != nil {
					schedule([]PageRef{*e.Page})
				}
			}
		}
	}
	return len(visited), nil
}
