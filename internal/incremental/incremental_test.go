package incremental

import (
	"fmt"
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/template"
)

const bibData = `
collection Publications { }
object pub1 in Publications { title "Alpha" year 1997 category "X" }
object pub2 in Publications { title "Beta" year 1998 category "X" }
object pub3 in Publications { title "Gamma" year 1998 category "Y" }
`

const siteQuery = `
INPUT BIBTEX
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> l -> v
CREATE PaperPage(x)
LINK PaperPage(x) -> l -> v
{
  WHERE l = "year"
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v) -> "Paper" -> PaperPage(x),
       RootPage() -> "YearPage" -> YearPage(v)
}
OUTPUT Site
`

func setup(t *testing.T) (*graph.Graph, *Decomposition) {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", bibData)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(struql.MustParse(siteQuery), res.Graph, nil)
	return res.Graph, d
}

func TestDecomposeFunctions(t *testing.T) {
	_, d := setup(t)
	fns := d.Functions()
	want := []string{"PaperPage", "RootPage", "YearPage"}
	if len(fns) != len(want) {
		t.Fatalf("functions = %v", fns)
	}
	for i := range want {
		if fns[i] != want[i] {
			t.Errorf("functions[%d] = %s, want %s", i, fns[i], want[i])
		}
	}
}

func TestRootsPrecomputed(t *testing.T) {
	_, d := setup(t)
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Key() != "RootPage()" {
		t.Fatalf("roots = %v", roots)
	}
	// The root resolves by key afterwards.
	if _, ok := d.Resolve("RootPage()"); !ok {
		t.Error("root not registered")
	}
	if _, ok := d.Resolve("Nope()"); ok {
		t.Error("unknown key resolved")
	}
}

func TestPageComputation(t *testing.T) {
	_, d := setup(t)
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	root, err := d.Page(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	// Root links to two year pages (1997, 1998).
	if len(root.Edges) != 2 {
		t.Fatalf("root edges = %v", root.Edges)
	}
	var y98 *PageRef
	for _, e := range root.Edges {
		if e.Label != "YearPage" || e.Page == nil {
			t.Errorf("unexpected root edge %+v", e)
			continue
		}
		if e.Page.Key() == "YearPage(1998)" {
			y98 = e.Page
		}
	}
	if y98 == nil {
		t.Fatal("YearPage(1998) missing")
	}
	// Click through to 1998: Year atom + two paper links.
	pd, err := d.Page(*y98)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pd.First("Year"); !ok || v != graph.Int(1998) {
		t.Errorf("Year = %v", v)
	}
	papers := 0
	for _, e := range pd.Edges {
		if e.Label == "Paper" {
			papers++
			if e.Page == nil || !strings.HasPrefix(e.Page.Key(), "PaperPage(pub") {
				t.Errorf("paper edge = %+v", e)
			}
		}
	}
	if papers != 2 {
		t.Errorf("1998 has %d papers, want 2", papers)
	}
}

func TestPageMatchesFullEvaluation(t *testing.T) {
	// The dynamic page content equals the corresponding node in the
	// fully materialized site graph.
	g, d := setup(t)
	full, err := struql.Eval(struql.MustParse(siteQuery), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	pub1, _ := g.NodeByName("pub1")
	ref := PageRef{Func: "PaperPage", Args: []graph.Value{graph.NodeValue(pub1)}}
	pd, err := d.Page(ref)
	if err != nil {
		t.Fatal(err)
	}
	staticNode, ok := full.Output.NodeByName("PaperPage(pub1)")
	if !ok {
		t.Fatal("static node missing")
	}
	staticEdges := full.Output.Out(staticNode)
	if len(pd.Edges) != len(staticEdges) {
		t.Errorf("dynamic %d edges vs static %d", len(pd.Edges), len(staticEdges))
	}
	for _, se := range staticEdges {
		found := false
		for _, de := range pd.Edges {
			if de.Label == se.Label && de.Page == nil && de.Value == se.To {
				found = true
			}
		}
		if !found {
			t.Errorf("dynamic page missing edge %v", se)
		}
	}
}

func TestPageCaching(t *testing.T) {
	_, d := setup(t)
	roots, _ := d.Roots("Roots")
	if _, err := d.Page(roots[0]); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if _, err := d.Page(roots[0]); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("stats = %+v -> %+v", before, after)
	}
	d.InvalidateCache()
	if _, err := d.Page(roots[0]); err != nil {
		t.Fatal(err)
	}
	if d.Stats().CacheMisses != after.CacheMisses+1 {
		t.Errorf("invalidate did not drop cache: %+v", d.Stats())
	}
}

func TestMaterializeAll(t *testing.T) {
	_, d := setup(t)
	n, err := d.MaterializeAll("Roots")
	if err != nil {
		t.Fatal(err)
	}
	// RootPage + 2 YearPages + 3 PaperPages.
	if n != 6 {
		t.Errorf("materialized %d pages, want 6", n)
	}
}

func TestRendererLinksAndEmbeds(t *testing.T) {
	_, d := setup(t)
	tpls := map[string]*template.Template{
		"RootPage":  template.MustParse("RootPage", `<h1>Root</h1><SFMT_UL YearPage ORDER=ascend KEY=Year>`),
		"YearPage":  template.MustParse("YearPage", `<h1><SFMT Year></h1><SFMT Paper EMBED DELIM="; ">`),
		"PaperPage": template.MustParse("PaperPage", `<i><SFMT title></i> (<SFMT year>)`),
	}
	r := &Renderer{Dec: d, Templates: tpls, EmbedOnly: map[string]bool{"PaperPage": true}}
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.RenderPage(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	// Root links to year pages, ordered.
	i97 := strings.Index(out, "YearPage%281997%29")
	i98 := strings.Index(out, "YearPage%281998%29")
	if i97 < 0 || i98 < 0 || i97 > i98 {
		t.Errorf("root render = %q", out)
	}
	// Year page embeds papers.
	ref, _ := d.Resolve("YearPage(1998)")
	out, err = r.RenderPage(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<h1>1998</h1>", "<i>Beta</i> (1998)", "<i>Gamma</i> (1998)"} {
		if !strings.Contains(out, want) {
			t.Errorf("year render missing %q: %q", want, out)
		}
	}
}

func TestRendererUntemplatedTarget(t *testing.T) {
	res, _ := datadef.Parse("G", `collection C { } object a in C { v 1 }`)
	q := struql.MustParse(`
INPUT G
WHERE C(x)
CREATE P(x)
LINK P(x) -> "orig" -> x
COLLECT Roots(P(x))`)
	d := Decompose(q, res.Graph, nil)
	r := &Renderer{Dec: d, Templates: map[string]*template.Template{
		"P": template.MustParse("P", `[<SFMT orig>]`),
	}}
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.RenderPage(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if out != "[a]" {
		t.Errorf("render = %q", out)
	}
}

func TestPageWithConstArgsAndSkolemConstants(t *testing.T) {
	res, _ := datadef.Parse("G", `collection C { } object a in C { v 1 }`)
	q := struql.MustParse(`
INPUT G
CREATE F("fixed")
WHERE C(x)
LINK F("fixed") -> "member" -> x`)
	d := Decompose(q, res.Graph, nil)
	ref := PageRef{Func: "F", Args: []graph.Value{graph.Str("fixed")}}
	pd, err := d.Page(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Edges) != 1 || pd.Edges[0].Label != "member" {
		t.Errorf("edges = %+v", pd.Edges)
	}
	// A mismatching constant arg yields an empty page.
	pd2, err := d.Page(PageRef{Func: "F", Args: []graph.Value{graph.Str("other")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd2.Edges) != 0 {
		t.Errorf("mismatched page should be empty: %+v", pd2.Edges)
	}
}

// TestQuickDynamicMatchesStatic: for random bibliographies, every page
// the full evaluator materializes is computed identically by the
// decomposed per-page queries.
func TestQuickDynamicMatchesStatic(t *testing.T) {
	q := struql.MustParse(siteQuery)
	for seed := int64(0); seed < 8; seed++ {
		g := graph.New("BIBTEX")
		g.DeclareCollection("Publications")
		rngSeed := seed
		for i := int64(0); i < 6+rngSeed; i++ {
			p := g.NewNode(fmt.Sprintf("pub%d", i))
			g.AddToCollection("Publications", graph.NodeValue(p))
			g.AddEdge(p, "title", graph.Str(fmt.Sprintf("T%d", i)))
			g.AddEdge(p, "year", graph.Int(1990+(i+rngSeed)%5))
			if i%2 == 0 {
				g.AddEdge(p, "category", graph.Str("X"))
			}
		}
		full, err := struql.Eval(q, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := Decompose(q, g, nil)
		if _, err := d.MaterializeAll("Roots"); err != nil {
			t.Fatal(err)
		}
		for _, id := range full.Output.Nodes() {
			name := full.Output.NodeName(id)
			if name == "" || !strings.Contains(name, "(") {
				continue
			}
			ref, ok := d.Resolve(name)
			if !ok {
				t.Fatalf("seed %d: %s undiscovered", seed, name)
			}
			pd, err := d.Page(ref)
			if err != nil {
				t.Fatal(err)
			}
			if len(pd.Edges) != len(full.Output.Out(id)) {
				t.Errorf("seed %d: %s has %d dynamic edges, %d static",
					seed, name, len(pd.Edges), len(full.Output.Out(id)))
			}
		}
	}
}

func TestDynamicAggregates(t *testing.T) {
	res, err := datadef.Parse("G", `
collection Publications { }
object p1 in Publications { year 1997 cites 10 }
object p2 in Publications { year 1998 cites 4 }
object p3 in Publications { year 1998 cites 6 }
`)
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(`
INPUT G
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Year" -> y,
     YearPage(y) -> "papers" -> COUNT(x)
COLLECT Roots(YearPage(y))`)
	d := Decompose(q, res.Graph, nil)
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]graph.Value{}
	for _, ref := range roots {
		pd, err := d.Page(ref)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := pd.First("papers")
		if !ok {
			t.Fatalf("%s has no papers edge: %+v", ref.Key(), pd.Edges)
		}
		counts[ref.Key()] = v
	}
	if counts["YearPage(1997)"] != graph.Int(1) || counts["YearPage(1998)"] != graph.Int(2) {
		t.Errorf("counts = %v", counts)
	}
}

func TestUsePlannerDelegates(t *testing.T) {
	_, d := setup(t)
	called := 0
	d.UsePlanner(func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
		called++
		return struql.EvalBindings(d.input, d.reg, conds, seed)
	})
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Page(roots[0]); err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Error("planner hook never invoked")
	}
}

func TestConcurrentPageComputation(t *testing.T) {
	_, d := setup(t)
	roots, err := d.Roots("Roots")
	if err != nil {
		t.Fatal(err)
	}
	root, err := d.Page(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	// Many goroutines click through every page concurrently (the
	// dynamic server does exactly this).
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				for _, e := range root.Edges {
					if e.Page == nil {
						continue
					}
					if _, err := d.Page(*e.Page); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
