package incremental

import (
	"testing"

	"strudel/internal/graph"
)

// fill materializes the whole test site so the cache holds pages of
// every class.
func fill(t *testing.T, d *Decomposition) {
	t.Helper()
	if _, err := d.MaterializeAll("Roots"); err != nil {
		t.Fatal(err)
	}
	if len(d.CachedKeys()) == 0 {
		t.Fatal("cache empty after materialization")
	}
}

func TestInvalidateDeltaSelective(t *testing.T) {
	g, d := setup(t)
	fill(t, d)
	before := len(d.CachedKeys())

	// Touch pub1's title in the data graph.
	pub1, ok := g.NodeByName("pub1")
	if !ok {
		t.Fatal("pub1 missing")
	}
	if !g.RemoveEdge(pub1, "title", graph.Str("Alpha")) {
		t.Fatal("title edge missing")
	}
	g.AddEdge(pub1, "title", graph.Str("Alpha v2"))
	delta := &graph.Delta{
		ChangedObjects: []string{"pub1"},
		TouchedLabels:  []string{"title"},
	}

	evicted := d.InvalidateDelta(delta)
	if evicted == 0 {
		t.Fatal("title change must evict PaperPage entries")
	}
	kept := d.CachedKeys()
	// The outer block's unconstrained arc variable makes PaperPage
	// sensitive to any label; YearPage's clauses are guarded by
	// l = "year" and must survive a title-only delta. RootPage's
	// YearPage link is also year-guarded.
	for _, k := range kept {
		if pref, _ := d.Resolve(k); pref.Func == "PaperPage" {
			t.Errorf("PaperPage entry %s survived a title delta", k)
		}
	}
	wantKept := map[string]bool{"YearPage(1997)": true, "YearPage(1998)": true, "RootPage()": true}
	if len(kept) != len(wantKept) {
		t.Errorf("kept %v, want %v", kept, wantKept)
	}
	for _, k := range kept {
		if !wantKept[k] {
			t.Errorf("unexpected survivor %s", k)
		}
	}
	if before-evicted != len(kept) {
		t.Errorf("evicted %d of %d but %d remain", evicted, before, len(kept))
	}

	// Recomputing the evicted page observes the new title.
	ref, ok := d.Resolve("PaperPage(pub1)")
	if !ok {
		t.Fatal("PaperPage(pub1) unknown")
	}
	pd, err := d.Page(ref)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pd.First("title"); !ok || v != graph.Str("Alpha v2") {
		t.Errorf("recomputed title = %v, want Alpha v2", v)
	}
}

func TestInvalidateDeltaEmptyKeepsEverything(t *testing.T) {
	_, d := setup(t)
	fill(t, d)
	n := len(d.CachedKeys())
	if evicted := d.InvalidateDelta(&graph.Delta{}); evicted != 0 {
		t.Fatalf("empty delta evicted %d entries", evicted)
	}
	if len(d.CachedKeys()) != n {
		t.Fatal("empty delta shrank the cache")
	}
}

func TestInvalidateDeltaNilDropsEverything(t *testing.T) {
	_, d := setup(t)
	fill(t, d)
	if evicted := d.InvalidateDelta(nil); evicted != len(d.CachedKeys())+evicted {
		t.Fatalf("nil delta must drop the whole cache, %d entries remain", len(d.CachedKeys()))
	}
	if len(d.CachedKeys()) != 0 {
		t.Fatal("cache not empty after nil-delta invalidation")
	}
}

func TestInvalidateDeltaYearChange(t *testing.T) {
	_, d := setup(t)
	fill(t, d)
	delta := &graph.Delta{
		ChangedObjects: []string{"pub2"},
		TouchedLabels:  []string{"year"},
	}
	d.InvalidateDelta(delta)
	// A year delta satisfies the l = "year" guard: YearPage and the
	// year-linked RootPage must go too, alongside the PaperPages.
	if keys := d.CachedKeys(); len(keys) != 0 {
		t.Errorf("year delta must evict every class, kept %v", keys)
	}
}
