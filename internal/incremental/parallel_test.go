package incremental

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"strudel/internal/pool"
	"strudel/internal/struql"
)

// cacheSnapshot renders every materialized page as "key: sig, sig, ..."
// lines, sorted — a byte-comparable image of the whole site.
func cacheSnapshot(d *Decomposition) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	lines := make([]string, 0, len(d.cache))
	for key, pd := range d.cache {
		sigs := make([]string, len(pd.Edges))
		for i, e := range pd.Edges {
			sigs[i] = edgeSignature(e)
		}
		lines = append(lines, key+": "+strings.Join(sigs, ", "))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestMaterializeAllParallelDeterministic: the page count, the binding
// statistics and the full cache contents — every page's edges, in
// order — are identical at workers 1, 4 and 16.
func TestMaterializeAllParallelDeterministic(t *testing.T) {
	_, base := setup(t)
	base.SetWorkers(1)
	wantN, err := base.MaterializeAll("Roots")
	if err != nil {
		t.Fatal(err)
	}
	wantSnap := cacheSnapshot(base)
	wantStats := base.Stats()
	for _, w := range []int{4, 16} {
		_, d := setup(t)
		d.SetWorkers(w)
		n, err := d.MaterializeAll("Roots")
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if n != wantN {
			t.Errorf("workers=%d: materialized %d pages, want %d", w, n, wantN)
		}
		if snap := cacheSnapshot(d); snap != wantSnap {
			t.Errorf("workers=%d: cache differs from sequential run:\n%s\n--- want ---\n%s", w, snap, wantSnap)
		}
		if st := d.Stats(); st != wantStats {
			t.Errorf("workers=%d: stats = %+v, want %+v", w, st, wantStats)
		}
	}
}

// TestMaterializeAllSharedPool: materialization over a shared pool
// produces the same site.
func TestMaterializeAllSharedPool(t *testing.T) {
	_, base := setup(t)
	if _, err := base.MaterializeAll("Roots"); err != nil {
		t.Fatal(err)
	}
	_, d := setup(t)
	d.UsePool(pool.New(8))
	if _, err := d.MaterializeAll("Roots"); err != nil {
		t.Fatal(err)
	}
	if cacheSnapshot(d) != cacheSnapshot(base) {
		t.Error("shared-pool materialization differs from default run")
	}
}

// TestMaterializeAllParallelError: a failing page query surfaces the
// same (lowest-frontier-index) error at any worker count.
func TestMaterializeAllParallelError(t *testing.T) {
	var want string
	for i, w := range []int{1, 4, 16} {
		_, d := setup(t)
		d.SetWorkers(w)
		d.UsePlanner(func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
			if len(seed) > 0 { // page computation; Roots passes a nil seed
				return nil, fmt.Errorf("boom")
			}
			return struql.EvalBindings(d.input, d.reg, conds, seed)
		})
		_, err := d.MaterializeAll("Roots")
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("workers=%d: error %q differs from sequential %q", w, err.Error(), want)
		}
	}
}

// TestMaterializeAllContextCancelled: a cancelled context aborts the
// walk with the context's error.
func TestMaterializeAllContextCancelled(t *testing.T) {
	_, d := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.MaterializeAllContext(ctx, "Roots"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
