package incremental

import (
	"context"
	"fmt"
	"html"
	"net/url"
	"strings"
	"time"

	"strudel/internal/graph"
	"strudel/internal/telemetry"
	"strudel/internal/template"
)

// Renderer renders dynamically computed pages to HTML with the same
// template language the static generator uses. Because a dynamic page
// is not part of a materialized site graph, the renderer materializes
// a small transient graph around the requested page — the page's own
// edges plus, recursively, the edges of pages it embeds — and
// evaluates the template against it.
type Renderer struct {
	Dec       *Decomposition
	Templates map[string]*template.Template
	// EmbedOnly marks functions always embedded, never linked.
	EmbedOnly map[string]bool
	// URLFor maps a page key to its URL; default "/page/<key>".
	URLFor func(key string) string
	// MaxDepth bounds transitive embedding (default 8).
	MaxDepth int

	// BuiltAt is when the renderer's data graph was last refreshed (or
	// re-validated as unchanged). The serving layer reads it to report
	// the staleness of click-time content.
	BuiltAt time.Time

	// renderSeconds, when set via Instrument, times RenderPage — the
	// paper's "click time" for one dynamically computed page.
	renderSeconds *telemetry.Histogram
}

// Instrument makes the renderer record per-page render latency (the
// click time of Sec. 6) and wires its decomposition's cache counters
// into the same registry. Call before serving traffic.
func (r *Renderer) Instrument(reg *telemetry.Registry) {
	r.renderSeconds = reg.Histogram("strudel_dynamic_render_seconds",
		"Click-time latency of dynamically computed pages, in seconds.",
		telemetry.DefBuckets)
	if r.Dec != nil {
		r.Dec.Instrument(reg)
	}
}

func (r *Renderer) urlFor(key string) string {
	if r.URLFor != nil {
		return r.URLFor(key)
	}
	return "/page/" + url.PathEscape(key)
}

func (r *Renderer) maxDepth() int {
	if r.MaxDepth > 0 {
		return r.MaxDepth
	}
	return 8
}

// RenderPage computes and renders one page.
func (r *Renderer) RenderPage(ref PageRef) (string, error) {
	return r.RenderPageContext(context.Background(), ref)
}

// RenderPageContext is RenderPage with the request context threaded
// through: when the context carries a sampled request span (see
// telemetry.SpanFromContext), the render and each page-query
// evaluation it triggers appear as child spans of the request, so a
// sampled trace shows where click time actually went. An untraced
// context pays one context lookup and nothing else.
func (r *Renderer) RenderPageContext(ctx context.Context, ref PageRef) (string, error) {
	if r.renderSeconds != nil {
		t0 := time.Now()
		defer func() { r.renderSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	if telemetry.SpanFromContext(ctx) != nil {
		var finish func()
		_, ctx, finish = telemetry.StartSpan(ctx, "render "+ref.Key())
		defer finish()
	}
	g := graph.New("dynamic")
	oid, err := r.materialize(ctx, g, ref, 0, map[string]graph.OID{})
	if err != nil {
		return "", err
	}
	return r.renderOID(g, oid, 0)
}

// materialize loads a page's edges into the transient graph, recursing
// into page targets up to the depth limit. Non-embedded page targets
// are materialized shallowly (node only) since only their key is
// needed for the link.
func (r *Renderer) materialize(ctx context.Context, g *graph.Graph, ref PageRef, depth int, seen map[string]graph.OID) (graph.OID, error) {
	key := ref.keyWith(r.Dec.input)
	if oid, ok := seen[key]; ok {
		return oid, nil
	}
	oid := g.NewNode(key)
	seen[key] = oid
	if depth > r.maxDepth() {
		return oid, nil
	}
	pd, err := r.Dec.PageContext(ctx, ref)
	if err != nil {
		return 0, err
	}
	for _, e := range pd.Edges {
		switch {
		case e.Page != nil:
			sub, err := r.materialize(ctx, g, *e.Page, depth+1, seen)
			if err != nil {
				return 0, err
			}
			if err := g.AddEdge(oid, e.Label, graph.NodeValue(sub)); err != nil {
				return 0, err
			}
		case e.Value.IsNode():
			// Data-graph node: carry its name across for display.
			name := r.Dec.input.NodeName(e.Value.OID())
			sub := g.NewNode(name)
			if err := g.AddEdge(oid, e.Label, graph.NodeValue(sub)); err != nil {
				return 0, err
			}
		default:
			if err := g.AddEdge(oid, e.Label, e.Value); err != nil {
				return 0, err
			}
		}
	}
	return oid, nil
}

// funcOf extracts the Skolem function from a transient node name.
func funcOf(name string) string {
	if i := strings.IndexByte(name, '('); i > 0 {
		return name[:i]
	}
	return name
}

func (r *Renderer) renderOID(g *graph.Graph, oid graph.OID, depth int) (string, error) {
	if depth > r.maxDepth() {
		return "", fmt.Errorf("incremental: embedding depth exceeds %d", r.maxDepth())
	}
	name := g.NodeName(oid)
	tpl, ok := r.Templates[funcOf(name)]
	if !ok {
		return html.EscapeString(name), nil
	}
	env := &template.Env{
		Graph: g,
		Self:  oid,
		Render: func(v graph.Value, opts template.RenderOpts) (string, error) {
			return r.renderValue(g, v, opts, depth)
		},
	}
	return tpl.ExecuteString(env)
}

func (r *Renderer) renderValue(g *graph.Graph, v graph.Value, opts template.RenderOpts, depth int) (string, error) {
	if v.IsNode() {
		name := g.NodeName(v.OID())
		fn := funcOf(name)
		_, templated := r.Templates[fn]
		isPage := templated && !r.EmbedOnly[fn]
		if isPage && !opts.Embed {
			tag := opts.LinkTag
			if tag == "" {
				tag = name
			}
			return fmt.Sprintf("<a href=%q>%s</a>", r.urlFor(name), html.EscapeString(tag)), nil
		}
		if templated {
			return r.renderOID(g, v.OID(), depth+1)
		}
		return html.EscapeString(name), nil
	}
	return template.RenderAtom(g, v, opts)
}
