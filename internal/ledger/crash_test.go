package ledger

import (
	"fmt"
	"path/filepath"
	"testing"

	"strudel/internal/fsx"
)

// crashEntry's content is a deterministic function of its append
// index, so recovery can verify every surviving entry is *complete* —
// a partial or torn entry would fail the content check.
func crashEntry(i int) Entry {
	return Entry{
		BuildID:     fmt.Sprintf("crash-%04d", i),
		Site:        "crash",
		Trigger:     "interval",
		Mode:        "selective",
		ETagChurn:   i * 3,
		Invalidated: []string{fmt.Sprintf("/p%d.html", i)},
		TotalMs:     float64(i),
	}
}

func verifyRecovered(t *testing.T, r *Ledger, appended int, ctx string) {
	t.Helper()
	entries := r.Entries(Filter{})
	prev := uint64(1 << 62)
	for _, e := range entries {
		// Entries come newest-first; Seq strictly decreasing.
		if e.Seq >= prev {
			t.Fatalf("%s: seq not strictly decreasing: %d then %d", ctx, prev, e.Seq)
		}
		prev = e.Seq
		if int(e.Seq) > appended {
			t.Fatalf("%s: recovered seq %d beyond %d appends", ctx, e.Seq, appended)
		}
		i := int(e.Seq)
		if e.BuildID != fmt.Sprintf("crash-%04d", i) || e.ETagChurn != i*3 ||
			len(e.Invalidated) != 1 || e.Invalidated[0] != fmt.Sprintf("/p%d.html", i) {
			t.Fatalf("%s: seq %d recovered incomplete: %+v", ctx, e.Seq, e)
		}
	}
}

// TestLedgerCrashSweep simulates power loss at every mutating
// filesystem operation of a ledger workload that crosses rotation and
// pruning, then recovers from the on-disk state a reboot would find.
// Invariants: recovery always succeeds, every surviving entry is
// complete (content intact, sequence strictly ordered, nothing from
// the future), the newest segment is never corrupt, and the recovered
// ledger accepts further appends with monotonic numbering.
func TestLedgerCrashSweep(t *testing.T) {
	const appends = 10
	opts := func(fs fsx.FS, dir string) Options {
		return Options{FS: fs, Dir: dir, SegmentEntries: 3, KeepSegments: 2}
	}

	// Fault-free reference run bounds the sweep.
	refDir := filepath.Join(t.TempDir(), "led")
	ref := fsx.NewFaultFS(fsx.OS)
	l, err := Open(opts(ref, refDir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= appends; i++ {
		if _, err := l.Append(crashEntry(i)); err != nil {
			t.Fatalf("reference append %d: %v", i, err)
		}
	}
	total := ref.Ops()
	if total < appends { // at least one op per append
		t.Fatalf("suspicious op count %d", total)
	}

	for crash := 0; crash <= total; crash++ {
		dir := filepath.Join(t.TempDir(), "led")
		ff := fsx.NewFaultFS(fsx.OS)
		ff.CrashAt(crash)
		cl, err := Open(opts(ff, dir))
		if err != nil {
			t.Fatalf("crash@%d: open: %v", crash, err)
		}
		for i := 1; i <= appends; i++ {
			// Crash-dropped writes report success; persistence errors
			// cannot happen in crash mode.
			if _, err := cl.Append(crashEntry(i)); err != nil {
				t.Fatalf("crash@%d: append %d: %v", crash, i, err)
			}
		}

		// Reboot: reopen from what actually hit the disk.
		r, err := Open(opts(fsx.OS, dir))
		if err != nil {
			t.Fatalf("crash@%d: recovery: %v\njournal:\n%v", crash, err, ff.Journal())
		}
		verifyRecovered(t, r, appends, fmt.Sprintf("crash@%d", crash))

		// The recovered ledger must keep working: numbering resumes
		// strictly past everything recovered.
		before := uint64(0)
		if last, ok := r.Last(); ok {
			before = last.Seq
		}
		next := int(before) + 1
		e, err := r.Append(crashEntry(next))
		if err != nil {
			t.Fatalf("crash@%d: post-recovery append: %v", crash, err)
		}
		if e.Seq != before+1 {
			t.Fatalf("crash@%d: post-recovery seq %d after %d", crash, e.Seq, before)
		}
		verifyRecovered(t, r, next, fmt.Sprintf("crash@%d post-append", crash))
	}
}

// TestLedgerPersistErrorKeepsEntryInMemory: injected write failures
// surface to the caller but never lose the entry — it stays
// queryable, and the next successful append re-persists the whole
// segment including it.
func TestLedgerFaultedWriteKeepsEntry(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "led")
	ff := fsx.NewFaultFS(fsx.OS)
	l, err := Open(Options{FS: ff, Dir: dir, SegmentEntries: 8, KeepSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(crashEntry(1)); err != nil {
		t.Fatal(err)
	}
	// Fail the next atomic write's WriteFile op.
	ff.FailAt(ff.Ops(), fmt.Errorf("disk full"))
	if _, err := l.Append(crashEntry(2)); err == nil {
		t.Fatal("faulted append must report the persistence error")
	}
	if l.Len() != 2 {
		t.Fatalf("entry lost on persist error: len %d", l.Len())
	}
	if _, err := l.Append(crashEntry(3)); err != nil {
		t.Fatalf("retry append: %v", err)
	}
	// Everything — including the entry whose write failed — is on disk.
	r, err := Open(Options{FS: fsx.OS, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("recovered %d entries, want 3", r.Len())
	}
}
