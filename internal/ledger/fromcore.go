package ledger

import (
	"strings"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/mediator"
)

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1000 }

// DeltaSizeOf summarizes a graph delta; nil or empty deltas map to
// nil (omitted from the JSON).
func DeltaSizeOf(d *graph.Delta) *DeltaSize {
	if d == nil || d.Empty() {
		return nil
	}
	return &DeltaSize{
		Added:       len(d.AddedObjects),
		Removed:     len(d.RemovedObjects),
		Changed:     len(d.ChangedObjects),
		Labels:      len(d.TouchedLabels),
		Collections: len(d.TouchedCollections),
	}
}

// SourceRecords lifts per-source fetch outcomes from a refresh
// report.
func SourceRecords(rep *mediator.RefreshReport) []SourceRecord {
	if rep == nil || len(rep.Sources) == 0 {
		return nil
	}
	out := make([]SourceRecord, 0, len(rep.Sources))
	for _, s := range rep.Sources {
		r := SourceRecord{
			Name:     s.Name,
			State:    s.State.String(),
			Attempts: s.Attempts,
			Delta:    DeltaSizeOf(s.Delta),
		}
		if s.Err != nil {
			r.Err = s.Err.Error()
		}
		if !s.StaleSince.IsZero() && !rep.At.IsZero() && rep.At.After(s.StaleSince) {
			r.StaleSeconds = rep.At.Sub(s.StaleSince).Seconds()
		}
		out = append(out, r)
	}
	return out
}

// FromResult lifts one build/rebuild result into a ledger entry. The
// freshness stamp is the caller's job (StampFreshness) — only the
// caller knows when the new result actually became servable.
func FromResult(res *core.Result, trigger string) Entry {
	e := Entry{
		BuildID:    res.Trace.ID,
		Time:       res.BuiltAt,
		Trigger:    trigger,
		Mode:       "full",
		TotalMs:    ms(res.Stats.TotalTime),
		TotalAlloc: res.Stats.TotalAlloc,
	}
	if root := res.Trace.Root(); root != nil {
		// Root span names are "build <site>" / "rebuild <site>".
		if _, site, ok := strings.Cut(root.Name, " "); ok {
			e.Site = site
		}
	}
	e.Pages = PageRecord{
		Total:    res.Stats.Pages,
		Rendered: res.Stats.Pages - res.Stats.PagesReused,
		Reused:   res.Stats.PagesReused,
		Pruned:   res.Stats.PagesPruned,
	}
	e.Sources = SourceRecords(res.Refresh)
	if res.Refresh != nil {
		e.Data = DeltaSizeOf(res.Refresh.Warehouse)
	}
	if info := res.Incremental; info != nil {
		if info.Mode != "" {
			e.Mode = info.Mode
		}
		if e.Data == nil {
			e.Data = DeltaSizeOf(info.Data)
		}
		if m := info.Eval; m != nil {
			e.Eval = &EvalRecord{
				Ops:                m.Ops,
				RowsRetained:       m.RowsRetained,
				RowsRechecked:      m.RowsRechecked,
				RowsAdded:          m.RowsAdded,
				RowsRemoved:        m.RowsRemoved,
				BlocksDifferential: m.BlocksDifferential,
				BlocksFallback:     m.BlocksFallback,
				BlocksRebound:      m.BlocksRebound,
				ListsRepaired:      m.ListsRepaired,
				Renumbered:         m.Renumbered,
			}
		}
		e.ETagChurn = len(info.Invalidated)
		e.Invalidated = info.Invalidated
	}
	stages := []StageRecord{
		{Name: "mediate", WallMs: ms(res.Stats.MediationTime), AllocBytes: res.Stats.MediationAlloc},
		{Name: "query", WallMs: ms(res.Stats.QueryTime), AllocBytes: res.Stats.QueryAlloc},
		{Name: "verify", WallMs: ms(res.Stats.VerifyTime), AllocBytes: res.Stats.VerifyAlloc},
		{Name: "generate", WallMs: ms(res.Stats.GenerateTime), AllocBytes: res.Stats.GenerateAlloc},
	}
	for _, s := range stages {
		if s.WallMs > 0 || s.AllocBytes > 0 {
			e.Stages = append(e.Stages, s)
		}
	}
	return e
}
