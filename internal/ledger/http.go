package ledger

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// View is the /debug/ledger response body: matching entries
// newest-first plus the watchdog state.
type View struct {
	Entries  []Entry           `json:"entries"`
	Watchdog *WatchdogSnapshot `json:"watchdog,omitempty"`
}

// defaultViewLimit caps /debug/ledger responses unless ?limit= says
// otherwise.
const defaultViewLimit = 20

// Handler serves the ledger as JSON, filterable by query parameters:
// ?source=<name>, ?page=<path>, ?build=<build_id>, ?trigger=<t>,
// ?limit=<n> (default 20, 0 = everything retained in memory). wd may
// be nil.
func (l *Ledger) Handler(wd *Watchdog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := Filter{
			Source:  q.Get("source"),
			Page:    q.Get("page"),
			BuildID: q.Get("build"),
			Trigger: q.Get("trigger"),
			Limit:   defaultViewLimit,
		}
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		view := View{Entries: l.Entries(f)}
		if view.Entries == nil {
			view.Entries = []Entry{}
		}
		if wd != nil {
			snap := wd.Snapshot()
			view.Watchdog = &snap
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(view)
	})
}
