// Package ledger is the build-plane flight recorder: a bounded,
// crash-safe structured history of every refresh/rebuild cycle the
// builder runs. Each entry carries the cycle's build ID and the
// numbers every other subsystem already computes but used to throw
// away — per-source fetch outcomes (mediator.RefreshReport), delta
// sizes (graph.Diff), differential-maintenance stats
// (struql.MatStats), page churn (core.RebuildInfo), publish
// generation, per-stage wall/alloc figures — plus the end-to-end
// freshness stamp: when a source change was observed and when the
// affected pages' new ETags became servable at the edge.
//
// Persistence is JSONL segments under one directory, written through
// an injectable fsx.FS. Every append rewrites the active segment with
// fsx.WriteFileAtomic (temp file + rename), so a crash at any write
// boundary leaves either the previous complete segment or the new
// one — never a torn line. Segments rotate at SegmentEntries and old
// segments are pruned beyond KeepSegments, bounding disk use; a
// bounded in-memory ring (MemoryEntries) serves queries without
// touching disk. Recovery scans segments oldest-first, ignores
// in-flight *.tmp debris, and drops any line that does not parse, so
// a ledger damaged by external means degrades to fewer entries, not
// an error.
package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
	"time"

	"strudel/internal/fsx"
	"strudel/internal/telemetry"
)

// SourceRecord is one source's outcome in a refresh cycle, lifted
// from mediator.SourceStatus.
type SourceRecord struct {
	Name         string     `json:"name"`
	State        string     `json:"state"`
	Attempts     int        `json:"attempts,omitempty"`
	Err          string     `json:"err,omitempty"`
	StaleSeconds float64    `json:"stale_seconds,omitempty"`
	Delta        *DeltaSize `json:"delta,omitempty"`
}

// DeltaSize summarizes a graph.Delta by cardinality only — the
// object lists themselves stay out of the ledger.
type DeltaSize struct {
	Added       int `json:"added,omitempty"`
	Removed     int `json:"removed,omitempty"`
	Changed     int `json:"changed,omitempty"`
	Labels      int `json:"labels,omitempty"`
	Collections int `json:"collections,omitempty"`
}

// EvalRecord is the differential-evaluation block maintenance tally
// (struql.MatStats) for the cycle.
type EvalRecord struct {
	Ops                int  `json:"ops,omitempty"`
	RowsRetained       int  `json:"rows_retained,omitempty"`
	RowsRechecked      int  `json:"rows_rechecked,omitempty"`
	RowsAdded          int  `json:"rows_added,omitempty"`
	RowsRemoved        int  `json:"rows_removed,omitempty"`
	BlocksDifferential int  `json:"blocks_differential,omitempty"`
	BlocksFallback     int  `json:"blocks_fallback,omitempty"`
	BlocksRebound      int  `json:"blocks_rebound,omitempty"`
	ListsRepaired      int  `json:"lists_repaired,omitempty"`
	Renumbered         bool `json:"renumbered,omitempty"`
}

// PageRecord is the page-churn accounting for the cycle.
type PageRecord struct {
	Total    int `json:"total"`
	Rendered int `json:"rendered"`
	Reused   int `json:"reused"`
	Pruned   int `json:"pruned,omitempty"`
}

// StageRecord is one build phase's wall time and heap-allocation
// delta. Alloc figures come from the process-wide allocation counter,
// so concurrent activity pollutes them — profiles, not accounting.
type StageRecord struct {
	Name       string  `json:"name"`
	WallMs     float64 `json:"wall_ms"`
	AllocBytes uint64  `json:"alloc_bytes,omitempty"`
}

// Freshness is the end-to-end propagation stamp for a cycle that
// changed the site: ObservedAt is when the source change was observed
// (the refresh start), ServableAt is when the affected pages' new
// ETags became servable at the edge (after the result swap).
type Freshness struct {
	ObservedAt         time.Time `json:"observed_at"`
	ServableAt         time.Time `json:"servable_at"`
	PropagationSeconds float64   `json:"propagation_seconds"`
}

// maxInvalidated caps the invalidated-path list persisted per entry;
// the full churn count survives in ETagChurn regardless.
const maxInvalidated = 64

// Entry is one refresh/rebuild cycle in the ledger. Seq is assigned
// by Append and is strictly increasing for the lifetime of the ledger
// directory (recovery resumes past the highest recovered Seq).
type Entry struct {
	Seq     uint64    `json:"seq"`
	BuildID string    `json:"build_id"`
	Site    string    `json:"site,omitempty"`
	Time    time.Time `json:"time"`
	// Trigger is what started the cycle: "manual" (strudel build),
	// "publish" (strudel build -publish), "initial" (serve startup
	// build) or "interval" (the refresh loop).
	Trigger string `json:"trigger"`
	// Mode is the rebuild mode: "full", "selective", "differential",
	// "noop", "dynamic" — or "failed" when the cycle errored before
	// producing a result.
	Mode string `json:"mode"`
	Err  string `json:"err,omitempty"`

	Sources []SourceRecord `json:"sources,omitempty"`
	Data    *DeltaSize     `json:"data,omitempty"`
	Eval    *EvalRecord    `json:"eval,omitempty"`
	Pages   PageRecord     `json:"pages"`

	// ETagChurn is how many published page ETags changed this cycle;
	// Invalidated lists their paths, capped at maxInvalidated.
	ETagChurn            int      `json:"etag_churn"`
	Invalidated          []string `json:"invalidated,omitempty"`
	InvalidatedTruncated bool     `json:"invalidated_truncated,omitempty"`

	// Generation is the publish generation when the cycle published
	// (-publish / serve -publish-dir); 0 otherwise.
	Generation int `json:"generation,omitempty"`

	Stages     []StageRecord `json:"stages,omitempty"`
	TotalMs    float64       `json:"total_ms"`
	TotalAlloc uint64        `json:"total_alloc_bytes,omitempty"`

	Freshness *Freshness `json:"freshness,omitempty"`
}

// StampFreshness records the observed→servable propagation interval
// on the entry. Zero stamps are ignored; a servable time before the
// observation clamps to zero propagation rather than going negative.
func (e *Entry) StampFreshness(observed, servable time.Time) {
	if observed.IsZero() || servable.IsZero() {
		return
	}
	prop := servable.Sub(observed).Seconds()
	if prop < 0 {
		prop = 0
	}
	e.Freshness = &Freshness{ObservedAt: observed, ServableAt: servable, PropagationSeconds: prop}
}

// Summary renders the entry as one human-readable line (the
// `strudel history` text format).
func (e Entry) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-14s %s/%s", e.Time.Format("2006-01-02T15:04:05Z07:00"), e.BuildID, e.Trigger, e.Mode)
	if e.Err != "" {
		fmt.Fprintf(&b, "  error: %s", e.Err)
		return b.String()
	}
	fmt.Fprintf(&b, "  %d pages (%d rendered, %d reused)", e.Pages.Total, e.Pages.Rendered, e.Pages.Reused)
	if e.ETagChurn > 0 {
		fmt.Fprintf(&b, ", %d etags churned", e.ETagChurn)
	}
	if e.Generation > 0 {
		fmt.Fprintf(&b, ", gen %d", e.Generation)
	}
	if n := len(e.Sources); n > 0 {
		fresh := 0
		for _, s := range e.Sources {
			if s.State == "fresh" {
				fresh++
			}
		}
		fmt.Fprintf(&b, ", sources %d/%d fresh", fresh, n)
	}
	fmt.Fprintf(&b, ", %.1fms", e.TotalMs)
	if e.Freshness != nil {
		fmt.Fprintf(&b, ", propagated in %.0fms", e.Freshness.PropagationSeconds*1000)
	}
	return b.String()
}

// Options configures Open. The zero value is a memory-only ledger
// with default bounds.
type Options struct {
	// FS is the filesystem for persistence; nil means fsx.OS.
	FS fsx.FS
	// Dir is the segment directory; "" disables persistence (the
	// ledger is memory-only).
	Dir string
	// SegmentEntries is the rotation threshold (default 64): the
	// active segment rotates once it holds this many entries.
	SegmentEntries int
	// KeepSegments bounds on-disk history (default 8): rotation
	// prunes segments beyond the newest KeepSegments.
	KeepSegments int
	// MemoryEntries bounds the in-memory ring serving queries
	// (default SegmentEntries * KeepSegments).
	MemoryEntries int
}

func (o *Options) defaults() {
	if o.FS == nil {
		o.FS = fsx.OS
	}
	if o.SegmentEntries <= 0 {
		o.SegmentEntries = 64
	}
	if o.KeepSegments <= 0 {
		o.KeepSegments = 8
	}
	if o.MemoryEntries <= 0 {
		o.MemoryEntries = o.SegmentEntries * o.KeepSegments
	}
}

// FreshnessBuckets are the strudel_freshness_propagation_seconds
// histogram bounds: sub-10ms delta rebuilds through multi-minute
// degraded-source recoveries.
var FreshnessBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 300,
}

// Ledger is the crash-safe cycle history. All methods are safe for
// concurrent use; the refresh loop appends while /debug/ledger and
// `strudel history` read.
type Ledger struct {
	mu      sync.Mutex
	fs      fsx.FS
	dir     string
	segCap  int
	keep    int
	memCap  int
	seq     uint64
	segNum  int     // active segment number
	active  []Entry // entries in the active segment
	mem     []Entry // bounded query ring, oldest first
	dropped int     // unparseable lines dropped during recovery

	// instrumentation (nil until Instrument)
	reg         *telemetry.Registry
	mEntries    *telemetry.Counter
	mPersistErr *telemetry.Counter
	mLastSeq    *telemetry.Gauge
	mProp       *telemetry.Histogram
}

func segName(n int) string { return fmt.Sprintf("seg-%06d.jsonl", n) }

// Open opens (or creates) a ledger. With a Dir it recovers existing
// segments: *.tmp debris from an interrupted atomic write is ignored
// (never deleted — it may belong to a live writer), unparseable lines
// are dropped, and sequence numbering resumes past the highest
// recovered entry.
func Open(opts Options) (*Ledger, error) {
	opts.defaults()
	l := &Ledger{
		fs:     opts.FS,
		dir:    opts.Dir,
		segCap: opts.SegmentEntries,
		keep:   opts.KeepSegments,
		memCap: opts.MemoryEntries,
		segNum: 1,
	}
	if l.dir == "" {
		return l, nil
	}
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: mkdir %s: %w", l.dir, err)
	}
	segs, err := l.scanSegments()
	if err != nil {
		return nil, err
	}
	for i, n := range segs {
		entries := l.readSegment(n)
		for _, e := range entries {
			if e.Seq <= l.seq {
				continue // stale or duplicated line; keep the newest ordering
			}
			l.seq = e.Seq
			l.mem = append(l.mem, e)
		}
		if i == len(segs)-1 {
			l.segNum = n
			l.active = entries
		}
	}
	if len(segs) > 0 && len(l.active) >= l.segCap {
		l.segNum++
		l.active = nil
	}
	l.trimMem()
	return l, nil
}

// scanSegments lists segment numbers ascending. A missing directory
// is an empty ledger, not an error: a crash can take the MkdirAll
// with it.
func (l *Ledger) scanSegments() ([]int, error) {
	des, err := l.fs.ReadDir(l.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("ledger: scan %s: %w", l.dir, err)
	}
	var segs []int
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || fsx.IsTempName(name) {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &n); err == nil && segName(n) == name {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// readSegment parses one segment, dropping lines that do not
// unmarshal — recovery tolerates external damage.
func (l *Ledger) readSegment(n int) []Entry {
	data, err := fsx.ReadFile(l.fs, l.segPath(n))
	if err != nil {
		return nil
	}
	var entries []Entry
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			l.dropped++
			continue
		}
		entries = append(entries, e)
	}
	return entries
}

func (l *Ledger) segPath(n int) string { return l.dir + "/" + segName(n) }

// Instrument registers the ledger's metric families on reg and makes
// every subsequent Append update them: strudel_ledger_entries_total,
// strudel_ledger_last_seq, strudel_ledger_persist_errors_total, the
// strudel_freshness_propagation_seconds histogram, and the
// strudel_ledger_build_info info-gauge naming the live build.
func (l *Ledger) Instrument(reg *telemetry.Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = reg
	l.mEntries = reg.Counter("strudel_ledger_entries_total",
		"Refresh/rebuild cycles appended to the build ledger.")
	l.mPersistErr = reg.Counter("strudel_ledger_persist_errors_total",
		"Ledger segment writes that failed; the entry stays queryable in memory.")
	l.mLastSeq = reg.Gauge("strudel_ledger_last_seq",
		"Sequence number of the newest ledger entry.")
	l.mLastSeq.Set(float64(l.seq))
	l.mProp = reg.Histogram("strudel_freshness_propagation_seconds",
		"End-to-end freshness: seconds from a source change being observed to the affected pages' new ETags being servable at the edge.",
		FreshnessBuckets)
}

// Append assigns the next sequence number, persists the active
// segment atomically (when a directory is configured), rotates and
// prunes as needed, and updates the instrumentation. The stamped
// entry is returned. A persistence error does not lose the entry —
// it remains queryable in memory and the next append retries the
// whole segment — but is reported so callers can log it.
func (l *Ledger) Append(e Entry) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(e.Invalidated) > maxInvalidated {
		e.Invalidated = append([]string(nil), e.Invalidated[:maxInvalidated]...)
		e.InvalidatedTruncated = true
	}
	l.active = append(l.active, e)
	l.mem = append(l.mem, e)
	l.trimMem()

	var persistErr error
	if l.dir != "" {
		persistErr = l.persistActiveLocked()
	}
	if len(l.active) >= l.segCap {
		l.segNum++
		l.active = nil
		if l.dir != "" {
			l.pruneLocked()
		}
	}

	if l.mEntries != nil {
		l.mEntries.Inc()
		l.mLastSeq.Set(float64(l.seq))
		if persistErr != nil {
			l.mPersistErr.Inc()
		}
		if e.Freshness != nil {
			l.mProp.Observe(e.Freshness.PropagationSeconds)
		}
		l.reg.Info("strudel_ledger_build_info",
			"Identity of the newest build in the ledger (value is always 1).",
			"build_id", e.BuildID, "mode", e.Mode, "trigger", e.Trigger)
	}
	return e, persistErr
}

// persistActiveLocked rewrites the active segment in one atomic
// write: marshal every entry as a JSONL line, write to a temp file,
// rename over the segment. A crash at any boundary leaves the
// previous complete segment.
func (l *Ledger) persistActiveLocked() error {
	var buf strings.Builder
	for _, e := range l.active {
		line, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("ledger: marshal seq %d: %w", e.Seq, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := fsx.WriteFileAtomic(l.fs, l.segPath(l.segNum), []byte(buf.String()), 0o644); err != nil {
		return fmt.Errorf("ledger: persist %s: %w", segName(l.segNum), err)
	}
	return nil
}

// pruneLocked removes old segments at rotation so the directory
// holds at most KeepSegments files once the new active segment is
// written (keep-1 completed ones now). Prune errors are ignored: a
// leftover old segment costs disk, not correctness, and the next
// rotation retries.
func (l *Ledger) pruneLocked() {
	segs, err := l.scanSegments()
	if err != nil {
		return
	}
	for len(segs) > l.keep-1 {
		l.fs.Remove(l.segPath(segs[0]))
		segs = segs[1:]
	}
}

func (l *Ledger) trimMem() {
	if over := len(l.mem) - l.memCap; over > 0 {
		l.mem = append([]Entry(nil), l.mem[over:]...)
	}
}

// Len is the number of entries queryable in memory.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.mem)
}

// Dropped is the count of unparseable lines discarded at Open.
func (l *Ledger) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Last returns the newest entry, if any.
func (l *Ledger) Last() (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.mem) == 0 {
		return Entry{}, false
	}
	return l.mem[len(l.mem)-1], true
}

// Filter narrows Entries. Zero fields match everything.
type Filter struct {
	// Source matches entries that record a source of this name.
	Source string
	// Page matches entries whose invalidated-path list contains this
	// page path (capped at maxInvalidated paths per entry).
	Page string
	// BuildID matches exactly.
	BuildID string
	// Trigger matches exactly.
	Trigger string
	// Limit caps the result count; 0 means everything retained.
	Limit int
}

func (f Filter) match(e Entry) bool {
	if f.BuildID != "" && e.BuildID != f.BuildID {
		return false
	}
	if f.Trigger != "" && e.Trigger != f.Trigger {
		return false
	}
	if f.Source != "" {
		found := false
		for _, s := range e.Sources {
			if s.Name == f.Source {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if f.Page != "" {
		found := false
		for _, p := range e.Invalidated {
			if p == f.Page {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Entries returns matching entries newest-first.
func (l *Ledger) Entries(f Filter) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for i := len(l.mem) - 1; i >= 0; i-- {
		if !f.match(l.mem[i]) {
			continue
		}
		out = append(out, l.mem[i])
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}
