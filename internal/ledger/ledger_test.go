package ledger

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"strudel/internal/telemetry"
)

func testEntry(i int) Entry {
	return Entry{
		BuildID:     "build-" + padN(i),
		Site:        "unit",
		Trigger:     "interval",
		Mode:        "selective",
		Pages:       PageRecord{Total: 3, Rendered: 1, Reused: 2},
		ETagChurn:   i,
		Invalidated: []string{"/index.html"},
		TotalMs:     float64(i),
	}
}

func padN(i int) string {
	s := "0000" + itoa(i)
	return s[len(s)-4:]
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestLedgerAppendRotatePersistRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentEntries: 4, KeepSegments: 2}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 11
	for i := 1; i <= n; i++ {
		e, err := l.Append(testEntry(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("append %d: seq %d", i, e.Seq)
		}
		if e.Time.IsZero() {
			t.Fatalf("append %d: zero time", i)
		}
	}
	// 11 entries at 4/segment: segments 1..3, keep 2 ⇒ segment 1
	// pruned when segment 2 filled.
	names, _ := os.ReadDir(dir)
	var segs []string
	for _, de := range names {
		segs = append(segs, de.Name())
	}
	if len(segs) != 2 || segs[0] != "seg-000002.jsonl" || segs[1] != "seg-000003.jsonl" {
		t.Fatalf("segments on disk: %v", segs)
	}

	// Reopen: recovery resumes numbering past the retained history.
	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Len(); got != 7 { // seqs 5..11 survive the prune
		t.Fatalf("recovered %d entries, want 7", got)
	}
	last, ok := r.Last()
	if !ok || last.Seq != n || last.BuildID != "build-"+padN(n) {
		t.Fatalf("recovered last = %+v", last)
	}
	e, err := r.Append(testEntry(n + 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != n+1 {
		t.Fatalf("post-recovery seq = %d, want %d", e.Seq, n+1)
	}
}

func TestLedgerRecoveryDropsDamagedLinesAndIgnoresTmp(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentEntries: 8, KeepSegments: 2}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Externally damage the segment: append garbage, and drop tmp
	// debris as an interrupted atomic write would.
	seg := filepath.Join(dir, "seg-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(seg, append(data, []byte("{torn line\n")...), 0o644)
	os.WriteFile(seg+".tmp", []byte("in-flight"), 0o644)
	os.WriteFile(filepath.Join(dir, "seg-000009.jsonl.tmp"), []byte("{"), 0o644)

	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("recovered %d entries, want 3", r.Len())
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped %d lines, want 1", r.Dropped())
	}
	// The tmp debris must survive recovery untouched (it may belong
	// to a live writer).
	if _, err := os.Stat(seg + ".tmp"); err != nil {
		t.Fatalf("tmp debris removed: %v", err)
	}
}

func TestLedgerMemoryOnlyAndFilters(t *testing.T) {
	l, err := Open(Options{MemoryEntries: 100})
	if err != nil {
		t.Fatal(err)
	}
	a := testEntry(1)
	a.Sources = []SourceRecord{{Name: "refs.bib", State: "fresh"}}
	a.Invalidated = []string{"/index.html", "/p1.html"}
	b := testEntry(2)
	b.Trigger = "manual"
	b.Sources = []SourceRecord{{Name: "other.bib", State: "degraded"}}
	b.Invalidated = nil
	for _, e := range []Entry{a, b} {
		if _, err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Entries(Filter{}); len(got) != 2 || got[0].Seq != 2 {
		t.Fatalf("unfiltered = %+v", got)
	}
	if got := l.Entries(Filter{Source: "refs.bib"}); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("source filter = %+v", got)
	}
	if got := l.Entries(Filter{Page: "/p1.html"}); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("page filter = %+v", got)
	}
	if got := l.Entries(Filter{Trigger: "manual"}); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("trigger filter = %+v", got)
	}
	if got := l.Entries(Filter{BuildID: "build-0002"}); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("build filter = %+v", got)
	}
	if got := l.Entries(Filter{Limit: 1}); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("limit = %+v", got)
	}
}

func TestLedgerInvalidatedTruncation(t *testing.T) {
	l, _ := Open(Options{})
	e := testEntry(1)
	e.Invalidated = nil
	for i := 0; i < maxInvalidated+10; i++ {
		e.Invalidated = append(e.Invalidated, "/p"+itoa(i)+".html")
	}
	e.ETagChurn = len(e.Invalidated)
	got, err := l.Append(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Invalidated) != maxInvalidated || !got.InvalidatedTruncated {
		t.Fatalf("truncation: %d paths, flag %v", len(got.Invalidated), got.InvalidatedTruncated)
	}
	if got.ETagChurn != maxInvalidated+10 {
		t.Fatalf("churn count must survive truncation, got %d", got.ETagChurn)
	}
}

func TestLedgerInstrumentAndFreshnessHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, _ := Open(Options{})
	l.Instrument(reg)
	e := testEntry(1)
	obs := time.Now().Add(-50 * time.Millisecond)
	e.StampFreshness(obs, time.Now())
	if _, err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	noop := testEntry(2)
	noop.Mode = "noop" // no freshness: nothing changed
	l.Append(noop)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	body := sb.String()
	for _, want := range []string{
		"strudel_ledger_entries_total 2",
		"strudel_ledger_last_seq 2",
		"strudel_freshness_propagation_seconds_count 1",
		`strudel_ledger_build_info{build_id="build-0002",mode="noop",trigger="interval"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// Info has replace semantics: exactly one build_info series.
	if n := strings.Count(body, "strudel_ledger_build_info{"); n != 1 {
		t.Errorf("build_info series = %d, want 1", n)
	}
}

func TestStampFreshnessClampsAndIgnoresZero(t *testing.T) {
	var e Entry
	e.StampFreshness(time.Time{}, time.Now())
	if e.Freshness != nil {
		t.Fatal("zero observed must not stamp")
	}
	now := time.Now()
	e.StampFreshness(now.Add(time.Second), now)
	if e.Freshness == nil || e.Freshness.PropagationSeconds != 0 {
		t.Fatalf("negative propagation must clamp to 0: %+v", e.Freshness)
	}
}

func TestLedgerHandlerFilters(t *testing.T) {
	l, _ := Open(Options{})
	a := testEntry(1)
	a.Sources = []SourceRecord{{Name: "refs.bib", State: "fresh"}}
	l.Append(a)
	l.Append(testEntry(2))
	wd := NewWatchdog(WatchdogConfig{})
	wd.Observe(a)
	h := l.Handler(wd)

	get := func(url string) View {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", url, rec.Code)
		}
		var v View
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return v
	}
	if v := get("/debug/ledger"); len(v.Entries) != 2 || v.Watchdog == nil || v.Watchdog.Samples != 1 {
		t.Fatalf("unfiltered view: %+v", v)
	}
	if v := get("/debug/ledger?source=refs.bib"); len(v.Entries) != 1 || v.Entries[0].Seq != 1 {
		t.Fatalf("source view: %+v", v)
	}
	if v := get("/debug/ledger?page=/index.html&limit=1"); len(v.Entries) != 1 {
		t.Fatalf("page view: %+v", v)
	}
	if v := get("/debug/ledger?build=build-0002"); len(v.Entries) != 1 || v.Entries[0].Seq != 2 {
		t.Fatalf("build view: %+v", v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/ledger?limit=x", nil))
	if rec.Code != 400 {
		t.Fatalf("bad limit = %d, want 400", rec.Code)
	}
}

func TestWatchdogSlowRebuildEWMA(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{MinSamples: 3, SlowFactor: 3})
	reg := telemetry.NewRegistry()
	wd.Instrument(reg)
	mk := func(totalMs float64) Entry {
		e := testEntry(1)
		e.TotalMs = totalMs
		return e
	}
	for i := 0; i < 4; i++ {
		if alerts := wd.Observe(mk(10)); len(alerts) != 0 {
			t.Fatalf("steady state alerted: %+v", alerts)
		}
	}
	alerts := wd.Observe(mk(100))
	if len(alerts) != 1 || alerts[0].Kind != AlertSlowRebuild {
		t.Fatalf("regression alerts = %+v", alerts)
	}
	snap := wd.Snapshot()
	if snap.AlertsTotal != 1 || len(snap.Active) != 1 || snap.Active[0] != AlertSlowRebuild {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Recovery clears the active gauge.
	wd.Observe(mk(snap.EWMAMs))
	if s := wd.Snapshot(); len(s.Active) != 0 {
		t.Fatalf("active after recovery = %+v", s.Active)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	body := sb.String()
	if !strings.Contains(body, `strudel_watchdog_alerts_total{kind="slow_rebuild"} 1`) {
		t.Errorf("counter missing in:\n%s", body)
	}
	if !strings.Contains(body, `strudel_watchdog_alert_active{kind="slow_rebuild"} 0`) {
		t.Errorf("active gauge not cleared in:\n%s", body)
	}
}

func TestWatchdogDegradedSourceAndPropagation(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{DegradedAfter: time.Minute, PropagationTarget: 100 * time.Millisecond})
	e := testEntry(1)
	e.Sources = []SourceRecord{
		{Name: "refs.bib", State: "degraded", StaleSeconds: 120, Err: "timeout"},
		{Name: "ok.bib", State: "fresh"},
	}
	e.Freshness = &Freshness{PropagationSeconds: 0.5}
	alerts := wd.Observe(e)
	kinds := map[string]bool{}
	for _, a := range alerts {
		kinds[a.Kind] = true
	}
	if len(alerts) != 2 || !kinds[AlertSourceDegraded] || !kinds[AlertPropagation] {
		t.Fatalf("alerts = %+v", alerts)
	}
	// Failed cycles must not season the EWMA.
	fail := testEntry(2)
	fail.Err = "boom"
	fail.TotalMs = 10_000
	wd.Observe(fail)
	if snap := wd.Snapshot(); snap.Samples != 1 {
		t.Fatalf("failed cycle seasoned EWMA: %+v", snap)
	}
}

func TestEntrySummary(t *testing.T) {
	e := testEntry(3)
	e.Generation = 7
	e.Sources = []SourceRecord{{Name: "refs.bib", State: "fresh"}}
	e.StampFreshness(time.Now().Add(-10*time.Millisecond), time.Now())
	s := e.Summary()
	for _, want := range []string{"build-0003", "interval/selective", "3 pages", "gen 7", "sources 1/1 fresh", "propagated in"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	fail := Entry{BuildID: "b", Err: "boom"}
	if s := fail.Summary(); !strings.Contains(s, "error: boom") {
		t.Errorf("failure summary = %q", s)
	}
}
