package ledger

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"strudel/internal/telemetry"
)

// Alert kinds raised by the watchdog.
const (
	AlertSlowRebuild    = "slow_rebuild"    // rebuild duration regressed vs. the EWMA
	AlertSourceDegraded = "source_degraded" // a source stayed degraded past the threshold
	AlertPropagation    = "propagation"     // freshness propagation blew its target
)

var alertKinds = []string{AlertSlowRebuild, AlertSourceDegraded, AlertPropagation}

// WatchdogConfig tunes the rebuild watchdog. The zero value gets the
// defaults documented per field.
type WatchdogConfig struct {
	// Alpha is the EWMA smoothing factor over rebuild durations
	// (default 0.3 — a handful of cycles of memory).
	Alpha float64
	// SlowFactor raises slow_rebuild when a cycle takes more than
	// SlowFactor × EWMA (default 3).
	SlowFactor float64
	// MinSamples is how many cycles must season the EWMA before
	// slow_rebuild can fire (default 5).
	MinSamples int
	// DegradedAfter raises source_degraded once a source has been
	// serving stale data longer than this (default 10m).
	DegradedAfter time.Duration
	// PropagationTarget raises propagation when an entry's freshness
	// propagation exceeds it; 0 disables the check.
	PropagationTarget time.Duration
	// Logger receives a warning per raised alert; nil disables
	// logging (gauges and counters still update).
	Logger *slog.Logger
}

func (c *WatchdogConfig) defaults() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 10 * time.Minute
	}
}

// Alert is one raised condition, attributed to the build that
// triggered it.
type Alert struct {
	Kind    string `json:"kind"`
	BuildID string `json:"build_id"`
	Detail  string `json:"detail"`
}

// WatchdogSnapshot is the watchdog's queryable state, embedded in the
// /debug/ledger view.
type WatchdogSnapshot struct {
	EWMAMs      float64 `json:"ewma_ms"`
	Samples     int     `json:"samples"`
	AlertsTotal uint64  `json:"alerts_total"`
	// Active lists the alert kinds raised by the most recent cycle.
	Active []string `json:"active,omitempty"`
	// Recent keeps the last few alerts for context.
	Recent []Alert `json:"recent,omitempty"`
}

const watchdogRecent = 8

// Watchdog tracks an EWMA of rebuild duration over ledger entries and
// raises alerts — registry gauges plus log warnings — when a cycle
// regresses, a source stays degraded, or propagation misses target.
type Watchdog struct {
	mu      sync.Mutex
	cfg     WatchdogConfig
	ewmaMs  float64
	samples int
	total   uint64
	active  map[string]bool
	recent  []Alert

	mTotal  map[string]*telemetry.Counter
	mActive map[string]*telemetry.Gauge
}

// NewWatchdog builds a watchdog with the given config (zero value ok).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	cfg.defaults()
	return &Watchdog{cfg: cfg, active: map[string]bool{}}
}

// Instrument registers strudel_watchdog_alerts_total{kind} and
// strudel_watchdog_alert_active{kind} (1 while the most recent cycle
// raised the kind, else 0) on reg.
func (w *Watchdog) Instrument(reg *telemetry.Registry) {
	if w == nil || reg == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mTotal = map[string]*telemetry.Counter{}
	w.mActive = map[string]*telemetry.Gauge{}
	for _, kind := range alertKinds {
		w.mTotal[kind] = reg.Counter("strudel_watchdog_alerts_total",
			"Watchdog alerts raised, by kind.", "kind", kind)
		w.mActive[kind] = reg.Gauge("strudel_watchdog_alert_active",
			"1 while the most recent rebuild cycle raised this alert kind.", "kind", kind)
	}
}

// Observe folds one ledger entry into the watchdog and returns the
// alerts it raised (possibly none). Failed cycles ("failed"/"noop"
// durations) do not season the EWMA.
func (w *Watchdog) Observe(e Entry) []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	var alerts []Alert

	if e.Err == "" && e.Mode != "noop" {
		if w.samples >= w.cfg.MinSamples && e.TotalMs > w.cfg.SlowFactor*w.ewmaMs && w.ewmaMs > 0 {
			alerts = append(alerts, Alert{
				Kind:    AlertSlowRebuild,
				BuildID: e.BuildID,
				Detail: fmt.Sprintf("rebuild took %.1fms, %.1f× the %.1fms EWMA",
					e.TotalMs, e.TotalMs/w.ewmaMs, w.ewmaMs),
			})
		}
		if w.samples == 0 {
			w.ewmaMs = e.TotalMs
		} else {
			w.ewmaMs = w.cfg.Alpha*e.TotalMs + (1-w.cfg.Alpha)*w.ewmaMs
		}
		w.samples++
	}

	for _, s := range e.Sources {
		if s.State == "fresh" {
			continue
		}
		if stale := time.Duration(s.StaleSeconds * float64(time.Second)); stale > w.cfg.DegradedAfter {
			alerts = append(alerts, Alert{
				Kind:    AlertSourceDegraded,
				BuildID: e.BuildID,
				Detail: fmt.Sprintf("source %q %s for %s (threshold %s): %s",
					s.Name, s.State, stale.Round(time.Second), w.cfg.DegradedAfter, s.Err),
			})
		}
	}

	if w.cfg.PropagationTarget > 0 && e.Freshness != nil {
		if prop := time.Duration(e.Freshness.PropagationSeconds * float64(time.Second)); prop > w.cfg.PropagationTarget {
			alerts = append(alerts, Alert{
				Kind:    AlertPropagation,
				BuildID: e.BuildID,
				Detail: fmt.Sprintf("freshness propagation %s exceeded target %s",
					prop.Round(time.Millisecond), w.cfg.PropagationTarget),
			})
		}
	}

	raised := map[string]bool{}
	for _, a := range alerts {
		raised[a.Kind] = true
		w.total++
		w.recent = append(w.recent, a)
		if w.mTotal != nil {
			w.mTotal[a.Kind].Inc()
		}
		if w.cfg.Logger != nil {
			w.cfg.Logger.Warn("watchdog alert", "kind", a.Kind, "build_id", a.BuildID, "detail", a.Detail)
		}
	}
	if over := len(w.recent) - watchdogRecent; over > 0 {
		w.recent = append([]Alert(nil), w.recent[over:]...)
	}
	w.active = raised
	if w.mActive != nil {
		for _, kind := range alertKinds {
			v := 0.0
			if raised[kind] {
				v = 1
			}
			w.mActive[kind].Set(v)
		}
	}
	return alerts
}

// Snapshot returns the watchdog's current state.
func (w *Watchdog) Snapshot() WatchdogSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := WatchdogSnapshot{
		EWMAMs:      w.ewmaMs,
		Samples:     w.samples,
		AlertsTotal: w.total,
		Recent:      append([]Alert(nil), w.recent...),
	}
	for _, kind := range alertKinds {
		if w.active[kind] {
			snap.Active = append(snap.Active, kind)
		}
	}
	return snap
}
