package mediator

import (
	"testing"

	"strudel/internal/repository"
	"strudel/internal/wrapper"
)

// TestRefreshReportsDeltas: the first refresh has no baseline (nil
// warehouse delta), an unchanged second refresh reports an empty one,
// and a content edit surfaces in both the source delta and the
// warehouse delta.
func TestRefreshReportsDeltas(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "warehouse")
	content := peopleCSV
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "people.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})

	_, r1, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Warehouse != nil {
		t.Fatalf("first refresh must have nil warehouse delta, got %s", r1.Warehouse.Summary())
	}
	if st, _ := r1.Source("people.csv"); st.Delta != nil {
		t.Fatalf("first wrap must have nil source delta, got %s", st.Delta.Summary())
	}

	_, r2, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Warehouse == nil || !r2.Warehouse.Empty() {
		t.Fatalf("unchanged refresh must report an empty warehouse delta, got %v", r2.Warehouse)
	}
	if st, _ := r2.Source("people.csv"); st.Delta == nil || !st.Delta.Empty() {
		t.Fatalf("unchanged source must report an empty delta, got %v", st.Delta)
	}

	content = peopleCSV + "fer,Mary Fer,att\n"
	_, r3, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if r3.Warehouse.Empty() {
		t.Fatal("content edit must produce a non-empty warehouse delta")
	}
	st, _ := r3.Source("people.csv")
	if st.Delta.Empty() {
		t.Fatal("content edit must produce a non-empty source delta")
	}
	if !st.Delta.HasLabel("name") && len(st.Delta.AddedObjects) == 0 {
		t.Errorf("source delta misses the new row: %s", st.Delta.Summary())
	}
}
