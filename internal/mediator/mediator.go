// Package mediator implements STRUDEL's mediation layer (paper
// Sec. 2.3): a uniform, integrated view of all underlying data,
// irrespective of where it is stored. Following the paper's prototype
// it takes the warehousing approach to data integration — sources are
// wrapped into graphs and the result of integration is stored in the
// repository — and the global-as-view (GAV) approach to schema
// mapping: the relationship between the mediated view and the sources
// is given by StruQL queries, one or more per source, whose outputs
// build the warehouse graph. Sources without mapping queries are
// merged verbatim (object names preserved), which suits sources
// already shaped like the mediated view.
package mediator

import (
	"fmt"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/struql"
	"strudel/internal/wrapper"
)

// SourceMode selects how a source reaches the warehouse.
type SourceMode int

const (
	// Merge copies the wrapped source graph into the warehouse
	// verbatim, preserving object identity and names.
	Merge SourceMode = iota
	// Mapped keeps the source graph out of the warehouse; only GAV
	// mapping queries over it contribute.
	Mapped
)

// Source is one external data source.
type Source struct {
	Name    string
	Wrapper wrapper.Wrapper
	Mode    SourceMode
	// Fetch returns the current source text; called on every Refresh
	// so changing source data is picked up (the paper: "the data in
	// the sources may change frequently").
	Fetch func() (string, error)
}

// Mediator integrates a set of sources into one warehouse graph.
type Mediator struct {
	repo      *repository.Repository
	warehouse string
	sources   []*Source
	mappings  []*struql.Query
	registry  *struql.Registry
	// Refreshes counts warehouse rebuilds, for diagnostics.
	Refreshes int
}

// New creates a mediator that materializes its integrated view in the
// named warehouse graph of the repository.
func New(repo *repository.Repository, warehouseName string) *Mediator {
	return &Mediator{
		repo:      repo,
		warehouse: warehouseName,
		registry:  struql.NewRegistry(),
	}
}

// Registry exposes the predicate registry used by mapping queries.
func (m *Mediator) Registry() *struql.Registry { return m.registry }

// AddSource registers a source with static content and a built-in
// wrapper kind.
func (m *Mediator) AddSource(name, kind, content string) error {
	w, ok := wrapper.ByName(kind)
	if !ok {
		return fmt.Errorf("mediator: unknown wrapper kind %q for source %q", kind, name)
	}
	m.sources = append(m.sources, &Source{
		Name:    name,
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	return nil
}

// AddSourceDynamic registers a source with a fetch function, a custom
// wrapper and a mode.
func (m *Mediator) AddSourceDynamic(s *Source) {
	m.sources = append(m.sources, s)
}

// AddMapping registers a GAV mapping query. The query's INPUT names a
// source; its constructions are applied to the warehouse graph.
func (m *Mediator) AddMapping(q *struql.Query) error {
	if q.Input == "" {
		return fmt.Errorf("mediator: mapping query must name its INPUT source")
	}
	m.mappings = append(m.mappings, q)
	return nil
}

// Refresh re-wraps every source and rebuilds the warehouse from
// scratch. Incremental view maintenance for semistructured data is an
// open problem the paper defers (Sec. 6); full rebuild matches its
// prototype. The warehouse graph object is replaced in the repository;
// callers must re-resolve it.
func (m *Mediator) Refresh() (*graph.Graph, error) {
	db := m.repo.Database()
	// Wrap sources into per-source graphs.
	srcGraphs := map[string]*graph.Graph{}
	for _, s := range m.sources {
		content, err := s.Fetch()
		if err != nil {
			return nil, fmt.Errorf("mediator: fetching source %q: %w", s.Name, err)
		}
		name := "src:" + s.Name
		db.Drop(name)
		g := db.NewGraph(name)
		if err := s.Wrapper.Wrap(g, s.Name, content); err != nil {
			return nil, fmt.Errorf("mediator: wrapping source %q: %w", s.Name, err)
		}
		m.repo.Invalidate(name)
		srcGraphs[s.Name] = g
	}
	// Rebuild the warehouse.
	db.Drop(m.warehouse)
	wh := db.NewGraph(m.warehouse)
	for _, s := range m.sources {
		if s.Mode == Merge {
			mergeInto(wh, srcGraphs[s.Name])
		}
	}
	// Apply GAV mappings.
	for _, q := range m.mappings {
		src, ok := srcGraphs[q.Input]
		if !ok {
			return nil, fmt.Errorf("mediator: mapping query reads unknown source %q", q.Input)
		}
		if _, err := struql.Eval(q, src, &struql.Options{Output: wh, Registry: m.registry}); err != nil {
			return nil, fmt.Errorf("mediator: mapping over source %q: %w", q.Input, err)
		}
	}
	m.repo.Invalidate(m.warehouse)
	m.Refreshes++
	return wh, nil
}

// Warehouse returns the current warehouse graph, if Refresh has run.
func (m *Mediator) Warehouse() (*graph.Graph, bool) {
	return m.repo.Graph(m.warehouse)
}

// mergeInto copies src into dst verbatim. The graphs share the
// repository database's OID space, so identity is preserved.
func mergeInto(dst, src *graph.Graph) {
	for _, id := range src.Nodes() {
		dst.AddNode(id, src.NodeName(id))
	}
	for _, id := range src.Nodes() {
		for _, e := range src.Out(id) {
			// Duplicate edges are ignored by AddEdge.
			_ = dst.AddEdge(e.From, e.Label, e.To)
		}
	}
	for _, c := range src.Collections() {
		dst.DeclareCollection(c)
		for _, v := range src.Collection(c) {
			dst.AddToCollection(c, v)
		}
	}
}
