// Package mediator implements STRUDEL's mediation layer (paper
// Sec. 2.3): a uniform, integrated view of all underlying data,
// irrespective of where it is stored. Following the paper's prototype
// it takes the warehousing approach to data integration — sources are
// wrapped into graphs and the result of integration is stored in the
// repository — and the global-as-view (GAV) approach to schema
// mapping: the relationship between the mediated view and the sources
// is given by StruQL queries, one or more per source, whose outputs
// build the warehouse graph. Sources without mapping queries are
// merged verbatim (object names preserved), which suits sources
// already shaped like the mediated view.
package mediator

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/resilience"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/wrapper"
)

// SourceMode selects how a source reaches the warehouse.
type SourceMode int

const (
	// Merge copies the wrapped source graph into the warehouse
	// verbatim, preserving object identity and names.
	Merge SourceMode = iota
	// Mapped keeps the source graph out of the warehouse; only GAV
	// mapping queries over it contribute.
	Mapped
)

// Source is one external data source.
type Source struct {
	Name    string
	Wrapper wrapper.Wrapper
	Mode    SourceMode
	// Fetch returns the current source text; called on every Refresh
	// so changing source data is picked up (the paper: "the data in
	// the sources may change frequently").
	Fetch func() (string, error)
}

// Resilience configures fault tolerance for Refresh. The zero value
// means one fetch attempt, no deadline, no circuit breaker — failures
// still degrade to last-good data, but nothing is retried.
type Resilience struct {
	// Retry schedules repeated fetch attempts per source.
	Retry resilience.RetryPolicy
	// FetchTimeout bounds each fetch attempt (0 = unbounded). A source
	// that hangs past the deadline counts as failed; its goroutine is
	// abandoned.
	FetchTimeout time.Duration
	// BreakerThreshold opens a per-source circuit breaker after that
	// many consecutive failed acquisitions (0 disables breakers), so a
	// dead source is not re-fetched and re-timed-out on every refresh.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting a probe.
	BreakerCooldown time.Duration
	// Clock drives backoff, deadlines and breaker cooldowns; nil means
	// the wall clock. Tests inject a resilience.FakeClock.
	Clock resilience.Clock
	// Rand supplies backoff jitter in [0,1); nil means math/rand.
	Rand func() float64
}

// clock resolves the configured clock, defaulting to the wall clock.
func (r Resilience) clock() resilience.Clock {
	if r.Clock == nil {
		return resilience.Real
	}
	return r.Clock
}

// medMetrics are the mediator's telemetry handles (nil when not
// instrumented).
type medMetrics struct {
	reg            *telemetry.Registry
	refreshOK      *telemetry.Counter
	refreshDegr    *telemetry.Counter
	refreshFail    *telemetry.Counter
	retries        *telemetry.Counter
	degradedGauge  *telemetry.Gauge
	breakerRejects *telemetry.Counter
}

// Mediator integrates a set of sources into one warehouse graph.
type Mediator struct {
	repo      *repository.Repository
	warehouse string
	sources   []*Source
	mappings  []*struql.Query
	registry  *struql.Registry
	// Refreshes counts warehouse rebuilds, for diagnostics.
	Refreshes int

	// refreshMu serializes Refresh end to end (a background refresher
	// and a foreground rebuild must not interleave staging) and guards
	// lastGood/staleSince, which only the refresh path touches. It is
	// distinct from mu so that a slow, retrying refresh never blocks
	// LastReport/Instrument/SetResilience.
	refreshMu  sync.Mutex
	lastGood   map[string]*graph.Graph
	staleSince map[string]time.Time
	// lastWarehouse is the previously committed warehouse, kept as the
	// baseline for the refresh report's warehouse-level delta.
	lastWarehouse *graph.Graph

	// mu guards the fields below. It is held only for short critical
	// sections — never across fetches, per-attempt timeouts or backoff
	// sleeps; a refresh works from a snapshot taken at its start.
	mu         sync.Mutex
	res        Resilience
	breakers   map[string]*resilience.Breaker
	lastReport *RefreshReport
	met        *medMetrics
}

// New creates a mediator that materializes its integrated view in the
// named warehouse graph of the repository.
func New(repo *repository.Repository, warehouseName string) *Mediator {
	return &Mediator{
		repo:       repo,
		warehouse:  warehouseName,
		registry:   struql.NewRegistry(),
		breakers:   map[string]*resilience.Breaker{},
		lastGood:   map[string]*graph.Graph{},
		staleSince: map[string]time.Time{},
	}
}

// SetResilience configures retry, fetch deadlines and circuit breakers
// for subsequent Refreshes. Existing breaker state is discarded. A
// refresh already in flight keeps the configuration it started with.
func (m *Mediator) SetResilience(cfg Resilience) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.res = cfg
	m.breakers = map[string]*resilience.Breaker{}
}

// Instrument makes refreshes report into a telemetry registry: refresh
// outcomes, fetch retries, the number of currently degraded sources,
// breaker rejections, and per-source breaker state gauges
// (0 closed, 1 half-open, 2 open). Pass nil to detach.
func (m *Mediator) Instrument(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg == nil {
		m.met = nil
		return
	}
	refresh := func(result string) *telemetry.Counter {
		return reg.Counter("strudel_mediator_refresh_total",
			"Warehouse refreshes, by outcome (ok, degraded, failed).",
			"result", result)
	}
	m.met = &medMetrics{
		reg:         reg,
		refreshOK:   refresh("ok"),
		refreshDegr: refresh("degraded"),
		refreshFail: refresh("failed"),
		retries: reg.Counter("strudel_mediator_fetch_retries_total",
			"Source fetch attempts beyond the first, across all sources."),
		degradedGauge: reg.Gauge("strudel_mediator_degraded_sources",
			"Sources currently served from last-good data."),
		breakerRejects: reg.Counter("strudel_mediator_breaker_rejections_total",
			"Source fetches skipped because the circuit breaker was open."),
	}
}

// LastReport returns the report of the most recent Refresh (nil before
// the first).
func (m *Mediator) LastReport() *RefreshReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastReport
}

// metrics returns the current telemetry handles (nil when detached).
func (m *Mediator) metrics() *medMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.met
}

// breakerFor returns (creating on first use) the source's circuit
// breaker, or nil when breakers are disabled. cfg is the refresh's
// snapshot of the resilience configuration; m.mu must not be held.
func (m *Mediator) breakerFor(name string, cfg Resilience) *resilience.Breaker {
	if cfg.BreakerThreshold <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.breakers[name]; ok {
		return b
	}
	b := resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.clock())
	source := name
	b.OnStateChange(func(from, to resilience.BreakerState) {
		met := m.metrics()
		if met == nil {
			return
		}
		met.reg.Counter("strudel_mediator_breaker_transitions_total",
			"Circuit breaker state transitions, by source and new state.",
			"source", source, "to", to.String()).Inc()
		met.reg.Gauge("strudel_mediator_breaker_state",
			"Circuit breaker position per source (0 closed, 1 half-open, 2 open).",
			"source", source).Set(float64(to))
	})
	m.breakers[name] = b
	return b
}

// acquire fetches one source's content through breaker, retry and
// per-attempt deadline. It runs without m.mu held (fetches can be
// slow); cfg and met are the refresh's snapshots.
func (m *Mediator) acquire(s *Source, cfg Resilience, met *medMetrics) (string, int, error) {
	br := m.breakerFor(s.Name, cfg)
	var ticket resilience.Ticket
	if br != nil {
		t, err := br.Allow()
		if err != nil {
			if met != nil {
				met.breakerRejects.Inc()
			}
			return "", 0, err
		}
		ticket = t
	}
	var content string
	attempts := 0
	retrier := &resilience.Retrier{
		Policy: cfg.Retry,
		Clock:  cfg.clock(),
		Rand:   cfg.Rand,
		OnRetry: func(int, time.Duration, error) {
			if met != nil {
				met.retries.Inc()
			}
		},
	}
	_, err := retrier.Do(func() error {
		attempts++
		// fetched is per-attempt: a timed-out attempt's abandoned
		// goroutine keeps writing only its own local. content is
		// assigned on this goroutine, only after WithTimeout's receive
		// from the attempt's done channel — so never concurrently with
		// a later attempt or with the caller reading it.
		var fetched string
		err := resilience.WithTimeout(cfg.clock(), cfg.FetchTimeout, func() error {
			c, err := s.Fetch()
			if err != nil {
				return err
			}
			fetched = c
			return nil
		})
		if err != nil {
			return err
		}
		content = fetched
		return nil
	})
	if br != nil {
		br.Report(ticket, err)
	}
	return content, attempts, err
}

// Registry exposes the predicate registry used by mapping queries.
func (m *Mediator) Registry() *struql.Registry { return m.registry }

// AddSource registers a source with static content and a built-in
// wrapper kind.
func (m *Mediator) AddSource(name, kind, content string) error {
	w, ok := wrapper.ByName(kind)
	if !ok {
		return fmt.Errorf("mediator: unknown wrapper kind %q for source %q", kind, name)
	}
	m.sources = append(m.sources, &Source{
		Name:    name,
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	return nil
}

// AddSourceFunc registers a source whose content is produced by a
// fetch function called on every Refresh, with a built-in wrapper
// kind — a remote source, as opposed to AddSource's static text.
func (m *Mediator) AddSourceFunc(name, kind string, fetch func() (string, error)) error {
	w, ok := wrapper.ByName(kind)
	if !ok {
		return fmt.Errorf("mediator: unknown wrapper kind %q for source %q", kind, name)
	}
	m.sources = append(m.sources, &Source{Name: name, Wrapper: w, Fetch: fetch})
	return nil
}

// AddSourceDynamic registers a source with a fetch function, a custom
// wrapper and a mode.
func (m *Mediator) AddSourceDynamic(s *Source) {
	m.sources = append(m.sources, s)
}

// AddMapping registers a GAV mapping query. The query's INPUT names a
// source; its constructions are applied to the warehouse graph.
func (m *Mediator) AddMapping(q *struql.Query) error {
	if q.Input == "" {
		return fmt.Errorf("mediator: mapping query must name its INPUT source")
	}
	m.mappings = append(m.mappings, q)
	return nil
}

// Refresh re-wraps every source and rebuilds the warehouse from
// scratch. Incremental view maintenance for semistructured data is an
// open problem the paper defers (Sec. 6); full rebuild matches its
// prototype. The warehouse graph object is replaced in the repository;
// callers must re-resolve it. See RefreshWithReport for the semantics
// under source failure.
func (m *Mediator) Refresh() (*graph.Graph, error) {
	wh, _, err := m.RefreshWithReport()
	return wh, err
}

// RefreshWithReport rebuilds the warehouse with per-source fault
// tolerance and returns what happened source by source.
//
// Everything is staged off to the side: source graphs and the new
// warehouse are built as unregistered siblings of the repository
// database and committed only when the whole build succeeds, so a
// failed refresh never leaves the repository partial — readers keep
// the previous warehouse and src:* graphs.
//
// A source whose fetch fails (after the configured retries, deadline
// and breaker) degrades rather than aborts: its last-good graph
// feeds the new warehouse, the report marks it Degraded with the time
// it went stale, and the refresh continues. Only a failing source
// with no last-good copy — typically the very first refresh — aborts
// the refresh as a whole, with nothing committed.
func (m *Mediator) RefreshWithReport() (*graph.Graph, *RefreshReport, error) {
	m.refreshMu.Lock()
	defer m.refreshMu.Unlock()

	// Snapshot the tunables so the fetch loop — slow fetches, timeouts,
	// real-clock backoff sleeps — runs without m.mu, keeping LastReport
	// and reconfiguration responsive during a degraded refresh.
	m.mu.Lock()
	cfg := m.res
	met := m.met
	m.mu.Unlock()

	db := m.repo.Database()
	now := cfg.clock().Now()
	report := &RefreshReport{At: now}
	finish := func(failed bool) {
		m.mu.Lock()
		m.lastReport = report
		m.mu.Unlock()
		observeRefresh(met, report, failed)
	}
	abort := func(err error) (*graph.Graph, *RefreshReport, error) {
		finish(true)
		return nil, report, err
	}

	// Stage: wrap each source into an unregistered sibling graph, or
	// fall back to its last-good graph.
	use := map[string]*graph.Graph{}   // graph feeding this build, per source
	fresh := map[string]*graph.Graph{} // newly staged graphs, committed at the end
	for _, s := range m.sources {
		st := SourceStatus{Name: s.Name, State: Fresh}
		content, attempts, err := m.acquire(s, cfg, met)
		st.Attempts = attempts
		if err == nil {
			g := db.Sibling("src:" + s.Name)
			if werr := s.Wrapper.Wrap(g, s.Name, content); werr != nil {
				err = fmt.Errorf("mediator: wrapping source %q: %w", s.Name, werr)
			} else {
				use[s.Name] = g
				fresh[s.Name] = g
				if last, ok := m.lastGood[s.Name]; ok {
					st.Delta = graph.Diff(last, g)
				}
			}
		} else if !errors.Is(err, resilience.ErrBreakerOpen) {
			err = fmt.Errorf("mediator: fetching source %q: %w", s.Name, err)
		}
		if err != nil {
			st.Err = err
			last, ok := m.lastGood[s.Name]
			if !ok {
				st.State = Failed
				report.Sources = append(report.Sources, st)
				return abort(err)
			}
			if m.staleSince[s.Name].IsZero() {
				m.staleSince[s.Name] = now
			}
			st.State = Degraded
			st.StaleSince = m.staleSince[s.Name]
			st.Delta = &graph.Delta{} // last-good reused verbatim
			use[s.Name] = last
		} else {
			delete(m.staleSince, s.Name)
		}
		report.Sources = append(report.Sources, st)
	}

	// Build the replacement warehouse, still off to the side.
	wh := db.Sibling(m.warehouse)
	for _, s := range m.sources {
		if s.Mode == Merge {
			mergeInto(wh, use[s.Name])
		}
	}
	// Apply GAV mappings. Their failures are configuration or query
	// bugs, not source flakiness: abort with nothing committed.
	for _, q := range m.mappings {
		src, ok := use[q.Input]
		if !ok {
			return abort(fmt.Errorf("mediator: mapping query reads unknown source %q", q.Input))
		}
		if _, err := struql.Eval(q, src, &struql.Options{Output: wh, Registry: m.registry}); err != nil {
			return abort(fmt.Errorf("mediator: mapping over source %q: %w", q.Input, err))
		}
	}

	// The warehouse-level delta subsumes the per-source ones (it sees
	// the data after GAV mapping); it is what incremental rebuilds key
	// on. No baseline on the first refresh leaves it nil — "unknown".
	if m.lastWarehouse != nil {
		report.Warehouse = graph.Diff(m.lastWarehouse, wh)
	}

	// Commit: publish the fresh source graphs and the new warehouse.
	// Each Put is an atomic pointer swap in the database; readers
	// holding the old graphs keep a consistent (if stale) view.
	for name, g := range fresh {
		m.repo.Put(g)
		m.lastGood[name] = g
	}
	m.repo.Put(wh)
	m.lastWarehouse = wh
	m.Refreshes++
	finish(false)
	return wh, report, nil
}

// observeRefresh records a refresh outcome in telemetry (met may be
// nil).
func observeRefresh(met *medMetrics, r *RefreshReport, failed bool) {
	if met == nil {
		return
	}
	degraded := len(r.Degraded())
	switch {
	case failed:
		met.refreshFail.Inc()
	case degraded > 0:
		met.refreshDegr.Inc()
	default:
		met.refreshOK.Inc()
	}
	met.degradedGauge.Set(float64(degraded))
}

// Warehouse returns the current warehouse graph, if Refresh has run.
func (m *Mediator) Warehouse() (*graph.Graph, bool) {
	return m.repo.Graph(m.warehouse)
}

// mergeInto copies src into dst verbatim. The graphs share the
// repository database's OID space, so identity is preserved.
func mergeInto(dst, src *graph.Graph) {
	for _, id := range src.Nodes() {
		dst.AddNode(id, src.NodeName(id))
	}
	for _, id := range src.Nodes() {
		for _, e := range src.Out(id) {
			// Duplicate edges are ignored by AddEdge.
			_ = dst.AddEdge(e.From, e.Label, e.To)
		}
	}
	for _, c := range src.Collections() {
		dst.DeclareCollection(c)
		for _, v := range src.Collection(c) {
			dst.AddToCollection(c, v)
		}
	}
}
