package mediator

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/resilience"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/wrapper"
)

const peopleCSV = `id,name,dept
mff,Mary Fernandez,db
suciu,Dan Suciu,db
levy,Alon Levy,uw
`

const projectsTxt = `
id: strudel
name: STRUDEL
member_ref: strudel
synopsis: Web-site management
`

func TestRefreshMergesSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	if err := m.AddSource("people.csv", "csv", peopleCSV); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource("projects.txt", "structured", projectsTxt); err != nil {
		t.Fatal(err)
	}
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("People")) != 3 {
		t.Errorf("People = %v", wh.Collection("People"))
	}
	if len(wh.Collection("Projects")) != 1 {
		t.Errorf("Projects = %v", wh.Collection("Projects"))
	}
	// Per-source graphs land in the repository too.
	if _, ok := repo.Graph("src:people.csv"); !ok {
		t.Error("source graph missing from repository")
	}
}

func TestGAVMapping(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	if err := m.AddSource("people.csv", "csv", peopleCSV); err != nil {
		t.Fatal(err)
	}
	// GAV: the mediated collection Researchers is defined by a query
	// over the source.
	q := struql.MustParse(`
INPUT people.csv
WHERE People(p), p -> "dept" -> "db"
CREATE Researcher(p)
LINK Researcher(p) -> "origin" -> p
COLLECT Researchers(Researcher(p))
`)
	if err := m.AddMapping(q); err != nil {
		t.Fatal(err)
	}
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	rs := wh.Collection("Researchers")
	if len(rs) != 2 {
		t.Fatalf("Researchers = %v", rs)
	}
	// The mediated object links back to the source object, whose
	// attributes remain reachable (shared OID space).
	src, _ := repo.Graph("src:people.csv")
	for _, r := range rs {
		orig, ok := wh.First(r.OID(), "origin")
		if !ok {
			t.Fatal("origin missing")
		}
		if _, ok := src.First(orig.OID(), "name"); !ok {
			t.Error("source attributes unreachable")
		}
	}
}

func TestMappedModeKeepsSourceOut(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "people.csv",
		Wrapper: w,
		Mode:    Mapped,
		Fetch:   func() (string, error) { return peopleCSV, nil },
	})
	q := struql.MustParse(`
INPUT people.csv
WHERE People(p), p -> "name" -> n
CREATE R(p)
LINK R(p) -> "name" -> n
COLLECT Rs(R(p))`)
	m.AddMapping(q)
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if wh.HasCollection("People") {
		t.Error("mapped source leaked into warehouse")
	}
	if len(wh.Collection("Rs")) != 3 {
		t.Errorf("Rs = %v", wh.Collection("Rs"))
	}
}

func TestRefreshPicksUpSourceChanges(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	content := "id,name\na,Alpha\n"
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("T")) != 1 {
		t.Fatalf("T = %v", wh.Collection("T"))
	}
	content = "id,name\na,Alpha\nb,Beta\n"
	wh, err = m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("T")) != 2 {
		t.Errorf("after change T = %v", wh.Collection("T"))
	}
	if m.Refreshes != 2 {
		t.Errorf("Refreshes = %d", m.Refreshes)
	}
}

func TestRefreshIdempotentRebuild(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	m.AddSource("people.csv", "csv", peopleCSV)
	w1, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	d1 := w1.DumpString()
	w2, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	// Structure identical up to OIDs; compare counts and collections.
	if w1.NumEdges() != w2.NumEdges() || len(w1.Collection("People")) != len(w2.Collection("People")) {
		t.Errorf("rebuild changed shape:\n%s\nvs\n%s", d1, w2.DumpString())
	}
}

func TestErrors(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	if err := m.AddSource("x", "nosuchkind", ""); err == nil {
		t.Error("unknown wrapper kind should fail")
	}
	if err := m.AddMapping(struql.MustParse(`WHERE C(x) COLLECT D(x)`)); err == nil {
		t.Error("mapping without INPUT should fail")
	}
	m.AddMapping(struql.MustParse(`INPUT missing WHERE C(x) COLLECT D(x)`))
	if _, err := m.Refresh(); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Errorf("err = %v", err)
	}

	m2 := New(repository.New(""), "W")
	w, _ := wrapper.ByName("csv")
	m2.AddSourceDynamic(&Source{
		Name:    "bad",
		Wrapper: w,
		Fetch:   func() (string, error) { return "", errors.New("network down") },
	})
	if _, err := m2.Refresh(); err == nil || !strings.Contains(err.Error(), "network down") {
		t.Errorf("err = %v", err)
	}

	m3 := New(repository.New(""), "W")
	m3.AddSource("bad.csv", "csv", "") // empty CSV fails in wrapper
	if _, err := m3.Refresh(); err == nil || !strings.Contains(err.Error(), "wrapping source") {
		t.Errorf("err = %v", err)
	}
}

func TestWarehouseAccessor(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	if _, ok := m.Warehouse(); ok {
		t.Error("warehouse should not exist before refresh")
	}
	m.AddSource("p.csv", "csv", "id,x\na,1\n")
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	wh, ok := m.Warehouse()
	if !ok || wh.Name() != "W" {
		t.Errorf("warehouse = %v, %v", wh, ok)
	}
}

func TestCustomPredicateInMapping(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	m.AddSource("p.csv", "csv", "id,name\na,Ann\nb,Bo\n")
	m.Registry().RegisterObject("isShortName", func(v graph.Value) bool {
		s, ok := v.AsString()
		return ok && len(s) <= 2
	})
	m.AddMapping(struql.MustParse(`
INPUT p.csv
WHERE P(p), p -> "name" -> n, isShortName(n)
COLLECT Short(p)`))
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("Short")) != 1 {
		t.Errorf("Short = %v", wh.Collection("Short"))
	}
}

func TestVirtualQuerySeesCurrentSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	content := "id,name\na,Alpha\n"
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	q := struql.MustParse(`WHERE T(x) COLLECT Out(x)`)
	res, err := m.VirtualQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Fatalf("Out = %v", res.Output.Collection("Out"))
	}
	// The source changes; a virtual query sees it with no Refresh.
	content = "id,name\na,Alpha\nb,Beta\n"
	res, err = m.VirtualQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 2 {
		t.Errorf("after change Out = %v", res.Output.Collection("Out"))
	}
	// No warehouse was materialized.
	if _, ok := m.Warehouse(); ok {
		t.Error("virtual query must not materialize the warehouse")
	}
}

func TestVirtualQueryPrunesMappedSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	w, _ := wrapper.ByName("csv")
	fetchedB := 0
	m.AddSourceDynamic(&Source{
		Name: "a.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) { return "id,x\na1,1\n", nil },
	})
	m.AddSourceDynamic(&Source{
		Name: "b.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) {
			fetchedB++
			return "id,x\nb1,1\n", nil
		},
	})
	m.AddMapping(struql.MustParse(`INPUT a.csv WHERE A(p) COLLECT FromA(p)`))
	m.AddMapping(struql.MustParse(`INPUT b.csv WHERE B(p) COLLECT FromB(p)`))
	// A query needing only FromA must not fetch b.csv.
	res, err := m.VirtualQuery(struql.MustParse(`WHERE FromA(x) COLLECT Out(x)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Errorf("Out = %v", res.Output.Collection("Out"))
	}
	if fetchedB != 0 {
		t.Errorf("b.csv fetched %d times; source pruning broken", fetchedB)
	}
	// A query needing FromB fetches it.
	if _, err := m.VirtualQuery(struql.MustParse(`WHERE FromB(x) COLLECT Out(x)`)); err != nil {
		t.Fatal(err)
	}
	if fetchedB != 1 {
		t.Errorf("b.csv fetched %d times, want 1", fetchedB)
	}
}

func TestVirtualQueryNoRelevantSource(t *testing.T) {
	m := New(repository.New(""), "W")
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name: "a.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) { return "id,x\na1,1\n", nil },
	})
	if _, err := m.VirtualQuery(struql.MustParse(`WHERE Nowhere(x) COLLECT Out(x)`)); err == nil {
		t.Error("expected error for unknown mediated collection")
	}
}

// TestRefreshKeepsLastGoodOnSourceFailure is the regression test for
// the partial-state bug: a failing second source used to leave src:*
// graphs dropped and the warehouse partially rebuilt. Now the refresh
// degrades to the source's last-good graph and commits a complete
// warehouse atomically.
func TestRefreshKeepsLastGoodOnSourceFailure(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	bContent, bErr := "id,x\nb1,1\nb2,2\n", error(nil)
	m.AddSource("a.csv", "csv", "id,x\na1,1\n")
	m.AddSourceDynamic(&Source{
		Name:    "b.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return bContent, bErr },
	})
	wh, report, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Fatalf("first refresh not ok: %s", report.Summary())
	}
	if got := len(wh.Collection("B")); got != 2 {
		t.Fatalf("B = %d", got)
	}

	// The second source starts failing; a refresh must neither error
	// nor drop anything.
	bErr = errors.New("network down")
	wh2, report2, err := m.RefreshWithReport()
	if err != nil {
		t.Fatalf("degraded refresh errored: %v", err)
	}
	if degr := report2.Degraded(); len(degr) != 1 || degr[0] != "b.csv" {
		t.Errorf("degraded = %v", degr)
	}
	if st, _ := report2.Source("b.csv"); st.State != Degraded || st.StaleSince.IsZero() || st.Err == nil {
		t.Errorf("b.csv status = %+v", st)
	}
	if st, _ := report2.Source("a.csv"); st.State != Fresh {
		t.Errorf("a.csv status = %+v", st)
	}
	// Both src:* graphs are still registered and queryable.
	for _, name := range []string{"src:a.csv", "src:b.csv"} {
		if _, ok := repo.Graph(name); !ok {
			t.Errorf("%s dropped from repository", name)
		}
	}
	// The new warehouse still integrates b's last-good data.
	if got := len(wh2.Collection("B")); got != 2 {
		t.Errorf("warehouse lost degraded source data: B = %d", got)
	}
	if got := len(wh2.Collection("A")); got != 1 {
		t.Errorf("A = %d", got)
	}
	if m.Refreshes != 2 {
		t.Errorf("Refreshes = %d", m.Refreshes)
	}

	// Recovery: the source comes back, staleness clears.
	bErr = nil
	bContent = "id,x\nb1,1\nb2,2\nb3,3\n"
	wh3, report3, err := m.RefreshWithReport()
	if err != nil || !report3.Ok() {
		t.Fatalf("recovery refresh: %v %s", err, report3.Summary())
	}
	if got := len(wh3.Collection("B")); got != 3 {
		t.Errorf("after recovery B = %d", got)
	}
	if st, _ := report3.Source("b.csv"); !st.StaleSince.IsZero() {
		t.Errorf("stale-since not cleared: %+v", st)
	}
}

// TestRefreshAtomicOnFirstFailure: with no last-good copy to fall back
// on, a failing source aborts the refresh — and stages nothing: no
// src:* graphs, no warehouse, no partial state.
func TestRefreshAtomicOnFirstFailure(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	m.AddSource("a.csv", "csv", "id,x\na1,1\n")
	m.AddSourceDynamic(&Source{
		Name:    "b.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return "", errors.New("down") },
	})
	_, report, err := m.RefreshWithReport()
	if err == nil {
		t.Fatal("expected hard error with no last-good copy")
	}
	if !report.Failed() {
		t.Errorf("report = %s", report.Summary())
	}
	for _, name := range []string{"src:a.csv", "src:b.csv", "DataGraph"} {
		if _, ok := repo.Graph(name); ok {
			t.Errorf("%s committed despite aborted refresh", name)
		}
	}
	if m.Refreshes != 0 {
		t.Errorf("Refreshes = %d", m.Refreshes)
	}
	if m.LastReport() != report {
		t.Error("LastReport not recorded")
	}
}

// TestRefreshRetriesWithInjectedClock drives the retry schedule with
// an auto-advancing fake clock: no real sleeps, deterministic backoff.
func TestRefreshRetriesWithInjectedClock(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	calls := 0
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch: func() (string, error) {
			calls++
			if calls < 3 {
				return "", errors.New("transient")
			}
			return "id,x\na,1\n", nil
		},
	})
	clock := resilience.NewAutoClock(time.Date(1997, 5, 1, 0, 0, 0, 0, time.UTC))
	m.SetResilience(Resilience{
		Retry: resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: 250 * time.Millisecond},
		Clock: clock,
	})
	_, report, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := report.Source("t.csv")
	if st.State != Fresh || st.Attempts != 3 {
		t.Errorf("status = %+v", st)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 250*time.Millisecond || sleeps[1] != 500*time.Millisecond {
		t.Errorf("backoff schedule = %v", sleeps)
	}
}

// TestRefreshBreakerSkipsDeadSource: after the breaker opens, refreshes
// stop calling Fetch entirely and serve last-good data until the
// cooldown admits a probe.
func TestRefreshBreakerSkipsDeadSource(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	calls, fail := 0, false
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch: func() (string, error) {
			calls++
			if fail {
				return "", errors.New("down")
			}
			return "id,x\na,1\n", nil
		},
	})
	clock := resilience.NewFakeClock(time.Date(1997, 5, 1, 0, 0, 0, 0, time.UTC))
	m.SetResilience(Resilience{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Clock:            clock,
	})
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	fail = true
	// This refresh fails the fetch and opens the breaker.
	if _, report, err := m.RefreshWithReport(); err != nil || len(report.Degraded()) != 1 {
		t.Fatalf("err=%v report=%s", err, report.Summary())
	}
	callsAfterOpen := calls
	// Breaker open: degraded without even calling Fetch.
	_, report, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if calls != callsAfterOpen {
		t.Errorf("open breaker still fetched (calls %d -> %d)", callsAfterOpen, calls)
	}
	if st, _ := report.Source("t.csv"); st.State != Degraded || st.Attempts != 0 || !errors.Is(st.Err, resilience.ErrBreakerOpen) {
		t.Errorf("status = %+v", st)
	}
	// After the cooldown the probe goes through; the source recovered.
	fail = false
	clock.Advance(2 * time.Minute)
	_, report, err = m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := report.Source("t.csv"); st.State != Fresh {
		t.Errorf("post-cooldown status = %+v", st)
	}
	if calls != callsAfterOpen+1 {
		t.Errorf("probe calls = %d, want %d", calls, callsAfterOpen+1)
	}
}

// TestRefreshHangingFetchTimesOut bounds a hanging source with the
// fetch deadline and falls back to last-good data.
func TestRefreshHangingFetchTimesOut(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	hang := make(chan struct{})
	defer close(hang)
	hanging := false
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch: func() (string, error) {
			if hanging {
				<-hang
			}
			return "id,x\na,1\n", nil
		},
	})
	m.SetResilience(Resilience{FetchTimeout: 5 * time.Millisecond})
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	hanging = true
	_, report, err := m.RefreshWithReport()
	if err != nil {
		t.Fatalf("hanging source aborted refresh: %v", err)
	}
	st, _ := report.Source("t.csv")
	if st.State != Degraded || !errors.Is(st.Err, resilience.ErrTimeout) {
		t.Errorf("status = %+v", st)
	}
}

// TestRefreshAbandonedFetchDoesNotRace: a fetch attempt that outlives
// its deadline is abandoned but stays alive; if it completes during
// the retry attempt, its result must neither race with nor replace the
// retry's freshly fetched content. Run under -race this pins the fix
// for writing fetch results into a variable shared across attempts.
func TestRefreshAbandonedFetchDoesNotRace(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	var calls atomic.Int32
	release := make(chan struct{})
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch: func() (string, error) {
			if calls.Add(1) == 1 {
				// First attempt: hang past the deadline, then complete
				// with outdated content while the retry is committing.
				<-release
				return "id,x\nstale,0\n", nil
			}
			close(release)
			return "id,x\nfresh,1\n", nil
		},
	})
	m.SetResilience(Resilience{
		Retry:        resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		FetchTimeout: 20 * time.Millisecond,
	})
	wh, report, err := m.RefreshWithReport()
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := report.Source("t.csv"); st.State != Fresh || st.Attempts != 2 {
		t.Fatalf("status = %+v", st)
	}
	if _, ok := wh.NodeByName("fresh"); !ok {
		t.Errorf("warehouse missing the retry's content:\n%s", wh.DumpString())
	}
	if _, ok := wh.NodeByName("stale"); ok {
		t.Errorf("abandoned attempt's content leaked into the warehouse:\n%s", wh.DumpString())
	}
}

// TestLastReportNotBlockedDuringSlowRefresh: reading the last report
// (and reconfiguring) must not wait behind an in-flight refresh stuck
// in a slow fetch.
func TestLastReportNotBlockedDuringSlowRefresh(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	inFetch := make(chan struct{}, 1)
	release := make(chan struct{})
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch: func() (string, error) {
			inFetch <- struct{}{}
			<-release
			return "id,x\na,1\n", nil
		},
	})
	done := make(chan error, 1)
	go func() {
		_, err := m.Refresh()
		done <- err
	}()
	<-inFetch // the refresh is now blocked inside Fetch
	got := make(chan *RefreshReport, 1)
	go func() { got <- m.LastReport() }()
	select {
	case rep := <-got:
		if rep != nil {
			t.Errorf("report before first refresh = %+v", rep)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("LastReport blocked behind the in-flight refresh")
	}
	// Reconfiguration must not block either; it applies next refresh.
	m.SetResilience(Resilience{})
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.LastReport() == nil || !m.LastReport().Ok() {
		t.Errorf("report after refresh = %+v", m.LastReport())
	}
}

// TestRefreshTelemetry checks the refresh outcome counters and the
// degraded-sources gauge.
func TestRefreshTelemetry(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	w, _ := wrapper.ByName("csv")
	var fetchErr error
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return "id,x\na,1\n", fetchErr },
	})
	m.SetResilience(Resilience{Retry: resilience.RetryPolicy{MaxAttempts: 2},
		Clock: resilience.NewAutoClock(time.Now())})
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	fetchErr = errors.New("down")
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`strudel_mediator_refresh_total{result="ok"} 1`,
		`strudel_mediator_refresh_total{result="degraded"} 1`,
		`strudel_mediator_degraded_sources 1`,
		`strudel_mediator_fetch_retries_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
