package mediator

import (
	"errors"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/struql"
	"strudel/internal/wrapper"
)

const peopleCSV = `id,name,dept
mff,Mary Fernandez,db
suciu,Dan Suciu,db
levy,Alon Levy,uw
`

const projectsTxt = `
id: strudel
name: STRUDEL
member_ref: strudel
synopsis: Web-site management
`

func TestRefreshMergesSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	if err := m.AddSource("people.csv", "csv", peopleCSV); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSource("projects.txt", "structured", projectsTxt); err != nil {
		t.Fatal(err)
	}
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("People")) != 3 {
		t.Errorf("People = %v", wh.Collection("People"))
	}
	if len(wh.Collection("Projects")) != 1 {
		t.Errorf("Projects = %v", wh.Collection("Projects"))
	}
	// Per-source graphs land in the repository too.
	if _, ok := repo.Graph("src:people.csv"); !ok {
		t.Error("source graph missing from repository")
	}
}

func TestGAVMapping(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	if err := m.AddSource("people.csv", "csv", peopleCSV); err != nil {
		t.Fatal(err)
	}
	// GAV: the mediated collection Researchers is defined by a query
	// over the source.
	q := struql.MustParse(`
INPUT people.csv
WHERE People(p), p -> "dept" -> "db"
CREATE Researcher(p)
LINK Researcher(p) -> "origin" -> p
COLLECT Researchers(Researcher(p))
`)
	if err := m.AddMapping(q); err != nil {
		t.Fatal(err)
	}
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	rs := wh.Collection("Researchers")
	if len(rs) != 2 {
		t.Fatalf("Researchers = %v", rs)
	}
	// The mediated object links back to the source object, whose
	// attributes remain reachable (shared OID space).
	src, _ := repo.Graph("src:people.csv")
	for _, r := range rs {
		orig, ok := wh.First(r.OID(), "origin")
		if !ok {
			t.Fatal("origin missing")
		}
		if _, ok := src.First(orig.OID(), "name"); !ok {
			t.Error("source attributes unreachable")
		}
	}
}

func TestMappedModeKeepsSourceOut(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "people.csv",
		Wrapper: w,
		Mode:    Mapped,
		Fetch:   func() (string, error) { return peopleCSV, nil },
	})
	q := struql.MustParse(`
INPUT people.csv
WHERE People(p), p -> "name" -> n
CREATE R(p)
LINK R(p) -> "name" -> n
COLLECT Rs(R(p))`)
	m.AddMapping(q)
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if wh.HasCollection("People") {
		t.Error("mapped source leaked into warehouse")
	}
	if len(wh.Collection("Rs")) != 3 {
		t.Errorf("Rs = %v", wh.Collection("Rs"))
	}
}

func TestRefreshPicksUpSourceChanges(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	content := "id,name\na,Alpha\n"
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("T")) != 1 {
		t.Fatalf("T = %v", wh.Collection("T"))
	}
	content = "id,name\na,Alpha\nb,Beta\n"
	wh, err = m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("T")) != 2 {
		t.Errorf("after change T = %v", wh.Collection("T"))
	}
	if m.Refreshes != 2 {
		t.Errorf("Refreshes = %d", m.Refreshes)
	}
}

func TestRefreshIdempotentRebuild(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "DataGraph")
	m.AddSource("people.csv", "csv", peopleCSV)
	w1, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	d1 := w1.DumpString()
	w2, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	// Structure identical up to OIDs; compare counts and collections.
	if w1.NumEdges() != w2.NumEdges() || len(w1.Collection("People")) != len(w2.Collection("People")) {
		t.Errorf("rebuild changed shape:\n%s\nvs\n%s", d1, w2.DumpString())
	}
}

func TestErrors(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	if err := m.AddSource("x", "nosuchkind", ""); err == nil {
		t.Error("unknown wrapper kind should fail")
	}
	if err := m.AddMapping(struql.MustParse(`WHERE C(x) COLLECT D(x)`)); err == nil {
		t.Error("mapping without INPUT should fail")
	}
	m.AddMapping(struql.MustParse(`INPUT missing WHERE C(x) COLLECT D(x)`))
	if _, err := m.Refresh(); err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Errorf("err = %v", err)
	}

	m2 := New(repository.New(""), "W")
	w, _ := wrapper.ByName("csv")
	m2.AddSourceDynamic(&Source{
		Name:    "bad",
		Wrapper: w,
		Fetch:   func() (string, error) { return "", errors.New("network down") },
	})
	if _, err := m2.Refresh(); err == nil || !strings.Contains(err.Error(), "network down") {
		t.Errorf("err = %v", err)
	}

	m3 := New(repository.New(""), "W")
	m3.AddSource("bad.csv", "csv", "") // empty CSV fails in wrapper
	if _, err := m3.Refresh(); err == nil || !strings.Contains(err.Error(), "wrapping source") {
		t.Errorf("err = %v", err)
	}
}

func TestWarehouseAccessor(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	if _, ok := m.Warehouse(); ok {
		t.Error("warehouse should not exist before refresh")
	}
	m.AddSource("p.csv", "csv", "id,x\na,1\n")
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	wh, ok := m.Warehouse()
	if !ok || wh.Name() != "W" {
		t.Errorf("warehouse = %v, %v", wh, ok)
	}
}

func TestCustomPredicateInMapping(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	m.AddSource("p.csv", "csv", "id,name\na,Ann\nb,Bo\n")
	m.Registry().RegisterObject("isShortName", func(v graph.Value) bool {
		s, ok := v.AsString()
		return ok && len(s) <= 2
	})
	m.AddMapping(struql.MustParse(`
INPUT p.csv
WHERE P(p), p -> "name" -> n, isShortName(n)
COLLECT Short(p)`))
	wh, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(wh.Collection("Short")) != 1 {
		t.Errorf("Short = %v", wh.Collection("Short"))
	}
}

func TestVirtualQuerySeesCurrentSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	content := "id,name\na,Alpha\n"
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name:    "t.csv",
		Wrapper: w,
		Fetch:   func() (string, error) { return content, nil },
	})
	q := struql.MustParse(`WHERE T(x) COLLECT Out(x)`)
	res, err := m.VirtualQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Fatalf("Out = %v", res.Output.Collection("Out"))
	}
	// The source changes; a virtual query sees it with no Refresh.
	content = "id,name\na,Alpha\nb,Beta\n"
	res, err = m.VirtualQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 2 {
		t.Errorf("after change Out = %v", res.Output.Collection("Out"))
	}
	// No warehouse was materialized.
	if _, ok := m.Warehouse(); ok {
		t.Error("virtual query must not materialize the warehouse")
	}
}

func TestVirtualQueryPrunesMappedSources(t *testing.T) {
	repo := repository.New("")
	m := New(repo, "W")
	w, _ := wrapper.ByName("csv")
	fetchedB := 0
	m.AddSourceDynamic(&Source{
		Name: "a.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) { return "id,x\na1,1\n", nil },
	})
	m.AddSourceDynamic(&Source{
		Name: "b.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) {
			fetchedB++
			return "id,x\nb1,1\n", nil
		},
	})
	m.AddMapping(struql.MustParse(`INPUT a.csv WHERE A(p) COLLECT FromA(p)`))
	m.AddMapping(struql.MustParse(`INPUT b.csv WHERE B(p) COLLECT FromB(p)`))
	// A query needing only FromA must not fetch b.csv.
	res, err := m.VirtualQuery(struql.MustParse(`WHERE FromA(x) COLLECT Out(x)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Errorf("Out = %v", res.Output.Collection("Out"))
	}
	if fetchedB != 0 {
		t.Errorf("b.csv fetched %d times; source pruning broken", fetchedB)
	}
	// A query needing FromB fetches it.
	if _, err := m.VirtualQuery(struql.MustParse(`WHERE FromB(x) COLLECT Out(x)`)); err != nil {
		t.Fatal(err)
	}
	if fetchedB != 1 {
		t.Errorf("b.csv fetched %d times, want 1", fetchedB)
	}
}

func TestVirtualQueryNoRelevantSource(t *testing.T) {
	m := New(repository.New(""), "W")
	w, _ := wrapper.ByName("csv")
	m.AddSourceDynamic(&Source{
		Name: "a.csv", Wrapper: w, Mode: Mapped,
		Fetch: func() (string, error) { return "id,x\na1,1\n", nil },
	})
	if _, err := m.VirtualQuery(struql.MustParse(`WHERE Nowhere(x) COLLECT Out(x)`)); err == nil {
		t.Error("expected error for unknown mediated collection")
	}
}
