package mediator

import (
	"fmt"
	"strings"
	"time"

	"strudel/internal/graph"
)

// SourceState classifies how one source fared during a Refresh.
type SourceState int

const (
	// Fresh: the source was fetched and wrapped successfully; the
	// warehouse reflects its current contents.
	Fresh SourceState = iota
	// Degraded: fetching or wrapping failed (or the circuit breaker
	// rejected the call), and the warehouse was built from the
	// source's last-good graph instead.
	Degraded
	// Failed: the source failed and no last-good graph exists; the
	// refresh as a whole was aborted with nothing committed.
	Failed
)

func (s SourceState) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// SourceStatus is one source's outcome in a RefreshReport.
type SourceStatus struct {
	Name  string
	State SourceState
	// Attempts counts fetch attempts made (0 when the breaker
	// rejected the call without trying).
	Attempts int
	// Err is the final fetch/wrap error for non-fresh sources.
	Err error
	// StaleSince is when the source first degraded without recovering
	// since; zero for fresh sources.
	StaleSince time.Time
	// Delta is the change in this source's wrapped graph relative to
	// its last-good graph: empty for a degraded source (it reuses the
	// last-good graph verbatim), nil on the source's very first
	// successful wrap (no baseline to compare against).
	Delta *graph.Delta
}

// RefreshReport describes a warehouse refresh source by source,
// replacing all-or-nothing errors: a refresh that served every source
// fresh, one that fell back to last-good data for some, and one that
// had to abort all leave a report behind.
type RefreshReport struct {
	// At is when the refresh started.
	At time.Time
	// Sources holds one status per configured source, in registration
	// order (truncated at the failing source when the refresh aborts).
	Sources []SourceStatus
	// Warehouse is the change in the committed warehouse graph relative
	// to the previous refresh's warehouse. It is nil on the first
	// refresh (no baseline — callers must treat nil as "anything may
	// have changed") and on aborted refreshes (nothing committed). It
	// subsumes the per-source deltas: GAV-mapped attribute renamings
	// and merges are diffed after mapping, at warehouse granularity.
	Warehouse *graph.Delta
}

// Ok reports whether every source was fresh.
func (r *RefreshReport) Ok() bool {
	return len(r.Degraded()) == 0 && !r.Failed()
}

// Degraded lists the names of sources served from last-good data.
func (r *RefreshReport) Degraded() []string {
	var out []string
	for _, s := range r.Sources {
		if s.State == Degraded {
			out = append(out, s.Name)
		}
	}
	return out
}

// Failed reports whether the refresh aborted on a source with no
// last-good fallback.
func (r *RefreshReport) Failed() bool {
	for _, s := range r.Sources {
		if s.State == Failed {
			return true
		}
	}
	return false
}

// Source returns the status for a named source.
func (r *RefreshReport) Source(name string) (SourceStatus, bool) {
	for _, s := range r.Sources {
		if s.Name == name {
			return s, true
		}
	}
	return SourceStatus{}, false
}

// Summary renders a one-line human-readable digest, e.g.
// "2/3 sources fresh; degraded: b.csv (stale 2m30s): network down".
// Staleness is relative to the refresh time (At minus StaleSince).
func (r *RefreshReport) Summary() string {
	fresh := 0
	var bad []string
	for _, s := range r.Sources {
		switch s.State {
		case Fresh:
			fresh++
		default:
			detail := fmt.Sprintf("%s: %s", s.State, s.Name)
			if !s.StaleSince.IsZero() {
				detail += fmt.Sprintf(" (stale %s)", r.At.Sub(s.StaleSince).Round(time.Second))
			}
			if s.Err != nil {
				detail += ": " + s.Err.Error()
			}
			bad = append(bad, detail)
		}
	}
	out := fmt.Sprintf("%d/%d sources fresh", fresh, len(r.Sources))
	if len(bad) > 0 {
		out += "; " + strings.Join(bad, "; ")
	}
	return out
}
