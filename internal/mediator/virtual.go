package mediator

import (
	"fmt"
	"sort"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// VirtualQuery evaluates a query over the mediated schema without a
// materialized warehouse — the "virtual" approach to data integration
// the paper contrasts with its warehousing prototype (Sec. 2.3: "in
// the virtual approach, the data remains in the sources, and queries
// to the mediator are decomposed at runtime into queries on the
// sources"). The decomposition here is source pruning: the query's
// collection references determine, through the GAV mappings, which
// sources are relevant; only those are fetched and wrapped at query
// time, only the relevant mappings run, and the query evaluates over
// the resulting transient view, which is discarded afterwards.
//
// Sources therefore stay authoritative: a VirtualQuery always sees
// their current contents, at the price of re-wrapping per query — the
// trade-off the paper describes.
func (m *Mediator) VirtualQuery(q *struql.Query) (*struql.Result, error) {
	needed := m.collectionsOf(q)
	srcNames, mappings := m.relevantSources(needed)
	if len(srcNames) == 0 {
		return nil, fmt.Errorf("mediator: query references no known mediated collection (wanted %v)", needed)
	}
	// Build the transient view: its own database, discarded after.
	db := graph.NewDatabase()
	view := db.NewGraph("virtual:" + m.warehouse)
	srcGraphs := map[string]*graph.Graph{}
	for _, s := range m.sources {
		if !srcNames[s.Name] {
			continue
		}
		content, err := s.Fetch()
		if err != nil {
			return nil, fmt.Errorf("mediator: fetching source %q: %w", s.Name, err)
		}
		g := db.NewGraph("src:" + s.Name)
		if err := s.Wrapper.Wrap(g, s.Name, content); err != nil {
			return nil, fmt.Errorf("mediator: wrapping source %q: %w", s.Name, err)
		}
		srcGraphs[s.Name] = g
		if s.Mode == Merge {
			mergeInto(view, g)
		}
	}
	for _, mq := range mappings {
		src, ok := srcGraphs[mq.Input]
		if !ok {
			continue
		}
		if _, err := struql.Eval(mq, src, &struql.Options{Output: view, Registry: m.registry}); err != nil {
			return nil, fmt.Errorf("mediator: mapping over source %q: %w", mq.Input, err)
		}
	}
	return struql.Eval(q, view, &struql.Options{Registry: m.registry})
}

// collectionsOf extracts the collection names a query's membership
// conditions reference.
func (m *Mediator) collectionsOf(q *struql.Query) []string {
	set := map[string]bool{}
	var walkConds func(cs []struql.Condition)
	walkConds = func(cs []struql.Condition) {
		for _, c := range cs {
			switch c := c.(type) {
			case *struql.MembershipCond:
				set[c.Collection] = true
			case *struql.NotCond:
				walkConds([]struql.Condition{c.Inner})
			}
		}
	}
	var walk func(b *struql.Block)
	walk = func(b *struql.Block) {
		walkConds(b.Where)
		for _, ch := range b.Children {
			walk(ch)
		}
	}
	walk(q.Root)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// relevantSources maps wanted collections back to sources: a merge
// source is relevant if it could declare the collection (statically
// unknowable without wrapping, so all merge sources whose wrapped
// output is needed count); a mapped source is relevant if one of its
// mapping queries collects into a wanted collection. Mappings whose
// outputs are wanted are returned too.
func (m *Mediator) relevantSources(wanted []string) (map[string]bool, []*struql.Query) {
	wantedSet := map[string]bool{}
	for _, c := range wanted {
		wantedSet[c] = true
	}
	srcs := map[string]bool{}
	var mappings []*struql.Query
	for _, mq := range m.mappings {
		if mappingProduces(mq, wantedSet) {
			mappings = append(mappings, mq)
			srcs[mq.Input] = true
			// The mapping's own conditions may reference further
			// collections of its source graph; they come with it.
		}
	}
	// Merge-mode sources contribute their collections directly; since
	// collection names are only known after wrapping, include every
	// merge source (the common case has few).
	for _, s := range m.sources {
		if s.Mode == Merge {
			srcs[s.Name] = true
		}
	}
	return srcs, mappings
}

// mappingProduces reports whether a mapping query collects into any
// wanted collection.
func mappingProduces(q *struql.Query, wanted map[string]bool) bool {
	var walk func(b *struql.Block) bool
	walk = func(b *struql.Block) bool {
		for _, c := range b.Collects {
			if wanted[c.Collection] {
				return true
			}
		}
		for _, ch := range b.Children {
			if walk(ch) {
				return true
			}
		}
		return false
	}
	return walk(q.Root)
}
