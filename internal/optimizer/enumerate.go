package optimizer

import (
	"math"

	"strudel/internal/struql"
)

// maxEnumerable bounds the conjunction size for exhaustive
// enumeration; larger conjunctions fall back to the greedy cost-based
// planner (the same trade-off real optimizers make).
const maxEnumerable = 10

// Exhaustive enumerates condition orderings with branch-and-bound
// pruning and returns the plan with the lowest estimated cost — the
// "enumerate plans that exploit indexes on the data and the schema in
// order to choose the best plan" optimizer of [FLO 97]. The greedy
// CostBased planner can be trapped by locally cheap steps; Exhaustive
// cannot, at exponential (but pruned) planning cost.
func Exhaustive(conds []struql.Condition, ctx *Context) *Plan {
	if len(conds) > maxEnumerable {
		return CostBased(conds, ctx)
	}
	st := stats{ctx: ctx}
	e := &enumerator{
		st:       st,
		conds:    conds,
		bestCost: math.Inf(1),
	}
	used := make([]bool, len(conds))
	e.search(used, nil, map[string]bool{}, 1.0, 0)
	if e.best == nil {
		// Degenerate (no conditions): empty plan.
		return &Plan{EstRows: 1}
	}
	plan := &Plan{Steps: e.best, EstCost: e.bestCost}
	if n := len(plan.Steps); n > 0 {
		plan.EstRows = plan.Steps[n-1].EstRows
	} else {
		plan.EstRows = 1
	}
	return plan
}

type enumerator struct {
	st       stats
	conds    []struql.Condition
	best     []Step
	bestCost float64
}

// search extends the partial plan with every unused condition,
// pruning branches whose accumulated cost already exceeds the best
// complete plan.
func (e *enumerator) search(used []bool, steps []Step, bound map[string]bool, rows, cost float64) {
	if cost >= e.bestCost {
		return // prune
	}
	done := true
	for i, u := range used {
		if u {
			continue
		}
		done = false
		s := chooseMethod(e.conds[i], bound, rows, e.st)
		used[i] = true
		var added []string
		for _, v := range condVars(e.conds[i]) {
			if !bound[v] {
				bound[v] = true
				added = append(added, v)
			}
		}
		e.search(used, append(steps, s), bound, math.Max(s.EstRows, 0.1), cost+s.EstCost)
		for _, v := range added {
			delete(bound, v)
		}
		used[i] = false
	}
	if done && cost < e.bestCost {
		e.bestCost = cost
		e.best = append([]Step(nil), steps...)
	}
}
