package optimizer

import (
	"fmt"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// Execute runs the plan from the empty seed row and returns the
// binding relation.
func (p *Plan) Execute(ctx *Context) ([]struql.Binding, error) {
	return p.ExecuteFrom(ctx, nil)
}

// execLabelIndexScan enumerates the attribute extent of a literal
// label, binding both endpoints.
func execLabelIndexScan(ctx *Context, cond struql.Condition, rows []struql.Binding) ([]struql.Binding, error) {
	ec, ok := cond.(*struql.EdgeCond)
	if !ok || ctx.Index == nil {
		return struql.EvalBindings(ctx.Graph, ctx.registry(), []struql.Condition{cond}, rows)
	}
	edges := ctx.Index.ByLabel(ec.Label.Lit)
	var out []struql.Binding
	for _, r := range rows {
		for _, e := range edges {
			nr, ok := bindEdge(r, ec, e)
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out, nil
}

// execValueIndexLookup probes the global atomic-value index for edges
// targeting the condition's constant atom.
func execValueIndexLookup(ctx *Context, cond struql.Condition, rows []struql.Binding) ([]struql.Binding, error) {
	ec, ok := cond.(*struql.EdgeCond)
	if !ok || ctx.Index == nil || ec.To.IsVar() {
		return struql.EvalBindings(ctx.Graph, ctx.registry(), []struql.Condition{cond}, rows)
	}
	edges := ctx.Index.ByValue(ec.To.Const)
	var out []struql.Binding
	for _, r := range rows {
		for _, e := range edges {
			nr, ok := bindEdge(r, ec, e)
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out, nil
}

// bindEdge extends a row with an edge's endpoints if the condition's
// terms are compatible with it.
func bindEdge(r struql.Binding, ec *struql.EdgeCond, e graph.Edge) (struql.Binding, bool) {
	nr := r
	ext := func(name string, v graph.Value) bool {
		if cur, bound := nr[name]; bound {
			return cur == v
		}
		cp := make(struql.Binding, len(nr)+1)
		for k, val := range nr {
			cp[k] = val
		}
		cp[name] = v
		nr = cp
		return true
	}
	// Label.
	switch {
	case ec.Label.Any:
	case ec.Label.Var != "":
		if !ext(ec.Label.Var, graph.Str(e.Label)) {
			return nil, false
		}
	default:
		if ec.Label.Lit != e.Label {
			return nil, false
		}
	}
	// Source.
	if ec.From.IsVar() {
		if !ext(ec.From.Var, graph.NodeValue(e.From)) {
			return nil, false
		}
	} else if !ec.From.Const.IsNode() || ec.From.Const.OID() != e.From {
		return nil, false
	}
	// Target.
	if ec.To.IsVar() {
		if !ext(ec.To.Var, e.To) {
			return nil, false
		}
	} else if ec.To.Const != e.To {
		return nil, false
	}
	return nr, true
}

// PlanAndRun is a convenience: cost-based planning plus execution.
func PlanAndRun(conds []struql.Condition, ctx *Context) ([]struql.Binding, *Plan, error) {
	plan := CostBased(conds, ctx)
	rows, err := plan.Execute(ctx)
	if err != nil {
		return nil, plan, fmt.Errorf("optimizer: %w", err)
	}
	return rows, plan, nil
}

// WhereOf extracts the top-level where conjunction of a query block,
// the unit the optimizer plans.
func WhereOf(q *struql.Query) []struql.Condition {
	return q.Root.Where
}
