package optimizer

import (
	"time"

	"strudel/internal/struql"
)

// boundOf derives the bound-variable set from seed rows (all rows of
// one relation bind the same variables).
func boundOf(seed []struql.Binding) map[string]bool {
	bound := map[string]bool{}
	if len(seed) > 0 {
		for v := range seed[0] {
			bound[v] = true
		}
	}
	return bound
}

// CostBasedFrom plans by greedy cheapest-next selection using index
// statistics, starting from pre-bound variables (the bindings of
// enclosing query blocks; nil for a fresh query).
func CostBasedFrom(conds []struql.Condition, ctx *Context, bound map[string]bool) *Plan {
	st := stats{ctx: ctx}
	remaining := make([]struql.Condition, len(conds))
	copy(remaining, conds)
	b := map[string]bool{}
	for v := range bound {
		b[v] = true
	}
	rows := 1.0
	plan := &Plan{}
	met := ctx.metrics()
	for len(remaining) > 0 {
		bestIdx, bestStep := -1, Step{}
		bestScore := 1e300
		for i, c := range remaining {
			s := chooseMethod(c, b, rows, st)
			// Score favours low cost, breaking ties toward lower
			// output cardinality.
			score := s.EstCost + s.EstRows*0.01
			if score < bestScore {
				bestScore, bestIdx, bestStep = score, i, s
			}
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if met != nil {
			met.choice[bestStep.Method].Inc()
		}
		for _, v := range condVars(bestStep.Cond) {
			b[v] = true
		}
		plan.Steps = append(plan.Steps, bestStep)
		plan.EstCost += bestStep.EstCost
		if bestStep.EstRows > 0.1 {
			rows = bestStep.EstRows
		} else {
			rows = 0.1
		}
	}
	plan.EstRows = rows
	return plan
}

// ExecuteFrom runs the plan starting from the given seed relation
// instead of the empty row.
func (p *Plan) ExecuteFrom(ctx *Context, seed []struql.Binding) ([]struql.Binding, error) {
	return p.ExecuteFromObserved(ctx, seed, nil)
}

// StepObserver receives, per executed plan step, the step itself, the
// input/output row counts and the wall time spent. It backs EXPLAIN
// ANALYZE-style profiling; obs is called on the executing goroutine in
// pipeline order.
type StepObserver func(s Step, rowsIn, rowsOut int, wall time.Duration)

// ExecuteFromObserved is ExecuteFrom with per-step profiling: when obs
// is non-nil it is invoked once per plan step. Steps skipped because an
// earlier step emptied the relation are still reported (with zero
// rows and zero wall time) so a profile always covers the whole plan.
func (p *Plan) ExecuteFromObserved(ctx *Context, seed []struql.Binding, obs StepObserver) ([]struql.Binding, error) {
	rows := seed
	if rows == nil {
		rows = []struql.Binding{{}}
	}
	met := ctx.metrics()
	for si, s := range p.Steps {
		if len(rows) == 0 {
			if obs != nil {
				for _, rest := range p.Steps[si:] {
					obs(rest, 0, 0, 0)
				}
			}
			return nil, nil
		}
		in := len(rows)
		t0 := time.Now()
		var err error
		switch s.Method {
		case MethodLabelIndexScan:
			rows, err = execLabelIndexScan(ctx, s.Cond, rows)
		case MethodValueIndexLookup:
			rows, err = execValueIndexLookup(ctx, s.Cond, rows)
		default:
			rows, err = struql.EvalBindings(ctx.Graph, ctx.registry(), []struql.Condition{s.Cond}, rows)
		}
		if err != nil {
			return nil, err
		}
		if obs != nil {
			obs(s, in, len(rows), time.Since(t0))
		}
		if met != nil {
			met.observeStep(s, len(rows))
		}
	}
	return rows, nil
}

// Hook adapts the cost-based planner to struql.Options.WherePlanner,
// making the optimizer the production query stage: each block's
// conjunction is planned against the context's index statistics and
// executed with index-based physical operators.
func Hook(ctx *Context) func([]struql.Condition, []struql.Binding) ([]struql.Binding, error) {
	return func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
		plan := CostBasedFrom(conds, ctx, boundOf(seed))
		return plan.ExecuteFrom(ctx, seed)
	}
}

// ProfiledHook is Hook with per-step profiling: the returned planner
// reports every executed step (operator, index, estimated vs actual
// rows, wall time) through the per-call observer, feeding EXPLAIN's
// per-operator statistics. It adapts to struql.Options.PlannerProfiled.
func ProfiledHook(ctx *Context) func([]struql.Condition, []struql.Binding, func(struql.StepStat)) ([]struql.Binding, error) {
	return func(conds []struql.Condition, seed []struql.Binding, rec func(struql.StepStat)) ([]struql.Binding, error) {
		plan := CostBasedFrom(conds, ctx, boundOf(seed))
		var obs StepObserver
		if rec != nil {
			obs = func(s Step, in, out int, wall time.Duration) {
				rec(struql.StepStat{
					Cond:    s.Cond.String(),
					Method:  s.Method.String(),
					Index:   s.Method.IndexUsed(),
					EstRows: s.EstRows,
					RowsIn:  in,
					RowsOut: out,
					WallNS:  wall.Nanoseconds(),
				})
			}
		}
		return plan.ExecuteFromObserved(ctx, seed, obs)
	}
}
