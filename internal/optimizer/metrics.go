package optimizer

import (
	"strudel/internal/telemetry"
)

// planMetrics caches the telemetry handles a Context reports into, so
// the per-step hot path is a single atomic add.
type planMetrics struct {
	// choice counts, per physical operator, how often the planner
	// picked it — which access method won per condition.
	choice [methodCount]*telemetry.Counter
	// estRows/actualRows accumulate the planner's estimated output
	// cardinality next to the observed one, step by step, so gross
	// misestimation shows up as diverging totals.
	estRows, actualRows *telemetry.Counter
	// ratio is the per-step actual/estimated distribution; mass far
	// from the 1.0 boundary means the cost model is off.
	ratio *telemetry.Histogram
}

const methodCount = int(MethodSchemaScan) + 1

// metrics returns the Context's cached handles, or nil when no
// registry is attached. Safe for concurrent use (click-time evaluation
// plans from many request goroutines against one Context).
func (c *Context) metrics() *planMetrics {
	if c.Telemetry == nil {
		return nil
	}
	c.metOnce.Do(func() {
		m := &planMetrics{}
		for i := 0; i < methodCount; i++ {
			m.choice[i] = c.Telemetry.Counter("strudel_optimizer_plan_choice_total",
				"Conditions planned, by the physical access method chosen.",
				"method", Method(i).String())
		}
		m.estRows = c.Telemetry.Counter("strudel_optimizer_step_rows_total",
			"Binding rows per executed plan step, estimated vs. actual.",
			"kind", "estimated")
		m.actualRows = c.Telemetry.Counter("strudel_optimizer_step_rows_total",
			"Binding rows per executed plan step, estimated vs. actual.",
			"kind", "actual")
		m.ratio = c.Telemetry.Histogram("strudel_optimizer_row_estimate_ratio",
			"Per-step actual/estimated row-count ratio.",
			telemetry.RatioBuckets)
		c.met = m
	})
	return c.met
}

// observeStep records one executed step's estimated-vs-actual output.
func (m *planMetrics) observeStep(s Step, actual int) {
	m.estRows.Add(int(s.EstRows + 0.5))
	m.actualRows.Add(actual)
	if s.EstRows > 0 {
		m.ratio.Observe(float64(actual) / s.EstRows)
	}
}
