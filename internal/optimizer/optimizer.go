// Package optimizer implements STRUDEL's query optimization (paper
// Sec. 2.4, [FLO 97]). A StruQL where clause — one conjunction of
// conditions — is compiled into a physical-operation pipeline. Two
// planners are provided:
//
//   - Heuristic: the first implementation's simple planner, which
//     keeps the syntactic condition order, only pulling fully bound
//     conditions forward as filters.
//   - CostBased: estimates cardinalities from the repository's index
//     statistics and greedily picks the cheapest next condition,
//     choosing physical operators that exploit the data and schema
//     indexes (attribute-extent scans, global value-index lookups)
//     instead of full edge scans.
//
// Plans execute against a graph plus its (optional) GraphIndex and
// produce the binding relation of the conjunction — the query stage of
// StruQL. Explain renders the chosen plan for inspection.
package optimizer

import (
	"fmt"
	"strings"
	"sync"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
)

// Method is the physical operator chosen for one condition.
type Method int

// Physical operators.
const (
	// MethodGeneric evaluates the condition with the interpreter's
	// default strategy (traversal from bound endpoints, filters).
	MethodGeneric Method = iota
	// MethodCollectionScan enumerates a collection extent.
	MethodCollectionScan
	// MethodLabelIndexScan enumerates the attribute extent of a
	// literal label from the index instead of scanning all edges.
	MethodLabelIndexScan
	// MethodValueIndexLookup probes the global atomic-value index for
	// edges targeting a known atom.
	MethodValueIndexLookup
	// MethodSchemaScan enumerates the attribute-name (schema) index to
	// bind an arc variable.
	MethodSchemaScan
)

func (m Method) String() string {
	switch m {
	case MethodCollectionScan:
		return "collection-scan"
	case MethodLabelIndexScan:
		return "label-index-scan"
	case MethodValueIndexLookup:
		return "value-index-lookup"
	case MethodSchemaScan:
		return "schema-scan"
	default:
		return "generic"
	}
}

// IndexUsed names the index a physical operator reads, "" for
// operators that touch no index. EXPLAIN output surfaces this so a
// plan shows not just the operator but the structure it exploits.
func (m Method) IndexUsed() string {
	switch m {
	case MethodLabelIndexScan:
		return "label"
	case MethodValueIndexLookup:
		return "value"
	case MethodSchemaScan:
		return "schema"
	default:
		return ""
	}
}

// Step is one pipeline stage: a condition with its chosen operator and
// estimates.
type Step struct {
	Cond    struql.Condition
	Method  Method
	EstRows float64 // estimated output rows
	EstCost float64 // estimated work for this step
}

// Plan is an ordered pipeline of steps.
type Plan struct {
	Steps   []Step
	EstCost float64
	EstRows float64
}

// Explain renders the plan.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: est. cost %.0f, est. rows %.0f\n", p.EstCost, p.EstRows)
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  %d. [%s] %s  (rows≈%.0f cost≈%.0f)\n", i+1, s.Method, s.Cond, s.EstRows, s.EstCost)
	}
	return sb.String()
}

// Context carries what execution needs.
type Context struct {
	Graph *graph.Graph
	// Index may be nil (indexing disabled): index-based operators then
	// degrade to generic evaluation.
	Index *repository.GraphIndex
	// Registry may be nil (built-ins only).
	Registry *struql.Registry
	// Telemetry, when set, records plan-choice counters and
	// estimated-vs-actual row counts for every plan built and executed
	// through this context.
	Telemetry *telemetry.Registry

	metOnce sync.Once
	met     *planMetrics
}

func (c *Context) registry() *struql.Registry {
	if c.Registry == nil {
		c.Registry = struql.NewRegistry()
	}
	return c.Registry
}

// stats answer cardinality questions, falling back to graph counts
// when no index is available.
type stats struct {
	ctx *Context
}

func (s stats) numNodes() float64 {
	if s.ctx.Index != nil {
		return float64(s.ctx.Index.NumNodes())
	}
	return float64(s.ctx.Graph.NumNodes())
}

func (s stats) numEdges() float64 {
	if s.ctx.Index != nil {
		return float64(s.ctx.Index.NumEdges())
	}
	return float64(s.ctx.Graph.NumEdges())
}

func (s stats) labelCount(l string) float64 {
	if s.ctx.Index != nil {
		return float64(s.ctx.Index.LabelCount(l))
	}
	// Without an index assume a uniform distribution over labels.
	labels := s.ctx.Graph.Labels()
	if len(labels) == 0 {
		return 0
	}
	return s.numEdges() / float64(len(labels))
}

func (s stats) collectionCount(c string) float64 {
	return float64(len(s.ctx.Graph.Collection(c)))
}

func (s stats) valueCount(v graph.Value) float64 {
	if s.ctx.Index != nil {
		return float64(len(s.ctx.Index.ByValue(v)))
	}
	if dv := s.distinctValues(); dv > 0 {
		return s.numEdges() / dv
	}
	return s.numEdges()
}

func (s stats) distinctValues() float64 {
	if s.ctx.Index != nil {
		return float64(s.ctx.Index.DistinctValues())
	}
	return s.numEdges() / 2 // crude guess
}
