package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/repository"
	"strudel/internal/struql"
)

// testGraph builds a publication-like graph: n pubs with year, title,
// and a few categories; a small Featured collection.
func testGraph(n int) *graph.Graph {
	g := graph.New("data")
	for i := 0; i < n; i++ {
		p := g.NewNode(fmt.Sprintf("pub%d", i))
		g.AddToCollection("Publications", graph.NodeValue(p))
		g.AddEdge(p, "year", graph.Int(int64(1990+i%10)))
		g.AddEdge(p, "title", graph.Str(fmt.Sprintf("Title %d", i)))
		g.AddEdge(p, "category", graph.Str(fmt.Sprintf("Cat%d", i%5)))
		if i%20 == 0 {
			g.AddToCollection("Featured", graph.NodeValue(p))
		}
	}
	return g
}

func ctxFor(g *graph.Graph, indexed bool) *Context {
	repo := repository.New("")
	repo.Put(g)
	ctx := &Context{Graph: g}
	if indexed {
		ctx.Index = repo.Index(g.Name())
	}
	return ctx
}

func whereOf(t *testing.T, src string) []struql.Condition {
	t.Helper()
	q, err := struql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q.Root.Where
}

func sortedKeys(rows []struql.Binding, v string) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r[v].String())
	}
	sort.Strings(out)
	return out
}

func TestPlansAgreeWithInterpreter(t *testing.T) {
	g := testGraph(100)
	queries := []string{
		`WHERE Publications(x), x -> "year" -> y, y = 1995 COLLECT C(x)`,
		`WHERE Publications(x), x -> "category" -> "Cat3" COLLECT C(x)`,
		`WHERE Featured(x), x -> l -> v COLLECT C(x)`,
		`WHERE x -> "year" -> 1995 COLLECT C(x)`,
		`WHERE Publications(x), x -> "year" -> y, Publications(z), z -> "year" -> y, x != z COLLECT C(x)`,
	}
	for _, src := range queries {
		conds := whereOf(t, src)
		want, err := struql.EvalBindings(g, nil, conds, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, indexed := range []bool{true, false} {
			ctx := ctxFor(g, indexed)
			for name, planner := range map[string]func([]struql.Condition, *Context) *Plan{
				"cost": CostBased, "heuristic": Heuristic,
			} {
				got, err := planner(conds, ctx).Execute(ctx)
				if err != nil {
					t.Fatalf("%s (%s, indexed=%v): %v", src, name, indexed, err)
				}
				if len(got) != len(want) {
					t.Errorf("%s (%s, indexed=%v): %d rows, interpreter has %d",
						src, name, indexed, len(got), len(want))
					continue
				}
				gx, wx := sortedKeys(got, "x"), sortedKeys(want, "x")
				for i := range wx {
					if gx[i] != wx[i] {
						t.Errorf("%s (%s): row %d = %s, want %s", src, name, i, gx[i], wx[i])
						break
					}
				}
			}
		}
	}
}

func TestCostBasedUsesValueIndex(t *testing.T) {
	g := testGraph(100)
	ctx := ctxFor(g, true)
	conds := whereOf(t, `WHERE x -> "year" -> 1995 COLLECT C(x)`)
	plan := CostBased(conds, ctx)
	if plan.Steps[0].Method != MethodValueIndexLookup {
		t.Errorf("plan did not choose value index:\n%s", plan.Explain())
	}
	rows, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
}

func TestCostBasedUsesLabelIndex(t *testing.T) {
	g := testGraph(50)
	ctx := ctxFor(g, true)
	conds := whereOf(t, `WHERE x -> "category" -> c COLLECT C(x)`)
	plan := CostBased(conds, ctx)
	if plan.Steps[0].Method != MethodLabelIndexScan {
		t.Errorf("plan did not choose label index:\n%s", plan.Explain())
	}
	rows, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Errorf("rows = %d, want 50", len(rows))
	}
}

func TestCostBasedPrefersSmallCollectionFirst(t *testing.T) {
	g := testGraph(200) // Featured has 10, Publications 200
	ctx := ctxFor(g, true)
	conds := whereOf(t, `WHERE Publications(x), Featured(x) COLLECT C(x)`)
	plan := CostBased(conds, ctx)
	m, ok := plan.Steps[0].Cond.(*struql.MembershipCond)
	if !ok || m.Collection != "Featured" {
		t.Errorf("expected Featured first:\n%s", plan.Explain())
	}
	rows, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
}

func TestCostBasedCheaperThanHeuristicOnBadOrder(t *testing.T) {
	g := testGraph(200)
	ctx := ctxFor(g, true)
	// Written in a bad order: the selective equality comes last.
	conds := whereOf(t, `WHERE Publications(x), Publications(z), x -> "year" -> y, z -> "year" -> y, y = 1995 COLLECT C(x)`)
	cost := CostBased(conds, ctx)
	heur := Heuristic(conds, ctx)
	if cost.EstCost >= heur.EstCost {
		t.Errorf("cost-based (%.0f) should beat heuristic (%.0f)\ncost:\n%s\nheuristic:\n%s",
			cost.EstCost, heur.EstCost, cost.Explain(), heur.Explain())
	}
}

func TestExplainOutput(t *testing.T) {
	g := testGraph(20)
	ctx := ctxFor(g, true)
	conds := whereOf(t, `WHERE Publications(x), x -> "year" -> y COLLECT C(x)`)
	plan := CostBased(conds, ctx)
	exp := plan.Explain()
	for _, want := range []string{"plan:", "collection-scan", "Publications(x)"} {
		if !strings.Contains(exp, want) {
			t.Errorf("explain missing %q:\n%s", want, exp)
		}
	}
}

func TestPlanAndRun(t *testing.T) {
	g := testGraph(30)
	ctx := ctxFor(g, true)
	rows, plan, err := PlanAndRun(whereOf(t, `WHERE Featured(x) COLLECT C(x)`), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || plan == nil {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestEmptyIntermediateRelationShortCircuits(t *testing.T) {
	g := testGraph(10)
	ctx := ctxFor(g, true)
	conds := whereOf(t, `WHERE Publications(x), x -> "year" -> 1800, x -> "title" -> v COLLECT C(x)`)
	rows, _, err := PlanAndRun(conds, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rows))
	}
}

func TestWhereOf(t *testing.T) {
	q := struql.MustParse(`WHERE C(x), x -> "a" -> b COLLECT D(x)`)
	if len(WhereOf(q)) != 2 {
		t.Error("WhereOf wrong")
	}
}

func TestPathConditionPlanning(t *testing.T) {
	g := graph.New("g")
	root := g.NewNode("root")
	g.AddToCollection("Root", graph.NodeValue(root))
	prev := root
	for i := 0; i < 5; i++ {
		n := g.NewNode("")
		g.AddEdge(prev, "next", graph.NodeValue(n))
		prev = n
	}
	ctx := ctxFor(g, true)
	rows, plan, err := PlanAndRun(whereOf(t, `WHERE Root(r), r -> * -> q COLLECT C(q)`), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("rows = %d, want 6\n%s", len(rows), plan.Explain())
	}
	// The plan should bind Root first (cheap generator), then traverse.
	if _, ok := plan.Steps[0].Cond.(*struql.MembershipCond); !ok {
		t.Errorf("plan order wrong:\n%s", plan.Explain())
	}
}

func TestExhaustiveNeverWorseThanGreedy(t *testing.T) {
	g := testGraph(200)
	ctx := ctxFor(g, true)
	queries := []string{
		`WHERE Publications(x), x -> "year" -> y, y = 1995 COLLECT C(x)`,
		`WHERE Publications(x), Publications(z), x -> "year" -> y, z -> "year" -> y, y = 1995, x != z COLLECT C(x)`,
		`WHERE Featured(x), x -> "category" -> c, Publications(z), z -> "category" -> c COLLECT C(z)`,
	}
	for _, src := range queries {
		conds := whereOf(t, src)
		ex := Exhaustive(conds, ctx)
		greedy := CostBased(conds, ctx)
		if ex.EstCost > greedy.EstCost+1e-9 {
			t.Errorf("%s: exhaustive cost %.1f > greedy %.1f\n%s\nvs\n%s",
				src, ex.EstCost, greedy.EstCost, ex.Explain(), greedy.Explain())
		}
		// Execution agrees with the reference interpreter.
		want, err := struql.EvalBindings(g, nil, conds, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ex.Execute(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("%s: exhaustive plan yields %d rows, want %d", src, len(got), len(want))
		}
	}
}

func TestExhaustiveFallsBackOnLargeConjunctions(t *testing.T) {
	g := testGraph(10)
	ctx := ctxFor(g, true)
	// Build an 12-condition conjunction (over the enumeration cap).
	src := `WHERE Publications(a), Publications(b), Publications(c), Publications(d),
	a -> "year" -> v, b -> "year" -> v, c -> "year" -> v, d -> "year" -> v,
	a != b, a != c, a != d, b != c COLLECT C(a)`
	conds := whereOf(t, src)
	if len(conds) != 12 {
		t.Fatalf("conds = %d", len(conds))
	}
	plan := Exhaustive(conds, ctx)
	if len(plan.Steps) != 12 {
		t.Errorf("fallback plan has %d steps", len(plan.Steps))
	}
}

func TestExhaustiveEmptyConjunction(t *testing.T) {
	plan := Exhaustive(nil, ctxFor(testGraph(5), true))
	rows, err := plan.Execute(ctxFor(testGraph(5), true))
	if err != nil || len(rows) != 1 {
		t.Errorf("rows=%v err=%v", rows, err)
	}
}
