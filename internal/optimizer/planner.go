package optimizer

import (
	"math"

	"strudel/internal/struql"
)

// condVars returns the variables of a condition.
func condVars(c struql.Condition) []string {
	m := map[string]struct{}{}
	collectVars(c, m)
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}

// collectVars extracts variable names structurally (the struql package
// keeps its kind-tagged version unexported; names suffice here).
func collectVars(c struql.Condition, m map[string]struct{}) {
	add := func(t struql.Term) {
		if t.IsVar() {
			m[t.Var] = struct{}{}
		}
	}
	switch c := c.(type) {
	case *struql.MembershipCond:
		add(c.Arg)
	case *struql.EdgeCond:
		add(c.From)
		add(c.To)
		if c.Label.Var != "" {
			m[c.Label.Var] = struct{}{}
		}
	case *struql.PathCond:
		add(c.From)
		add(c.To)
	case *struql.CompareCond:
		add(c.Left)
		add(c.Right)
	case *struql.InSetCond:
		m[c.Var] = struct{}{}
	case *struql.PredCond:
		for _, a := range c.Args {
			add(a)
		}
	case *struql.NotCond:
		collectVars(c.Inner, m)
	}
}

func allBound(c struql.Condition, bound map[string]bool) bool {
	for _, v := range condVars(c) {
		if !bound[v] {
			return false
		}
	}
	return true
}

// chooseMethod picks the physical operator and estimates for one
// condition given the variables bound so far and the current row
// estimate.
func chooseMethod(c struql.Condition, bound map[string]bool, rows float64, st stats) Step {
	step := Step{Cond: c, Method: MethodGeneric}
	termBound := func(t struql.Term) bool { return !t.IsVar() || bound[t.Var] }
	switch c := c.(type) {
	case *struql.MembershipCond:
		if termBound(c.Arg) {
			step.EstRows = rows * 0.5
			step.EstCost = rows
			return step
		}
		n := st.collectionCount(c.Collection)
		step.Method = MethodCollectionScan
		step.EstRows = rows * math.Max(n, 1)
		step.EstCost = rows * math.Max(n, 1)
	case *struql.EdgeCond:
		fb, tb := termBound(c.From), termBound(c.To)
		lit := c.Label.Var == "" && !c.Label.Any
		switch {
		case fb:
			// Traverse out-edges of the bound source.
			perNode := st.numEdges() / math.Max(st.numNodes(), 1)
			if lit {
				perNode = st.labelCount(c.Label.Lit) / math.Max(st.numNodes(), 1)
			}
			out := rows * math.Max(perNode, 0.1)
			if tb {
				out *= 0.2
			}
			step.EstRows = out
			step.EstCost = rows * math.Max(st.numEdges()/math.Max(st.numNodes(), 1), 1)
		case tb && !c.To.IsVar() && c.To.Const.IsAtom() && st.ctx.Index != nil:
			// Probe the global value index for the constant atom.
			n := st.valueCount(c.To.Const)
			step.Method = MethodValueIndexLookup
			step.EstRows = rows * math.Max(n, 0.1)
			step.EstCost = rows * math.Max(n, 1)
		case tb:
			// Reverse traversal (node target) or edge scan (atom in a
			// variable): treat as per-node in-degree.
			step.EstRows = rows * math.Max(st.numEdges()/math.Max(st.numNodes(), 1), 0.1)
			step.EstCost = rows * st.numEdges() * 0.1
		case lit && st.ctx.Index != nil:
			// Both endpoints free: enumerate the attribute extent.
			n := st.labelCount(c.Label.Lit)
			step.Method = MethodLabelIndexScan
			step.EstRows = rows * math.Max(n, 1)
			step.EstCost = rows * math.Max(n, 1)
		default:
			step.EstRows = rows * math.Max(st.numEdges(), 1)
			step.EstCost = rows * math.Max(st.numEdges(), 1)
		}
	case *struql.PathCond:
		fb, tb := termBound(c.From), termBound(c.To)
		perSource := math.Max(st.numNodes()*0.5, 1)
		switch {
		case fb && tb:
			step.EstRows = rows * 0.5
			step.EstCost = rows * st.numEdges()
		case fb:
			step.EstRows = rows * perSource
			step.EstCost = rows * st.numEdges()
		default:
			step.EstRows = rows * st.numNodes() * perSource
			step.EstCost = rows * st.numNodes() * st.numEdges()
		}
	case *struql.CompareCond:
		lb, rb := termBound(c.Left), termBound(c.Right)
		switch {
		case lb && rb:
			sel := 0.3
			if c.Op == struql.OpEq {
				sel = 0.1
			}
			step.EstRows = math.Max(rows*sel, 0.1)
			step.EstCost = rows
		case c.Op == struql.OpEq && (lb || rb):
			step.EstRows = rows
			step.EstCost = rows
		default:
			step.EstRows = rows * st.numNodes()
			step.EstCost = rows * st.numNodes() * 10
		}
	case *struql.InSetCond:
		if bound[c.Var] {
			step.EstRows = rows * 0.5
			step.EstCost = rows
		} else {
			step.EstRows = rows * float64(len(c.Set))
			step.EstCost = rows * float64(len(c.Set))
			step.Method = MethodSchemaScan
		}
	case *struql.PredCond:
		if allBound(c, bound) {
			step.EstRows = rows * 0.5
			step.EstCost = rows
		} else {
			step.EstRows = rows * st.numNodes()
			step.EstCost = rows * st.numNodes() * 10
		}
	case *struql.NotCond:
		if allBound(c, bound) {
			step.EstRows = rows * 0.5
			step.EstCost = rows * 2
		} else {
			step.EstRows = rows * st.numNodes()
			step.EstCost = rows * st.numNodes() * st.numEdges()
		}
	default:
		step.EstRows = rows
		step.EstCost = rows
	}
	return step
}

// CostBased plans a conjunction by greedy cheapest-next selection
// using index statistics.
func CostBased(conds []struql.Condition, ctx *Context) *Plan {
	return CostBasedFrom(conds, ctx, nil)
}

// Heuristic plans a conjunction with the first prototype's strategy:
// syntactic order, except fully bound conditions are pulled forward as
// filters. No index-based operators are chosen.
func Heuristic(conds []struql.Condition, ctx *Context) *Plan {
	st := stats{ctx: ctx}
	remaining := make([]struql.Condition, len(conds))
	copy(remaining, conds)
	bound := map[string]bool{}
	rows := 1.0
	plan := &Plan{}
	for len(remaining) > 0 {
		idx := 0
		for i, c := range remaining {
			if allBound(c, bound) {
				idx = i
				break
			}
		}
		c := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		s := chooseMethod(c, bound, rows, st)
		s.Method = MethodGeneric // the prototype had no index operators
		for _, v := range condVars(c) {
			bound[v] = true
		}
		plan.Steps = append(plan.Steps, s)
		plan.EstCost += s.EstCost
		rows = math.Max(s.EstRows, 0.1)
	}
	plan.EstRows = rows
	return plan
}
