package optimizer

import (
	"reflect"
	"sort"
	"testing"

	"strudel/internal/struql"
)

// TestProfiledHookMatchesHook: profiling is observation only — the
// profiled planner returns exactly the rows the plain hook returns,
// and reports one step per condition with consistent row flow.
func TestProfiledHookMatchesHook(t *testing.T) {
	g := testGraph(100)
	queries := []string{
		`WHERE Publications(x), x -> "year" -> y, y = 1995 COLLECT C(x)`,
		`WHERE Publications(x), x -> "category" -> "Cat3" COLLECT C(x)`,
		`WHERE Featured(x), x -> l -> v COLLECT C(x)`,
	}
	for _, src := range queries {
		conds := whereOf(t, src)
		for _, indexed := range []bool{true, false} {
			plain := Hook(ctxFor(g, indexed))
			profiled := ProfiledHook(ctxFor(g, indexed))

			want, err := plain(conds, nil)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			var steps []struql.StepStat
			got, err := profiled(conds, nil, func(s struql.StepStat) { steps = append(steps, s) })
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if !reflect.DeepEqual(sortedKeys(got, "x"), sortedKeys(want, "x")) {
				t.Errorf("%s (indexed=%v): profiled rows differ from plain hook", src, indexed)
			}
			if len(steps) != len(conds) {
				t.Fatalf("%s (indexed=%v): %d steps for %d conditions", src, indexed, len(steps), len(conds))
			}
			// Row flow: each step's input is the previous step's output
			// (the first starts from the seed's single empty row), and
			// the last step's output is the result size.
			in := 1
			for i, s := range steps {
				if s.RowsIn != in {
					t.Errorf("%s step %d: rows_in = %d, want %d", src, i, s.RowsIn, in)
				}
				if s.Method == "" {
					t.Errorf("%s step %d: empty method", src, i)
				}
				if s.EstRows < 0 {
					t.Errorf("%s step %d: optimizer step without estimate", src, i)
				}
				in = s.RowsOut
			}
			if in != len(got) {
				t.Errorf("%s: final rows_out = %d, result rows = %d", src, in, len(got))
			}
		}
	}
}

// TestProfiledHookIndexAttribution: with an index available, at least
// one step reports which index it used; without one, none do.
func TestProfiledHookIndexAttribution(t *testing.T) {
	g := testGraph(100)
	conds := whereOf(t, `WHERE Publications(x), x -> "category" -> "Cat3" COLLECT C(x)`)
	indexUse := func(indexed bool) []string {
		var used []string
		_, err := ProfiledHook(ctxFor(g, indexed))(conds, nil, func(s struql.StepStat) {
			if s.Index != "" {
				used = append(used, s.Index)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(used)
		return used
	}
	if used := indexUse(true); len(used) == 0 {
		t.Error("indexed context: no step reported an index")
	}
	if used := indexUse(false); len(used) != 0 {
		t.Errorf("unindexed context reported index use: %v", used)
	}
}

// TestProfiledHookNilRecorder: a nil recorder must not crash and must
// still produce the rows.
func TestProfiledHookNilRecorder(t *testing.T) {
	g := testGraph(50)
	conds := whereOf(t, `WHERE Publications(x), x -> "category" -> "Cat1" COLLECT C(x)`)
	got, err := ProfiledHook(ctxFor(g, true))(conds, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Hook(ctxFor(g, true))(conds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedKeys(got, "x"), sortedKeys(want, "x")) {
		t.Error("nil-recorder rows differ from plain hook")
	}
}

// TestProfiledHookEmptyRelation: steps after the relation empties are
// still reported, with zero rows, so the profile covers the whole plan.
func TestProfiledHookEmptyRelation(t *testing.T) {
	g := testGraph(20)
	conds := whereOf(t, `WHERE Publications(x), x -> "year" -> y, y = 1700, x -> "title" -> v COLLECT C(x)`)
	var steps []struql.StepStat
	rows, err := ProfiledHook(ctxFor(g, true))(conds, nil, func(s struql.StepStat) { steps = append(steps, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rows))
	}
	if len(steps) != len(conds) {
		t.Fatalf("steps = %d, want %d (skipped steps must still report)", len(steps), len(conds))
	}
	last := steps[len(steps)-1]
	if last.RowsIn != 0 || last.RowsOut != 0 || last.WallNS != 0 {
		t.Errorf("skipped step reported work: %+v", last)
	}
}

func TestMethodIndexUsed(t *testing.T) {
	for m, want := range map[Method]string{
		MethodLabelIndexScan:   "label",
		MethodValueIndexLookup: "value",
		MethodSchemaScan:       "schema",
		MethodCollectionScan:   "",
		MethodGeneric:          "",
	} {
		if got := m.IndexUsed(); got != want {
			t.Errorf("%v.IndexUsed() = %q, want %q", m, got, want)
		}
	}
}
