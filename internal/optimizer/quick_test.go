package optimizer

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"strudel/internal/repository"
	"strudel/internal/struql"
)

// randomConjunction builds a random but range-restricted conjunction
// over the test graph's shape.
func randomConjunction(rng *rand.Rand) string {
	conds := []string{"Publications(x)"}
	vars := []string{"x"}
	nextVar := 0
	newVar := func() string {
		nextVar++
		return fmt.Sprintf("v%d", nextVar)
	}
	attrs := []string{"year", "category", "title"}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		from := vars[rng.Intn(len(vars))]
		switch rng.Intn(4) {
		case 0: // edge to fresh variable
			v := newVar()
			conds = append(conds, fmt.Sprintf(`%s -> %q -> %s`, from, attrs[rng.Intn(len(attrs))], v))
			vars = append(vars, v)
		case 1: // edge to constant
			conds = append(conds, fmt.Sprintf(`%s -> "year" -> %d`, from, 1990+rng.Intn(10)))
		case 2: // arc variable edge
			v, l := newVar(), newVar()
			conds = append(conds, fmt.Sprintf(`%s -> %sL -> %s`, from, l, v))
			vars = append(vars, v)
		default: // comparison on an existing variable
			conds = append(conds, fmt.Sprintf(`%s != "zzz"`, vars[rng.Intn(len(vars))]))
		}
	}
	return "WHERE " + joinConds(conds) + " COLLECT Out(x)"
}

func joinConds(cs []string) string {
	out := cs[0]
	for _, c := range cs[1:] {
		out += ", " + c
	}
	return out
}

// TestQuickPlannersAgree: for random conjunctions, the heuristic,
// greedy cost-based and exhaustive planners all produce the same
// binding relation as the reference interpreter, with and without
// indexes.
func TestQuickPlannersAgree(t *testing.T) {
	g := testGraph(60)
	repo := repository.New("")
	repo.Put(g)
	idx := repo.Index(g.Name())
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomConjunction(rng)
		q, err := struql.Parse(src)
		if err != nil {
			t.Logf("generator produced unparseable query %q: %v", src, err)
			return false
		}
		conds := q.Root.Where
		want, err := struql.EvalBindings(g, nil, conds, nil)
		if err != nil {
			return true // interpreter rejects it; nothing to compare
		}
		wantKeys := bindingKeys(want)
		for _, ix := range []*repository.GraphIndex{idx, nil} {
			ctx := &Context{Graph: g, Index: ix}
			for name, planner := range map[string]func([]struql.Condition, *Context) *Plan{
				"heuristic": Heuristic, "cost": CostBased, "exhaustive": Exhaustive,
			} {
				got, err := planner(conds, ctx).Execute(ctx)
				if err != nil {
					t.Logf("%s (%s): %v", src, name, err)
					return false
				}
				if !sameKeys(bindingKeys(got), wantKeys) {
					t.Logf("%s (%s, indexed=%v): %d rows vs %d", src, name, ix != nil, len(got), len(want))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bindingKeys canonicalizes a relation for comparison.
func bindingKeys(rows []struql.Binding) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		names := make([]string, 0, len(r))
		for n := range r {
			names = append(names, n)
		}
		sort.Strings(names)
		s := ""
		for _, n := range names {
			s += n + "=" + r[n].String() + ";"
		}
		keys[i] = s
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
