package pool

import (
	"context"
	"runtime/pprof"
	"sync"
	"testing"
)

// collectLabels runs a Map over the pool and returns the pprof label
// values its tasks observed (pprof.Do threads the labeled context into
// the task, so the labels are readable from inside).
func collectLabels(t *testing.T, p *Pool, ctx context.Context) (pool, phase string, labeled bool) {
	t.Helper()
	var mu sync.Mutex
	err := ForEach(ctx, p, 8, func(ctx context.Context, i int) error {
		pl, okP := pprof.Label(ctx, "pool")
		ph, okQ := pprof.Label(ctx, "phase")
		mu.Lock()
		pool, phase, labeled = pl, ph, okP || okQ
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool, phase, labeled
}

func TestPprofLabels(t *testing.T) {
	t.Run("name and phase", func(t *testing.T) {
		p := New(4)
		p.SetName("mysite")
		ctx := WithPhase(context.Background(), "render")
		pool, phase, _ := collectLabels(t, p, ctx)
		if pool != "mysite" || phase != "render" {
			t.Errorf("labels = pool=%q phase=%q, want mysite/render", pool, phase)
		}
	})
	t.Run("name only defaults phase", func(t *testing.T) {
		p := New(2)
		p.SetName("mysite")
		pool, phase, _ := collectLabels(t, p, context.Background())
		if pool != "mysite" || phase != "task" {
			t.Errorf("labels = pool=%q phase=%q, want mysite/task", pool, phase)
		}
	})
	t.Run("phase only defaults pool", func(t *testing.T) {
		p := New(2)
		ctx := WithPhase(context.Background(), "bind")
		pool, phase, _ := collectLabels(t, p, ctx)
		if pool != "pool" || phase != "bind" {
			t.Errorf("labels = pool=%q phase=%q, want pool/bind", pool, phase)
		}
	})
	t.Run("unnamed unphased stays unlabeled", func(t *testing.T) {
		p := New(2)
		_, _, labeled := collectLabels(t, p, context.Background())
		if labeled {
			t.Error("labels attached to tasks of an unnamed pool with no phase")
		}
	})
	t.Run("sequential path labels too", func(t *testing.T) {
		p := New(1)
		p.SetName("seq")
		ctx := WithPhase(context.Background(), "materialize")
		pool, phase, _ := collectLabels(t, p, ctx)
		if pool != "seq" || phase != "materialize" {
			t.Errorf("labels = pool=%q phase=%q, want seq/materialize", pool, phase)
		}
	})
}

func TestPhaseOf(t *testing.T) {
	if got := PhaseOf(context.Background()); got != "" {
		t.Errorf("PhaseOf(untagged) = %q", got)
	}
	ctx := WithPhase(context.Background(), "bind")
	if got := PhaseOf(ctx); got != "bind" {
		t.Errorf("PhaseOf = %q, want bind", got)
	}
}
