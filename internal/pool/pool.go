// Package pool is the bounded worker pool shared by the build
// pipeline: the HTML generator renders pages over it, the incremental
// evaluator materializes pages over it, and the query processor fans
// its binding loops out over it. The paper's generator "interprets"
// the site graph page by page (Sec. 2.3) and its cost analysis
// (Sec. 5) worries about materialization time for large sites; once
// the site graph is immutable that work is embarrassingly parallel,
// and this package supplies the one primitive every layer uses.
//
// The contract that makes parallel builds trustworthy is determinism:
// Map returns results in input order, and when several tasks fail it
// reports the error of the lowest input index — never a
// scheduling-dependent one — so a parallel pipeline run is
// indistinguishable from a sequential one, byte for byte.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"strudel/internal/telemetry"
)

// Pool bounds the parallelism of Map and ForEach and carries optional
// telemetry. The zero of everything is usable: a nil *Pool runs with
// runtime.GOMAXPROCS(0) workers and no instrumentation.
type Pool struct {
	workers int
	name    string
	busy    *telemetry.Gauge
	depth   *telemetry.Gauge
}

// New creates a pool with the given worker bound; workers <= 0 means
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker bound (GOMAXPROCS for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// SetName names the pool for pprof goroutine labels: CPU and goroutine
// profiles then attribute work to `pool=<name>` (typically the site
// being built). A nil pool or empty name is fine — tasks are then
// labeled "pool" only when a phase is set.
func (p *Pool) SetName(name string) {
	if p != nil {
		p.name = name
	}
}

// phaseKey carries the pipeline phase ("bind", "construct", "render",
// "materialize") through the context so pool tasks can be attributed
// in pprof profiles.
type phaseKey struct{}

// WithPhase tags the context with a pipeline phase for pprof
// attribution: tasks dispatched under this context carry
// `phase=<phase>` goroutine labels, so /debug/pprof CPU profiles show
// where build time goes per phase.
func WithPhase(ctx context.Context, phase string) context.Context {
	return context.WithValue(ctx, phaseKey{}, phase)
}

// PhaseOf returns the phase tag of a context, "" when untagged.
func PhaseOf(ctx context.Context) string {
	s, _ := ctx.Value(phaseKey{}).(string)
	return s
}

// Instrument makes the pool report workers-busy and queue-depth gauges
// into a telemetry registry. The depth gauge tracks undispatched tasks
// of the most recent Map and is approximate when several Maps share
// one pool.
func (p *Pool) Instrument(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	p.busy = reg.Gauge("strudel_pool_workers_busy",
		"Pool workers currently executing a task.")
	p.depth = reg.Gauge("strudel_pool_queue_depth",
		"Tasks of the current Map not yet dispatched to a worker.")
}

// PanicError wraps a panic recovered from a pool task, so one
// panicking page render fails the build with context instead of
// killing the process from a worker goroutine.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v", e.Index, e.Value)
}

// Map runs fn for every index in [0, n) on at most p.Workers()
// goroutines and returns the results in input order. The first error
// cancels the derived context to stop the remaining work; when several
// tasks fail, the error of the lowest input index is returned (a
// deterministic choice — every lower-index task has been dispatched
// before a higher one, so the lowest failure is always observed).
// Panics inside fn are captured as *PanicError. Map returns only after
// every spawned goroutine has exited.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	results := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := call(ctx, p, i, fn)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	fail := func(i int, err error) {
		// A task cut short by the cancellation below reports the
		// context error; that is a victim of the real failure, not the
		// failure itself, so it must not displace the recorded error
		// (and under parent cancellation the parent's error is returned
		// after the wait anyway).
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return
		}
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if p != nil && p.depth != nil {
					p.depth.Set(float64(n - 1 - i))
				}
				v, err := call(ctx, p, i, fn)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach is Map without results: fn runs for every index in [0, n),
// with the same ordering, cancellation and panic-capture contract.
func ForEach(ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// call invokes one task with panic capture, the busy gauge, and pprof
// goroutine labels (pool name and phase) so profiles attribute CPU to
// the pipeline phase that spent it.
func call[T any](ctx context.Context, p *Pool, i int, fn func(context.Context, int) (T, error)) (v T, err error) {
	if p != nil && p.busy != nil {
		p.busy.Add(1)
		defer p.busy.Add(-1)
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	name := ""
	if p != nil {
		name = p.name
	}
	phase := PhaseOf(ctx)
	if name == "" && phase == "" {
		return fn(ctx, i)
	}
	if name == "" {
		name = "pool"
	}
	if phase == "" {
		phase = "task"
	}
	pprof.Do(ctx, pprof.Labels("pool", name, "phase", phase), func(ctx context.Context) {
		v, err = fn(ctx, i)
	})
	return v, err
}
