package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/telemetry"
)

func TestMapOrderAndResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		got, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestNilPoolDefaults(t *testing.T) {
	var p *Pool
	if p.Workers() <= 0 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	got, err := Map(context.Background(), p, 5, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(got) != 5 {
		t.Fatalf("nil pool Map: %v %v", got, err)
	}
	p.Instrument(telemetry.NewRegistry()) // must not panic
}

func TestMapLowestIndexError(t *testing.T) {
	// Both tasks 3 and 9 fail; the reported error must be task 3's, at
	// any worker count, even though task 9 may finish first.
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), New(workers), 12, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				time.Sleep(5 * time.Millisecond)
				return 0, errors.New("err-3")
			}
			if i == 9 {
				return 0, errors.New("err-9")
			}
			return i, nil
		})
		if err == nil || err.Error() != "err-3" {
			t.Fatalf("workers=%d: err = %v, want err-3", workers, err)
		}
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), New(workers), 8, func(_ context.Context, i int) (int, error) {
			if i == 2 {
				panic(fmt.Sprintf("boom-%d", i))
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 2 || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError = index %d, %d stack bytes", workers, pe.Index, len(pe.Stack))
		}
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	go func() {
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err := Map(ctx, New(4), 10000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), New(8), 100, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestInstrumentGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(3)
	p.Instrument(reg)
	busy := reg.Gauge("strudel_pool_workers_busy", "Pool workers currently executing a task.")
	var sawBusy atomic.Bool
	if err := ForEach(context.Background(), p, 50, func(_ context.Context, i int) error {
		if busy.Value() > 0 {
			sawBusy.Store(true)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawBusy.Load() {
		t.Fatal("busy gauge never rose above zero during execution")
	}
	if busy.Value() != 0 {
		t.Fatalf("busy gauge = %v after completion", busy.Value())
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), nil, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("n=0: %v %v", got, err)
	}
}
