package pool

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

// taskPlan is one randomized Map invocation: n tasks on w workers,
// where some tasks fail and some panic. Tasks are deliberately
// context-oblivious so the lowest-index failure is always reported.
type taskPlan struct {
	n, w     int
	errs     map[int]bool // index → fails with an error
	panics   map[int]bool // index → panics
	firstBad int          // lowest failing index, or -1
}

func planFrom(seed int64) taskPlan {
	rng := rand.New(rand.NewSource(seed))
	p := taskPlan{
		n:        rng.Intn(200),
		w:        1 + rng.Intn(32),
		errs:     map[int]bool{},
		panics:   map[int]bool{},
		firstBad: -1,
	}
	for i := 0; i < p.n; i++ {
		switch rng.Intn(12) {
		case 0:
			p.errs[i] = true
		case 1:
			p.panics[i] = true
		default:
			continue
		}
		if p.firstBad == -1 || i < p.firstBad {
			p.firstBad = i
		}
	}
	return p
}

// TestQuickMapDeterministic: for random task counts, worker counts,
// panicking tasks and mid-stream errors, Map returns results in input
// order, propagates exactly the first (lowest-index) failure, and
// leaks no goroutines.
func TestQuickMapDeterministic(t *testing.T) {
	before := runtime.NumGoroutine()
	prop := func(seed int64) bool {
		p := planFrom(seed)
		got, err := Map(context.Background(), New(p.w), p.n, func(_ context.Context, i int) (string, error) {
			if p.panics[i] {
				panic(fmt.Sprintf("panic-%d", i))
			}
			if p.errs[i] {
				return "", fmt.Errorf("err-%d", i)
			}
			return fmt.Sprintf("v-%d", i), nil
		})
		if p.firstBad == -1 {
			if err != nil || len(got) != p.n {
				t.Logf("seed %d: unexpected err=%v len=%d", seed, err, len(got))
				return false
			}
			for i, v := range got {
				if v != fmt.Sprintf("v-%d", i) {
					t.Logf("seed %d: got[%d] = %q", seed, i, v)
					return false
				}
			}
			return true
		}
		if got != nil {
			t.Logf("seed %d: results returned alongside error", seed)
			return false
		}
		if p.panics[p.firstBad] {
			var pe *PanicError
			if !errors.As(err, &pe) || pe.Index != p.firstBad {
				t.Logf("seed %d: err = %v, want panic at %d", seed, err, p.firstBad)
				return false
			}
			return true
		}
		if err == nil || err.Error() != fmt.Sprintf("err-%d", p.firstBad) {
			t.Logf("seed %d: err = %v, want err-%d", seed, err, p.firstBad)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// Workers are joined before Map returns, so the goroutine count
	// settles back to the baseline (allow the runtime a moment).
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after %d — leak", before, runtime.NumGoroutine())
}
