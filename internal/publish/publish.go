// Package publish makes site publication transactional: a reader of a
// published directory observes the complete old site or the complete
// new site, never a mix, and a crash at any write boundary — power
// loss, ENOSPC, SIGKILL — is recovered from by falling back to the
// last complete generation. This is the consistency discipline the
// paper's derived-view premise rests on: the generated site is only a
// trustworthy view of the data graph if half-updated states are
// unobservable.
//
// Layout. A published directory contains numbered generation
// directories plus a commit pointer:
//
//	site-out/
//	  CURRENT            ← "gen-7\n": the committed generation
//	  gen-6/             ← previous generation (kept for rollback)
//	  gen-7/
//	    MANIFEST.json    ← per-file SHA-256, page count, build ID
//	    index.html
//	    …pages…
//
// Publication protocol (all through an injectable fsx.FS):
//
//  1. stage the new generation into gen-<n>.tmp/: pages in sorted
//     order, then MANIFEST.json;
//  2. fsync every staged file, then the staging directory;
//  3. rename gen-<n>.tmp → gen-<n>; fsync the parent directory;
//  4. commit: atomically flip CURRENT to "gen-<n>" (temp + fsync +
//     rename + parent fsync);
//  5. prune generations older than the retention window.
//
// The rename in step 4 is the single commit point. Before it, readers
// resolve CURRENT to the old generation; after it, to the new one. A
// crash anywhere leaves either a committed old state (plus debris that
// Recover deletes) or the committed new state.
package publish

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/sitegen"
)

const (
	// ManifestName is the integrity manifest inside each generation.
	ManifestName = "MANIFEST.json"
	// CurrentName is the commit pointer file naming the live generation.
	CurrentName = "CURRENT"
	genPrefix   = "gen-"
)

// ErrNoGeneration is returned by Recover and OpenSite when a published
// directory holds no complete generation to serve.
var ErrNoGeneration = errors.New("publish: no complete generation")

// Manifest records what a generation contains, hashed so torn or
// corrupted generations are detectable.
type Manifest struct {
	// Generation is the generation number, matching the directory name.
	Generation int `json:"generation"`
	// BuildID identifies the build that produced the pages (the build
	// trace ID when available).
	BuildID string `json:"build_id,omitempty"`
	// BuiltAt is when the generation was staged (UTC).
	BuiltAt time.Time `json:"built_at"`
	// Pages is the page count, redundant with len(Files) as a
	// cheap structural check.
	Pages int `json:"pages"`
	// Files maps each page path to the SHA-256 hex of its content.
	Files map[string]string `json:"files"`
}

// Publisher writes generations into one published directory.
type Publisher struct {
	fsys fsx.FS
	dir  string
	keep int
}

// New creates a publisher over fsys rooted at dir, retaining the last
// keep generations (minimum 1; keep <= 0 means the default of 2 — the
// live generation plus one rollback).
func New(fsys fsx.FS, dir string, keep int) *Publisher {
	if fsys == nil {
		fsys = fsx.OS
	}
	if keep <= 0 {
		keep = 2
	}
	return &Publisher{fsys: fsys, dir: dir, keep: keep}
}

// Dir returns the published directory.
func (p *Publisher) Dir() string { return p.dir }

func genName(n int) string { return genPrefix + strconv.Itoa(n) }

// genNumber parses a generation directory name; ok is false for
// anything else (staging dirs, CURRENT, stray files).
func genNumber(name string) (int, bool) {
	rest, found := strings.CutPrefix(name, genPrefix)
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 || genName(n) != name {
		return 0, false
	}
	return n, true
}

// hashHex is the per-file integrity hash recorded in the manifest.
func hashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validPagePath rejects page paths that would escape the generation
// directory or collide with the publication protocol's own files.
func validPagePath(path string) error {
	switch {
	case path == "" || path == ManifestName || path == CurrentName:
		return fmt.Errorf("publish: reserved page path %q", path)
	case strings.ContainsAny(path, `/\`) || path == "." || path == "..":
		return fmt.Errorf("publish: page path %q escapes the generation directory", path)
	case fsx.IsTempName(path):
		return fmt.Errorf("publish: page path %q uses the staging suffix", path)
	}
	return nil
}

// scan lists the generation numbers present under the published
// directory (complete or not, sorted ascending), the staging remnants,
// and what CURRENT names (-1 when absent or unparseable).
func (p *Publisher) scan() (gens []int, tmps []string, current int, err error) {
	entries, err := p.fsys.ReadDir(p.dir)
	if err != nil {
		return nil, nil, -1, err
	}
	current = -1
	for _, e := range entries {
		name := e.Name()
		if n, ok := genNumber(name); ok && e.IsDir() {
			gens = append(gens, n)
		} else if fsx.IsTempName(name) {
			tmps = append(tmps, name)
		}
	}
	sort.Ints(gens)
	if data, rerr := fsx.ReadFile(p.fsys, filepath.Join(p.dir, CurrentName)); rerr == nil {
		if n, ok := genNumber(strings.TrimSpace(string(data))); ok {
			current = n
		}
	}
	return gens, tmps, current, nil
}

// Publish writes a new generation containing files (page path →
// content), commits it, and prunes old generations. id labels the
// build in the manifest; a zero at means time.Now(). It returns the
// committed generation number. On error nothing is committed: the
// previously current generation stays live, and staging debris is
// cleaned up best-effort (Recover deletes anything left by a crash).
func (p *Publisher) Publish(files map[string]string, id string, at time.Time) (int, error) {
	if at.IsZero() {
		at = time.Now()
	}
	for path := range files {
		if err := validPagePath(path); err != nil {
			return 0, err
		}
	}
	if err := p.fsys.MkdirAll(p.dir, 0o755); err != nil {
		return 0, fmt.Errorf("publish: %w", err)
	}
	gens, _, current, err := p.scan()
	if err != nil {
		return 0, fmt.Errorf("publish: %w", err)
	}
	gen := current + 1
	if len(gens) > 0 && gens[len(gens)-1] >= gen {
		gen = gens[len(gens)-1] + 1
	}

	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	// Stage.
	stage := filepath.Join(p.dir, genName(gen)+".tmp")
	p.fsys.RemoveAll(stage) // stale remnant from an interrupted publish
	if err := p.fsys.MkdirAll(stage, 0o755); err != nil {
		return 0, fmt.Errorf("publish: staging generation %d: %w", gen, err)
	}
	fail := func(step string, err error) (int, error) {
		p.fsys.RemoveAll(stage)
		return 0, fmt.Errorf("publish: generation %d: %s: %w", gen, step, err)
	}
	m := Manifest{Generation: gen, BuildID: id, BuiltAt: at.UTC(), Pages: len(files), Files: make(map[string]string, len(files))}
	for _, path := range paths {
		data := []byte(files[path])
		if err := p.fsys.WriteFile(filepath.Join(stage, path), data, 0o644); err != nil {
			return fail("staging "+path, err)
		}
		m.Files[path] = hashHex(data)
	}
	mdata, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fail("encoding manifest", err)
	}
	if err := p.fsys.WriteFile(filepath.Join(stage, ManifestName), append(mdata, '\n'), 0o644); err != nil {
		return fail("staging manifest", err)
	}
	// Durability: every staged file, then the staging directory itself,
	// reaches disk before the generation becomes visible under its
	// final name.
	for _, path := range append(paths, ManifestName) {
		if err := p.fsys.Sync(filepath.Join(stage, path)); err != nil {
			return fail("fsync "+path, err)
		}
	}
	if err := p.fsys.Sync(stage); err != nil {
		return fail("fsync staging directory", err)
	}
	final := filepath.Join(p.dir, genName(gen))
	if err := p.fsys.Rename(stage, final); err != nil {
		return fail("installing generation", err)
	}
	if err := p.fsys.Sync(p.dir); err != nil {
		return 0, fmt.Errorf("publish: generation %d: fsync %s: %w", gen, p.dir, err)
	}

	// Commit point: flip CURRENT.
	if err := fsx.WriteFileDurable(p.fsys, filepath.Join(p.dir, CurrentName), []byte(genName(gen)+"\n"), 0o644); err != nil {
		return 0, fmt.Errorf("publish: generation %d: committing CURRENT: %w", gen, err)
	}

	p.prune(gen)
	return gen, nil
}

// PublishSite publishes a generated site's pages.
func (p *Publisher) PublishSite(site *sitegen.Site, id string, at time.Time) (int, error) {
	files := make(map[string]string, len(site.Pages))
	for path, pg := range site.Pages {
		files[path] = pg.HTML
	}
	return p.Publish(files, id, at)
}

// prune deletes generations older than the retention window and any
// staging remnants, best-effort: pruning failures never fail a commit,
// and Recover re-attempts the cleanup on next startup. The manifest is
// removed first so a crash mid-prune leaves an obviously-torn
// directory, never a plausible-looking stale generation.
func (p *Publisher) prune(current int) {
	gens, tmps, _, err := p.scan()
	if err != nil {
		return
	}
	for _, t := range tmps {
		p.fsys.RemoveAll(filepath.Join(p.dir, t))
	}
	floor := current - p.keep + 1
	for _, n := range gens {
		if n < floor {
			dir := filepath.Join(p.dir, genName(n))
			p.fsys.Remove(filepath.Join(dir, ManifestName))
			p.fsys.RemoveAll(dir)
		}
	}
}

// GenReport is one generation's integrity verdict.
type GenReport struct {
	// Name is the directory name ("gen-7").
	Name string `json:"name"`
	// Generation is the parsed number.
	Generation int `json:"generation"`
	// Complete is true when the manifest is present, parses, agrees
	// with the directory contents, and every file hash matches.
	Complete bool `json:"complete"`
	// Pages is the manifest's page count (0 when torn before staging).
	Pages int `json:"pages"`
	// Problems lists what is wrong with a torn generation.
	Problems []string `json:"problems,omitempty"`
}

// Report is the outcome of Verify over one published directory.
type Report struct {
	// Dir is the verified directory.
	Dir string `json:"dir"`
	// Current names the generation CURRENT points at ("" when the
	// pointer is missing or unparseable).
	Current string `json:"current,omitempty"`
	// Generations reports every generation directory found, ascending.
	Generations []GenReport `json:"generations"`
	// Staging lists leftover *.tmp entries (debris from an interrupted
	// publish; Recover deletes them).
	Staging []string `json:"staging,omitempty"`
	// Problems lists directory-level defects: missing or dangling
	// CURRENT, torn generations, no complete generation.
	Problems []string `json:"problems,omitempty"`
}

// OK reports whether the directory is intact: CURRENT names a complete
// generation and every generation present verifies against its
// manifest. Staging remnants are not defects — a publish may be in
// flight — but torn generations are: they mean an interrupted publish
// left debris Recover has not cleaned yet.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

// Summary renders the report for humans, one line per generation.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Dir)
	for _, g := range r.Generations {
		status := "complete"
		if !g.Complete {
			status = "TORN (" + strings.Join(g.Problems, "; ") + ")"
		}
		marker := "  "
		if g.Name == r.Current {
			marker = "* "
		}
		fmt.Fprintf(&b, "%s%s: %d pages, %s\n", marker, g.Name, g.Pages, status)
	}
	for _, s := range r.Staging {
		fmt.Fprintf(&b, "  %s: staging remnant\n", s)
	}
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  problem: %s\n", p)
	}
	if r.OK() {
		fmt.Fprintf(&b, "  ok: CURRENT -> %s\n", r.Current)
	}
	return b.String()
}

// verifyGen checks one generation directory against its manifest.
func verifyGen(fsys fsx.FS, dir, name string) GenReport {
	n, _ := genNumber(name)
	g := GenReport{Name: name, Generation: n}
	gdir := filepath.Join(dir, name)
	mdata, err := fsx.ReadFile(fsys, filepath.Join(gdir, ManifestName))
	if err != nil {
		g.Problems = append(g.Problems, "manifest missing: "+err.Error())
		return g
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		g.Problems = append(g.Problems, "manifest corrupt: "+err.Error())
		return g
	}
	g.Pages = m.Pages
	if m.Generation != n {
		g.Problems = append(g.Problems, fmt.Sprintf("manifest names generation %d", m.Generation))
	}
	if m.Pages != len(m.Files) {
		g.Problems = append(g.Problems, fmt.Sprintf("manifest page count %d != %d listed files", m.Pages, len(m.Files)))
	}
	// Every listed file must exist with matching content hash.
	paths := make([]string, 0, len(m.Files))
	for path := range m.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := fsx.ReadFile(fsys, filepath.Join(gdir, path))
		if err != nil {
			g.Problems = append(g.Problems, path+": "+err.Error())
			continue
		}
		if got := hashHex(data); got != m.Files[path] {
			g.Problems = append(g.Problems, path+": content hash mismatch")
		}
	}
	// No unexpected extras: a file the manifest does not vouch for is
	// not part of the published site.
	if entries, err := fsys.ReadDir(gdir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if name == ManifestName {
				continue
			}
			if _, listed := m.Files[name]; !listed {
				g.Problems = append(g.Problems, name+": not in manifest")
			}
		}
	}
	g.Complete = len(g.Problems) == 0
	return g
}

// Verify checks the integrity of a published directory without
// modifying it: every generation against its manifest, and the CURRENT
// pointer against the generations found. It errors only when the
// directory itself cannot be read; integrity defects land in the
// report.
func Verify(fsys fsx.FS, dir string) (*Report, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("publish: verifying %s: %w", dir, err)
	}
	r := &Report{Dir: dir}
	complete := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if _, ok := genNumber(name); ok && e.IsDir() {
			g := verifyGen(fsys, dir, name)
			complete[name] = g.Complete
			r.Generations = append(r.Generations, g)
		} else if fsx.IsTempName(name) {
			r.Staging = append(r.Staging, name)
		}
	}
	sort.Slice(r.Generations, func(i, j int) bool {
		return r.Generations[i].Generation < r.Generations[j].Generation
	})
	for _, g := range r.Generations {
		if !g.Complete {
			r.Problems = append(r.Problems, g.Name+": generation torn")
		}
	}
	data, err := fsx.ReadFile(fsys, filepath.Join(dir, CurrentName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		r.Problems = append(r.Problems, "CURRENT missing")
	case err != nil:
		r.Problems = append(r.Problems, "CURRENT unreadable: "+err.Error())
	default:
		name := strings.TrimSpace(string(data))
		if _, ok := genNumber(name); !ok {
			r.Problems = append(r.Problems, fmt.Sprintf("CURRENT names %q, not a generation", name))
			break
		}
		r.Current = name
		if done, found := complete[name]; !found {
			r.Problems = append(r.Problems, "CURRENT -> "+name+": generation missing")
		} else if !done {
			r.Problems = append(r.Problems, "CURRENT -> "+name+": generation torn")
		}
	}
	return r, nil
}

// RecoverReport describes what Recover did.
type RecoverReport struct {
	// Current is the generation now live ("gen-7").
	Current string `json:"current"`
	// Removed lists deleted entries: staging remnants, torn
	// generations, and uncommitted generations newer than CURRENT.
	Removed []string `json:"removed,omitempty"`
	// Repointed is true when CURRENT had to be rewritten to the newest
	// complete generation (it was missing, unparseable, or dangling).
	Repointed bool `json:"repointed"`
}

// Recover makes a published directory servable after a crash. It
// deletes staging remnants and torn generations, discards complete but
// never-committed generations newer than CURRENT (they were staged but
// the publication did not reach its commit point), and — when CURRENT
// itself is missing or points at a torn or deleted generation —
// rewrites it durably to the newest complete generation. It returns
// ErrNoGeneration when nothing complete survives to serve.
//
// Recover must not run concurrently with Publish: it is a startup
// operation, and a publication between its scan and its cleanup could
// be discarded as "uncommitted".
func Recover(fsys fsx.FS, dir string) (*RecoverReport, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	v, err := Verify(fsys, dir)
	if err != nil {
		return nil, err
	}
	rep := &RecoverReport{}
	remove := func(name string) error {
		if err := fsys.RemoveAll(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("publish: recovering %s: removing %s: %w", dir, name, err)
		}
		rep.Removed = append(rep.Removed, name)
		return nil
	}
	for _, t := range v.Staging {
		if err := remove(t); err != nil {
			return nil, err
		}
	}
	var complete []GenReport
	for _, g := range v.Generations {
		if !g.Complete {
			if err := remove(g.Name); err != nil {
				return nil, err
			}
			continue
		}
		complete = append(complete, g)
	}
	// Is CURRENT still standing on a complete generation?
	currentOK := false
	if v.Current != "" {
		for _, g := range complete {
			if g.Name == v.Current {
				currentOK = true
			}
		}
	}
	if currentOK {
		rep.Current = v.Current
		cur, _ := genNumber(v.Current)
		// Staged-but-never-committed generations sit above CURRENT;
		// the publication that wrote them did not reach its commit
		// point, so by the old-or-new contract they are "new" states
		// that never happened.
		for _, g := range complete {
			if g.Generation > cur {
				if err := remove(g.Name); err != nil {
					return nil, err
				}
			}
		}
		return rep, nil
	}
	if len(complete) == 0 {
		return nil, fmt.Errorf("publish: recovering %s: %w", dir, ErrNoGeneration)
	}
	// Fall back to the newest complete generation and commit it.
	last := complete[len(complete)-1]
	if err := fsx.WriteFileDurable(fsys, filepath.Join(dir, CurrentName), []byte(last.Name+"\n"), 0o644); err != nil {
		return nil, fmt.Errorf("publish: recovering %s: rewriting CURRENT: %w", dir, err)
	}
	rep.Current = last.Name
	rep.Repointed = true
	return rep, nil
}

// Current resolves the committed generation directory of a published
// dir, verifying nothing: readers wanting integrity use OpenSite.
func Current(fsys fsx.FS, dir string) (string, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	data, err := fsx.ReadFile(fsys, filepath.Join(dir, CurrentName))
	if err != nil {
		return "", fmt.Errorf("publish: %w", err)
	}
	name := strings.TrimSpace(string(data))
	if _, ok := genNumber(name); !ok {
		return "", fmt.Errorf("publish: CURRENT names %q, not a generation", name)
	}
	return filepath.Join(dir, name), nil
}

// OpenSite loads the committed generation as a servable site, checking
// every page against the manifest hashes while reading — a torn or
// tampered generation is refused, never served. The returned site has
// Pages and Paths only (OIDs and symbolic names are not persisted).
func OpenSite(fsys fsx.FS, dir string) (*sitegen.Site, *Manifest, error) {
	if fsys == nil {
		fsys = fsx.OS
	}
	gdir, err := Current(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	mdata, err := fsx.ReadFile(fsys, filepath.Join(gdir, ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("publish: opening %s: %w", gdir, err)
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return nil, nil, fmt.Errorf("publish: opening %s: manifest corrupt: %w", gdir, err)
	}
	site := &sitegen.Site{Pages: make(map[string]*sitegen.Page, len(m.Files)), PathOf: map[graph.OID]string{}}
	for path, want := range m.Files {
		data, err := fsx.ReadFile(fsys, filepath.Join(gdir, path))
		if err != nil {
			return nil, nil, fmt.Errorf("publish: opening %s: %w", gdir, err)
		}
		if hashHex(data) != want {
			return nil, nil, fmt.Errorf("publish: opening %s: %s: content hash mismatch", gdir, path)
		}
		site.Pages[path] = &sitegen.Page{Path: path, HTML: string(data)}
	}
	return site, &m, nil
}
