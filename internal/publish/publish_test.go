package publish

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"strudel/internal/fsx"
)

var (
	siteV1 = map[string]string{
		"index.html": "<html>home v1</html>",
		"a.html":     "<html>alpha v1</html>",
		"b.html":     "<html>beta v1</html>",
	}
	siteV2 = map[string]string{
		"index.html": "<html>home v2</html>",
		"a.html":     "<html>alpha v2</html>",
		"c.html":     "<html>gamma v2</html>", // b.html dropped, c.html added
	}
)

// pagesOf flattens an opened site back to path → content for equality
// checks against the published file maps.
func pagesOf(t *testing.T, dir string) map[string]string {
	t.Helper()
	site, m, err := OpenSite(fsx.OS, dir)
	if err != nil {
		t.Fatalf("OpenSite: %v", err)
	}
	if m.Pages != len(site.Pages) {
		t.Fatalf("manifest pages %d != %d loaded", m.Pages, len(site.Pages))
	}
	out := map[string]string{}
	for path, p := range site.Pages {
		out[path] = p.HTML
	}
	return out
}

func sameSite(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestPublishAndOpenSite(t *testing.T) {
	dir := t.TempDir()
	p := New(fsx.OS, dir, 2)
	gen, err := p.Publish(siteV1, "build-1", time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 {
		t.Fatalf("first generation = %d, want 0", gen)
	}
	cur, err := Current(fsx.OS, dir)
	if err != nil || filepath.Base(cur) != "gen-0" {
		t.Fatalf("Current = %q, %v", cur, err)
	}
	if got := pagesOf(t, dir); !sameSite(got, siteV1) {
		t.Fatalf("opened site differs: %v", got)
	}
	rep, err := Verify(fsx.OS, dir)
	if err != nil || !rep.OK() {
		t.Fatalf("Verify: %v\n%s", err, rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "gen-0") {
		t.Fatalf("summary misses generation: %s", rep.Summary())
	}
}

func TestPublishGenerationsAndPrune(t *testing.T) {
	dir := t.TempDir()
	p := New(fsx.OS, dir, 2)
	for i := 0; i < 4; i++ {
		files := map[string]string{"index.html": fmt.Sprintf("v%d", i)}
		if _, err := p.Publish(files, "", time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Verify(fsx.OS, dir)
	if err != nil || !rep.OK() {
		t.Fatalf("Verify: %v\n%s", err, rep.Summary())
	}
	if rep.Current != "gen-3" {
		t.Fatalf("current = %s, want gen-3", rep.Current)
	}
	if len(rep.Generations) != 2 || rep.Generations[0].Name != "gen-2" {
		t.Fatalf("retention window wrong: %s", rep.Summary())
	}
	if got := pagesOf(t, dir)["index.html"]; got != "v3" {
		t.Fatalf("serving %q, want v3", got)
	}
}

func TestPublishRejectsBadPagePaths(t *testing.T) {
	p := New(fsx.OS, t.TempDir(), 2)
	for _, path := range []string{"", "MANIFEST.json", "CURRENT", "sub/page.html", "..", "x.tmp"} {
		if _, err := p.Publish(map[string]string{path: "x"}, "", time.Time{}); err == nil {
			t.Errorf("path %q accepted", path)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	p := New(fsx.OS, dir, 2)
	if _, err := p.Publish(siteV1, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	page := filepath.Join(dir, "gen-0", "a.html")
	data, err := os.ReadFile(page)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01 // flip one byte
	if err := os.WriteFile(page, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("flipped byte not detected:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "a.html: content hash mismatch") {
		t.Fatalf("report does not name the corrupt page:\n%s", rep.Summary())
	}
	if _, _, err := OpenSite(fsx.OS, dir); err == nil {
		t.Fatal("OpenSite served a corrupt generation")
	}

	// An extra file the manifest does not vouch for is also flagged.
	if err := os.WriteFile(filepath.Join(dir, "gen-0", "stray.html"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, _ = Verify(fsx.OS, dir)
	if !strings.Contains(rep.Summary(), "stray.html: not in manifest") {
		t.Fatalf("stray file not flagged:\n%s", rep.Summary())
	}
}

func TestRecoverRemovesTornAndUncommitted(t *testing.T) {
	dir := t.TempDir()
	p := New(fsx.OS, dir, 4)
	if _, err := p.Publish(siteV1, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A torn generation: directory without a manifest.
	if err := os.MkdirAll(filepath.Join(dir, "gen-1"), 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "gen-1", "index.html"), []byte("half"), 0o644)
	// A complete but never-committed generation above CURRENT.
	if _, err := New(fsx.OS, filepath.Join(dir), 4).Publish(siteV2, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Roll CURRENT back to gen-0 to simulate dying before the commit.
	if err := fsx.WriteFileDurable(fsx.OS, filepath.Join(dir, CurrentName), []byte("gen-0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Staging debris.
	os.MkdirAll(filepath.Join(dir, "gen-9.tmp"), 0o755)

	rep, err := Recover(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Current != "gen-0" || rep.Repointed {
		t.Fatalf("recover = %+v, want committed gen-0 untouched", rep)
	}
	if len(rep.Removed) != 3 { // gen-1 (torn), gen-2 (uncommitted), gen-9.tmp
		t.Fatalf("removed %v", rep.Removed)
	}
	if got := pagesOf(t, dir); !sameSite(got, siteV1) {
		t.Fatalf("recovered site differs from old: %v", got)
	}
	v, _ := Verify(fsx.OS, dir)
	if !v.OK() {
		t.Fatalf("recovered dir not clean:\n%s", v.Summary())
	}
}

func TestRecoverRepointsDanglingCurrent(t *testing.T) {
	dir := t.TempDir()
	p := New(fsx.OS, dir, 4)
	for _, files := range []map[string]string{siteV1, siteV2} {
		if _, err := p.Publish(files, "", time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest generation; CURRENT now dangles on a torn gen.
	if err := os.Remove(filepath.Join(dir, "gen-1", ManifestName)); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Current != "gen-0" || !rep.Repointed {
		t.Fatalf("recover = %+v, want repointed to gen-0", rep)
	}
	if got := pagesOf(t, dir); !sameSite(got, siteV1) {
		t.Fatalf("fallback site differs: %v", got)
	}
}

func TestRecoverNoGeneration(t *testing.T) {
	dir := t.TempDir()
	if _, err := Recover(fsx.OS, dir); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("err = %v, want ErrNoGeneration", err)
	}
}

// TestCrashSweep is the package-local sweep: publish v1, then crash a
// v2 publication at every mutating-operation boundary, recover, and
// require the recovered directory to serve exactly v1 or exactly v2.
// The full-scale sweep over real example sites lives in the repo root
// crash suite.
func TestCrashSweep(t *testing.T) {
	// Probe: count the fault-free operation total.
	probeDir := t.TempDir()
	if _, err := New(fsx.OS, probeDir, 2).Publish(siteV1, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	probe := fsx.NewFaultFS(fsx.OS)
	if _, err := New(probe, probeDir, 2).Publish(siteV2, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few ops (%d); is the durability discipline gone?", total)
	}

	for k := 0; k <= total; k++ {
		dir := t.TempDir()
		if _, err := New(fsx.OS, dir, 2).Publish(siteV1, "", time.Time{}); err != nil {
			t.Fatal(err)
		}
		fault := fsx.NewFaultFS(fsx.OS)
		fault.CrashAt(k)
		gen, perr := New(fault, dir, 2).Publish(siteV2, "", time.Time{})
		_ = gen

		// Reboot: recover over the real filesystem.
		if _, err := Recover(fsx.OS, dir); err != nil {
			t.Fatalf("crash at op %d: recover: %v\njournal:\n%s", k, err, strings.Join(fault.Journal(), "\n"))
		}
		got := pagesOf(t, dir)
		switch {
		case sameSite(got, siteV1), sameSite(got, siteV2):
		default:
			t.Fatalf("crash at op %d: recovered site is a MIX: %v\njournal:\n%s",
				k, got, strings.Join(fault.Journal(), "\n"))
		}
		if !fault.Crashed() && perr == nil && !sameSite(got, siteV2) {
			t.Fatalf("crash at op %d never fired but old site served", k)
		}
		rep, err := Verify(fsx.OS, dir)
		if err != nil || !rep.OK() {
			t.Fatalf("crash at op %d: recovered dir not verifiable: %v\n%s", k, err, rep.Summary())
		}
	}
}

func TestENOSPCDegradesToLastGood(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(fsx.OS, dir, 2).Publish(siteV1, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	fault := fsx.NewFaultFS(fsx.OS)
	fault.LimitBytes(25) // enough for a page or two, not the site
	_, err := New(fault, dir, 2).Publish(siteV2, "", time.Time{})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if !strings.Contains(err.Error(), "generation") {
		t.Fatalf("report does not name the generation: %v", err)
	}
	// The failed publish must not have touched the committed site.
	if got := pagesOf(t, dir); !sameSite(got, siteV1) {
		t.Fatalf("last-good site lost: %v", got)
	}
	if _, err := Recover(fsx.OS, dir); err != nil {
		t.Fatal(err)
	}
	rep, _ := Verify(fsx.OS, dir)
	if !rep.OK() {
		t.Fatalf("dir not clean after ENOSPC + recover:\n%s", rep.Summary())
	}
}

func TestEIOOnFsyncFailsPublish(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(fsx.OS, dir, 2).Publish(siteV1, "", time.Time{}); err != nil {
		t.Fatal(err)
	}
	fault := fsx.NewFaultFS(fsx.OS)
	fault.FailSync(syscall.EIO)
	if _, err := New(fault, dir, 2).Publish(siteV2, "", time.Time{}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO surfaced, not swallowed", err)
	}
	if got := pagesOf(t, dir); !sameSite(got, siteV1) {
		t.Fatalf("site changed despite failed fsync: %v", got)
	}
}

// TestConcurrentReadersDuringPublish drives OpenSite from several
// goroutines while generations are being published and requires every
// read to return one of the published versions in full — never a torn
// page, never a mixed site.
func TestConcurrentReadersDuringPublish(t *testing.T) {
	dir := t.TempDir()
	versions := make([]map[string]string, 6)
	for i := range versions {
		versions[i] = map[string]string{
			"index.html": fmt.Sprintf("<html>home v%d</html>", i),
			"a.html":     fmt.Sprintf("<html>alpha v%d with padding %s</html>", i, strings.Repeat("x", 512)),
			"b.html":     fmt.Sprintf("<html>beta v%d</html>", i),
		}
	}
	// keep must cover the versions still potentially being read.
	p := New(fsx.OS, dir, len(versions)+1)
	if _, err := p.Publish(versions[0], "", time.Time{}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				site, _, err := OpenSite(fsx.OS, dir)
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				got := map[string]string{}
				for path, pg := range site.Pages {
					got[path] = pg.HTML
				}
				ok := false
				for _, v := range versions {
					if sameSite(got, v) {
						ok = true
						break
					}
				}
				if !ok {
					errs <- fmt.Errorf("reader observed a mixed site: %v", got)
					return
				}
			}
		}()
	}
	for _, v := range versions[1:] {
		if _, err := p.Publish(v, "", time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
