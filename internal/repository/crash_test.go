package repository

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/fsx"
	"strudel/internal/graph"
)

// corruptible builds a repository with two graphs and saves it.
func corruptible(t *testing.T) (string, *Repository) {
	t.Helper()
	dir := t.TempDir()
	r := New(dir)
	r.Put(sample())
	g2 := r.NewGraph("site")
	n := g2.NewNode("Root()")
	g2.AddEdge(n, "x", graph.Str("y"))
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}
	return dir, r
}

func TestOpenTruncatedSnapshotNamesFile(t *testing.T) {
	dir, _ := corruptible(t)
	path := filepath.Join(dir, "data.graph")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	if !strings.Contains(err.Error(), "data.graph") {
		t.Fatalf("error does not name the offending file: %v", err)
	}
}

func TestOpenGarbageSnapshotNamesFile(t *testing.T) {
	dir, _ := corruptible(t)
	path := filepath.Join(dir, "site.graph")
	if err := os.WriteFile(path, []byte("this is not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil {
		t.Fatal("garbage snapshot loaded without error")
	}
	if !strings.Contains(err.Error(), "site.graph") || !strings.Contains(err.Error(), `"site"`) {
		t.Fatalf("error does not name the offending file and graph: %v", err)
	}
}

func TestOpenMissingSnapshotNamesFile(t *testing.T) {
	dir, _ := corruptible(t)
	if err := os.Remove(filepath.Join(dir, "data.graph")); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil || !strings.Contains(err.Error(), "data.graph") {
		t.Fatalf("error does not name the missing file: %v", err)
	}
}

// TestSaveCrashSweep crashes Save at every write boundary and requires
// Open to load a consistent snapshot set afterwards — the old state or
// the new one, never a torn file and never a mix the loader accepts
// silently. This is the test that makes persist.go's crash-safety
// comment true rather than aspirational.
func TestSaveCrashSweep(t *testing.T) {
	build := func(titles string) *graph.Graph {
		g := graph.New("data")
		n := g.NewNode("pub1")
		g.AddEdge(n, "title", graph.Str(titles))
		g.DeclareCollection("Publications")
		g.AddToCollection("Publications", graph.NodeValue(n))
		return g
	}

	// Probe the op count of the second save.
	probeDir := t.TempDir()
	pr := New(probeDir)
	pr.Put(build("old"))
	if err := pr.Save(); err != nil {
		t.Fatal(err)
	}
	probe := fsx.NewFaultFS(fsx.OS)
	pr.SetFS(probe)
	pr.Drop("data")
	pr.Put(build("new"))
	if err := pr.Save(); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 4 {
		t.Fatalf("suspiciously few ops (%d); durability discipline gone?", total)
	}

	for k := 0; k <= total; k++ {
		dir := t.TempDir()
		r := New(dir)
		r.Put(build("old"))
		if err := r.Save(); err != nil {
			t.Fatal(err)
		}
		fault := fsx.NewFaultFS(fsx.OS)
		fault.CrashAt(k)
		r.SetFS(fault)
		r.Drop("data")
		r.Put(build("new"))
		r.Save() // may "succeed" with dropped writes; the crash decides

		r2, err := Open(dir)
		if err != nil {
			t.Fatalf("crash at op %d: Open: %v\njournal:\n%s", k, err, strings.Join(fault.Journal(), "\n"))
		}
		g, ok := r2.Graph("data")
		if !ok {
			t.Fatalf("crash at op %d: data graph lost", k)
		}
		n, _ := g.NodeByName("pub1")
		v, _ := g.First(n, "title")
		if s, _ := v.AsString(); s != "old" && s != "new" {
			t.Fatalf("crash at op %d: torn state %q", k, s)
		}
	}
}
