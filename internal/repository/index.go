// Package repository implements STRUDEL's data repository for
// semistructured data (paper Sec. 2.2). Unlike traditional systems,
// the repository cannot rely on schema information to organize data,
// so it fully indexes both the schema and the data: one index holds
// the names of all collections and attributes in a graph, others hold
// the extent of each collection and attribute, and indexes on atomic
// values are global to the graph rather than per attribute. The
// repository also persists graphs to disk.
package repository

import (
	"sort"

	"strudel/internal/graph"
)

// GraphIndex is the full index set for one graph. It is an immutable
// snapshot; call Repository.Invalidate after mutating a graph and the
// next Index call rebuilds it.
type GraphIndex struct {
	// labels and collections are the schema indexes: the names of all
	// attributes and collections in the graph.
	labels      []string
	collections []string
	// byLabel is the attribute extent: every edge carrying a label.
	byLabel map[string][]graph.Edge
	// byValue is the global atomic-value index: every edge whose
	// target equals an atom, keyed by the atom.
	byValue map[graph.Value][]graph.Edge
	// stats for the cost-based optimizer.
	nodes, edges int
	// met counts lookups when the owning repository is instrumented.
	met *indexMetrics
}

// BuildIndex constructs the index set for a graph.
func BuildIndex(g *graph.Graph) *GraphIndex {
	idx := &GraphIndex{
		byLabel: map[string][]graph.Edge{},
		byValue: map[graph.Value][]graph.Edge{},
	}
	g.Edges(func(e graph.Edge) bool {
		idx.edges++
		idx.byLabel[e.Label] = append(idx.byLabel[e.Label], e)
		if !e.To.IsNode() {
			idx.byValue[e.To] = append(idx.byValue[e.To], e)
		}
		return true
	})
	idx.nodes = g.NumNodes()
	idx.labels = make([]string, 0, len(idx.byLabel))
	for l := range idx.byLabel {
		idx.labels = append(idx.labels, l)
	}
	sort.Strings(idx.labels)
	idx.collections = g.Collections()
	return idx
}

// Labels returns the attribute-name index (schema index).
func (i *GraphIndex) Labels() []string {
	if i.met != nil {
		i.met.schemaLookups.Inc()
	}
	return i.labels
}

// Collections returns the collection-name index (schema index).
func (i *GraphIndex) Collections() []string {
	if i.met != nil {
		i.met.schemaLookups.Inc()
	}
	return i.collections
}

// ByLabel returns the attribute extent: all edges with the label.
func (i *GraphIndex) ByLabel(label string) []graph.Edge {
	if i.met != nil {
		i.met.labelLookups.Inc()
	}
	return i.byLabel[label]
}

// ByValue returns the global value index entry for an atom: all edges
// whose target equals it.
func (i *GraphIndex) ByValue(v graph.Value) []graph.Edge {
	if i.met != nil {
		i.met.valueLookups.Inc()
	}
	return i.byValue[v]
}

// LabelCount returns the number of edges carrying a label, a
// cardinality statistic for the optimizer.
func (i *GraphIndex) LabelCount(label string) int { return len(i.byLabel[label]) }

// DistinctValues returns the number of distinct atomic values indexed.
func (i *GraphIndex) DistinctValues() int { return len(i.byValue) }

// NumNodes returns the node count at index-build time.
func (i *GraphIndex) NumNodes() int { return i.nodes }

// NumEdges returns the edge count at index-build time.
func (i *GraphIndex) NumEdges() int { return i.edges }
