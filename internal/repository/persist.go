package repository

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"strudel/internal/graph"
)

// The on-disk format is one gob-encoded snapshot file per graph plus
// a manifest listing them. Writes go through a temporary file and
// rename so a crash cannot leave a torn graph file.

type valueSnap struct {
	Kind uint8
	OID  uint64
	I    int64
	F    float64
	B    bool
	S    string
	FT   uint8
}

type edgeSnap struct {
	From  uint64
	Label string
	To    valueSnap
}

type collSnap struct {
	Name    string
	Members []valueSnap
}

type graphSnap struct {
	Name  string
	Nodes []nodeSnap
	Edges []edgeSnap
	Colls []collSnap
}

type nodeSnap struct {
	ID   uint64
	Name string
}

func snapValue(v graph.Value) valueSnap {
	s := valueSnap{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case graph.KindNode:
		s.OID = uint64(v.OID())
	case graph.KindInt:
		s.I, _ = v.AsInt()
	case graph.KindFloat:
		s.F, _ = v.AsFloat()
	case graph.KindBool:
		s.B, _ = v.AsBool()
	case graph.KindString, graph.KindURL:
		s.S, _ = v.AsString()
	case graph.KindFile:
		s.S, _ = v.AsString()
		s.FT = uint8(v.FileType())
	}
	return s
}

func (s valueSnap) value() (graph.Value, error) {
	switch graph.Kind(s.Kind) {
	case graph.KindNode:
		return graph.NodeValue(graph.OID(s.OID)), nil
	case graph.KindInt:
		return graph.Int(s.I), nil
	case graph.KindFloat:
		return graph.Float(s.F), nil
	case graph.KindBool:
		return graph.Bool(s.B), nil
	case graph.KindString:
		return graph.Str(s.S), nil
	case graph.KindURL:
		return graph.URL(s.S), nil
	case graph.KindFile:
		return graph.File(s.S, graph.FileType(s.FT)), nil
	default:
		return graph.Value{}, fmt.Errorf("repository: corrupt value kind %d", s.Kind)
	}
}

func snapshot(g *graph.Graph) *graphSnap {
	s := &graphSnap{Name: g.Name()}
	for _, id := range g.Nodes() {
		s.Nodes = append(s.Nodes, nodeSnap{ID: uint64(id), Name: g.NodeName(id)})
		for _, e := range g.Out(id) {
			s.Edges = append(s.Edges, edgeSnap{From: uint64(e.From), Label: e.Label, To: snapValue(e.To)})
		}
	}
	for _, c := range g.Collections() {
		cs := collSnap{Name: c}
		for _, m := range g.Collection(c) {
			cs.Members = append(cs.Members, snapValue(m))
		}
		s.Colls = append(s.Colls, cs)
	}
	return s
}

func restore(db *graph.Database, s *graphSnap) (*graph.Graph, error) {
	g := db.NewGraph(s.Name)
	for _, n := range s.Nodes {
		g.AddNode(graph.OID(n.ID), n.Name)
	}
	for _, e := range s.Edges {
		to, err := e.To.value()
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(graph.OID(e.From), e.Label, to); err != nil {
			return nil, err
		}
	}
	for _, c := range s.Colls {
		g.DeclareCollection(c.Name)
		for _, m := range c.Members {
			v, err := m.value()
			if err != nil {
				return nil, err
			}
			g.AddToCollection(c.Name, v)
		}
	}
	return g, nil
}

// graphFileName maps a graph name to a safe file name.
func graphFileName(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return safe + ".graph"
}

// Save writes every graph in the repository to its directory.
func (r *Repository) Save() error {
	if r.dir == "" {
		return fmt.Errorf("repository: no persistence directory configured")
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	var manifest []string
	for _, name := range r.Names() {
		g, _ := r.Graph(name)
		fn := graphFileName(name)
		if err := writeGob(filepath.Join(r.dir, fn), snapshot(g)); err != nil {
			return fmt.Errorf("repository: saving graph %q: %w", name, err)
		}
		manifest = append(manifest, name+"\t"+fn)
	}
	return writeAtomic(filepath.Join(r.dir, "MANIFEST"), []byte(strings.Join(manifest, "\n")+"\n"))
}

// Open loads a repository previously written by Save.
func Open(dir string) (*Repository, error) {
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, fmt.Errorf("repository: opening %s: %w", dir, err)
	}
	r := New(dir)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("repository: corrupt manifest line %q", line)
		}
		var snap graphSnap
		if err := readGob(filepath.Join(dir, parts[1]), &snap); err != nil {
			return nil, fmt.Errorf("repository: loading graph %q: %w", parts[0], err)
		}
		if _, err := restore(r.db, &snap); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func writeGob(path string, v any) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}

func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
