package repository

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"strings"

	"strudel/internal/fsx"
	"strudel/internal/graph"
)

// The on-disk format is one gob-encoded snapshot file per graph plus
// a manifest listing them. Writes go through a temporary file that is
// fsynced before being renamed into place, and the directory is
// fsynced after the rename, so a crash — including power loss — cannot
// leave a torn graph file: Open sees either the old snapshot or the
// new one. All I/O goes through an injectable fsx.FS (see SetFS) so
// the crash-safety claim is exercised by fault injection, not assumed.

type valueSnap struct {
	Kind uint8
	OID  uint64
	I    int64
	F    float64
	B    bool
	S    string
	FT   uint8
}

type edgeSnap struct {
	From  uint64
	Label string
	To    valueSnap
}

type collSnap struct {
	Name    string
	Members []valueSnap
}

type graphSnap struct {
	Name  string
	Nodes []nodeSnap
	Edges []edgeSnap
	Colls []collSnap
}

type nodeSnap struct {
	ID   uint64
	Name string
}

func snapValue(v graph.Value) valueSnap {
	s := valueSnap{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case graph.KindNode:
		s.OID = uint64(v.OID())
	case graph.KindInt:
		s.I, _ = v.AsInt()
	case graph.KindFloat:
		s.F, _ = v.AsFloat()
	case graph.KindBool:
		s.B, _ = v.AsBool()
	case graph.KindString, graph.KindURL:
		s.S, _ = v.AsString()
	case graph.KindFile:
		s.S, _ = v.AsString()
		s.FT = uint8(v.FileType())
	}
	return s
}

func (s valueSnap) value() (graph.Value, error) {
	switch graph.Kind(s.Kind) {
	case graph.KindNode:
		return graph.NodeValue(graph.OID(s.OID)), nil
	case graph.KindInt:
		return graph.Int(s.I), nil
	case graph.KindFloat:
		return graph.Float(s.F), nil
	case graph.KindBool:
		return graph.Bool(s.B), nil
	case graph.KindString:
		return graph.Str(s.S), nil
	case graph.KindURL:
		return graph.URL(s.S), nil
	case graph.KindFile:
		return graph.File(s.S, graph.FileType(s.FT)), nil
	default:
		return graph.Value{}, fmt.Errorf("repository: corrupt value kind %d", s.Kind)
	}
}

func snapshot(g *graph.Graph) *graphSnap {
	s := &graphSnap{Name: g.Name()}
	for _, id := range g.Nodes() {
		s.Nodes = append(s.Nodes, nodeSnap{ID: uint64(id), Name: g.NodeName(id)})
		for _, e := range g.Out(id) {
			s.Edges = append(s.Edges, edgeSnap{From: uint64(e.From), Label: e.Label, To: snapValue(e.To)})
		}
	}
	for _, c := range g.Collections() {
		cs := collSnap{Name: c}
		for _, m := range g.Collection(c) {
			cs.Members = append(cs.Members, snapValue(m))
		}
		s.Colls = append(s.Colls, cs)
	}
	return s
}

func restore(db *graph.Database, s *graphSnap) (*graph.Graph, error) {
	g := db.NewGraph(s.Name)
	for _, n := range s.Nodes {
		g.AddNode(graph.OID(n.ID), n.Name)
	}
	for _, e := range s.Edges {
		to, err := e.To.value()
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(graph.OID(e.From), e.Label, to); err != nil {
			return nil, err
		}
	}
	for _, c := range s.Colls {
		g.DeclareCollection(c.Name)
		for _, m := range c.Members {
			v, err := m.value()
			if err != nil {
				return nil, err
			}
			g.AddToCollection(c.Name, v)
		}
	}
	return g, nil
}

// graphFileName maps a graph name to a safe file name.
func graphFileName(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return safe + ".graph"
}

// Save writes every graph in the repository to its directory. Every
// file write is atomic and durable (fsync'd temp + rename + directory
// fsync), and the manifest is written last, so a crash at any point
// leaves a directory Open can load: either the previous consistent
// snapshot set or the new one.
func (r *Repository) Save() error {
	if r.dir == "" {
		return fmt.Errorf("repository: no persistence directory configured")
	}
	fsys := r.fs()
	if err := fsys.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	var manifest []string
	for _, name := range r.Names() {
		g, _ := r.Graph(name)
		fn := graphFileName(name)
		if err := writeGob(fsys, filepath.Join(r.dir, fn), snapshot(g)); err != nil {
			return fmt.Errorf("repository: saving graph %q: %w", name, err)
		}
		manifest = append(manifest, name+"\t"+fn)
	}
	data := []byte(strings.Join(manifest, "\n") + "\n")
	if err := fsx.WriteFileDurable(fsys, filepath.Join(r.dir, "MANIFEST"), data, 0o644); err != nil {
		return fmt.Errorf("repository: saving manifest: %w", err)
	}
	return nil
}

// Open loads a repository previously written by Save.
func Open(dir string) (*Repository, error) {
	return OpenFS(fsx.OS, dir)
}

// OpenFS is Open over an injectable filesystem. A snapshot file that
// is truncated, garbled, or missing fails the load with an error
// naming the offending file.
func OpenFS(fsys fsx.FS, dir string) (*Repository, error) {
	data, err := fsx.ReadFile(fsys, filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, fmt.Errorf("repository: opening %s: %w", dir, err)
	}
	r := New(dir)
	r.SetFS(fsys)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("repository: corrupt manifest line %q", line)
		}
		path := filepath.Join(dir, parts[1])
		var snap graphSnap
		if err := readGob(fsys, path, &snap); err != nil {
			return nil, fmt.Errorf("repository: loading graph %q from %s: %w", parts[0], path, err)
		}
		if _, err := restore(r.db, &snap); err != nil {
			return nil, fmt.Errorf("repository: loading graph %q from %s: %w", parts[0], path, err)
		}
	}
	return r, nil
}

// writeGob encodes v and writes it atomically and durably.
func writeGob(fsys fsx.FS, path string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return fsx.WriteFileDurable(fsys, path, buf.Bytes(), 0o644)
}

func readGob(fsys fsx.FS, path string, v any) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}
