package repository

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

func randomGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("rnd")
	n := 3 + rng.Intn(12)
	var ids []graph.OID
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		if rng.Intn(4) == 0 {
			name = "" // anonymous nodes survive persistence too
		}
		ids = append(ids, g.NewNode(name))
	}
	labels := []string{"a", "b", "c"}
	for i := 0; i < n*2; i++ {
		from := ids[rng.Intn(len(ids))]
		label := labels[rng.Intn(len(labels))]
		switch rng.Intn(6) {
		case 0:
			g.AddEdge(from, label, graph.NodeValue(ids[rng.Intn(len(ids))]))
		case 1:
			g.AddEdge(from, label, graph.Int(int64(rng.Intn(100))))
		case 2:
			g.AddEdge(from, label, graph.Float(float64(rng.Intn(100))/8))
		case 3:
			g.AddEdge(from, label, graph.Bool(rng.Intn(2) == 0))
		case 4:
			g.AddEdge(from, label, graph.URL(fmt.Sprintf("http://x/%d", rng.Intn(9))))
		default:
			g.AddEdge(from, label, graph.File(fmt.Sprintf("f%d", rng.Intn(9)), graph.FileType(rng.Intn(5))))
		}
	}
	for i := 0; i < 3; i++ {
		g.AddToCollection("Coll", graph.NodeValue(ids[rng.Intn(len(ids))]))
	}
	return g
}

// TestQuickPersistenceRoundTrip: save/open preserves the exact graph
// (OIDs, names, edges, collections) for arbitrary graphs.
func TestQuickPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	prop := func(seed int64) bool {
		g := randomGraph(seed)
		r := New(dir)
		r.Put(g)
		if err := r.Save(); err != nil {
			return false
		}
		r2, err := Open(dir)
		if err != nil {
			return false
		}
		g2, ok := r2.Graph("rnd")
		if !ok {
			return false
		}
		return g.DumpString() == g2.DumpString()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickIndexMatchesGraph: the index's extents agree with direct
// graph queries for arbitrary graphs.
func TestQuickIndexMatchesGraph(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(seed)
		idx := BuildIndex(g)
		// Label extents partition the edges.
		total := 0
		for _, l := range idx.Labels() {
			total += idx.LabelCount(l)
		}
		if total != g.NumEdges() {
			return false
		}
		// Every value-index entry is a real edge with the right target.
		valueTotal := 0
		g.Edges(func(e graph.Edge) bool {
			if !e.To.IsNode() {
				valueTotal++
			}
			return true
		})
		indexed := 0
		for _, l := range idx.Labels() {
			for _, e := range idx.ByLabel(l) {
				if !e.To.IsNode() {
					hits := idx.ByValue(e.To)
					found := false
					for _, h := range hits {
						if h == e {
							found = true
							break
						}
					}
					if !found {
						return false
					}
					indexed++
				}
			}
		}
		return indexed == valueTotal
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
