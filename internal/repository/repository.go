package repository

import (
	"fmt"
	"sync"

	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/telemetry"
)

// Repository stores the data graphs and site graphs of a STRUDEL
// application: a database of graphs plus the index sets built over
// them, with optional on-disk persistence (see Save and Open).
type Repository struct {
	mu       sync.Mutex
	db       *graph.Database
	dir      string // persistence directory; "" = memory only
	fsys     fsx.FS // filesystem Save/Open go through; nil = fsx.OS
	indexes  map[string]*GraphIndex
	indexing bool
	met      *indexMetrics
}

// indexMetrics are the repository's telemetry handles (nil when not
// instrumented).
type indexMetrics struct {
	builds, cacheHits          *telemetry.Counter
	labelLookups, valueLookups *telemetry.Counter
	schemaLookups              *telemetry.Counter
}

// Instrument makes the repository report index behaviour into a
// telemetry registry: index (re)builds, index-cache hits, and — via
// the GraphIndex snapshots it hands out — per-kind lookup counters
// (attribute extent, global value index, schema index).
func (r *Repository) Instrument(reg *telemetry.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lookups := func(kind string) *telemetry.Counter {
		return reg.Counter("strudel_repository_index_lookups_total",
			"Index probes served, by index kind.", "index", kind)
	}
	r.met = &indexMetrics{
		builds: reg.Counter("strudel_repository_index_builds_total",
			"Full index-set builds (rebuilds after invalidation included)."),
		cacheHits: reg.Counter("strudel_repository_index_cache_hits_total",
			"Index requests answered from the cached snapshot."),
		labelLookups:  lookups("label"),
		valueLookups:  lookups("value"),
		schemaLookups: lookups("schema"),
	}
	// Already cached snapshots start reporting too.
	for _, idx := range r.indexes {
		idx.met = r.met
	}
}

// New creates a repository. dir is the persistence directory used by
// Save; pass "" for a memory-only repository.
func New(dir string) *Repository {
	return &Repository{
		db:       graph.NewDatabase(),
		dir:      dir,
		indexes:  map[string]*GraphIndex{},
		indexing: true,
	}
}

// SetFS routes persistence through an injectable filesystem (nil
// restores the real one). The fault-injection suite uses this to crash
// Save at arbitrary write boundaries.
func (r *Repository) SetFS(fsys fsx.FS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fsys = fsys
}

// fs returns the filesystem persistence goes through.
func (r *Repository) fs() fsx.FS {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fsys == nil {
		return fsx.OS
	}
	return r.fsys
}

// Database exposes the underlying graph database.
func (r *Repository) Database() *graph.Database { return r.db }

// NewGraph creates (or returns) a graph in the repository's database.
func (r *Repository) NewGraph(name string) *graph.Graph {
	return r.db.NewGraph(name)
}

// Put attaches an externally built graph (e.g. a wrapper's output)
// to the repository and schedules its indexing.
func (r *Repository) Put(g *graph.Graph) {
	r.db.Attach(g)
	r.Invalidate(g.Name())
}

// Graph returns the named graph.
func (r *Repository) Graph(name string) (*graph.Graph, bool) {
	return r.db.Graph(name)
}

// SetIndexing toggles index maintenance; with indexing off, Index
// returns nil and query processing falls back to scans. Used by the
// index-ablation experiment (maintaining the full index set is
// expensive, as the paper notes, but benefits queries).
func (r *Repository) SetIndexing(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.indexing = on
	if !on {
		r.indexes = map[string]*GraphIndex{}
	}
}

// Index returns the (lazily built) index set for a graph, or nil if
// indexing is disabled or the graph does not exist.
func (r *Repository) Index(name string) *GraphIndex {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.indexing {
		return nil
	}
	if idx, ok := r.indexes[name]; ok {
		if r.met != nil {
			r.met.cacheHits.Inc()
		}
		return idx
	}
	g, ok := r.db.Graph(name)
	if !ok {
		return nil
	}
	idx := BuildIndex(g)
	idx.met = r.met
	if r.met != nil {
		r.met.builds.Inc()
	}
	r.indexes[name] = idx
	return idx
}

// Invalidate discards the cached index for a graph; the next Index
// call rebuilds it. Call after mutating a graph.
func (r *Repository) Invalidate(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.indexes, name)
}

// Drop removes a graph and its index.
func (r *Repository) Drop(name string) {
	r.db.Drop(name)
	r.Invalidate(name)
}

// Names lists the graphs in the repository.
func (r *Repository) Names() []string { return r.db.Names() }

// Stats summarizes the repository for diagnostics.
func (r *Repository) Stats() string {
	s := ""
	for _, n := range r.Names() {
		g, _ := r.Graph(n)
		st := g.Stats()
		s += fmt.Sprintf("%s: %d nodes, %d edges, %d collections, %d labels\n",
			n, st.Nodes, st.Edges, st.Collections, st.Labels)
	}
	return s
}
