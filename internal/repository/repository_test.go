package repository

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/graph"
)

func sample() *graph.Graph {
	g := graph.New("data")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddEdge(a, "title", graph.Str("Paper A"))
	g.AddEdge(a, "year", graph.Int(1997))
	g.AddEdge(a, "next", graph.NodeValue(b))
	g.AddEdge(b, "title", graph.Str("Paper B"))
	g.AddEdge(b, "year", graph.Int(1997))
	g.AddEdge(b, "ps", graph.File("b.ps", graph.FilePostScript))
	g.AddEdge(b, "home", graph.URL("http://x"))
	g.AddEdge(b, "w", graph.Float(1.5))
	g.AddEdge(b, "ok", graph.Bool(true))
	g.AddToCollection("Pubs", graph.NodeValue(a))
	g.AddToCollection("Pubs", graph.NodeValue(b))
	g.DeclareCollection("Empty")
	return g
}

func TestIndexContents(t *testing.T) {
	g := sample()
	idx := BuildIndex(g)
	if got := idx.Labels(); len(got) != 7 {
		t.Errorf("labels = %v", got)
	}
	if got := idx.Collections(); len(got) != 2 || got[0] != "Empty" {
		t.Errorf("collections = %v", got)
	}
	if n := idx.LabelCount("title"); n != 2 {
		t.Errorf("title extent = %d", n)
	}
	if n := idx.LabelCount("nosuch"); n != 0 {
		t.Errorf("missing label extent = %d", n)
	}
	// Global value index: two edges target Int(1997).
	hits := idx.ByValue(graph.Int(1997))
	if len(hits) != 2 {
		t.Errorf("ByValue(1997) = %v", hits)
	}
	// Node-valued edges are not in the value index.
	a, _ := g.NodeByName("a")
	_ = a
	if idx.DistinctValues() != 7 {
		t.Errorf("distinct values = %d", idx.DistinctValues())
	}
	if idx.NumNodes() != 2 || idx.NumEdges() != 9 {
		t.Errorf("sizes = %d nodes %d edges", idx.NumNodes(), idx.NumEdges())
	}
}

func TestRepositoryIndexLifecycle(t *testing.T) {
	r := New("")
	g := sample()
	r.Put(g)
	idx := r.Index("data")
	if idx == nil {
		t.Fatal("no index")
	}
	if again := r.Index("data"); again != idx {
		t.Error("index should be cached")
	}
	// Mutate and invalidate.
	a, _ := g.NodeByName("a")
	g.AddEdge(a, "extra", graph.Str("x"))
	r.Invalidate("data")
	idx2 := r.Index("data")
	if idx2 == idx {
		t.Error("index not rebuilt after invalidate")
	}
	if idx2.LabelCount("extra") != 1 {
		t.Error("rebuilt index missing new edge")
	}
	if r.Index("nosuch") != nil {
		t.Error("index for missing graph should be nil")
	}
}

func TestRepositoryIndexingToggle(t *testing.T) {
	r := New("")
	r.Put(sample())
	r.SetIndexing(false)
	if r.Index("data") != nil {
		t.Error("index should be nil with indexing off")
	}
	r.SetIndexing(true)
	if r.Index("data") == nil {
		t.Error("index should return after re-enabling")
	}
}

func TestSaveAndOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New(dir)
	r.Put(sample())
	g2 := r.NewGraph("site")
	n := g2.NewNode("Root()")
	g2.AddEdge(n, "x", graph.Str("y"))
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names := r2.Names(); len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	gd, _ := r2.Graph("data")
	orig := sample()
	if gd.DumpString() != orig.DumpString() {
		t.Errorf("data graph changed after round trip:\n%s\nvs\n%s", gd.DumpString(), orig.DumpString())
	}
	gs, _ := r2.Graph("site")
	root, ok := gs.NodeByName("Root()")
	if !ok {
		t.Fatal("site root lost")
	}
	if v, _ := gs.First(root, "x"); v != graph.Str("y") {
		t.Errorf("site edge lost: %v", v)
	}
	// OID allocation after load must not collide: new nodes in either
	// graph get fresh ids.
	fresh := gd.NewNode("")
	if gs.HasNode(fresh) {
		t.Error("oid collision after reload")
	}
}

func TestSaveWithoutDirFails(t *testing.T) {
	r := New("")
	if err := r.Save(); err == nil {
		t.Fatal("expected error")
	}
}

func TestOpenMissingDirFails(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("oneline-no-tab\n"), 0o644)
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Errorf("err = %v", err)
	}
}

func TestGraphFileNameSanitizes(t *testing.T) {
	fn := graphFileName("week/end site #1")
	if strings.ContainsAny(fn, "/# ") {
		t.Errorf("unsafe file name %q", fn)
	}
	if !strings.HasSuffix(fn, ".graph") {
		t.Errorf("missing suffix: %q", fn)
	}
}

func TestDropRemovesGraphAndIndex(t *testing.T) {
	r := New("")
	r.Put(sample())
	r.Index("data")
	r.Drop("data")
	if _, ok := r.Graph("data"); ok {
		t.Error("graph not dropped")
	}
	if r.Index("data") != nil {
		t.Error("index not dropped")
	}
}

func TestStatsSummary(t *testing.T) {
	r := New("")
	r.Put(sample())
	s := r.Stats()
	if !strings.Contains(s, "data: 2 nodes, 9 edges") {
		t.Errorf("stats = %q", s)
	}
}

func TestPersistAnonymousNodes(t *testing.T) {
	dir := t.TempDir()
	r := New(dir)
	g := r.NewGraph("g")
	a := g.NewNode("")
	g.AddEdge(a, "v", graph.Int(1))
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := r2.Graph("g")
	if g2.NumNodes() != 1 || g2.NumEdges() != 1 {
		t.Errorf("anonymous node lost: %+v", g2.Stats())
	}
}
