package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed BreakerState = iota
	// HalfOpen: the cooldown elapsed and one probe call is in flight;
	// its outcome decides between Closed and Open.
	HalfOpen
	// Open: calls are rejected without touching the dependency until
	// the cooldown elapses.
	Open
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrBreakerOpen is returned by Allow while the breaker rejects calls.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row open it, rejecting calls for Cooldown; then a single probe
// is admitted (half-open) and its outcome closes or re-opens the
// circuit. All transitions are driven by the injected clock.
type Breaker struct {
	mu        sync.Mutex
	clock     Clock
	threshold int
	cooldown  time.Duration
	onChange  func(from, to BreakerState)

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker creates a breaker opening after threshold consecutive
// failures and probing again after cooldown. clock nil means the wall
// clock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if clock == nil {
		clock = Real
	}
	return &Breaker{clock: clock, threshold: threshold, cooldown: cooldown}
}

// OnStateChange registers a transition observer (telemetry hook).
func (b *Breaker) OnStateChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// State returns the current position, accounting for an elapsed
// cooldown (an Open breaker past its cooldown reports HalfOpen).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cooldownOver() {
		return HalfOpen
	}
	return b.state
}

func (b *Breaker) cooldownOver() bool {
	return !b.clock.Now().Before(b.openedAt.Add(b.cooldown))
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// Allow reports whether a call may proceed. It returns nil in Closed
// state, nil for exactly one probe once an Open breaker's cooldown has
// elapsed, and ErrBreakerOpen otherwise. Every admitted call must be
// answered with Report.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	default: // Open
		if !b.cooldownOver() {
			return ErrBreakerOpen
		}
		b.transition(HalfOpen)
		b.probing = true
		return nil
	}
}

// Report records the outcome of an admitted call.
func (b *Breaker) Report(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		b.probing = false
		b.transition(Closed)
		return
	}
	switch b.state {
	case HalfOpen:
		b.probing = false
		b.openedAt = b.clock.Now()
		b.transition(Open)
	default:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.clock.Now()
			b.transition(Open)
		}
	}
}

// Do runs op through the breaker: Allow, op, Report.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Report(err)
	return err
}
