package resilience

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed BreakerState = iota
	// HalfOpen: the cooldown elapsed and one probe call is in flight;
	// its outcome decides between Closed and Open.
	HalfOpen
	// Open: calls are rejected without touching the dependency until
	// the cooldown elapses.
	Open
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrBreakerOpen is returned by Allow while the breaker rejects calls.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row open it, rejecting calls for Cooldown; then a single probe
// is admitted (half-open) and its outcome closes or re-opens the
// circuit. All transitions are driven by the injected clock.
//
// Allow hands every admitted call a Ticket; Report takes it back and
// ignores outcomes of calls admitted under an earlier state, so a slow
// call finishing after the breaker has moved on (opened, or admitted a
// probe) cannot reset the cooldown or force the circuit closed.
type Breaker struct {
	mu        sync.Mutex
	clock     Clock
	threshold int
	cooldown  time.Duration
	onChange  func(from, to BreakerState)

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	// epoch is bumped on every state transition; a Ticket carries the
	// epoch it was admitted under, and Report drops stale ones.
	epoch uint64
}

// Ticket identifies one call admitted by Allow. The zero Ticket is
// inert: Report ignores it.
type Ticket struct{ epoch uint64 }

// NewBreaker creates a breaker opening after threshold consecutive
// failures and probing again after cooldown. clock nil means the wall
// clock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if clock == nil {
		clock = Real
	}
	// epoch starts above zero so the zero Ticket never matches.
	return &Breaker{clock: clock, threshold: threshold, cooldown: cooldown, epoch: 1}
}

// OnStateChange registers a transition observer (telemetry hook).
func (b *Breaker) OnStateChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// State returns the current position, accounting for an elapsed
// cooldown (an Open breaker past its cooldown reports HalfOpen).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cooldownOver() {
		return HalfOpen
	}
	return b.state
}

func (b *Breaker) cooldownOver() bool {
	return !b.clock.Now().Before(b.openedAt.Add(b.cooldown))
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.epoch++
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// Allow reports whether a call may proceed. It admits calls in Closed
// state, exactly one probe once an Open breaker's cooldown has
// elapsed, and rejects with ErrBreakerOpen otherwise. Every admitted
// call must be answered with Report, passing the returned Ticket.
func (b *Breaker) Allow() (Ticket, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return Ticket{b.epoch}, nil
	case HalfOpen:
		if b.probing {
			return Ticket{}, ErrBreakerOpen
		}
		b.probing = true
		return Ticket{b.epoch}, nil
	default: // Open
		if !b.cooldownOver() {
			return Ticket{}, ErrBreakerOpen
		}
		b.transition(HalfOpen)
		b.probing = true
		return Ticket{b.epoch}, nil
	}
}

// Report records the outcome of an admitted call. A ticket issued
// before the breaker last changed state is ignored — the outcome of a
// call from a previous epoch says nothing about the dependency's
// health now, and must not restart an Open cooldown, fail someone
// else's probe, or force an Open circuit closed.
func (b *Breaker) Report(t Ticket, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.epoch != b.epoch {
		return
	}
	// A matching epoch means the state the call was admitted under is
	// still current: Closed or HalfOpen (tickets are never issued while
	// Open — admitting a probe first transitions to HalfOpen).
	if err == nil {
		b.failures = 0
		b.probing = false
		b.transition(Closed)
		return
	}
	if b.state == HalfOpen {
		b.probing = false
	} else {
		b.failures++
		if b.failures < b.threshold {
			return
		}
	}
	b.openedAt = b.clock.Now()
	b.transition(Open)
}

// Do runs op through the breaker: Allow, op, Report.
func (b *Breaker) Do(op func() error) error {
	t, err := b.Allow()
	if err != nil {
		return err
	}
	err = op()
	b.Report(t, err)
	return err
}
