package resilience

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time so every delay in this package — retry backoff,
// breaker cooldowns, call deadlines — is testable without real sleeps.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Real is the wall clock.
var Real Clock = realClock{}

// FakeClock is a manually advanced clock for deterministic tests.
// Advance moves time forward and fires due timers. With auto-advance
// (NewAutoClock), After fires immediately and records the requested
// duration, so code that sleeps between retries runs synchronously and
// tests assert on the recorded backoff schedule instead of waiting.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	auto   bool
	timers []fakeTimer
	sleeps []time.Duration
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a manually advanced clock at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// NewAutoClock starts an auto-advancing clock: every After advances
// time by the requested duration and fires immediately.
func NewAutoClock(start time.Time) *FakeClock {
	return &FakeClock{now: start, auto: true}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the clock passes now+d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	ch := make(chan time.Time, 1)
	if c.auto || d <= 0 {
		if c.auto {
			c.now = c.now.Add(d)
		}
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing timers in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	sort.SliceStable(c.timers, func(i, j int) bool { return c.timers[i].at.Before(c.timers[j].at) })
	remaining := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- t.at
		} else {
			remaining = append(remaining, t)
		}
	}
	c.timers = remaining
}

// Sleeps returns the durations requested via After, in order — the
// backoff schedule a retry loop actually asked for.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// Waiting reports how many timers have not fired yet.
func (c *FakeClock) Waiting() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
