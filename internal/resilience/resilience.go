// Package resilience is STRUDEL's fault-tolerance toolkit: retry with
// exponential backoff and jitter, per-dependency circuit breakers, and
// deadline-bounded calls. The mediator depends on external sources the
// paper says "may change frequently" and that live outside our control
// (Sec. 2.3); this package is how the pipeline keeps publishing a
// consistent site while those sources misbehave. Like
// internal/telemetry it is zero-dependency, and every time-dependent
// behaviour takes an injectable Clock so tests are deterministic and
// sleep-free.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrTimeout is returned by WithTimeout when the operation does not
// complete within its deadline.
var ErrTimeout = errors.New("resilience: operation timed out")

// RetryPolicy describes a bounded retry schedule.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (not re-tries); values
	// below 1 mean a single attempt with no retry.
	MaxAttempts int
	// BaseDelay is the wait after the first failure.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay; 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values below 1 mean 2.
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (0..1), so a
	// fleet of refreshers does not hammer a recovering source in
	// lockstep.
	Jitter float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay computes the backoff after the given 1-based failed attempt.
// rnd supplies the jitter sample in [0,1); nil uses math/rand.
func (p RetryPolicy) Delay(attempt int, rnd func() float64) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		if rnd == nil {
			rnd = rand.Float64
		}
		d *= 1 - p.Jitter + 2*p.Jitter*rnd()
	}
	return time.Duration(d)
}

// Retrier executes operations under a RetryPolicy.
type Retrier struct {
	Policy RetryPolicy
	// Clock paces the backoff; nil means the wall clock.
	Clock Clock
	// Rand supplies jitter samples in [0,1); nil means math/rand.
	Rand func() float64
	// OnRetry observes each scheduled retry: the 1-based attempt that
	// just failed, the wait before the next one, and the error.
	OnRetry func(attempt int, delay time.Duration, err error)
}

func (r *Retrier) clock() Clock {
	if r.Clock == nil {
		return Real
	}
	return r.Clock
}

// Do runs op until it succeeds or attempts are exhausted, returning
// the number of attempts made and the last error.
func (r *Retrier) Do(op func() error) (int, error) {
	max := r.Policy.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || attempt >= max {
			return attempt, err
		}
		delay := r.Policy.Delay(attempt, r.Rand)
		if r.OnRetry != nil {
			r.OnRetry(attempt, delay, err)
		}
		<-r.clock().After(delay)
	}
}

// WithTimeout runs op, bounding the wait by d on the given clock
// (nil = wall clock; d <= 0 = no deadline). If op has not returned by
// the deadline, WithTimeout returns ErrTimeout and the caller proceeds;
// the operation's goroutine is left to finish (or hang) on its own —
// the price of bounding calls into code that takes no context, and the
// reason refresh loops must not assume a timed-out fetch released its
// resources. A panicking op is converted into an error, not a crash.
func WithTimeout(clock Clock, d time.Duration, op func() error) error {
	if d <= 0 {
		return op()
	}
	if clock == nil {
		clock = Real
	}
	done := make(chan error, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				done <- fmt.Errorf("resilience: operation panicked: %v", rec)
			}
		}()
		done <- op()
	}()
	timeout := clock.After(d)
	select {
	case err := <-done:
		return err
	case <-timeout:
		// The operation may have finished in the same instant.
		select {
		case err := <-done:
			return err
		default:
			return ErrTimeout
		}
	}
}
