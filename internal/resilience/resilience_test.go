package resilience

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(1997, 5, 1, 0, 0, 0, 0, time.UTC)

func TestRetrySucceedsAfterFailures(t *testing.T) {
	clock := NewAutoClock(t0)
	calls := 0
	r := &Retrier{
		Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond},
		Clock:  clock,
	}
	attempts, err := r.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	// Two backoffs: 100ms then 200ms (multiplier defaults to 2).
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := clock.Sleeps()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", got, want)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	clock := NewAutoClock(t0)
	boom := errors.New("boom")
	calls := 0
	var observed []time.Duration
	r := &Retrier{
		Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 15 * time.Millisecond},
		Clock:  clock,
		OnRetry: func(attempt int, delay time.Duration, err error) {
			observed = append(observed, delay)
		},
	}
	attempts, err := r.Do(func() error { calls++; return boom })
	if !errors.Is(err, boom) || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	// 10ms, then 20ms capped to 15ms.
	if len(observed) != 2 || observed[0] != 10*time.Millisecond || observed[1] != 15*time.Millisecond {
		t.Errorf("observed delays = %v", observed)
	}
}

func TestRetrySingleAttemptByDefault(t *testing.T) {
	calls := 0
	r := &Retrier{Clock: NewAutoClock(t0)}
	attempts, err := r.Do(func() error { calls++; return errors.New("x") })
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestDelayJitterIsBoundedAndDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	// rnd=0 → 50ms (1-J), rnd just under 1 → ~150ms (1+J), rnd=0.5 → 100ms.
	if d := p.Delay(1, func() float64 { return 0 }); d != 50*time.Millisecond {
		t.Errorf("low jitter delay = %v", d)
	}
	if d := p.Delay(1, func() float64 { return 0.5 }); d != 100*time.Millisecond {
		t.Errorf("mid jitter delay = %v", d)
	}
	if d := p.Delay(1, func() float64 { return 0.999 }); d < 100*time.Millisecond || d > 150*time.Millisecond {
		t.Errorf("high jitter delay = %v", d)
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Second, Multiplier: 3, MaxDelay: 5 * time.Second}
	wants := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second, 5 * time.Second}
	for i, want := range wants {
		if d := p.Delay(i+1, nil); d != want {
			t.Errorf("Delay(%d) = %v, want %v", i+1, d, want)
		}
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(2, time.Minute, clock)
	var transitions []BreakerState
	b.OnStateChange(func(from, to BreakerState) { transitions = append(transitions, to) })

	boom := errors.New("down")
	for i := 0; i < 2; i++ {
		tk, err := b.Allow()
		if err != nil {
			t.Fatalf("call %d rejected: %v", i, err)
		}
		b.Report(tk, boom)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if len(transitions) != 1 || transitions[0] != Open {
		t.Errorf("transitions = %v", transitions)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(1, time.Minute, clock)
	tk, err := b.Allow()
	if err != nil {
		t.Fatalf("fresh breaker rejected: %v", err)
	}
	b.Report(tk, errors.New("down"))
	if b.State() != Open {
		t.Fatalf("state = %v", b.State())
	}
	// Before the cooldown: rejected.
	clock.Advance(30 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("cooldown not elapsed but call admitted")
	}
	// After the cooldown: exactly one probe.
	clock.Advance(31 * time.Second)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	b.Report(probe, nil)
	if b.State() != Closed {
		t.Fatalf("state after good probe = %v", b.State())
	}
	if _, err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(1, time.Minute, clock)
	tk, _ := b.Allow()
	b.Report(tk, errors.New("down"))
	clock.Advance(2 * time.Minute)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Report(probe, errors.New("still down"))
	if b.State() != Open {
		t.Fatalf("state = %v, want open again", b.State())
	}
	// The cooldown restarts from the failed probe.
	clock.Advance(30 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker admitted a call before new cooldown")
	}
}

// TestBreakerIgnoresStaleReports: a call admitted while Closed that
// completes only after the breaker has opened (a slow concurrent
// caller, or a timed-out fetch's abandoned goroutine) must not move
// the breaker — neither restart the cooldown on failure nor force the
// circuit closed on success.
func TestBreakerIgnoresStaleReports(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(1, time.Minute, clock)
	boom := errors.New("down")

	stale, _ := b.Allow() // slow call, admitted while Closed
	tk, _ := b.Allow()
	b.Report(tk, boom) // opens the breaker, starting the cooldown
	clock.Advance(45 * time.Second)

	b.Report(stale, boom) // late failure: cooldown must not restart
	clock.Advance(16 * time.Second)
	if _, err := b.Allow(); err != nil { // cooldown over: admits the probe
		t.Fatalf("stale failure extended the cooldown: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}

	// A late success must neither close the circuit nor free up a
	// second probe while the real one is still in flight.
	b.Report(stale, nil)
	if b.State() != HalfOpen {
		t.Fatalf("stale success moved the breaker to %v", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("stale success released a second probe")
	}
}

func TestBreakerDo(t *testing.T) {
	b := NewBreaker(1, time.Minute, NewFakeClock(t0))
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("x")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker ran op: %v", err)
	}
}

func TestWithTimeoutCompletes(t *testing.T) {
	boom := errors.New("inner")
	if err := WithTimeout(Real, time.Minute, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := WithTimeout(nil, 0, func() error { return nil }); err != nil {
		t.Fatalf("no-deadline err = %v", err)
	}
}

func TestWithTimeoutExpiresOnHang(t *testing.T) {
	clock := NewAutoClock(t0)
	hang := make(chan struct{})
	defer close(hang)
	err := WithTimeout(clock, 50*time.Millisecond, func() error {
		<-hang
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestWithTimeoutConvertsPanic(t *testing.T) {
	err := WithTimeout(Real, time.Minute, func() error { panic("template bug") })
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestFakeClockAdvanceFiresTimers(t *testing.T) {
	clock := NewFakeClock(t0)
	ch1 := clock.After(10 * time.Second)
	ch2 := clock.After(20 * time.Second)
	if clock.Waiting() != 2 {
		t.Fatalf("waiting = %d", clock.Waiting())
	}
	clock.Advance(15 * time.Second)
	select {
	case <-ch1:
	default:
		t.Fatal("first timer did not fire")
	}
	select {
	case <-ch2:
		t.Fatal("second timer fired early")
	default:
	}
	clock.Advance(5 * time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("second timer did not fire")
	}
	if clock.Now() != t0.Add(20*time.Second) {
		t.Errorf("now = %v", clock.Now())
	}
}
