package schema

import (
	"fmt"
	"strings"

	"strudel/internal/graph"
)

// Constraint is an integrity constraint on a Web site's structure
// ([FER 98b]). Each constraint can be checked in two ways:
//
//   - CheckSchema reasons over the site schema — i.e. over the
//     site-definition query itself, guaranteeing the property for
//     every site the query can generate (where decidable; schema
//     checks are conservative: a schema-level pass guarantees the
//     property only when the schema edge structure alone implies it).
//   - CheckGraph verifies the property on one concrete site graph.
//
// The paper's motivating examples are expressible: "all pages are
// reachable from the root" (Reachable), "every organization homepage
// points to the homepages of its suborganizations" (MustLink), and
// "proprietary data is not displayed on the external version"
// (Forbid / NoPath).
type Constraint interface {
	fmt.Stringer
	// CheckSchema verifies the constraint against a site schema.
	CheckSchema(s *SiteSchema) error
	// CheckGraph verifies the constraint against a concrete site
	// graph, mapping nodes to Skolem functions by their names.
	CheckGraph(g *graph.Graph) error
}

// skolemFuncOf extracts the Skolem function of a node name:
// "YearPage(1997)" → "YearPage"; names without parentheses are their
// own function.
func skolemFuncOf(name string) string {
	if i := strings.IndexByte(name, '('); i > 0 {
		return name[:i]
	}
	return name
}

// nodesOfFunc returns the concrete nodes created by a Skolem function.
func nodesOfFunc(g *graph.Graph, fn string) []graph.OID {
	var out []graph.OID
	for _, id := range g.Nodes() {
		if name := g.NodeName(id); name != "" && skolemFuncOf(name) == fn {
			out = append(out, id)
		}
	}
	return out
}

// Reachable requires every page (every Skolem node) to be reachable
// from the Root function's pages.
type Reachable struct {
	Root string
}

func (c Reachable) String() string {
	return fmt.Sprintf("all pages reachable from %s", c.Root)
}

// CheckSchema verifies reachability over the schema graph.
func (c Reachable) CheckSchema(s *SiteSchema) error {
	reach := s.Reachable(c.Root)
	var missing []string
	for _, f := range s.Funcs {
		if !reach[f] {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("constraint %q violated: functions not reachable in the site schema: %s", c, strings.Join(missing, ", "))
	}
	return nil
}

// CheckGraph verifies reachability over a concrete site graph.
func (c Reachable) CheckGraph(g *graph.Graph) error {
	roots := nodesOfFunc(g, c.Root)
	if len(roots) == 0 {
		return fmt.Errorf("constraint %q violated: no %s page exists", c, c.Root)
	}
	reach := map[graph.OID]struct{}{}
	for _, r := range roots {
		for id := range g.Reachable(r) {
			reach[id] = struct{}{}
		}
	}
	for _, id := range g.Nodes() {
		name := g.NodeName(id)
		if name == "" || !strings.Contains(name, "(") {
			continue // not a Skolem page node
		}
		if _, ok := reach[id]; !ok {
			return fmt.Errorf("constraint %q violated: page %s is unreachable", c, name)
		}
	}
	return nil
}

// MustLink requires every page of function From to have at least one
// Label edge to a page of function To ("every organization homepage
// points to the homepages of its suborganizations").
type MustLink struct {
	From  string
	Label string // "" means any label
	To    string
}

func (c MustLink) String() string {
	l := c.Label
	if l == "" {
		l = "*"
	}
	return fmt.Sprintf("every %s page links via %q to a %s page", c.From, l, c.To)
}

// CheckSchema verifies that the schema has a matching edge. This is
// conservative in the other direction than Forbid: a schema edge
// exists iff the query *can* create such links; whether every
// instance gets one depends on the data, so schema-level MustLink
// asserts possibility and CheckGraph asserts totality.
func (c MustLink) CheckSchema(s *SiteSchema) error {
	for _, e := range s.EdgesBetween(c.From, c.To) {
		if c.Label == "" || (!e.LabelIsVar && e.Label == c.Label) || e.LabelIsVar {
			return nil
		}
	}
	return fmt.Errorf("constraint %q violated: the site-definition query never links %s to %s", c, c.From, c.To)
}

// CheckGraph verifies every From page has the link.
func (c MustLink) CheckGraph(g *graph.Graph) error {
	for _, id := range nodesOfFunc(g, c.From) {
		found := false
		for _, e := range g.Out(id) {
			if c.Label != "" && e.Label != c.Label {
				continue
			}
			if e.To.IsNode() && skolemFuncOf(g.NodeName(e.To.OID())) == c.To {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("constraint %q violated: page %s has no such link", c, g.DisplayName(id))
		}
	}
	return nil
}

// Forbid requires that no page of function From carries a Label edge
// (e.g. external sites must not expose a "patent" attribute).
type Forbid struct {
	From  string // "" means any function
	Label string
}

func (c Forbid) String() string {
	from := c.From
	if from == "" {
		from = "any page"
	}
	return fmt.Sprintf("%s must not have a %q edge", from, c.Label)
}

// CheckSchema verifies the query cannot create a forbidden edge. Arc
// variables as labels are conservatively treated as violations, since
// they may carry any label from the data.
func (c Forbid) CheckSchema(s *SiteSchema) error {
	for _, e := range s.Edges {
		if c.From != "" && e.From != c.From {
			continue
		}
		if e.LabelIsVar {
			return fmt.Errorf("constraint %q possibly violated: link %s copies arbitrary labels (arc variable %s)", c, e, e.Label)
		}
		if e.Label == c.Label {
			return fmt.Errorf("constraint %q violated: the query creates edge %s", c, e)
		}
	}
	return nil
}

// CheckGraph verifies no concrete edge violates the constraint.
func (c Forbid) CheckGraph(g *graph.Graph) error {
	var bad error
	g.Edges(func(e graph.Edge) bool {
		if e.Label != c.Label {
			return true
		}
		if c.From != "" && skolemFuncOf(g.NodeName(e.From)) != c.From {
			return true
		}
		bad = fmt.Errorf("constraint %q violated: edge %s", c, g.DisplayName(e.From)+" -"+e.Label+"-> "+g.DisplayValue(e.To))
		return false
	})
	return bad
}

// NoPath requires that no sequence of links connects a From page to a
// To page (e.g. the external root must not reach internal-only pages).
type NoPath struct {
	From, To string
}

func (c NoPath) String() string {
	return fmt.Sprintf("no path from %s to %s", c.From, c.To)
}

// CheckSchema verifies over the schema graph.
func (c NoPath) CheckSchema(s *SiteSchema) error {
	if s.Reachable(c.From)[c.To] {
		return fmt.Errorf("constraint %q violated: the site schema has a path", c)
	}
	return nil
}

// CheckGraph verifies over the concrete graph.
func (c NoPath) CheckGraph(g *graph.Graph) error {
	for _, root := range nodesOfFunc(g, c.From) {
		for id := range g.Reachable(root) {
			if skolemFuncOf(g.NodeName(id)) == c.To && id != root {
				return fmt.Errorf("constraint %q violated: %s reaches %s", c, g.DisplayName(root), g.DisplayName(id))
			}
		}
	}
	return nil
}

// VerifyAll checks a set of constraints against both the schema and,
// when a concrete graph is supplied (non-nil), the graph. It returns
// all violations.
func VerifyAll(s *SiteSchema, g *graph.Graph, cs []Constraint) []error {
	var errs []error
	for _, c := range cs {
		if s != nil {
			if err := c.CheckSchema(s); err != nil {
				errs = append(errs, err)
			}
		}
		if g != nil {
			if err := c.CheckGraph(g); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}
