package schema

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// DataGuide is a graph schema extracted from the data, in the style of
// the graph schemas of [BUN 97b] that the paper's site schemas refine:
// a deterministic summary of a semistructured graph in which every
// label path from the entry points (the graph's collections) appears
// exactly once. The paper observes that "the schema for semistructured
// data is often implicit in the data"; a dataguide makes it explicit —
// useful for browsing a source's shape while writing wrappers and
// site-definition queries, and as the statistics substrate for the
// optimizer.
//
// The construction is the usual powerset (NFA→DFA) determinization:
// each guide node stands for the exact set of objects reachable by
// some label path, so extents are precise.
type DataGuide struct {
	root  *GuideNode
	nodes []*GuideNode
}

// GuideNode is one state of the dataguide: a set of objects sharing
// the label paths that reach them.
type GuideNode struct {
	id int
	// Extent is the object set this state represents, in insertion
	// order (atoms included).
	Extent []graph.Value
	// Children maps edge labels to successor states. For the root,
	// labels are collection names.
	Children map[string]*GuideNode
}

// Extract computes the dataguide of a graph. Entry points are the
// graph's collections; objects unreachable from any collection do not
// appear.
func Extract(g *graph.Graph) *DataGuide {
	dg := &DataGuide{}
	memo := map[string]*GuideNode{}
	dg.root = &GuideNode{Children: map[string]*GuideNode{}}
	dg.nodes = append(dg.nodes, dg.root)
	for _, coll := range g.Collections() {
		members := g.Collection(coll)
		if len(members) == 0 {
			continue
		}
		dg.root.Children[coll] = dg.determinize(g, members, memo)
	}
	return dg
}

// setKey canonically identifies an object set.
func setKey(vals []graph.Value) string {
	keys := make([]string, len(vals))
	for i, v := range vals {
		keys[i] = v.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func (dg *DataGuide) determinize(g *graph.Graph, objs []graph.Value, memo map[string]*GuideNode) *GuideNode {
	objs = dedupeValues(objs)
	key := setKey(objs)
	if n, ok := memo[key]; ok {
		return n
	}
	n := &GuideNode{id: len(dg.nodes), Extent: objs, Children: map[string]*GuideNode{}}
	memo[key] = n
	dg.nodes = append(dg.nodes, n)
	// Group successor objects by label.
	byLabel := map[string][]graph.Value{}
	for _, o := range objs {
		if !o.IsNode() {
			continue
		}
		for _, e := range g.Out(o.OID()) {
			byLabel[e.Label] = append(byLabel[e.Label], e.To)
		}
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		n.Children[l] = dg.determinize(g, byLabel[l], memo)
	}
	return n
}

func dedupeValues(vals []graph.Value) []graph.Value {
	seen := make(map[graph.Value]struct{}, len(vals))
	out := make([]graph.Value, 0, len(vals))
	for _, v := range vals {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// NumStates returns the number of guide nodes (excluding the root).
func (dg *DataGuide) NumStates() int { return len(dg.nodes) - 1 }

// Lookup resolves a label path (first component a collection name) to
// its extent, or nil if the path does not occur in the data.
func (dg *DataGuide) Lookup(path ...string) []graph.Value {
	n := dg.root
	for _, label := range path {
		next, ok := n.Children[label]
		if !ok {
			return nil
		}
		n = next
	}
	return n.Extent
}

// Paths enumerates every label path of the guide up to the given
// depth, sorted; a path is rendered "Coll.attr.attr".
func (dg *DataGuide) Paths(maxDepth int) []string {
	var out []string
	var walk func(n *GuideNode, prefix []string, depth int)
	walk = func(n *GuideNode, prefix []string, depth int) {
		if depth >= maxDepth {
			return
		}
		labels := make([]string, 0, len(n.Children))
		for l := range n.Children {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			p := append(append([]string{}, prefix...), l)
			out = append(out, strings.Join(p, "."))
			walk(n.Children[l], p, depth+1)
		}
	}
	walk(dg.root, nil, 0)
	sort.Strings(out)
	return out
}

// DOT renders the guide for visualization.
func (dg *DataGuide) DOT(w io.Writer) {
	fmt.Fprintln(w, "digraph dataguide {\n  rankdir=LR;")
	for _, n := range dg.nodes {
		label := fmt.Sprintf("%d (%d objs)", n.id, len(n.Extent))
		if n == dg.root {
			label = "root"
		}
		fmt.Fprintf(w, "  g%d [label=%q];\n", n.id, label)
	}
	for _, n := range dg.nodes {
		labels := make([]string, 0, len(n.Children))
		for l := range n.Children {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(w, "  g%d -> g%d [label=%q];\n", n.id, n.Children[l].id, l)
		}
	}
	fmt.Fprintln(w, "}")
}

// String summarizes the guide.
func (dg *DataGuide) String() string {
	return fmt.Sprintf("dataguide: %d states, %d level-1 paths", dg.NumStates(), len(dg.root.Children))
}
