package schema

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
)

func guideData(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("g", `
collection Publications { }
object p1 in Publications { title "A" year 1997 author a1 }
object p2 in Publications { title "B" booktitle "C" author a1 author a2 }
object a1 in Authors { name "Ann" }
object a2 in Authors { name "Bo" }
`)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestExtractDataGuide(t *testing.T) {
	g := guideData(t)
	dg := Extract(g)
	// Level-1 paths are the collections.
	paths := dg.Paths(2)
	for _, want := range []string{
		"Publications", "Publications.title", "Publications.year",
		"Publications.booktitle", "Publications.author",
		"Authors", "Authors.name",
	} {
		found := false
		for _, p := range paths {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("paths missing %q: %v", want, paths)
		}
	}
	// Extents are precise: both publications, one year atom.
	if got := dg.Lookup("Publications"); len(got) != 2 {
		t.Errorf("Publications extent = %v", got)
	}
	if got := dg.Lookup("Publications", "year"); len(got) != 1 || got[0] != graph.Int(1997) {
		t.Errorf("year extent = %v", got)
	}
	if got := dg.Lookup("Publications", "author"); len(got) != 2 {
		t.Errorf("author extent = %v", got)
	}
	if got := dg.Lookup("Publications", "author", "name"); len(got) != 2 {
		t.Errorf("author.name extent = %v", got)
	}
	if dg.Lookup("Publications", "nosuch") != nil {
		t.Error("missing path should be nil")
	}
	if dg.Lookup("NoColl") != nil {
		t.Error("missing collection should be nil")
	}
}

func TestDataGuideDeterministic(t *testing.T) {
	g := guideData(t)
	d1, d2 := Extract(g), Extract(g)
	if d1.String() != d2.String() || len(d1.Paths(3)) != len(d2.Paths(3)) {
		t.Error("extraction not deterministic")
	}
}

func TestDataGuideSharedStates(t *testing.T) {
	// Objects reachable by different paths with the same extent share
	// one guide node (powerset determinization).
	g := graph.New("g")
	hub := g.NewNode("hub")
	g.AddToCollection("C", graph.NodeValue(hub))
	shared := g.NewNode("shared")
	g.AddEdge(hub, "a", graph.NodeValue(shared))
	g.AddEdge(hub, "b", graph.NodeValue(shared))
	g.AddEdge(shared, "leaf", graph.Str("x"))
	dg := Extract(g)
	na := dg.root.Children["C"].Children["a"]
	nb := dg.root.Children["C"].Children["b"]
	if na != nb {
		t.Error("identical extents should share a state")
	}
}

func TestDataGuideCyclesTerminate(t *testing.T) {
	g := graph.New("g")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddToCollection("C", graph.NodeValue(a))
	g.AddEdge(a, "next", graph.NodeValue(b))
	g.AddEdge(b, "next", graph.NodeValue(a))
	dg := Extract(g)
	if dg.NumStates() == 0 {
		t.Fatal("no states")
	}
	// The cycle folds into finitely many states; deep lookups work.
	if got := dg.Lookup("C", "next", "next", "next", "next"); len(got) != 1 {
		t.Errorf("deep lookup = %v", got)
	}
}

func TestDataGuideDOTAndString(t *testing.T) {
	g := guideData(t)
	dg := Extract(g)
	var sb strings.Builder
	dg.DOT(&sb)
	if !strings.Contains(sb.String(), `label="Publications"`) {
		t.Errorf("DOT missing collection edge:\n%s", sb.String())
	}
	if !strings.Contains(dg.String(), "dataguide:") {
		t.Errorf("String = %q", dg.String())
	}
}

func TestDataGuideEmptyGraph(t *testing.T) {
	dg := Extract(graph.New("empty"))
	if dg.NumStates() != 0 || len(dg.Paths(3)) != 0 {
		t.Errorf("empty guide = %v", dg)
	}
}
