// Delta dependency analysis: mapping a data-graph Delta through the
// site schema's (Q, L, X, Y) edges to the set of possibly affected
// Skolem page classes. The analysis is a conservative
// over-approximation — it may mark a class affected when no page of
// that class actually changes, but it must never miss one. Every rule
// below errs toward sensitivity:
//
//   - a literal-label condition x -> "l" -> y is sensitive iff edges
//     labeled l changed;
//   - an arc-variable condition x -> l -> y is sensitive to any edge
//     change, unless the conjunction constrains l to a finite label set
//     (l in {...}, l = "lit"), in which case only those labels matter;
//   - a path expression is sensitive to the union of its literal
//     labels, and to any edge change if it contains a wildcard or an
//     external label predicate;
//   - collection membership Publications(x) is sensitive iff that
//     collection's member set changed;
//   - comparisons and external predicates are pure: their outcome
//     changes only through bindings produced by the graph-sensitive
//     conditions of the same conjunction;
//   - negation is sensitive whenever its inner condition is, and — by
//     active-domain conservatism — whenever anything at all changed,
//     because a variable bound only under not(...) ranges over the
//     whole active domain.
package schema

import (
	"sort"
	"strings"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// Impact is the result of mapping a Delta through a site schema.
type Impact struct {
	// All is the conservative fallback: no delta information was
	// available (nil delta), so every class must be treated as affected.
	All    bool
	Reason string
	// Funcs are the Skolem classes whose instances, out-edges or
	// attribute values may have changed.
	Funcs map[string]bool
	// Collections are the output collections whose membership may have
	// changed.
	Collections map[string]bool
	// RootFuncs are the classes collected into affected collections —
	// the page-set entry points whose member lists may differ.
	RootFuncs map[string]bool
}

// Empty reports that no page class can be affected: the site graph is
// provably unchanged.
func (im *Impact) Empty() bool {
	return im != nil && !im.All && len(im.Funcs) == 0 &&
		len(im.Collections) == 0 && len(im.RootFuncs) == 0
}

// Affected reports whether a Skolem class may be affected.
func (im *Impact) Affected(fn string) bool {
	if im == nil || im.All {
		return true
	}
	return im.Funcs[fn] || im.RootFuncs[fn]
}

// Summary renders a compact one-line description for logs.
func (im *Impact) Summary() string {
	switch {
	case im == nil || im.All:
		return "impact: all classes (" + im.reason() + ")"
	case im.Empty():
		return "impact: none"
	}
	return "impact: classes " + strings.Join(im.SortedFuncs(), ",")
}

func (im *Impact) reason() string {
	if im == nil || im.Reason == "" {
		return "no delta"
	}
	return im.Reason
}

// SortedFuncs returns every affected class (Funcs ∪ RootFuncs), sorted.
func (im *Impact) SortedFuncs() []string {
	set := map[string]bool{}
	for f := range im.Funcs {
		set[f] = true
	}
	for f := range im.RootFuncs {
		set[f] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Analyze maps a data-graph delta through the site schema. A nil delta
// (unknown history, e.g. a first refresh) yields Impact{All: true}; an
// empty delta yields an empty impact.
func Analyze(s *SiteSchema, d *graph.Delta) *Impact {
	im := &Impact{
		Funcs:       map[string]bool{},
		Collections: map[string]bool{},
		RootFuncs:   map[string]bool{},
	}
	if s == nil || d == nil {
		im.All = true
		im.Reason = "no delta"
		return im
	}
	if d.Empty() {
		return im
	}
	for _, e := range s.Edges {
		if condsAffected(e.Conds, d) {
			im.Funcs[e.From] = true
			if e.To != DataNode {
				// The target class's key set may change with the same
				// bindings that produce the link.
				im.Funcs[e.To] = true
			}
		}
	}
	for _, ce := range s.Collects {
		if condsAffected(ce.Conds, d) {
			im.Collections[ce.Collection] = true
			if ce.Target != DataNode {
				im.RootFuncs[ce.Target] = true
			}
		}
	}
	return im
}

// RenderClosure widens the impact to every class whose *rendered* form
// may change: a page's HTML embeds linked pages' titles (and, for
// embed-only classes, their whole bodies), so any class with a schema
// path into an affected class re-renders too. The closure walks
// reverse schema edges to a fixpoint and unions in the root classes.
func (im *Impact) RenderClosure(s *SiteSchema) map[string]bool {
	closure := map[string]bool{}
	if im == nil || im.All {
		for _, f := range s.Funcs {
			closure[f] = true
		}
		return closure
	}
	for f := range im.Funcs {
		closure[f] = true
	}
	for f := range im.RootFuncs {
		closure[f] = true
	}
	for changed := true; changed; {
		changed = false
		for _, e := range s.Edges {
			if e.To != DataNode && closure[e.To] && !closure[e.From] {
				closure[e.From] = true
				changed = true
			}
		}
	}
	return closure
}

// condsAffected reports whether any condition of the conjunction can
// change its match set under the delta.
func condsAffected(conds []struql.Condition, d *graph.Delta) bool {
	constraints := labelConstraints(conds)
	for _, c := range conds {
		if condAffected(c, d, constraints) {
			return true
		}
	}
	return false
}

func condAffected(c struql.Condition, d *graph.Delta, constraints map[string][]map[string]bool) bool {
	switch c := c.(type) {
	case *struql.MembershipCond:
		return d.HasCollection(c.Collection)
	case *struql.EdgeCond:
		switch {
		case c.Label.Any:
			return d.AnyEdgeChange()
		case c.Label.Var != "":
			return varLabelAffected(c.Label.Var, d, constraints)
		default:
			return d.HasLabel(c.Label.Lit)
		}
	case *struql.PathCond:
		return pathAffected(c.Path, d)
	case *struql.NotCond:
		// Active-domain conservatism: a negated condition can flip when
		// anything in the graph changes.
		return !d.Empty() || condAffected(c.Inner, d, constraints)
	case *struql.CompareCond, *struql.PredCond, *struql.InSetCond:
		// Pure filters: sensitive only through bindings, which other
		// conditions of the conjunction produce.
		return false
	default:
		// Unknown condition kind: assume sensitive.
		return !d.Empty()
	}
}

// labelConstraints collects, per arc variable, the label sets the
// conjunction restricts it to (l in {...}, l = "lit"). An arc variable
// must satisfy every constraint simultaneously, so each set is an
// over-approximation of the labels it can bind.
func labelConstraints(conds []struql.Condition) map[string][]map[string]bool {
	out := map[string][]map[string]bool{}
	for _, c := range conds {
		switch c := c.(type) {
		case *struql.InSetCond:
			set := make(map[string]bool, len(c.Set))
			for _, l := range c.Set {
				set[l] = true
			}
			out[c.Var] = append(out[c.Var], set)
		case *struql.CompareCond:
			if c.Op != struql.OpEq {
				continue
			}
			if c.Left.IsVar() && !c.Right.IsVar() {
				if s, ok := c.Right.Const.AsString(); ok {
					out[c.Left.Var] = append(out[c.Left.Var], map[string]bool{s: true})
				}
			} else if c.Right.IsVar() && !c.Left.IsVar() {
				if s, ok := c.Left.Const.AsString(); ok {
					out[c.Right.Var] = append(out[c.Right.Var], map[string]bool{s: true})
				}
			}
		}
	}
	return out
}

// varLabelAffected decides sensitivity of an arc-variable edge
// condition: if the variable is constrained, only a touched label
// inside *every* constraint set can alter the match set; otherwise any
// edge change can.
func varLabelAffected(v string, d *graph.Delta, constraints map[string][]map[string]bool) bool {
	sets := constraints[v]
	if len(sets) == 0 {
		return d.AnyEdgeChange()
	}
	for _, l := range d.TouchedLabels {
		inAll := true
		for _, set := range sets {
			if !set[l] {
				inAll = false
				break
			}
		}
		if inAll {
			return true
		}
	}
	return false
}

// pathAffected reports whether a path expression can match differently
// under the delta: true on any edge change if the expression contains a
// wildcard or external predicate, else iff one of its literal labels
// was touched.
func pathAffected(e *struql.PathExpr, d *graph.Delta) bool {
	if e == nil {
		return d.AnyEdgeChange()
	}
	switch e.Op {
	case struql.PathPred:
		if e.Pred == nil || e.Pred.Any || e.Pred.Ext != "" {
			return d.AnyEdgeChange()
		}
		return d.HasLabel(e.Pred.Lit)
	case struql.PathStar:
		return pathAffected(e.Left, d)
	default:
		return pathAffected(e.Left, d) || pathAffected(e.Right, d)
	}
}
