package schema

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// deltaWith builds a synthetic delta touching the given labels and
// collections, with one changed object so it is non-empty.
func deltaWith(labels, colls []string) *graph.Delta {
	return &graph.Delta{
		ChangedObjects:     []string{"x"},
		TouchedLabels:      labels,
		TouchedCollections: colls,
	}
}

func TestAnalyzeNilDeltaIsAll(t *testing.T) {
	s := fig5Schema(t)
	im := Analyze(s, nil)
	if !im.All {
		t.Fatal("nil delta must yield Impact{All}")
	}
	if !im.Affected("YearPage") {
		t.Error("All impact must report every class affected")
	}
	if len(im.RenderClosure(s)) != len(s.Funcs) {
		t.Error("All impact closure must cover every class")
	}
}

func TestAnalyzeEmptyDeltaIsEmpty(t *testing.T) {
	s := fig5Schema(t)
	im := Analyze(s, &graph.Delta{})
	if !im.Empty() {
		t.Fatalf("empty delta must yield empty impact, got %s", im.Summary())
	}
	if im.Affected("YearPage") {
		t.Error("empty impact must not report classes affected")
	}
}

// TestAnalyzeConstrainedArcVariable: the fig3 child blocks constrain
// the arc variable (l = "year" / l = "category"), so a delta touching
// only "abstract" must not mark YearPage or CategoryPage through those
// blocks' extra edges — but the unconstrained outer block
// (x -> l -> v) makes PaperPresentation sensitive to any label.
func TestAnalyzeConstrainedArcVariable(t *testing.T) {
	s := fig5Schema(t)
	im := Analyze(s, deltaWith([]string{"abstract"}, nil))
	if !im.Funcs["PaperPresentation"] || !im.Funcs["AbstractPage"] {
		t.Errorf("outer unconstrained arc var must mark paper classes: %s", im.Summary())
	}
	// YearPage's own links (Year, Paper) are governed by l = "year";
	// "abstract" cannot satisfy that constraint. YearPage still appears
	// via the outer block's PaperPresentation edge target marking — so
	// check the collect/edge distinction through a purpose-built query.
	q := struql.MustParse(`
INPUT data
WHERE Items(x), x -> l -> v, l = "year"
CREATE YearOnly(v)
LINK YearOnly(v) -> "val" -> v
COLLECT Years(YearOnly(v))
OUTPUT site
`)
	ys := Build(q)
	if im := Analyze(ys, deltaWith([]string{"abstract"}, nil)); !im.Empty() {
		t.Errorf("l = \"year\" block must ignore abstract-only delta, got %s", im.Summary())
	}
	if im := Analyze(ys, deltaWith([]string{"year"}, nil)); !im.Funcs["YearOnly"] || !im.Collections["Years"] || !im.RootFuncs["YearOnly"] {
		t.Errorf("year delta must mark YearOnly and Years, got %s", im.Summary())
	}
}

func TestAnalyzeInSetConstraint(t *testing.T) {
	q := struql.MustParse(`
INPUT data
WHERE Articles(x), x -> a -> v, a in {"title", "byline"}
CREATE P(x)
LINK P(x) -> a -> v
OUTPUT site
`)
	s := Build(q)
	if im := Analyze(s, deltaWith([]string{"body"}, nil)); !im.Empty() {
		t.Errorf("body delta outside the in-set must be ignored, got %s", im.Summary())
	}
	if im := Analyze(s, deltaWith([]string{"title"}, nil)); !im.Funcs["P"] {
		t.Errorf("title delta inside the in-set must mark P, got %s", im.Summary())
	}
}

func TestAnalyzeCollectionSensitivity(t *testing.T) {
	s := fig5Schema(t)
	// Membership-only change: Publications gained a member but no edge
	// labels were touched (e.g. an existing node collected anew).
	im := Analyze(s, deltaWith(nil, []string{"Publications"}))
	if !im.Funcs["PaperPresentation"] {
		t.Errorf("Publications change must mark classes guarded by Publications(x): %s", im.Summary())
	}
	im = Analyze(s, deltaWith(nil, []string{"Unrelated"}))
	if !im.Empty() {
		t.Errorf("unrelated collection change must not mark anything, got %s", im.Summary())
	}
}

func TestAnalyzeNegationIsConservative(t *testing.T) {
	q := struql.MustParse(`
INPUT data
WHERE Files(p), not(isImageFile(p))
CREATE N(p)
LINK N(p) -> "file" -> p
OUTPUT site
`)
	s := Build(q)
	if im := Analyze(s, deltaWith([]string{"whatever"}, nil)); !im.Funcs["N"] {
		t.Errorf("negation must be sensitive to any change, got %s", im.Summary())
	}
}

func TestRenderClosureWalksAncestors(t *testing.T) {
	s := fig5Schema(t)
	im := &Impact{
		Funcs:       map[string]bool{"AbstractPage": true},
		Collections: map[string]bool{},
		RootFuncs:   map[string]bool{},
	}
	closure := im.RenderClosure(s)
	// AbstractPage is linked from PaperPresentation and AbstractsPage,
	// which are linked from YearPage/CategoryPage/RootPage: all render.
	for _, f := range []string{"AbstractPage", "PaperPresentation", "AbstractsPage", "RootPage", "YearPage", "CategoryPage"} {
		if !closure[f] {
			t.Errorf("closure missing %s: %v", f, closure)
		}
	}
}
