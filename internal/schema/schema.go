// Package schema implements STRUDEL's site schemas (paper Sec. 3.2):
// an equivalent formulation of a StruQL query as a labeled graph that
// describes the possible paths in any site graph the query can
// generate. The schema has one node per Skolem function symbol plus a
// special node for non-Skolem values; each link expression
// F(X) -> L -> G(Y) contributes an edge from N_F to N_G labeled
// (Q, L, X, Y), where Q is the conjunction of the where clauses in
// scope at the link. Site schemas serve as a visual summary of the
// site during design (DOT export) and as the basis for verifying
// integrity constraints on a site's structure ([FER 98b]; see
// constraint.go).
package schema

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"strudel/internal/struql"
)

// DataNode is the special schema node standing for non-Skolem values:
// nodes of the data graph and atomic values.
const DataNode = "•"

// Edge is one schema edge, labeled (Query, Label, FromArgs, ToArgs).
type Edge struct {
	From string // Skolem function name
	To   string // Skolem function name or DataNode
	// Label is the link label: a literal, or an arc variable name for
	// labels copied from the data (schema-carrying edges).
	Label      string
	LabelIsVar bool
	// Conds is the conjunction of where conditions governing the link:
	// the block's own conditions and all its ancestors'.
	Conds []struql.Condition
	// FromArgs and ToArgs are the Skolem argument terms, rendered.
	FromArgs []string
	ToArgs   []string
}

// CondString renders the governing query conjunction.
func (e Edge) CondString() string {
	if len(e.Conds) == 0 {
		return "true"
	}
	parts := make([]string, len(e.Conds))
	for i, c := range e.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

func (e Edge) String() string {
	label := e.Label
	if !e.LabelIsVar {
		label = fmt.Sprintf("%q", e.Label)
	}
	return fmt.Sprintf("%s -(%s, %s, [%s], [%s])-> %s",
		e.From, e.CondString(), label,
		strings.Join(e.FromArgs, ","), strings.Join(e.ToArgs, ","), e.To)
}

// CollectEdge is one collect clause together with the where
// conjunction in scope at it, mirroring Edge for collection
// membership: the delta analysis needs the conditions to decide
// whether a data change can alter a collection's member set.
type CollectEdge struct {
	Collection string
	Target     string // Skolem function name or DataNode
	Conds      []struql.Condition
}

// SiteSchema is the schema graph of one query.
type SiteSchema struct {
	// Funcs are the Skolem function names, sorted.
	Funcs []string
	Edges []Edge
	// Collections maps output collection names to the Skolem functions
	// (or DataNode) collected into them.
	Collections map[string][]string
	// Collects are the collect clauses with their governing conditions.
	Collects []CollectEdge
}

// Build constructs the site schema of a query.
func Build(q *struql.Query) *SiteSchema {
	s := &SiteSchema{Collections: map[string][]string{}}
	funcs := map[string]bool{}
	var walk func(b *struql.Block, conds []struql.Condition)
	walk = func(b *struql.Block, conds []struql.Condition) {
		conds = append(conds[:len(conds):len(conds)], b.Where...)
		for _, ct := range b.Creates {
			funcs[ct.Func] = true
		}
		for _, l := range b.Links {
			e := Edge{
				From:     l.From.Skolem.Func,
				FromArgs: renderTerms(l.From.Skolem.Args),
				Conds:    conds,
			}
			funcs[e.From] = true
			if l.Label.Var != "" {
				e.Label, e.LabelIsVar = l.Label.Var, true
			} else {
				e.Label = l.Label.Lit
			}
			switch {
			case l.To.Skolem != nil:
				e.To = l.To.Skolem.Func
				e.ToArgs = renderTerms(l.To.Skolem.Args)
				funcs[e.To] = true
			case l.To.Agg != nil:
				// Aggregates produce atoms: non-Skolem targets.
				e.To = DataNode
				e.ToArgs = []string{l.To.Agg.String()}
			default:
				e.To = DataNode
				e.ToArgs = []string{l.To.Term.String()}
			}
			s.Edges = append(s.Edges, e)
		}
		for _, c := range b.Collects {
			target := DataNode
			if c.Target.Skolem != nil {
				target = c.Target.Skolem.Func
				funcs[target] = true
			}
			s.Collections[c.Collection] = append(s.Collections[c.Collection], target)
			s.Collects = append(s.Collects, CollectEdge{
				Collection: c.Collection,
				Target:     target,
				Conds:      conds,
			})
		}
		for _, ch := range b.Children {
			walk(ch, conds)
		}
	}
	walk(q.Root, nil)
	for f := range funcs {
		s.Funcs = append(s.Funcs, f)
	}
	sort.Strings(s.Funcs)
	return s
}

// Merge combines the schemas of several composed queries (the paper's
// suciu example builds its site graph "in several successive steps by
// multiple, composed StruQL queries"): functions are unioned, edges
// and collections concatenated.
func Merge(schemas ...*SiteSchema) *SiteSchema {
	out := &SiteSchema{Collections: map[string][]string{}}
	funcs := map[string]bool{}
	for _, s := range schemas {
		for _, f := range s.Funcs {
			funcs[f] = true
		}
		out.Edges = append(out.Edges, s.Edges...)
		out.Collects = append(out.Collects, s.Collects...)
		for c, targets := range s.Collections {
			out.Collections[c] = append(out.Collections[c], targets...)
		}
	}
	for f := range funcs {
		out.Funcs = append(out.Funcs, f)
	}
	sort.Strings(out.Funcs)
	return out
}

func renderTerms(ts []struql.Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// EdgesFrom returns the schema edges leaving a function node.
func (s *SiteSchema) EdgesFrom(fn string) []Edge {
	var out []Edge
	for _, e := range s.Edges {
		if e.From == fn {
			out = append(out, e)
		}
	}
	return out
}

// EdgesBetween returns the schema edges from one function to another.
func (s *SiteSchema) EdgesBetween(from, to string) []Edge {
	var out []Edge
	for _, e := range s.Edges {
		if e.From == from && e.To == to {
			out = append(out, e)
		}
	}
	return out
}

// Reachable returns the set of schema nodes reachable from a function
// node along schema edges (excluding DataNode hops).
func (s *SiteSchema) Reachable(from string) map[string]bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.EdgesFrom(n) {
			if e.To != DataNode && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// String renders the schema as text, one edge per line.
func (s *SiteSchema) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "site schema: %d functions, %d edges\n", len(s.Funcs), len(s.Edges))
	for _, e := range s.Edges {
		fmt.Fprintf(&sb, "  %s\n", e)
	}
	colls := make([]string, 0, len(s.Collections))
	for c := range s.Collections {
		colls = append(colls, c)
	}
	sort.Strings(colls)
	for _, c := range colls {
		fmt.Fprintf(&sb, "  collect %s ← %s\n", c, strings.Join(s.Collections[c], ", "))
	}
	return sb.String()
}

// DOT renders the schema in Graphviz format (the paper's Fig. 5 view).
// Edges to the special non-Skolem node are excluded by default, as in
// the paper's figure; pass withData to include them.
func (s *SiteSchema) DOT(w io.Writer, withData bool) {
	fmt.Fprintln(w, "digraph siteschema {\n  rankdir=TB;")
	for _, f := range s.Funcs {
		fmt.Fprintf(w, "  %q;\n", f)
	}
	if withData {
		fmt.Fprintf(w, "  %q [shape=box];\n", DataNode)
	}
	for _, e := range s.Edges {
		if e.To == DataNode && !withData {
			continue
		}
		label := fmt.Sprintf("(%s, %s, [%s], [%s])",
			abbreviate(e.CondString(), 40), e.Label,
			strings.Join(e.FromArgs, ","), strings.Join(e.ToArgs, ","))
		fmt.Fprintf(w, "  %q -> %q [label=%q];\n", e.From, e.To, label)
	}
	fmt.Fprintln(w, "}")
}

func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
