package schema

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
)

const fig3 = `
INPUT BIBTEX
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
WHERE Publications(x), x -> l -> v
CREATE PaperPresentation(x), AbstractPage(x)
LINK AbstractPage(x) -> l -> v,
     PaperPresentation(x) -> l -> v,
     PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  WHERE l = "year"
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(v)
}
{
  WHERE l = "category"
  CREATE CategoryPage(v)
  LINK CategoryPage(v) -> "Name" -> v,
       CategoryPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(v)
}
OUTPUT HomePage
`

func fig5Schema(t *testing.T) *SiteSchema {
	t.Helper()
	return Build(struql.MustParse(fig3))
}

// TestBuildFig5 verifies the paper's Fig. 5 site schema.
func TestBuildFig5(t *testing.T) {
	s := fig5Schema(t)
	wantFuncs := []string{"AbstractPage", "AbstractsPage", "CategoryPage", "PaperPresentation", "RootPage", "YearPage"}
	if len(s.Funcs) != len(wantFuncs) {
		t.Fatalf("funcs = %v", s.Funcs)
	}
	for i, f := range wantFuncs {
		if s.Funcs[i] != f {
			t.Errorf("funcs[%d] = %s, want %s", i, s.Funcs[i], f)
		}
	}
	// RootPage -(true, "AbstractsPage", [], [])-> AbstractsPage.
	root := s.EdgesBetween("RootPage", "AbstractsPage")
	if len(root) != 1 || root[0].Label != "AbstractsPage" || len(root[0].Conds) != 0 {
		t.Errorf("root edge = %v", root)
	}
	// YearPage -(Q1∧Q2, "Paper", [v], [x])-> PaperPresentation.
	yp := s.EdgesBetween("YearPage", "PaperPresentation")
	if len(yp) != 1 {
		t.Fatalf("YearPage->PaperPresentation edges = %v", yp)
	}
	e := yp[0]
	if e.Label != "Paper" || e.LabelIsVar {
		t.Errorf("edge label = %v", e)
	}
	if len(e.FromArgs) != 1 || e.FromArgs[0] != "v" || len(e.ToArgs) != 1 || e.ToArgs[0] != "x" {
		t.Errorf("edge args = %v / %v", e.FromArgs, e.ToArgs)
	}
	// The governing query is the conjunction of Q1 and Q2.
	cond := e.CondString()
	if !strings.Contains(cond, "Publications(x)") || !strings.Contains(cond, `l = "year"`) {
		t.Errorf("governing condition = %s", cond)
	}
	// Data edges: PaperPresentation -(Q1, l, [x], [v])-> •.
	var dataEdge *Edge
	for i := range s.Edges {
		if s.Edges[i].From == "PaperPresentation" && s.Edges[i].To == DataNode {
			dataEdge = &s.Edges[i]
		}
	}
	if dataEdge == nil || !dataEdge.LabelIsVar || dataEdge.Label != "l" {
		t.Errorf("data edge = %v", dataEdge)
	}
}

func TestSchemaReachable(t *testing.T) {
	s := fig5Schema(t)
	reach := s.Reachable("RootPage")
	for _, f := range s.Funcs {
		if !reach[f] {
			t.Errorf("%s not reachable from RootPage", f)
		}
	}
	if r2 := s.Reachable("AbstractPage"); len(r2) != 1 {
		t.Errorf("AbstractPage should reach only itself: %v", r2)
	}
}

func TestSchemaCollections(t *testing.T) {
	q := struql.MustParse(`WHERE C(x) CREATE F(x) COLLECT Roots(F(x)), Others(x)`)
	s := Build(q)
	if got := s.Collections["Roots"]; len(got) != 1 || got[0] != "F" {
		t.Errorf("Roots = %v", got)
	}
	if got := s.Collections["Others"]; len(got) != 1 || got[0] != DataNode {
		t.Errorf("Others = %v", got)
	}
}

func TestSchemaDOTAndString(t *testing.T) {
	s := fig5Schema(t)
	var sb strings.Builder
	s.DOT(&sb, false)
	dot := sb.String()
	if !strings.Contains(dot, `"RootPage" -> "YearPage"`) {
		t.Errorf("DOT missing edge:\n%s", dot)
	}
	if strings.Contains(dot, DataNode) {
		t.Errorf("DOT should exclude data node by default:\n%s", dot)
	}
	sb.Reset()
	s.DOT(&sb, true)
	if !strings.Contains(sb.String(), DataNode) {
		t.Error("DOT withData should include data node")
	}
	if !strings.Contains(s.String(), "site schema: 6 functions") {
		t.Errorf("String = %s", s.String())
	}
}

// concreteSite evaluates fig3 over a small data graph.
func concreteSite(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", `
collection Publications { }
object pub1 in Publications { title "A" year 1997 category "X" }
object pub2 in Publications { title "B" year 1998 category "X" }
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := struql.Eval(struql.MustParse(fig3), res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Output
}

func TestReachableConstraint(t *testing.T) {
	s := fig5Schema(t)
	g := concreteSite(t)
	c := Reachable{Root: "RootPage"}
	if err := c.CheckSchema(s); err != nil {
		t.Errorf("schema check: %v", err)
	}
	if err := c.CheckGraph(g); err != nil {
		t.Errorf("graph check: %v", err)
	}
	// A query with an orphan function fails the schema check.
	orphan := Build(struql.MustParse(`
CREATE Root(), Orphan()
WHERE C(x)
LINK Root() -> "x" -> x`))
	if err := (Reachable{Root: "Root"}).CheckSchema(orphan); err == nil {
		t.Error("orphan function should violate reachability")
	}
}

func TestReachableConstraintGraphViolation(t *testing.T) {
	g := graph.New("site")
	g.NewNode("Root()")
	g.NewNode("Lost(1)")
	err := Reachable{Root: "Root"}.CheckGraph(g)
	if err == nil || !strings.Contains(err.Error(), "Lost(1)") {
		t.Errorf("err = %v", err)
	}
	if err := (Reachable{Root: "Nope"}).CheckGraph(g); err == nil {
		t.Error("missing root page should violate")
	}
}

func TestMustLinkConstraint(t *testing.T) {
	s := fig5Schema(t)
	g := concreteSite(t)
	ok := MustLink{From: "YearPage", Label: "Paper", To: "PaperPresentation"}
	if err := ok.CheckSchema(s); err != nil {
		t.Errorf("schema: %v", err)
	}
	if err := ok.CheckGraph(g); err != nil {
		t.Errorf("graph: %v", err)
	}
	bad := MustLink{From: "AbstractPage", Label: "Paper", To: "YearPage"}
	if err := bad.CheckSchema(s); err == nil {
		t.Error("impossible link should violate schema check")
	}
	// Any-label form.
	anyl := MustLink{From: "RootPage", To: "YearPage"}
	if err := anyl.CheckSchema(s); err != nil {
		t.Errorf("any-label schema: %v", err)
	}
	if err := anyl.CheckGraph(g); err != nil {
		t.Errorf("any-label graph: %v", err)
	}
	// Graph-level violation: a YearPage without papers.
	g2 := graph.New("site")
	g2.NewNode("YearPage(2000)")
	if err := ok.CheckGraph(g2); err == nil {
		t.Error("paperless year page should violate")
	}
}

func TestForbidConstraint(t *testing.T) {
	s := fig5Schema(t)
	g := concreteSite(t)
	// Fig. 3 copies arbitrary labels through arc variable l, so a
	// schema-level Forbid on any label is conservatively flagged.
	if err := (Forbid{Label: "patent"}).CheckSchema(s); err == nil {
		t.Error("arc-variable copies should trip conservative Forbid")
	}
	// The concrete graph has no patent edges.
	if err := (Forbid{Label: "patent"}).CheckGraph(g); err != nil {
		t.Errorf("graph: %v", err)
	}
	// A literal forbidden label in the query is caught precisely.
	q := struql.MustParse(`WHERE C(x) CREATE F(x) LINK F(x) -> "patent" -> x`)
	if err := (Forbid{Label: "patent"}).CheckSchema(Build(q)); err == nil {
		t.Error("literal patent edge should violate")
	}
	// Scoped to a function.
	if err := (Forbid{From: "G", Label: "patent"}).CheckSchema(Build(q)); err != nil {
		t.Errorf("scoped forbid should pass: %v", err)
	}
	// Concrete violation.
	g3 := graph.New("site")
	n := g3.NewNode("F(1)")
	g3.AddEdge(n, "patent", graph.Str("secret"))
	if err := (Forbid{Label: "patent"}).CheckGraph(g3); err == nil {
		t.Error("concrete patent edge should violate")
	}
}

func TestNoPathConstraint(t *testing.T) {
	s := fig5Schema(t)
	if err := (NoPath{From: "AbstractPage", To: "RootPage"}).CheckSchema(s); err != nil {
		t.Errorf("no-path should hold: %v", err)
	}
	if err := (NoPath{From: "RootPage", To: "AbstractPage"}).CheckSchema(s); err == nil {
		t.Error("path exists, should violate")
	}
	g := concreteSite(t)
	if err := (NoPath{From: "AbstractPage", To: "RootPage"}).CheckGraph(g); err != nil {
		t.Errorf("concrete no-path should hold: %v", err)
	}
	if err := (NoPath{From: "RootPage", To: "YearPage"}).CheckGraph(g); err == nil {
		t.Error("concrete path exists, should violate")
	}
}

func TestVerifyAll(t *testing.T) {
	s := fig5Schema(t)
	g := concreteSite(t)
	errs := VerifyAll(s, g, []Constraint{
		Reachable{Root: "RootPage"},
		MustLink{From: "YearPage", Label: "Paper", To: "PaperPresentation"},
		Forbid{Label: "patent"}, // schema-conservative violation
	})
	if len(errs) != 1 {
		t.Errorf("errs = %v", errs)
	}
	if len(VerifyAll(nil, g, []Constraint{Reachable{Root: "RootPage"}})) != 0 {
		t.Error("graph-only verify should pass")
	}
}

func TestSchemaWithAggregateTarget(t *testing.T) {
	q := struql.MustParse(`
WHERE C(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "papers" -> COUNT(x)`)
	s := Build(q)
	edges := s.EdgesFrom("YearPage")
	if len(edges) != 1 || edges[0].To != DataNode || edges[0].ToArgs[0] != "COUNT(x)" {
		t.Errorf("edges = %v", edges)
	}
}
