// Per-page access accounting: the serving-side observable that the
// paper's static/dynamic spectrum (Sec. 6) needs to become a *policy*.
// Deciding which pages to materialize and which to evaluate at click
// time requires knowing, per page, how often it is hit and what
// serving it costs — so the accounting table tracks hits, latency
// quantiles, bytes and staleness per page path.
//
// Cardinality is bounded by design: the table is LRU-bounded to a
// fixed capacity (a crawler walking a million long-tail URLs displaces
// only long-tail entries, never the hot head, because hot pages keep
// re-fronting), and per-page detail is exported as a JSON snapshot via
// /debug/ops — never as Prometheus labels. The registry sees only
// fixed-cardinality aggregates (total hits, table size, evictions).
package server

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"strudel/internal/telemetry"
)

// accountingBounds are the per-page latency histogram upper bounds in
// seconds — telemetry.DefBuckets, frozen at package level so quantile
// estimation and bucket layout cannot drift apart.
var accountingBounds = telemetry.DefBuckets

// pageAccount is one page's row in the table.
type pageAccount struct {
	path    string
	hits    uint64
	errors  uint64 // responses with status >= 500
	bytes   uint64
	buckets []uint64 // len(accountingBounds)+1, last = +Inf
	sum     float64  // seconds
	last    time.Time
	status  int
	// staleness is the served content's age at the last hit (now minus
	// the build time of the result being served); dataStaleness
	// measures against the last *known-good source observation*
	// instead — a degraded source keeps aging the data even while
	// rebuilds keep re-validating the content.
	staleness     time.Duration
	dataStaleness time.Duration
	elem          *list.Element
}

// PageStats is one page's exported accounting row.
type PageStats struct {
	Path   string `json:"path"`
	Hits   uint64 `json:"hits"`
	Errors uint64 `json:"errors"`
	Bytes  uint64 `json:"bytes"`
	// P50Ms/P99Ms are latency quantiles estimated from the fixed bucket
	// layout (linear interpolation within the winning bucket, like
	// Prometheus histogram_quantile); MeanMs is exact.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// LastStatus and LastServed describe the most recent hit.
	LastStatus int       `json:"last_status"`
	LastServed time.Time `json:"last_served"`
	// StalenessSeconds is how old the served content was at the last
	// hit — the observable "Maintaining Consistency of Data on the Web"
	// argues should be first-class. Zero when no freshness source is
	// wired.
	StalenessSeconds float64 `json:"staleness_seconds"`
	// DataStalenessSeconds is the served content's age against the
	// last *known-good source observation*, not the last rebuild:
	// while a source is degraded the served data keeps aging here
	// even though rebuilds keep resetting StalenessSeconds. Zero when
	// no data-freshness source is wired.
	DataStalenessSeconds float64 `json:"data_staleness_seconds"`
}

// AccountingSnapshot is the table's JSON view.
type AccountingSnapshot struct {
	// Tracked is the current table size; Capacity its bound.
	Tracked  int `json:"tracked"`
	Capacity int `json:"capacity"`
	// TotalHits counts every recorded request, including hits on since-
	// evicted pages; Evictions counts pages displaced by the LRU bound.
	TotalHits uint64 `json:"total_hits"`
	Evictions uint64 `json:"evictions"`
	// Pages holds the top-K rows by hits (ties broken by path), the
	// hot head the materialization policy consumes.
	Pages []PageStats `json:"pages"`
}

// Accounting is the bounded per-page access table. All methods are
// safe for concurrent use; a nil *Accounting is a valid no-op.
type Accounting struct {
	mu            sync.Mutex
	max           int
	pages         map[string]*pageAccount
	lru           *list.List // front = most recently served
	totalHits     uint64
	evictions     uint64
	freshness     func() time.Time
	dataFreshness func() time.Time

	// fixed-cardinality registry aggregates (nil until Instrument).
	mHits, mEvict *telemetry.Counter
	mTracked      *telemetry.Gauge
}

// NewAccounting creates a table bounded to max pages (values below 1
// default to 1024).
func NewAccounting(max int) *Accounting {
	if max < 1 {
		max = 1024
	}
	return &Accounting{
		max:   max,
		pages: map[string]*pageAccount{},
		lru:   list.New(),
	}
}

// SetFreshness wires the staleness observable: fn returns the build
// time of the content currently being served (e.g. the Result swapped
// in by the last refresh); each hit records now minus that time.
func (a *Accounting) SetFreshness(fn func() time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.freshness = fn
	a.mu.Unlock()
}

// SetDataFreshness wires the data-staleness observable: fn returns
// when the data underlying the served content was last observed at
// its sources (the refresh-report stamp recorded in the build
// ledger), so each hit can report age against the *source change*
// rather than the last rebuild.
func (a *Accounting) SetDataFreshness(fn func() time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.dataFreshness = fn
	a.mu.Unlock()
}

// Instrument publishes the table's fixed-cardinality aggregates:
// strudel_page_hits_total, strudel_page_accounting_pages (current
// size) and strudel_page_accounting_evictions_total. Deliberately no
// per-page labels — per-page detail is JSON-only.
func (a *Accounting) Instrument(reg *telemetry.Registry) {
	if a == nil || reg == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mHits = reg.Counter("strudel_page_hits_total",
		"Page requests recorded by the access accounting table.")
	a.mEvict = reg.Counter("strudel_page_accounting_evictions_total",
		"Pages displaced from the bounded accounting table by the LRU policy.")
	a.mTracked = reg.Gauge("strudel_page_accounting_pages",
		"Pages currently tracked by the accounting table.")
}

// Record accounts one served request. now is the serve-completion
// time (passed in so tests and benchmarks control the clock).
func (a *Accounting) Record(path string, status int, bytes int64, d time.Duration, now time.Time) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.totalHits++
	pa, ok := a.pages[path]
	if !ok {
		if len(a.pages) >= a.max {
			// Displace the least recently served page.
			victim := a.lru.Back()
			vp := victim.Value.(*pageAccount)
			a.lru.Remove(victim)
			delete(a.pages, vp.path)
			a.evictions++
			if a.mEvict != nil {
				a.mEvict.Inc()
			}
		}
		pa = &pageAccount{
			path:    path,
			buckets: make([]uint64, len(accountingBounds)+1),
		}
		pa.elem = a.lru.PushFront(pa)
		a.pages[path] = pa
	} else {
		a.lru.MoveToFront(pa.elem)
	}
	pa.hits++
	if status >= 500 {
		pa.errors++
	}
	if bytes > 0 {
		pa.bytes += uint64(bytes)
	}
	sec := d.Seconds()
	pa.sum += sec
	pa.buckets[bucketFor(sec)]++
	pa.last = now
	pa.status = status
	if a.freshness != nil {
		if built := a.freshness(); !built.IsZero() && now.After(built) {
			pa.staleness = now.Sub(built)
		} else {
			pa.staleness = 0
		}
	}
	if a.dataFreshness != nil {
		if asOf := a.dataFreshness(); !asOf.IsZero() && now.After(asOf) {
			pa.dataStaleness = now.Sub(asOf)
		} else {
			pa.dataStaleness = 0
		}
	}
	tracked := len(a.pages)
	a.mu.Unlock()
	if a.mHits != nil {
		a.mHits.Inc()
		a.mTracked.Set(float64(tracked))
	}
}

// bucketFor returns the index of the first bound containing sec, or
// the +Inf bucket.
func bucketFor(sec float64) int {
	for i, ub := range accountingBounds {
		if sec <= ub {
			return i
		}
	}
	return len(accountingBounds)
}

// quantile estimates the q-quantile (0..1) in milliseconds from the
// bucket counts, interpolating linearly inside the winning bucket. The
// +Inf bucket reports the largest finite bound.
func quantile(buckets []uint64, q float64) float64 {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range buckets {
		cum += c
		if float64(cum) >= rank {
			if i == len(accountingBounds) {
				return accountingBounds[len(accountingBounds)-1] * 1000
			}
			lower := 0.0
			if i > 0 {
				lower = accountingBounds[i-1]
			}
			upper := accountingBounds[i]
			// Position of the rank inside this bucket's count.
			within := (rank - float64(cum-c)) / float64(c)
			return (lower + (upper-lower)*within) * 1000
		}
	}
	return accountingBounds[len(accountingBounds)-1] * 1000
}

// statsFor renders one row (caller holds the lock).
func (pa *pageAccount) stats() PageStats {
	ps := PageStats{
		Path:                 pa.path,
		Hits:                 pa.hits,
		Errors:               pa.errors,
		Bytes:                pa.bytes,
		P50Ms:                quantile(pa.buckets, 0.50),
		P99Ms:                quantile(pa.buckets, 0.99),
		LastStatus:           pa.status,
		LastServed:           pa.last,
		StalenessSeconds:     pa.staleness.Seconds(),
		DataStalenessSeconds: pa.dataStaleness.Seconds(),
	}
	if pa.hits > 0 {
		ps.MeanMs = pa.sum / float64(pa.hits) * 1000
	}
	return ps
}

// Snapshot exports the table: aggregates plus the top-K pages by hit
// count (ties broken by path, so equal-traffic snapshots are
// deterministic). topK < 1 defaults to 50.
func (a *Accounting) Snapshot(topK int) AccountingSnapshot {
	if a == nil {
		return AccountingSnapshot{}
	}
	if topK < 1 {
		topK = 50
	}
	a.mu.Lock()
	snap := AccountingSnapshot{
		Tracked:   len(a.pages),
		Capacity:  a.max,
		TotalHits: a.totalHits,
		Evictions: a.evictions,
	}
	rows := make([]PageStats, 0, len(a.pages))
	for _, pa := range a.pages {
		rows = append(rows, pa.stats())
	}
	a.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Hits != rows[j].Hits {
			return rows[i].Hits > rows[j].Hits
		}
		return rows[i].Path < rows[j].Path
	})
	if len(rows) > topK {
		rows = rows[:topK]
	}
	snap.Pages = rows
	return snap
}

// Hot returns the k hottest pages by hit count — the input the
// hot/cold materialization policy (ROADMAP item 3) ranks on.
func (a *Accounting) Hot(k int) []PageStats {
	return a.Snapshot(k).Pages
}

// Len reports the current table size.
func (a *Accounting) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pages)
}
