// Chaos tests: fault-injected sources and overload against the full
// stack (core builder → mediator → dynamic serving), all under -race.
// The invariant throughout: a STRUDEL site keeps answering from the
// last good warehouse when sources misbehave, and sheds rather than
// queues when overloaded.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/core"
	"strudel/internal/incremental"
	"strudel/internal/mediator"
	"strudel/internal/resilience"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

// chaosSite builds a one-source dynamic site whose source content is
// produced by fetch. It returns the builder (call BuildDynamic for a
// renderer over the latest refresh).
func chaosSite(t *testing.T, fetch func() (string, error)) *core.Builder {
	t.Helper()
	b := core.NewBuilder("chaos")
	if err := b.AddSourceFunc("pubs.def", "datadef", fetch); err != nil {
		t.Fatal(err)
	}
	if err := b.AddQuery(`
INPUT DataGraph
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> "title" -> tt
CREATE PubPage(tt)
LINK PubPage(tt) -> "Title" -> tt,
     RootPage() -> "Pub" -> PubPage(tt)`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTemplate("RootPage", `<h1>Pubs</h1><SFMT_UL Pub ORDER=ascend KEY=Title>`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTemplate("PubPage", `<h1><SFMT Title></h1>`); err != nil {
		t.Fatal(err)
	}
	b.SetRootCollection("Roots")
	return b
}

func pubDef(title string) string {
	return fmt.Sprintf(`
collection Publications { }
object pub1 in Publications { title %q }
`, title)
}

// TestChaosFlakySourceServesStale: a source that starts failing after
// the first refresh degrades — refreshes keep succeeding from
// last-good data, a background refresher keeps swapping renderers, and
// concurrent clients see 200s from the stale warehouse throughout.
// When the source recovers, new data flows through.
func TestChaosFlakySourceServesStale(t *testing.T) {
	var title atomic.Value
	title.Store("Alpha")
	inj := workload.NewFaultInjector(workload.FaultConfig{Seed: 7})
	fetch := inj.WrapFetch(func() (string, error) { return pubDef(title.Load().(string)), nil })
	b := chaosSite(t, fetch)
	b.SetResilience(mediator.Resilience{
		Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})

	r0, err := b.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[incremental.Renderer]
	cur.Store(r0)
	srv := httptest.NewServer(DynamicFrom(cur.Load, "Roots", DynamicConfig{}))
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "Alpha") {
		t.Fatalf("healthy / = %d %q", code, body)
	}

	// The source goes down and its data "changes" — the change must
	// NOT appear (fetches fail), but serving must continue.
	inj.SetErrorRate(1)
	title.Store("Beta")

	stopRefresh := make(chan struct{})
	var refreshWG sync.WaitGroup
	refreshWG.Add(1)
	go func() { // background refresher: rebuild + swap until stopped
		defer refreshWG.Done()
		for {
			select {
			case <-stopRefresh:
				return
			default:
			}
			r, err := b.BuildDynamic()
			if err != nil {
				t.Errorf("degraded refresh must not fail: %v", err)
				return
			}
			cur.Store(r)
		}
	}()

	var clientWG sync.WaitGroup
	for i := 0; i < 8; i++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(srv.URL + "/")
				if err != nil {
					t.Errorf("client: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("degraded serving: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	clientWG.Wait()
	close(stopRefresh)
	refreshWG.Wait()

	// Still the stale (last-good) data, and the report says degraded.
	if _, body := get(t, srv, "/"); !strings.Contains(body, "Alpha") || strings.Contains(body, "Beta") {
		t.Errorf("degraded body = %q, want stale Alpha", body)
	}
	if rep := b.LastRefresh(); rep == nil || !contains(rep.Degraded(), "pubs.def") {
		t.Errorf("report = %+v, want pubs.def degraded", rep)
	}

	// Recovery: the next refresh picks up the new data.
	inj.SetErrorRate(0)
	r2, err := b.BuildDynamic()
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(r2)
	if _, body := get(t, srv, "/"); !strings.Contains(body, "Beta") {
		t.Errorf("recovered body = %q, want Beta", body)
	}
	if rep := b.LastRefresh(); rep == nil || !rep.Ok() {
		t.Errorf("recovered report = %+v, want ok", rep)
	}
}

// TestChaosHangingSourceKeepsServing: a source that accepts the fetch
// and never answers is cut off at the fetch deadline; the refresh
// degrades to last-good data instead of hanging the build, and the
// site keeps serving.
func TestChaosHangingSourceKeepsServing(t *testing.T) {
	inj := workload.NewFaultInjector(workload.FaultConfig{HangEvery: 2})
	defer inj.Release() // do not leak the abandoned fetch goroutine's block
	fetch := inj.WrapFetch(workload.StaticFetch(pubDef("Alpha")))
	b := chaosSite(t, fetch)
	b.SetResilience(mediator.Resilience{FetchTimeout: 20 * time.Millisecond})

	r0, err := b.BuildDynamic() // fetch 1: healthy
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[incremental.Renderer]
	cur.Store(r0)
	srv := httptest.NewServer(DynamicFrom(cur.Load, "Roots", DynamicConfig{}))
	defer srv.Close()

	start := time.Now()
	r1, err := b.BuildDynamic() // fetch 2: hangs, must time out
	if err != nil {
		t.Fatalf("refresh with hanging source: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("refresh took %v — fetch deadline did not cut the hang", d)
	}
	cur.Store(r1)
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "Alpha") {
		t.Errorf("serving after hang = %d %q", code, body)
	}
	rep := b.LastRefresh()
	if rep == nil || !contains(rep.Degraded(), "pubs.def") {
		t.Fatalf("report = %+v, want pubs.def degraded", rep)
	}
	if s, ok := rep.Source("pubs.def"); !ok || s.Err == nil || !strings.Contains(s.Err.Error(), "timed out") {
		t.Errorf("degraded status = %+v, want timeout error", s)
	}
	if st := inj.Stats(); st.Hangs != 1 {
		t.Errorf("hangs = %d", st.Hangs)
	}
}

// TestChaosSheddingBoundsQueue: with renders blocked and max-in-flight
// reached, extra concurrent requests are rejected immediately with 503
// and Retry-After instead of queueing unboundedly; the in-flight ones
// complete once unblocked.
func TestChaosSheddingBoundsQueue(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, gate := hangingRenderer(t)
	h := Shed(reg, "dynamic", 2, DynamicFrom(
		func() *incremental.Renderer { return r }, "Roots", DynamicConfig{}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	const clients = 10
	codes := make(chan int, clients)
	retryAfter := make(chan string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/")
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			if resp.StatusCode == 503 {
				retryAfter <- resp.Header.Get("Retry-After")
			}
			codes <- resp.StatusCode
		}()
	}
	// Give the shed responses a moment, then unblock the two in-flight
	// renders; everyone returns.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(codes)
	close(retryAfter)

	var ok, shed int
	for code := range codes {
		switch code {
		case 200:
			ok++
		case 503:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok != 2 || shed != clients-2 {
		t.Errorf("ok=%d shed=%d, want 2/%d", ok, shed, clients-2)
	}
	for ra := range retryAfter {
		if ra == "" {
			t.Error("shed response missing Retry-After")
		}
	}
	c := reg.Counter("strudel_http_shed_total",
		"Requests rejected with 503 because max in-flight was reached, by serving mode.",
		"mode", "dynamic")
	if int(c.Value()) != shed {
		t.Errorf("shed counter = %d, want %d", c.Value(), shed)
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
