// The serving edge: provenance-keyed HTTP caching over the paper's
// static/dynamic spectrum (Sec. 6). Every page carries a strong ETag
// derived from its provenance-closure hash (sitegen/etag.go), so the
// edge can answer If-None-Match with 304 Not Modified without touching
// page bytes — and because a delta rebuild changes exactly the ETags
// of pages whose closure the change touched, a site swap invalidates
// client and edge caches *exactly*: everything outside the change's
// cone keeps serving 304s.
//
// On top of the conditional-request layer sits a hot/cold
// materialization policy, the paper's spectrum made operational: the
// hottest pages (ranked by the per-page accounting table's hit counts,
// Accounting.Hot) are materialized — identity and gzip bytes resident
// in memory — while the long tail stays cold and renders at click
// time through the page source. The ranking re-evaluates as traffic
// shifts, on an injectable clock, with hysteresis (a challenger margin
// plus a minimum residency dwell) so borderline pages do not flap in
// and out of the hot set.
package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strudel/internal/incremental"
	"strudel/internal/resilience"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

// ErrNotFound is returned by a Source when a resolved key has no page
// behind it (e.g. the site has no roots); the edge answers 404.
var ErrNotFound = errors.New("server: page not found")

// listingKey is the reserved source key for the generated index
// listing served at "/" when no real page claims it.
const listingKey = "\x00listing"

// Source is the edge's view of a page universe. Implementations must
// be safe for concurrent use. Resolve and Meta are hot-path cheap;
// Render may be arbitrarily expensive (a click-time query).
type Source interface {
	// Resolve maps a request path to a page key, or ok=false (404).
	Resolve(path string) (key string, ok bool)
	// Meta returns the page's current strong ETag without producing its
	// body — "" when the tag is unknowable before rendering (dynamic
	// pages). ok=false means the key vanished since Resolve.
	Meta(key string) (etag string, ok bool)
	// Render produces the page's bytes and their strong ETag.
	Render(ctx context.Context, key string) (body string, etag string, err error)
}

// SiteSource serves a materialized site snapshot. It is immutable:
// a refresh builds a new SiteSource over the new site and swaps it in
// with Edge.SetSource.
type SiteSource struct {
	site        *sitegen.Site
	listingOnce sync.Once
	listing     string
	listingTag  string
}

// NewSiteSource wraps one site snapshot.
func NewSiteSource(site *sitegen.Site) *SiteSource {
	return &SiteSource{site: site}
}

// Site returns the wrapped snapshot.
func (s *SiteSource) Site() *sitegen.Site { return s.site }

// Resolve implements Source: "/" is index.html when present, else the
// generated listing; every other path must name a page exactly.
func (s *SiteSource) Resolve(path string) (string, bool) {
	p := strings.TrimPrefix(path, "/")
	if p == "" {
		p = "index.html"
	}
	if _, ok := s.site.Pages[p]; ok {
		return p, true
	}
	if path == "/" {
		return listingKey, true
	}
	return "", false
}

// Meta implements Source. Materialized pages know their ETag without
// rendering — it was computed at build time from the provenance
// closure.
func (s *SiteSource) Meta(key string) (string, bool) {
	if key == listingKey {
		s.renderListing()
		return s.listingTag, true
	}
	pg, ok := s.site.Pages[key]
	if !ok {
		return "", false
	}
	return pg.ETag, true
}

// Render implements Source: for a materialized site this is a map
// lookup, not a render.
func (s *SiteSource) Render(_ context.Context, key string) (string, string, error) {
	if key == listingKey {
		s.renderListing()
		return s.listing, s.listingTag, nil
	}
	pg, ok := s.site.Pages[key]
	if !ok {
		return "", "", ErrNotFound
	}
	return pg.HTML, pg.ETag, nil
}

// renderListing materializes the index listing once per snapshot; its
// ETag is a bytes hash (the listing's "closure" is the page set
// itself, which any page change may alter).
func (s *SiteSource) renderListing() {
	s.listingOnce.Do(func() {
		var b strings.Builder
		b.WriteString("<html><body><h1>Site</h1><ul>")
		for _, p := range s.site.Paths() {
			fmt.Fprintf(&b, "<li><a href=%q>%s</a></li>", "/"+p, html.EscapeString(p))
		}
		b.WriteString("</ul></body></html>")
		s.listing = b.String()
		s.listingTag = sitegen.BytesETag(s.listing)
	})
}

// rendererSource serves click-time pages from whatever renderer the
// getter currently returns — the dynamic end of the spectrum. Pages
// have no build-time ETag (Meta answers ""), so conditional requests
// on cold pages pay the render and then compare; hot (edge-cached)
// pages answer 304 from the cached tag without rendering.
type rendererSource struct {
	get            func() *incremental.Renderer
	rootCollection string
	timeout        time.Duration
	clock          resilience.Clock
}

// rootKey is the reserved key for "/" in dynamic mode.
const rootKey = "\x00root"

func (s *rendererSource) Resolve(path string) (string, bool) {
	if path == "/" {
		return rootKey, true
	}
	if rest, ok := strings.CutPrefix(path, "/page/"); ok {
		key, err := url.PathUnescape(rest)
		if err != nil || key == "" {
			return "", false
		}
		if _, ok := s.get().Dec.Resolve(key); !ok {
			return "", false
		}
		return key, true
	}
	return "", false
}

func (s *rendererSource) Meta(key string) (string, bool) { return "", true }

func (s *rendererSource) Render(ctx context.Context, key string) (string, string, error) {
	r := s.get()
	var out string
	err := resilience.WithTimeout(s.clock, s.timeout, func() error {
		if key == rootKey {
			body, err := s.renderRoot(ctx, r)
			if err != nil {
				return err
			}
			out = body
			return nil
		}
		ref, ok := r.Dec.Resolve(key)
		if !ok {
			return ErrNotFound
		}
		body, err := r.RenderPageContext(ctx, ref)
		if err != nil {
			return err
		}
		out = body
		return nil
	})
	if err != nil {
		return "", "", err
	}
	return out, sitegen.BytesETag(out), nil
}

// renderRoot computes "/": the single root page, or a listing when the
// root collection has several.
func (s *rendererSource) renderRoot(ctx context.Context, r *incremental.Renderer) (string, error) {
	roots, err := r.Dec.Roots(s.rootCollection)
	if err != nil {
		return "", err
	}
	if len(roots) == 0 {
		return "", ErrNotFound
	}
	if len(roots) == 1 {
		return r.RenderPageContext(ctx, roots[0])
	}
	keys := make([]string, len(roots))
	for i, root := range roots {
		keys[i] = root.Key()
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("<html><body><h1>Roots</h1><ul>")
	for _, k := range keys {
		fmt.Fprintf(&b, "<li><a href=%q>%s</a></li>", "/page/"+url.PathEscape(k), html.EscapeString(k))
	}
	b.WriteString("</ul></body></html>")
	return b.String(), nil
}

// DynamicEdge builds a serving edge over click-time rendering: cold
// pages run their decomposed query per request (bounded by
// cfg.RenderTimeout), hot pages — when cfg.HotPages and
// cfg.Accounting are wired — hold rendered bytes resident and answer
// conditional requests without rendering. The getter semantics match
// DynamicFrom. Call FlushHot after an in-place data refresh.
func DynamicEdge(get func() *incremental.Renderer, rootCollection string, cfg EdgeConfig) *Edge {
	if cfg.Mode == "" {
		cfg.Mode = "dynamic"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = resilience.Real
	}
	src := &rendererSource{
		get:            get,
		rootCollection: rootCollection,
		timeout:        cfg.RenderTimeout,
		clock:          clock,
	}
	return NewEdge(src, cfg)
}

// EdgeConfig tunes the serving edge. The zero value serves correctly
// with no materialization: conditional requests still work, every page
// is cold.
type EdgeConfig struct {
	// Mode tags metrics and error logs ("static", "dynamic").
	Mode string
	// HotPages bounds the materialized set; 0 disables the byte cache.
	HotPages int
	// Compress precompresses gzip variants for materialized pages and
	// adds Vary: Accept-Encoding. Cold pages always serve identity —
	// compression is a benefit of materialization, not a click-time
	// cost.
	Compress bool
	// Accounting is the ranking input for the hot/cold policy: pages
	// are promoted by Accounting.Hot hit counts. nil disables
	// automatic promotion.
	Accounting *Accounting
	// Clock drives residency dwell times and the policy loop; nil means
	// the wall clock. Tests inject a FakeClock.
	Clock resilience.Clock
	// Hysteresis is the challenger margin: a cold page displaces a
	// resident one only when its hit count exceeds the incumbent's by
	// this fraction (default 0.25). Prevents rank-boundary flapping.
	Hysteresis float64
	// MinResidency is how long a freshly promoted page is immune to
	// demotion (default 30s) — the time half of the hysteresis.
	MinResidency time.Duration
	// Registry receives the edge's cache metrics (may be nil).
	Registry *telemetry.Registry
	// RenderTimeout bounds dynamic Render calls made on behalf of a
	// request (applies to renderer-backed sources).
	RenderTimeout time.Duration
}

// hotEntry is one materialized page: its tag, identity bytes and
// (optionally) precompressed gzip bytes, resident in memory.
type hotEntry struct {
	etag string
	body []byte
	gz   []byte
	// promoted is when the page entered the hot set (policy clock);
	// demotion is deferred until MinResidency has passed.
	promoted time.Time
}

// edgeState is the edge's immutable per-swap view: one source snapshot
// plus the current hot map. Requests load it once and never lock.
type edgeState struct {
	src Source
	hot map[string]*hotEntry
}

// EdgeStats is the edge's aggregate cache view, exported via
// Edge.Stats for /debug/ops and the load harness.
type EdgeStats struct {
	Mode     string `json:"mode"`
	HotPages int    `json:"hot_pages"`
	Capacity int    `json:"capacity"`
	// Hits304 counts conditional requests answered 304; HitsHot counts
	// 200s served from resident bytes. Their sum over Requests is the
	// edge hit ratio.
	Hits304  uint64 `json:"hits_304"`
	HitsHot  uint64 `json:"hits_hot"`
	Cold     uint64 `json:"cold"`
	NotFound uint64 `json:"not_found"`
	Errors   uint64 `json:"errors"`
	Requests uint64 `json:"requests"`
	// HitRatio is (Hits304 + HitsHot) / Requests, 0 when idle.
	HitRatio float64 `json:"hit_ratio"`
	// Policy activity.
	Promotions         uint64 `json:"promotions"`
	Demotions          uint64 `json:"demotions"`
	Rematerializations uint64 `json:"rematerializations"`
}

// Edge is the serving edge handler. Create with NewEdge, swap content
// with SetSource, and run the materialization policy with Rerank (or
// RunPolicy for a clock-driven loop).
type Edge struct {
	cfg   EdgeConfig
	clock resilience.Clock
	state atomic.Pointer[edgeState]
	// policyMu serializes the writers (SetSource, Rerank, FlushHot);
	// request handling is lock-free.
	policyMu sync.Mutex

	hits304, hitsHot, cold, notFound, errs atomic.Uint64
	promotions, demotions, remat           atomic.Uint64

	mOutcome  map[string]*telemetry.Counter
	mHotPages *telemetry.Gauge
	timeouts  *telemetry.Counter
}

// NewEdge builds an edge over an initial source (which may be nil
// until the first SetSource).
func NewEdge(src Source, cfg EdgeConfig) *Edge {
	if cfg.Mode == "" {
		cfg.Mode = "edge"
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.25
	}
	if cfg.MinResidency <= 0 {
		cfg.MinResidency = 30 * time.Second
	}
	e := &Edge{cfg: cfg, clock: cfg.Clock}
	if e.clock == nil {
		e.clock = resilience.Real
	}
	if reg := cfg.Registry; reg != nil {
		e.mOutcome = map[string]*telemetry.Counter{}
		for _, outcome := range []string{"hit_304", "hit_hot", "cold", "not_found", "error"} {
			e.mOutcome[outcome] = reg.Counter("strudel_edge_requests_total",
				"Requests answered by the serving edge, by mode and cache outcome.",
				"mode", cfg.Mode, "outcome", outcome)
		}
		e.mHotPages = reg.Gauge("strudel_edge_hot_pages",
			"Pages currently materialized (bytes resident) at the serving edge, by mode.",
			"mode", cfg.Mode)
		reg.GaugeFunc("strudel_edge_hit_ratio",
			"Fraction of edge requests answered as 304 or from resident bytes, by mode.",
			func() float64 { return e.Stats().HitRatio },
			"mode", cfg.Mode)
		e.timeouts = reg.Counter("strudel_http_render_timeouts_total",
			"Dynamic renders abandoned at the render deadline, by serving mode.",
			"mode", cfg.Mode)
	}
	if src != nil {
		e.state.Store(&edgeState{src: src, hot: map[string]*hotEntry{}})
	}
	return e
}

// Stats snapshots the edge's aggregate counters.
func (e *Edge) Stats() EdgeStats {
	st := EdgeStats{
		Mode:               e.cfg.Mode,
		Capacity:           e.cfg.HotPages,
		Hits304:            e.hits304.Load(),
		HitsHot:            e.hitsHot.Load(),
		Cold:               e.cold.Load(),
		NotFound:           e.notFound.Load(),
		Errors:             e.errs.Load(),
		Promotions:         e.promotions.Load(),
		Demotions:          e.demotions.Load(),
		Rematerializations: e.remat.Load(),
	}
	if s := e.state.Load(); s != nil {
		st.HotPages = len(s.hot)
	}
	st.Requests = st.Hits304 + st.HitsHot + st.Cold + st.NotFound + st.Errors
	if st.Requests > 0 {
		st.HitRatio = float64(st.Hits304+st.HitsHot) / float64(st.Requests)
	}
	return st
}

// NoteBuild records which build the edge is now serving as the
// strudel_edge_build_info info-gauge — the serving-plane end of the
// build_id correlation chain. Replace semantics: the family always
// holds exactly one series, so build swaps cannot grow cardinality.
func (e *Edge) NoteBuild(buildID string) {
	if e == nil || e.cfg.Registry == nil || buildID == "" {
		return
	}
	e.cfg.Registry.Info("strudel_edge_build_info",
		"Identity of the build the serving edge is answering from (value is always 1).",
		"mode", e.cfg.Mode, "build_id", buildID)
}

// HotKeys lists the currently materialized page keys, sorted.
func (e *Edge) HotKeys() []string {
	st := e.state.Load()
	if st == nil {
		return nil
	}
	out := make([]string, 0, len(st.hot))
	for key := range st.hot {
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

func (e *Edge) count(outcome string, v *atomic.Uint64) {
	v.Add(1)
	if c := e.mOutcome[outcome]; c != nil {
		c.Inc()
	}
}

// ServeHTTP answers GET and HEAD with full conditional-request
// support; every other method gets 405.
func (e *Edge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		e.plainStatus(w, r, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	st := e.state.Load()
	if st == nil || st.src == nil {
		e.count("error", &e.errs)
		e.plainStatus(w, r, http.StatusServiceUnavailable, "no content loaded")
		return
	}
	key, ok := st.src.Resolve(r.URL.Path)
	if !ok {
		e.count("not_found", &e.notFound)
		e.plainStatus(w, r, http.StatusNotFound, "404 page not found")
		return
	}
	inm := r.Header.Get("If-None-Match")

	// Hot path: resident bytes, ETag known without any page work.
	if ent := st.hot[key]; ent != nil {
		if inm != "" && etagMatch(inm, ent.etag) {
			e.count("hit_304", &e.hits304)
			e.writeNotModified(w, ent.etag)
			return
		}
		e.count("hit_hot", &e.hitsHot)
		if ent.gz != nil && acceptsGzip(r) {
			e.writeBytes(w, r, ent.etag, ent.gz, "gzip")
			return
		}
		e.writeBytes(w, r, ent.etag, ent.body, "")
		return
	}

	// Cold conditional fast path: a materialized source knows the tag
	// without producing bytes.
	if inm != "" {
		if etag, ok := st.src.Meta(key); ok && etag != "" && etagMatch(inm, etag) {
			e.count("hit_304", &e.hits304)
			e.writeNotModified(w, etag)
			return
		}
	}

	body, etag, err := st.src.Render(r.Context(), key)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			e.count("not_found", &e.notFound)
			e.plainStatus(w, r, http.StatusNotFound, "404 page not found")
		case errors.Is(err, resilience.ErrTimeout):
			e.count("error", &e.errs)
			if e.timeouts != nil {
				e.timeouts.Inc()
			}
			e.plainStatus(w, r, http.StatusGatewayTimeout, "page computation timed out")
		default:
			e.count("error", &e.errs)
			internalError(w, r, e.cfg.Registry, e.cfg.Mode, err)
		}
		return
	}
	// Dynamic pages reveal their tag only after rendering: compare now
	// so conditional clients still save the transfer (not the compute).
	if inm != "" && etag != "" && etagMatch(inm, etag) {
		e.count("hit_304", &e.hits304)
		e.writeNotModified(w, etag)
		return
	}
	e.count("cold", &e.cold)
	e.writeString(w, r, etag, body)
}

// plainStatus writes a non-HTML status response, body-less on HEAD.
func (e *Edge) plainStatus(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.Header().Set("Content-Length", strconv.Itoa(len(msg)+1))
	w.WriteHeader(status)
	if r.Method != http.MethodHead {
		io.WriteString(w, msg+"\n")
	}
}

func (e *Edge) writeNotModified(w http.ResponseWriter, etag string) {
	h := w.Header()
	h.Set("ETag", etag)
	if e.cfg.Compress {
		h.Set("Vary", "Accept-Encoding")
	}
	w.WriteHeader(http.StatusNotModified)
}

func (e *Edge) pageHeaders(w http.ResponseWriter, etag string, length int, encoding string) {
	h := w.Header()
	h.Set("Content-Type", "text/html; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(length))
	if etag != "" {
		h.Set("ETag", etag)
	}
	if e.cfg.Compress {
		h.Set("Vary", "Accept-Encoding")
	}
	if encoding != "" {
		h.Set("Content-Encoding", encoding)
	}
}

func (e *Edge) writeBytes(w http.ResponseWriter, r *http.Request, etag string, body []byte, encoding string) {
	e.pageHeaders(w, etag, len(body), encoding)
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Write(body)
}

func (e *Edge) writeString(w http.ResponseWriter, r *http.Request, etag, body string) {
	e.pageHeaders(w, etag, len(body), "")
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	io.WriteString(w, body)
}

// etagMatch implements If-None-Match comparison (RFC 9110 §13.1.2):
// the wildcard matches anything, and tags compare weakly — a W/
// prefix on either side is ignored, which is exactly what 304
// revalidation wants.
func etagMatch(header, etag string) bool {
	etag = strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		part = strings.TrimPrefix(part, "W/")
		if part != "" && part == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the client accepts gzip content coding.
// Parses Accept-Encoding just enough to honor q=0 refusals.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		token, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(token) != "gzip" {
			continue
		}
		q := strings.TrimSpace(params)
		if q == "" {
			return true
		}
		if v, ok := strings.CutPrefix(q, "q="); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return err == nil && f > 0
		}
		return true
	}
	return false
}

// gzipBytes compresses a page for the precompressed variant. Returns
// nil when compression does not help (tiny or incompressible pages).
func gzipBytes(body []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	zw.Write(body)
	zw.Close()
	if buf.Len() >= len(body) {
		return nil
	}
	return buf.Bytes()
}

// materialize renders one page into a hot entry. Returns nil when the
// page cannot be materialized (vanished, render error, unknown tag).
func (e *Edge) materialize(src Source, key string, promoted time.Time) *hotEntry {
	// Sources own their render bounds (a renderer-backed source applies
	// the render timeout itself), so no extra deadline here.
	body, etag, err := src.Render(context.Background(), key)
	if err != nil || etag == "" {
		return nil
	}
	ent := &hotEntry{etag: etag, body: []byte(body), promoted: promoted}
	if e.cfg.Compress {
		ent.gz = gzipBytes(ent.body)
	}
	return ent
}

// SetSource swaps in a new content snapshot. Residency survives the
// swap exactly where the ETag does: a hot page whose tag is unchanged
// under the new source keeps its bytes; a hot page whose closure the
// delta touched is eagerly re-materialized (so the hot set stays warm
// across refreshes); a vanished page is dropped.
func (e *Edge) SetSource(src Source) {
	e.policyMu.Lock()
	defer e.policyMu.Unlock()
	hot := map[string]*hotEntry{}
	if old := e.state.Load(); old != nil {
		for key, ent := range old.hot {
			etag, ok := src.Meta(key)
			switch {
			case !ok:
				e.demotions.Add(1)
			case etag == ent.etag:
				hot[key] = ent // tag unchanged ⇒ bytes provably unchanged
			default:
				if ne := e.materialize(src, key, ent.promoted); ne != nil {
					hot[key] = ne
					e.remat.Add(1)
				} else {
					e.demotions.Add(1)
				}
			}
		}
	}
	e.storeState(&edgeState{src: src, hot: hot})
}

// FlushHot drops every materialized page (e.g. after an in-place data
// refresh in dynamic mode, where per-page invalidation is unknowable).
func (e *Edge) FlushHot() {
	e.policyMu.Lock()
	defer e.policyMu.Unlock()
	old := e.state.Load()
	if old == nil || len(old.hot) == 0 {
		return
	}
	e.demotions.Add(uint64(len(old.hot)))
	e.storeState(&edgeState{src: old.src, hot: map[string]*hotEntry{}})
}

func (e *Edge) storeState(st *edgeState) {
	e.state.Store(st)
	if e.mHotPages != nil {
		e.mHotPages.Set(float64(len(st.hot)))
	}
}

// Rerank re-evaluates the hot/cold split against the accounting
// table's current hit ranking. Deterministic given the table state:
// ties break by key. Hysteresis is two-fold — a challenger must beat
// an incumbent's hits by the configured margin, and an incumbent
// younger than MinResidency is not considered for demotion at all.
func (e *Edge) Rerank() {
	if e.cfg.HotPages <= 0 || e.cfg.Accounting == nil {
		return
	}
	e.policyMu.Lock()
	defer e.policyMu.Unlock()
	st := e.state.Load()
	if st == nil || st.src == nil {
		return
	}
	now := e.clock.Now()

	// Aggregate accounting hits by page key: several request paths can
	// resolve to one page ("/" and "/index.html").
	sample := e.cfg.HotPages * 4
	if sample < 64 {
		sample = 64
	}
	hits := map[string]uint64{}
	for _, ps := range e.cfg.Accounting.Hot(sample) {
		if key, ok := st.src.Resolve(ps.Path); ok {
			hits[key] += ps.Hits
		}
	}

	type cand struct {
		key      string
		hits     uint64
		score    float64
		resident bool
	}
	seen := map[string]bool{}
	var ranked []cand
	for key, h := range hits {
		_, res := st.hot[key]
		score := float64(h)
		if res {
			score *= 1 + e.cfg.Hysteresis
		}
		ranked = append(ranked, cand{key: key, hits: h, score: score, resident: res})
		seen[key] = true
	}
	for key := range st.hot {
		if !seen[key] {
			ranked = append(ranked, cand{key: key, resident: true})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].resident != ranked[j].resident {
			return ranked[i].resident // incumbents win exact ties
		}
		return ranked[i].key < ranked[j].key
	})

	// Dwell: incumbents younger than MinResidency hold their slot
	// regardless of rank.
	selected := map[string]bool{}
	for key, ent := range st.hot {
		if now.Sub(ent.promoted) < e.cfg.MinResidency {
			selected[key] = true
		}
	}
	for _, c := range ranked {
		if len(selected) >= e.cfg.HotPages {
			break
		}
		if selected[c.key] {
			continue
		}
		if !c.resident && c.hits == 0 {
			continue // never materialize a page nobody asked for
		}
		selected[c.key] = true
	}

	hot := make(map[string]*hotEntry, len(selected))
	for key := range selected {
		if ent := st.hot[key]; ent != nil {
			hot[key] = ent
			continue
		}
		if ent := e.materialize(st.src, key, now); ent != nil {
			hot[key] = ent
			e.promotions.Add(1)
		}
	}
	for key := range st.hot {
		if _, ok := hot[key]; !ok {
			e.demotions.Add(1)
		}
	}
	e.storeState(&edgeState{src: st.src, hot: hot})
}

// RunPolicy re-ranks on a clock-driven loop until stop closes. every
// <= 0 defaults to 10s.
func (e *Edge) RunPolicy(stop <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = 10 * time.Second
	}
	for {
		select {
		case <-stop:
			return
		case <-e.clock.After(every):
			e.Rerank()
		}
	}
}
