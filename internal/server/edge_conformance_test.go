package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"strudel/internal/datadef"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/template"
)

// buildStaticSite evaluates a small site end to end (data definition →
// StruQL → sitegen) so pages carry real provenance-keyed ETags. The
// site has no index.html, so "/" serves the generated listing.
func buildStaticSite(t *testing.T) *sitegen.Site {
	t.Helper()
	res, err := datadef.Parse("G", `
collection Publications { }
object pub1 in Publications { title "Alpha" year 1997 }
object pub2 in Publications { title "Beta" year 1998 }
`)
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(`
INPUT G
CREATE RootPage()
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Year" -> y,
     RootPage() -> "YearPage" -> YearPage(y)`)
	out, err := struql.Eval(q, res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := sitegen.New(out.Output, sitegen.Config{
		Templates: map[string]*template.Template{
			"RootPage": template.MustParse("RootPage", `<h1>Years</h1><SFMT_UL YearPage ORDER=ascend KEY=Year>`),
			"YearPage": template.MustParse("YearPage", `<h1>Year <SFMT Year></h1>`),
		},
	})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return site
}

// conformanceMode describes one serving mode for the table test.
type conformanceMode struct {
	name     string
	handler  http.Handler
	pagePath string // a real page
	pageBody string // its expected body bytes
	missing  string // a path that must 404
	rootLink string // substring the "/" listing must contain
	vary     bool   // Vary: Accept-Encoding expected (compression on)
}

// do performs one in-process request and returns the recorder.
func do(h http.Handler, method, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHTTPConformance is the GET/HEAD × {200, 304 variants, 404, root
// listing} table over both serving modes, asserting status, headers
// and body bytes.
func TestHTTPConformance(t *testing.T) {
	site := buildStaticSite(t)
	staticEdge := NewEdge(NewSiteSource(site), EdgeConfig{Mode: "static", Compress: true})

	renderer := dynamicRenderer(t)
	// Pages are discovered at render time; render the root so the year
	// pages resolve (the same discovery a browsing client performs).
	roots, err := renderer.Dec.Roots("Roots")
	if err != nil || len(roots) == 0 {
		t.Fatalf("Roots: %v (%d roots)", err, len(roots))
	}
	if _, err := renderer.RenderPage(roots[0]); err != nil {
		t.Fatal(err)
	}
	ref, ok := renderer.Dec.Resolve("YearPage(1997)")
	if !ok {
		t.Fatal("YearPage(1997) does not resolve")
	}
	yearBody, err := renderer.RenderPage(ref)
	if err != nil {
		t.Fatal(err)
	}

	modes := []conformanceMode{
		{
			name:     "static",
			handler:  staticEdge,
			pagePath: "/YearPage_1997.html",
			pageBody: site.Pages["YearPage_1997.html"].HTML,
			missing:  "/nope.html",
			rootLink: `href="/YearPage_1997.html"`,
			vary:     true,
		},
		{
			name:     "dynamic",
			handler:  Dynamic(renderer, "Roots"),
			pagePath: "/page/YearPage%281997%29",
			pageBody: yearBody,
			missing:  "/page/YearPage%282050%29",
			rootLink: `<h1>Years</h1>`, // single root renders, not a listing
			vary:     false,
		},
	}

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			// First GET captures the mode's real ETag for the 304 rows.
			first := do(m.handler, http.MethodGet, m.pagePath, nil)
			if first.Code != 200 {
				t.Fatalf("GET %s = %d", m.pagePath, first.Code)
			}
			etag := first.Header().Get("ETag")
			if etag == "" || !strings.HasPrefix(etag, `"`) {
				t.Fatalf("GET %s: missing or weak ETag %q", m.pagePath, etag)
			}

			type row struct {
				name       string
				path       string
				inm        string // If-None-Match header, "" = none
				wantStatus int
				wantBody   string // expected GET body ("" = don't check)
				wantETag   bool
			}
			rows := []row{
				{"200", m.pagePath, "", 200, m.pageBody, true},
				{"304 single tag", m.pagePath, etag, 304, "", true},
				{"304 tag list", m.pagePath, `"bogus", ` + etag, 304, "", true},
				{"304 star", m.pagePath, "*", 304, "", true},
				{"304 weak prefix", m.pagePath, "W/" + etag, 304, "", true},
				{"200 on stale tag", m.pagePath, `"0000"`, 200, m.pageBody, true},
				{"404", m.missing, "", 404, "", false},
				{"root", "/", "", 200, "", false},
			}
			for _, r := range rows {
				for _, method := range []string{http.MethodGet, http.MethodHead} {
					name := method + " " + r.name
					hdr := map[string]string{}
					if r.inm != "" {
						hdr["If-None-Match"] = r.inm
					}
					rec := do(m.handler, method, r.path, hdr)
					if rec.Code != r.wantStatus {
						t.Errorf("%s: status = %d, want %d", name, rec.Code, r.wantStatus)
						continue
					}
					body := rec.Body.String()
					if method == http.MethodHead && body != "" {
						t.Errorf("%s: HEAD wrote %d body bytes", name, len(body))
					}
					if r.wantStatus == 304 {
						if got := rec.Header().Get("ETag"); got != etag {
							t.Errorf("%s: 304 ETag = %q, want %q", name, got, etag)
						}
						if body != "" {
							t.Errorf("%s: 304 carried a body", name)
						}
						continue
					}
					if r.wantETag {
						if got := rec.Header().Get("ETag"); got != etag {
							t.Errorf("%s: ETag = %q, want %q", name, got, etag)
						}
					}
					if r.wantStatus == 200 {
						cl := rec.Header().Get("Content-Length")
						if cl == "" {
							t.Errorf("%s: missing Content-Length", name)
						} else if n, _ := strconv.Atoi(cl); method == http.MethodGet && n != len(body) {
							t.Errorf("%s: Content-Length = %s, body = %d bytes", name, cl, len(body))
						}
						if ct := rec.Header().Get("Content-Type"); r.path != m.missing && !strings.Contains(ct, "text/html") {
							t.Errorf("%s: Content-Type = %q", name, ct)
						}
						if m.vary {
							if v := rec.Header().Get("Vary"); v != "Accept-Encoding" {
								t.Errorf("%s: Vary = %q", name, v)
							}
						}
						if rec.Header().Get("Content-Encoding") != "" {
							t.Errorf("%s: unexpected Content-Encoding without Accept-Encoding", name)
						}
					}
					if method == http.MethodGet && r.wantBody != "" && body != r.wantBody {
						t.Errorf("%s: body = %q, want %q", name, body, r.wantBody)
					}
					if method == http.MethodGet && r.path == "/" && r.wantStatus == 200 &&
						!strings.Contains(body, m.rootLink) {
						t.Errorf("%s: root body %q missing %q", name, body, m.rootLink)
					}
				}
			}
		})
	}
}

// TestEdgeGzipPrecompression: a materialized page serves the
// precompressed gzip variant to accepting clients; cold pages and
// refusing clients (q=0) get identity bytes.
func TestEdgeGzipPrecompression(t *testing.T) {
	site := buildStaticSite(t)
	acct := NewAccounting(16)
	edge := NewEdge(NewSiteSource(site), EdgeConfig{
		Mode: "static", Compress: true, HotPages: 1, Accounting: acct,
	})
	// Make YearPage_1997 the hot page and materialize it.
	now := time.Now()
	for i := 0; i < 5; i++ {
		acct.Record("/YearPage_1997.html", 200, 10, time.Millisecond, now)
	}
	edge.Rerank()
	if got := edge.HotKeys(); len(got) != 1 || got[0] != "YearPage_1997.html" {
		t.Fatalf("hot keys = %v", got)
	}

	want := site.Pages["YearPage_1997.html"].HTML
	rec := do(edge, http.MethodGet, "/YearPage_1997.html",
		map[string]string{"Accept-Encoding": "gzip"})
	if rec.Code != 200 {
		t.Fatalf("hot gzip GET = %d", rec.Code)
	}
	switch rec.Header().Get("Content-Encoding") {
	case "gzip":
		zr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != want {
			t.Errorf("gzip body decodes to %q, want %q", plain, want)
		}
		if cl, _ := strconv.Atoi(rec.Header().Get("Content-Length")); cl != rec.Body.Len() {
			t.Errorf("Content-Length %d != wire bytes %d", cl, rec.Body.Len())
		}
	case "":
		// Tiny pages may not compress; identity must still be correct.
		if rec.Body.String() != want {
			t.Errorf("identity body = %q, want %q", rec.Body.String(), want)
		}
	default:
		t.Errorf("Content-Encoding = %q", rec.Header().Get("Content-Encoding"))
	}

	// q=0 refuses gzip even on the hot page.
	rec = do(edge, http.MethodGet, "/YearPage_1997.html",
		map[string]string{"Accept-Encoding": "gzip;q=0"})
	if rec.Header().Get("Content-Encoding") != "" || rec.Body.String() != want {
		t.Errorf("q=0 got encoding %q body %q", rec.Header().Get("Content-Encoding"), rec.Body.String())
	}

	// Cold pages serve identity regardless of Accept-Encoding.
	rec = do(edge, http.MethodGet, "/YearPage_1998.html",
		map[string]string{"Accept-Encoding": "gzip"})
	if rec.Code != 200 || rec.Header().Get("Content-Encoding") != "" {
		t.Errorf("cold page = %d encoding %q", rec.Code, rec.Header().Get("Content-Encoding"))
	}
}
