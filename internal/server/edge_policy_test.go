package server

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"strudel/internal/resilience"
	"strudel/internal/sitegen"
)

// TestAccountingHotTieBreakDeterminism: Hot(k) ranks by hits
// descending with ties broken by path ascending, so equal-traffic
// snapshots are stable run to run — the property the materialization
// policy's determinism rests on.
func TestAccountingHotTieBreakDeterminism(t *testing.T) {
	mk := func(order []string) *Accounting {
		a := NewAccounting(64)
		now := time.Now()
		for _, p := range order {
			a.Record(p, 200, 1, time.Millisecond, now)
		}
		return a
	}
	// Same hit multiset, recorded in different orders.
	a1 := mk([]string{"/c", "/a", "/b", "/b", "/a", "/c"})
	a2 := mk([]string{"/b", "/b", "/c", "/c", "/a", "/a"})
	want := []string{"/a", "/b", "/c"} // all tied at 2 hits → path order
	for i, a := range []*Accounting{a1, a2} {
		var got []string
		for _, ps := range a.Hot(10) {
			got = append(got, ps.Path)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("table %d: Hot = %v, want %v", i, got, want)
		}
		if ps := a.Hot(10); ps[0].Hits != 2 {
			t.Errorf("table %d: top hits = %d", i, ps[0].Hits)
		}
	}
	// Unequal hits dominate the tie-break.
	a3 := mk([]string{"/z", "/z", "/z", "/a", "/m", "/m"})
	var got []string
	for _, ps := range a3.Hot(2) {
		got = append(got, ps.Path)
	}
	if !reflect.DeepEqual(got, []string{"/z", "/m"}) {
		t.Errorf("ranked Hot = %v", got)
	}
}

// policySite builds a three-page site for policy tests.
func policySite() *sitegen.Site {
	mk := func(path, body string) *sitegen.Page {
		return &sitegen.Page{Path: path, Name: path, HTML: body, ETag: sitegen.BytesETag(body)}
	}
	return &sitegen.Site{Pages: map[string]*sitegen.Page{
		"a.html": mk("a.html", "<h1>A</h1>"),
		"b.html": mk("b.html", "<h1>B</h1>"),
		"c.html": mk("c.html", "<h1>C</h1>"),
	}}
}

// replay records n hits for a path, stamping the policy clock's time.
func replay(a *Accounting, clock *resilience.FakeClock, path string, n int) {
	for i := 0; i < n; i++ {
		a.Record(path, 200, 10, time.Millisecond, clock.Now())
	}
}

// TestEdgePromotionDemotionHysteresis replays a deterministic workload
// on a FakeClock and checks the policy's two hysteresis ingredients:
// a challenger must beat the incumbent's hits by the margin, and an
// incumbent younger than MinResidency is immune to demotion. No
// wall-clock sleeps anywhere.
func TestEdgePromotionDemotionHysteresis(t *testing.T) {
	clock := resilience.NewFakeClock(time.Unix(1000, 0))
	acct := NewAccounting(64)
	edge := NewEdge(NewSiteSource(policySite()), EdgeConfig{
		Mode:         "static",
		HotPages:     1,
		Accounting:   acct,
		Clock:        clock,
		Hysteresis:   0.5,
		MinResidency: 10 * time.Second,
	})

	// Phase 1: a dominates → promoted.
	replay(acct, clock, "/a.html", 10)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"a.html"}) {
		t.Fatalf("phase 1 hot = %v", got)
	}
	if st := edge.Stats(); st.Promotions != 1 || st.Demotions != 0 {
		t.Fatalf("phase 1 stats = %+v", st)
	}

	// Phase 2: traffic shifts to b, but not past the 1.5× margin
	// (b=12 ≤ a·1.5=15). Past the dwell, so only the margin protects a.
	clock.Advance(11 * time.Second)
	replay(acct, clock, "/b.html", 12)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"a.html"}) {
		t.Fatalf("phase 2 hot = %v (margin should protect the incumbent)", got)
	}
	if st := edge.Stats(); st.Demotions != 0 {
		t.Fatalf("phase 2 demotions = %d", st.Demotions)
	}

	// Phase 3: b decisively overtakes (b=20 > 15) → a demoted, b
	// promoted.
	replay(acct, clock, "/b.html", 8)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"b.html"}) {
		t.Fatalf("phase 3 hot = %v", got)
	}
	if st := edge.Stats(); st.Promotions != 2 || st.Demotions != 1 {
		t.Fatalf("phase 3 stats = %+v", st)
	}

	// Phase 4: immediately crush b with a-traffic; b was promoted just
	// now, so the dwell holds it resident until MinResidency passes.
	replay(acct, clock, "/a.html", 100)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"b.html"}) {
		t.Fatalf("phase 4 hot = %v (dwell should protect the fresh incumbent)", got)
	}

	// Phase 5: after the dwell, the same ranking flips it.
	clock.Advance(11 * time.Second)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"a.html"}) {
		t.Fatalf("phase 5 hot = %v", got)
	}

	// Rerank is idempotent on a stable ranking: no churn.
	before := edge.Stats()
	edge.Rerank()
	after := edge.Stats()
	if before.Promotions != after.Promotions || before.Demotions != after.Demotions {
		t.Errorf("idle rerank churned: %+v -> %+v", before, after)
	}
}

// TestEdgeSwapPreservesResidency: after a swap, hot pages whose ETag
// is unchanged keep their bytes; pages whose content changed are
// re-materialized with the new bytes; vanished pages drop.
func TestEdgeSwapPreservesResidency(t *testing.T) {
	clock := resilience.NewFakeClock(time.Unix(1000, 0))
	acct := NewAccounting(64)
	edge := NewEdge(NewSiteSource(policySite()), EdgeConfig{
		Mode: "static", HotPages: 2, Accounting: acct, Clock: clock,
	})
	replay(acct, clock, "/a.html", 5)
	replay(acct, clock, "/b.html", 4)
	edge.Rerank()
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"a.html", "b.html"}) {
		t.Fatalf("hot = %v", got)
	}

	// New snapshot: a unchanged, b changed, c unchanged.
	next := policySite()
	next.Pages["b.html"].HTML = "<h1>B2</h1>"
	next.Pages["b.html"].ETag = sitegen.BytesETag("<h1>B2</h1>")
	edge.SetSource(NewSiteSource(next))

	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"a.html", "b.html"}) {
		t.Fatalf("hot after swap = %v", got)
	}
	st := edge.Stats()
	if st.Rematerializations != 1 {
		t.Errorf("rematerializations = %d, want 1", st.Rematerializations)
	}
	// The re-materialized page serves the new bytes.
	rec := do(edge, http.MethodGet, "/b.html", nil)
	if rec.Body.String() != "<h1>B2</h1>" {
		t.Errorf("b.html after swap = %q", rec.Body.String())
	}
	if st.HitsHot == 0 && edge.Stats().HitsHot != 1 {
		t.Errorf("swap-surviving page did not serve from resident bytes")
	}

	// A vanished hot page drops.
	gone := policySite()
	delete(gone.Pages, "a.html")
	edge.SetSource(NewSiteSource(gone))
	if got := edge.HotKeys(); !reflect.DeepEqual(got, []string{"b.html"}) {
		t.Errorf("hot after vanish = %v", got)
	}
}
