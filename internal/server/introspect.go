// Introspection endpoints and structured logging. The debug surface
// grows two query-level views: /debug/explain (the profiled plan of
// the site's query stage) and /debug/provenance?page=… (why a page
// exists and which source objects it consumed). Log output goes
// through one shared slog.Logger whose lines carry request IDs, so a
// log line, a metric spike and a trace span of the same request can be
// correlated.
package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"

	"strudel/internal/telemetry"
)

var logPtr atomic.Pointer[slog.Logger]

// SetLogger replaces the package logger (telemetry.NewLogger output by
// default). Pass the same logger the CLI uses so server and build log
// lines share one schema.
func SetLogger(l *slog.Logger) {
	if l != nil {
		logPtr.Store(l)
	}
}

func logger() *slog.Logger {
	if l := logPtr.Load(); l != nil {
		return l
	}
	l := telemetry.NewLogger(os.Stderr)
	logPtr.CompareAndSwap(nil, l)
	return logPtr.Load()
}

// requestIDKey carries the per-request correlation ID in the request
// context.
type requestIDKey struct{}

// RequestID returns the request's correlation ID, assigned by
// Instrument; "" for requests outside an instrumented chain.
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// withRequestID tags the request with a fresh correlation ID.
func withRequestID(r *http.Request) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), requestIDKey{},
		telemetry.NewID("req")))
}

// Introspector supplies the query-level debug views as closures, so
// the server package needs no dependency on the build pipeline. Either
// field may be nil; its endpoint then answers 404.
type Introspector struct {
	// Explain returns the profiled plan of the site's query stage
	// (core.Explain). It re-evaluates the queries, so calls are
	// serialized by the handler.
	Explain func() (any, error)
	// Provenance returns the provenance record of one page by path or
	// object name, or false when the page is unknown.
	Provenance func(page string) (any, bool, error)
}

// AttachIntrospection mounts the query-level debug endpoints:
//
//	/debug/explain            profiled plan of the site's query stage (JSON)
//	/debug/provenance?page=P  provenance of one generated page (JSON)
func AttachIntrospection(mux *http.ServeMux, in Introspector) {
	var explainMu sync.Mutex
	mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, r *http.Request) {
		if in.Explain == nil {
			http.NotFound(w, r)
			return
		}
		// An explain re-runs the whole query stage; one at a time keeps a
		// curious client from multiplying that load.
		explainMu.Lock()
		ex, err := in.Explain()
		explainMu.Unlock()
		if err != nil {
			internalError(w, r, nil, "debug", err)
			return
		}
		writeJSON(w, ex)
	})
	mux.HandleFunc("/debug/provenance", func(w http.ResponseWriter, r *http.Request) {
		if in.Provenance == nil {
			http.NotFound(w, r)
			return
		}
		page := r.URL.Query().Get("page")
		if page == "" {
			http.Error(w, "missing ?page= parameter", http.StatusBadRequest)
			return
		}
		pp, ok, err := in.Provenance(page)
		if err != nil {
			internalError(w, r, nil, "debug", err)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, pp)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
