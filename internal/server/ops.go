// The live ops surface: process health (/healthz), serving readiness
// (/readyz, wired to the mediator's degradation state), and a single
// aggregated JSON snapshot (/debug/ops) of everything an operator —
// or `strudel top` — needs at a glance: the per-page accounting
// table, SLO state, Go runtime stats, request-trace sampling, and the
// requests in flight right now.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"strudel/internal/telemetry"
)

// InflightRequest is one request currently being served.
type InflightRequest struct {
	RequestID string    `json:"request_id"`
	Method    string    `json:"method"`
	Path      string    `json:"path"`
	Start     time.Time `json:"start"`
	// AgeSeconds is filled at snapshot time — how long the request has
	// been in flight. A multi-second age on a static page is a stuck
	// handler, not a slow one.
	AgeSeconds float64 `json:"age_seconds"`

	seq uint64
}

// Inflight tracks the requests being served right now, so /debug/ops
// can show what a wedged server is actually stuck on.
type Inflight struct {
	mu   sync.Mutex
	seq  uint64
	reqs map[uint64]InflightRequest
}

// NewInflight creates an empty tracker.
func NewInflight() *Inflight {
	return &Inflight{reqs: map[uint64]InflightRequest{}}
}

// Track registers a request and returns its release func. A nil
// *Inflight returns a no-op.
func (f *Inflight) Track(requestID, method, path string, start time.Time) func() {
	if f == nil {
		return func() {}
	}
	f.mu.Lock()
	f.seq++
	id := f.seq
	f.reqs[id] = InflightRequest{
		RequestID: requestID, Method: method, Path: path, Start: start, seq: id,
	}
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		delete(f.reqs, id)
		f.mu.Unlock()
	}
}

// Snapshot lists in-flight requests, oldest first (then by arrival
// order for equal timestamps, so the listing is deterministic).
func (f *Inflight) Snapshot(now time.Time) []InflightRequest {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]InflightRequest, 0, len(f.reqs))
	for _, r := range f.reqs {
		r.AgeSeconds = now.Sub(r.Start).Seconds()
		out = append(out, r)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Len reports how many requests are in flight.
func (f *Inflight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.reqs)
}

// Health supplies liveness and readiness as closures, so the server
// package needs no dependency on the build pipeline.
type Health struct {
	// Ready reports nil when the process should receive traffic; the
	// error explains why not. A nil func means always ready. The
	// serving CLI wires this to the mediator's refresh state: a refresh
	// that hard-failed (a source down with no last-good graph to
	// degrade to) flips readiness off while liveness stays up.
	Ready func() error
}

// AttachHealth mounts the health endpoints:
//
//	/healthz  200 while the process can answer at all (liveness)
//	/readyz   200 while Ready() is nil, else 503 with the reason
//	          (readiness — what load balancers should route on)
func AttachHealth(mux *http.ServeMux, h Health) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if h.Ready != nil {
			if err := h.Ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
}

// RecentTrace summarizes one retained request trace.
type RecentTrace struct {
	ID         string  `json:"id"`
	Name       string  `json:"name"`
	DurationMs float64 `json:"duration_ms"`
	// Spans counts the trace's spans (root included) — a cheap signal
	// of how much work the request fanned out into.
	Spans int `json:"spans"`
}

// TracingStats is the sampler's /debug/ops view.
type TracingStats struct {
	Requests uint64        `json:"requests"`
	Sampled  uint64        `json:"sampled"`
	Recent   []RecentTrace `json:"recent"`
}

// OpsSnapshot is the aggregated /debug/ops document.
type OpsSnapshot struct {
	Time          time.Time `json:"time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Mode          string    `json:"mode"`
	Ready         bool      `json:"ready"`
	ReadyReason   string    `json:"ready_reason,omitempty"`
	// BuildID names the build currently being served — the key into
	// the build ledger (/debug/ledger, `strudel history`).
	BuildID string                  `json:"build_id,omitempty"`
	SLO     *telemetry.SLOSnapshot  `json:"slo,omitempty"`
	Runtime *telemetry.RuntimeStats `json:"runtime,omitempty"`
	// Edge is the serving edge's cache counters (hit/304 ratios).
	Edge       *EdgeStats          `json:"edge,omitempty"`
	Accounting *AccountingSnapshot `json:"accounting,omitempty"`
	InFlight   []InflightRequest   `json:"in_flight"`
	Tracing    *TracingStats       `json:"tracing,omitempty"`
	// LastBuild is the newest build-ledger entry, marshaled by the
	// provider (the server package has no ledger dependency).
	LastBuild json.RawMessage `json:"last_build,omitempty"`
}

// Ops aggregates the serving-plane observables into one snapshot. Any
// field may be nil; its section is then omitted.
type Ops struct {
	// Mode is the serving mode tag ("static", "dynamic").
	Mode       string
	Accounting *Accounting
	SLO        *telemetry.SLO
	Runtime    *telemetry.RuntimeSampler
	Tracer     *telemetry.RequestTracer
	Inflight   *Inflight
	// Ready mirrors Health.Ready so the snapshot shows readiness inline.
	Ready func() error
	// BuildID reports the live build's ID (see OpsSnapshot.BuildID).
	BuildID func() string
	// Edge, when set, contributes its cache stats to the snapshot.
	Edge *Edge
	// LastBuild, when set, returns the newest build-ledger entry (any
	// JSON-marshalable value; nil for none) — a closure so the server
	// package stays decoupled from the ledger package.
	LastBuild func() any
	// TopK bounds the accounting rows in the snapshot (default 50).
	TopK int
}

// Snapshot assembles the current ops view.
func (o *Ops) Snapshot() OpsSnapshot {
	now := time.Now()
	snap := OpsSnapshot{
		Time:          now,
		UptimeSeconds: now.Sub(telemetry.ProcessStart()).Seconds(),
		Mode:          o.Mode,
		Ready:         true,
		InFlight:      o.Inflight.Snapshot(now),
	}
	if snap.InFlight == nil {
		snap.InFlight = []InflightRequest{}
	}
	if o.Ready != nil {
		if err := o.Ready(); err != nil {
			snap.Ready = false
			snap.ReadyReason = err.Error()
		}
	}
	if o.BuildID != nil {
		snap.BuildID = o.BuildID()
	}
	if o.Edge != nil {
		es := o.Edge.Stats()
		snap.Edge = &es
	}
	if o.LastBuild != nil {
		if v := o.LastBuild(); v != nil {
			if raw, err := json.Marshal(v); err == nil {
				snap.LastBuild = raw
			}
		}
	}
	if o.SLO != nil {
		s := o.SLO.Snapshot()
		snap.SLO = &s
	}
	if o.Runtime != nil {
		r := o.Runtime.Sample()
		snap.Runtime = &r
	}
	if o.Accounting != nil {
		topK := o.TopK
		if topK < 1 {
			topK = 50
		}
		a := o.Accounting.Snapshot(topK)
		snap.Accounting = &a
	}
	if o.Tracer != nil {
		total, sampled := o.Tracer.Counts()
		ts := &TracingStats{Requests: total, Sampled: sampled}
		for _, tr := range o.Tracer.Recent() {
			ts.Recent = append(ts.Recent, RecentTrace{
				ID:         tr.ID,
				Name:       tr.Root().Name,
				DurationMs: float64(tr.Duration()) / float64(time.Millisecond),
				Spans:      countSpans(tr.Root()),
			})
		}
		snap.Tracing = ts
	}
	return snap
}

func countSpans(s *telemetry.Span) int {
	n := 1
	for _, c := range s.Children() {
		n += countSpans(c)
	}
	return n
}

// AttachOps mounts /debug/ops, answering the aggregated JSON snapshot.
// ?top=N overrides the accounting row bound for one response.
func AttachOps(mux *http.ServeMux, o *Ops) {
	mux.HandleFunc("/debug/ops", func(w http.ResponseWriter, r *http.Request) {
		view := *o
		if top := r.URL.Query().Get("top"); top != "" {
			n, err := strconv.Atoi(top)
			if err != nil || n < 1 {
				http.Error(w, "bad ?top= parameter", http.StatusBadRequest)
				return
			}
			view.TopK = n
		}
		writeJSON(w, view.Snapshot())
	})
}
