package server

import (
	"fmt"
	"html"
	"net/http"
	"sort"

	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
)

// QueryHandler serves ad-hoc StruQL queries against a graph — the
// "querying a STRUDEL-generated site" use the paper suggests for
// regular path expressions (Sec. 5.2), and the simplest form of a page
// that depends on user input and therefore cannot be materialized
// statically (Sec. 1). GET /?q=<query> evaluates the query's where
// and collect clauses against the graph and renders each output
// collection as an HTML list. Construction clauses are rejected: an
// ad-hoc query must not mutate the site.
//
// maxBindings bounds evaluation (0 means 100000) so a stray
// active-domain query cannot take the server down.
func QueryHandler(g *graph.Graph, reg *struql.Registry, maxBindings int) http.Handler {
	return QueryHandlerFrom(func() *graph.Graph { return g }, reg, maxBindings)
}

// QueryHandlerFrom is QueryHandler over whatever graph the getter
// currently returns, so ad-hoc queries follow a background refresher's
// atomic swaps and always see the latest committed graph.
func QueryHandlerFrom(get func() *graph.Graph, reg *struql.Registry, maxBindings int) http.Handler {
	if maxBindings == 0 {
		maxBindings = 100_000
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := get()
		src := r.URL.Query().Get("q")
		if src == "" {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			fmt.Fprint(w, `<html><body><form method="GET">
<p>StruQL query (where/collect):</p>
<textarea name="q" rows="6" cols="70"></textarea>
<p><input type="submit" value="Run"></p></form></body></html>`)
			return
		}
		q, err := struql.Parse(src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := readOnly(q.Root); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// A sampled request trace gets the evaluation as a child span —
		// ad-hoc queries are the requests whose cost varies the most.
		sp, _, finish := telemetry.StartSpan(r.Context(), "struql eval")
		res, err := struql.Eval(q, g, &struql.Options{Registry: reg, MaxBindings: maxBindings})
		if sp != nil {
			if err == nil {
				sp.SetAttr("bindings", res.Bindings)
			} else {
				sp.SetAttr("error", err.Error())
			}
		}
		finish()
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>Query results</h1><pre>%s</pre>\n", html.EscapeString(src))
		colls := res.Output.Collections()
		sort.Strings(colls)
		if len(colls) == 0 {
			fmt.Fprint(w, "<p>(no collect clauses — nothing to show)</p>")
		}
		for _, c := range colls {
			fmt.Fprintf(w, "<h2>%s</h2><ul>\n", html.EscapeString(c))
			for _, v := range res.Output.Collection(c) {
				fmt.Fprintf(w, "<li>%s</li>\n", html.EscapeString(g.DisplayValue(v)))
			}
			fmt.Fprint(w, "</ul>\n")
		}
		fmt.Fprint(w, "</body></html>")
	})
}

// readOnly rejects queries with construction clauses beyond collect.
func readOnly(b *struql.Block) error {
	if len(b.Creates) > 0 || len(b.Links) > 0 {
		return fmt.Errorf("server: ad-hoc queries may only use where and collect clauses")
	}
	for _, ch := range b.Children {
		if err := readOnly(ch); err != nil {
			return err
		}
	}
	return nil
}
