package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"strudel/internal/telemetry"
)

// Recover wraps a handler with panic recovery: a panicking request — a
// template bug on one page, say — answers 500 and increments the panic
// counter instead of taking the whole process down. http.ErrAbortHandler
// is re-raised so deliberate aborts keep their net/http semantics.
// reg may be nil.
func Recover(reg *telemetry.Registry, mode string, next http.Handler) http.Handler {
	var panics *telemetry.Counter
	if reg != nil {
		panics = reg.Counter("strudel_http_panics_total",
			"Requests that panicked and were recovered, by serving mode.",
			"mode", mode)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			logger().Error("panic recovered",
				"mode", mode, "path", r.URL.Path, "request_id", RequestID(r),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			if panics != nil {
				panics.Inc()
			}
			// Best effort: if the handler already wrote headers this
			// write is a no-op on the status line.
			http.Error(w, "internal error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// Shed wraps a handler with max-in-flight load shedding: when max
// requests are already being served, new ones are rejected immediately
// with 503 and a Retry-After header instead of queueing unboundedly —
// under overload, bounded brown-out beats collapse. max <= 0 disables
// shedding. reg may be nil.
func Shed(reg *telemetry.Registry, mode string, max int, next http.Handler) http.Handler {
	if max <= 0 {
		return next
	}
	var shed *telemetry.Counter
	if reg != nil {
		shed = reg.Counter("strudel_http_shed_total",
			"Requests rejected with 503 because max in-flight was reached, by serving mode.",
			"mode", mode)
	}
	slots := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			if shed != nil {
				shed.Inc()
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			http.Error(w, "server overloaded, retry shortly", http.StatusServiceUnavailable)
		}
	})
}

// retryAfterSeconds is the backoff hint sent with shed responses.
const retryAfterSeconds = 1

// NewServer constructs an http.Server with production timeouts: a
// bare http.ListenAndServe has no header-read or idle timeouts, so one
// slow-loris client (or a million of them) can pin connections
// forever. WriteTimeout stays above the 30s pprof CPU profile window
// so /debug/pprof/profile keeps working on instrumented servers.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// ServeUntil runs srv until stop fires, then shuts it down gracefully:
// the listener closes, in-flight requests get shutdownTimeout to
// finish, and a clean shutdown returns nil. A serve error (e.g. the
// address is taken) is returned as-is.
func ServeUntil(srv *http.Server, stop <-chan struct{}, shutdownTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
