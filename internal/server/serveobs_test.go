package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel/internal/mediator"
	"strudel/internal/resilience"
	"strudel/internal/telemetry"
)

func TestAccountingRecordAndSnapshot(t *testing.T) {
	a := NewAccounting(8)
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 5; i++ {
		a.Record("/hot.html", 200, 100, 2*time.Millisecond, now)
	}
	a.Record("/cold.html", 404, 0, 500*time.Microsecond, now)
	a.Record("/err.html", 500, 10, 50*time.Millisecond, now)

	snap := a.Snapshot(10)
	if snap.Tracked != 3 || snap.TotalHits != 7 || snap.Evictions != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Pages) != 3 || snap.Pages[0].Path != "/hot.html" || snap.Pages[0].Hits != 5 {
		t.Fatalf("pages = %+v", snap.Pages)
	}
	hot := snap.Pages[0]
	if hot.Bytes != 500 || hot.LastStatus != 200 {
		t.Errorf("hot row = %+v", hot)
	}
	// 2ms observations land in the (1ms, 2.5ms] bucket.
	if hot.P50Ms <= 1 || hot.P50Ms > 2.5 {
		t.Errorf("p50 = %v, want in (1, 2.5]", hot.P50Ms)
	}
	if hot.MeanMs < 1.99 || hot.MeanMs > 2.01 {
		t.Errorf("mean = %v, want 2", hot.MeanMs)
	}
	var errRow PageStats
	for _, p := range snap.Pages {
		if p.Path == "/err.html" {
			errRow = p
		}
	}
	if errRow.Errors != 1 {
		t.Errorf("error row = %+v", errRow)
	}
	// Top-K truncation is by hits.
	if top := a.Hot(1); len(top) != 1 || top[0].Path != "/hot.html" {
		t.Errorf("Hot(1) = %+v", top)
	}
}

func TestAccountingLRUEvictionDeterministic(t *testing.T) {
	a := NewAccounting(3)
	now := time.Unix(1_000_000, 0)
	// Fill: a, b, c. Touch a again so b is the least recently served.
	for _, p := range []string{"/a", "/b", "/c", "/a"} {
		a.Record(p, 200, 1, time.Millisecond, now)
	}
	// A new page evicts exactly /b.
	a.Record("/d", 200, 1, time.Millisecond, now)
	snap := a.Snapshot(10)
	if snap.Tracked != 3 || snap.Evictions != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	got := map[string]bool{}
	for _, p := range snap.Pages {
		got[p.Path] = true
	}
	if got["/b"] || !got["/a"] || !got["/c"] || !got["/d"] {
		t.Errorf("tracked pages = %v, want a, c, d (b evicted)", got)
	}
	// TotalHits survives eviction: it counts requests, not rows.
	if snap.TotalHits != 5 {
		t.Errorf("total hits = %d, want 5", snap.TotalHits)
	}
	// A long tail churns through the table without growing it.
	for i := 0; i < 100; i++ {
		a.Record(fmt.Sprintf("/tail/%d", i), 200, 1, time.Millisecond, now)
	}
	if a.Len() != 3 {
		t.Errorf("table grew to %d, bound is 3", a.Len())
	}
}

// TestAccountingConcurrent hammers the table from many goroutines —
// hot pages, a churning long tail, and interleaved snapshots — and
// checks the exact total. Run under -race this pins down the table's
// locking.
func TestAccountingConcurrent(t *testing.T) {
	a := NewAccounting(16)
	reg := telemetry.NewRegistry()
	a.Instrument(reg)
	a.SetFreshness(func() time.Time { return time.Unix(999_000, 0) })
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 4 {
				case 0:
					a.Record("/hot", 200, 10, time.Millisecond, time.Unix(1_000_000, 0))
				case 1:
					a.Record(fmt.Sprintf("/w%d", w), 200, 10, time.Millisecond, time.Unix(1_000_000, 0))
				case 2:
					a.Record(fmt.Sprintf("/tail/%d/%d", w, i), 404, 0, time.Microsecond, time.Unix(1_000_000, 0))
				default:
					_ = a.Snapshot(5)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := a.Snapshot(20)
	wantHits := uint64(workers * perWorker * 3 / 4)
	if snap.TotalHits != wantHits {
		t.Errorf("total hits = %d, want %d", snap.TotalHits, wantHits)
	}
	if snap.Tracked > 16 {
		t.Errorf("tracked = %d, bound is 16", snap.Tracked)
	}
	if got := reg.Counter("strudel_page_hits_total", "").Value(); got != wantHits {
		t.Errorf("hits counter = %d, want %d", got, wantHits)
	}
	// The hot page survives tail churn and reports staleness.
	var hot *PageStats
	for i := range snap.Pages {
		if snap.Pages[i].Path == "/hot" {
			hot = &snap.Pages[i]
		}
	}
	if hot == nil {
		t.Fatalf("hot page evicted; pages = %+v", snap.Pages)
	}
	if hot.Hits != uint64(workers*perWorker/4) {
		t.Errorf("hot hits = %d, want %d", hot.Hits, workers*perWorker/4)
	}
	if hot.StalenessSeconds != 1000 {
		t.Errorf("staleness = %v, want 1000", hot.StalenessSeconds)
	}
}

// flushCountingWriter fakes an underlying ResponseWriter that supports
// Flush and ReadFrom, recording what reached it.
type flushCountingWriter struct {
	header  http.Header
	buf     bytes.Buffer
	status  int
	flushes int
	reads   int
}

func (f *flushCountingWriter) Header() http.Header {
	if f.header == nil {
		f.header = http.Header{}
	}
	return f.header
}
func (f *flushCountingWriter) WriteHeader(code int)        { f.status = code }
func (f *flushCountingWriter) Write(b []byte) (int, error) { return f.buf.Write(b) }
func (f *flushCountingWriter) Flush()                      { f.flushes++ }
func (f *flushCountingWriter) ReadFrom(src io.Reader) (int64, error) {
	f.reads++
	return f.buf.ReadFrom(src)
}

func TestStatusWriterPassthrough(t *testing.T) {
	under := &flushCountingWriter{}
	sw := &statusWriter{ResponseWriter: under}

	// Flusher reaches the underlying writer through the wrapper.
	var w http.ResponseWriter = sw
	fl, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not expose http.Flusher")
	}
	fl.Flush()
	if under.flushes != 1 {
		t.Errorf("flushes = %d, want 1", under.flushes)
	}

	// ReadFrom uses the underlying fast path and counts bytes.
	rf, ok := w.(io.ReaderFrom)
	if !ok {
		t.Fatal("statusWriter does not expose io.ReaderFrom")
	}
	n, err := rf.ReadFrom(strings.NewReader("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("ReadFrom = %d, %v", n, err)
	}
	if under.reads != 1 {
		t.Errorf("underlying ReadFrom calls = %d, want 1", under.reads)
	}
	if sw.bytes != 11 || sw.status != http.StatusOK {
		t.Errorf("captured bytes=%d status=%d, want 11, 200", sw.bytes, sw.status)
	}

	// Write still counts on top.
	if _, err := w.Write([]byte("!!")); err != nil {
		t.Fatal(err)
	}
	if sw.bytes != 13 {
		t.Errorf("bytes = %d, want 13", sw.bytes)
	}

	// Unwrap exposes the underlying writer (http.ResponseController).
	if sw.Unwrap() != http.ResponseWriter(under) {
		t.Error("Unwrap did not return the wrapped writer")
	}

	// A ResponseRecorder has no ReadFrom: the wrapper falls back to a
	// plain copy instead of failing.
	rec := httptest.NewRecorder()
	sw2 := &statusWriter{ResponseWriter: rec}
	if n, err := sw2.ReadFrom(strings.NewReader("abc")); err != nil || n != 3 {
		t.Fatalf("fallback ReadFrom = %d, %v", n, err)
	}
	if rec.Body.String() != "abc" || sw2.bytes != 3 {
		t.Errorf("fallback copy: body=%q bytes=%d", rec.Body.String(), sw2.bytes)
	}
}

// TestInstrumentedStreamingFlush is the end-to-end form of the
// statusWriter fix: a streaming handler behind the full middleware
// chain can still assert http.Flusher and deliver chunks before the
// response completes.
func TestInstrumentedStreamingFlush(t *testing.T) {
	reg := telemetry.NewRegistry()
	firstChunk := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "no flusher", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "chunk1\n")
		fl.Flush()
		close(firstChunk)
		<-release
		fmt.Fprint(w, "chunk2\n")
	})
	srv := httptest.NewServer(Instrument(reg, "static", h))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The first chunk must arrive while the handler is still running —
	// only possible if Flush reached the real connection.
	select {
	case <-firstChunk:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never flushed")
	}
	buf := make([]byte, 64)
	n, err := resp.Body.Read(buf)
	if err != nil || string(buf[:n]) != "chunk1\n" {
		t.Fatalf("first read = %q, %v (want flushed chunk1)", buf[:n], err)
	}
	close(release)
	rest, err := io.ReadAll(resp.Body)
	if err != nil || string(rest) != "chunk2\n" {
		t.Fatalf("rest = %q, %v", rest, err)
	}
}

// TestHealthEndpoints wires readiness to real mediator refresh
// reports, the way the serving CLI does: a refresh where a source
// failed with no last-good graph flips /readyz to 503; a merely
// degraded refresh (serving stale last-good data) stays ready — the
// resilience layer's whole point is that stale pages beat no pages.
func TestHealthEndpoints(t *testing.T) {
	var mu sync.Mutex
	var report *mediator.RefreshReport
	mux := http.NewServeMux()
	AttachHealth(mux, Health{Ready: func() error {
		mu.Lock()
		defer mu.Unlock()
		if report != nil && report.Failed() {
			return fmt.Errorf("refresh failed: %s", report.Summary())
		}
		return nil
	}})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	setReport := func(r *mediator.RefreshReport) {
		mu.Lock()
		report = r
		mu.Unlock()
	}

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// No refresh yet (first build pending report): ready.
	if code, body := get(t, srv, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q", code, body)
	}
	// Degraded — a source fell back to last-good data: still ready.
	setReport(&mediator.RefreshReport{Sources: []mediator.SourceStatus{
		{Name: "refs.bib", State: mediator.Degraded, Err: fmt.Errorf("network down")},
	}})
	if code, _ := get(t, srv, "/readyz"); code != 200 {
		t.Errorf("/readyz while degraded = %d, want 200 (stale beats nothing)", code)
	}
	// Failed — a source down with no last-good graph to serve: 503.
	setReport(&mediator.RefreshReport{Sources: []mediator.SourceStatus{
		{Name: "refs.bib", State: mediator.Failed, Err: fmt.Errorf("network down")},
	}})
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while failed = %d, want 503", code)
	}
	if !strings.Contains(body, "refs.bib") {
		t.Errorf("503 body should carry the reason, got %q", body)
	}
	// Liveness is unaffected by readiness.
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("/healthz while not ready = %d, want 200", code)
	}
}

// TestOpsSnapshotMatchesWorkload drives a deterministic workload
// through the full observed middleware and checks /debug/ops reports
// exactly the requests served — the PR's acceptance criterion.
func TestOpsSnapshotMatchesWorkload(t *testing.T) {
	reg := telemetry.NewRegistry()
	acct := NewAccounting(64)
	acct.Instrument(reg)
	clk := resilience.NewFakeClock(time.Unix(1_000_000, 0))
	slo := telemetry.NewSLO(time.Second, 0.99, time.Minute, clk)
	tracer := telemetry.NewRequestTracer(4, 16)
	inflight := NewInflight()
	var accessBuf strings.Builder
	var accessMu sync.Mutex

	pages := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/missing") {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "<h1>%s</h1>", r.URL.Path)
	})
	obs := Observability{
		Registry:   reg,
		Accounting: acct,
		SLO:        slo,
		AccessLog:  telemetry.NewAccessLogger(&lockedWriter{mu: &accessMu, sb: &accessBuf}),
		Tracer:     tracer,
		Inflight:   inflight,
	}
	mux := http.NewServeMux()
	mux.Handle("/", InstrumentObserved(obs, "static", pages))
	AttachOps(mux, &Ops{Mode: "static", Accounting: acct, SLO: slo,
		Tracer: tracer, Inflight: inflight})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Deterministic workload: known hit counts per page.
	workload := map[string]int{
		"/index.html":   7,
		"/pubs.html":    4,
		"/year/97.html": 2,
		"/missing.html": 1,
	}
	total := 0
	for path, n := range workload {
		for i := 0; i < n; i++ {
			if code, _ := get(t, srv, path); code != 200 && path != "/missing.html" {
				t.Fatalf("GET %s = %d", path, code)
			}
			total++
		}
	}

	code, body := get(t, srv, "/debug/ops?top=10")
	if code != 200 {
		t.Fatalf("/debug/ops = %d", code)
	}
	var snap OpsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("ops snapshot does not decode: %v\n%s", err, body)
	}
	if !snap.Ready {
		t.Error("snapshot should report ready with no Ready func")
	}
	if snap.Accounting == nil || snap.SLO == nil || snap.Tracing == nil {
		t.Fatalf("snapshot missing sections: %+v", snap)
	}
	// Exact per-page hit counts. /debug/ops itself is mounted outside
	// the accounting middleware, so the workload is the whole table.
	if snap.Accounting.TotalHits != uint64(total) {
		t.Errorf("total hits = %d, want %d", snap.Accounting.TotalHits, total)
	}
	seen := map[string]uint64{}
	for _, p := range snap.Accounting.Pages {
		seen[p.Path] = p.Hits
	}
	for path, n := range workload {
		if seen[path] != uint64(n) {
			t.Errorf("page %s hits = %d, want %d", path, seen[path], n)
		}
	}
	// The 404 page recorded its status but is not an error (5xx).
	for _, p := range snap.Accounting.Pages {
		if p.Path == "/missing.html" && (p.LastStatus != 404 || p.Errors != 0) {
			t.Errorf("missing row = %+v", p)
		}
	}
	// SLO saw every request; all were good (fast, no 5xx).
	if snap.SLO.Total != uint64(total) || snap.SLO.Good != uint64(total) {
		t.Errorf("SLO window = %+v, want %d good", snap.SLO, total)
	}
	// Tracing sampled 1 in 4.
	if snap.Tracing.Requests != uint64(total) || snap.Tracing.Sampled != uint64((total+3)/4) {
		t.Errorf("tracing = %+v, want %d requests, %d sampled", snap.Tracing, total, (total+3)/4)
	}
	if len(snap.InFlight) != 0 {
		t.Errorf("in-flight after workload = %+v, want empty", snap.InFlight)
	}
	// The access log carries one line per request.
	accessMu.Lock()
	lines := strings.Count(accessBuf.String(), "msg=access")
	accessMu.Unlock()
	if lines != total {
		t.Errorf("access log lines = %d, want %d", lines, total)
	}
	// ?top bound and validation.
	if code, body := get(t, srv, "/debug/ops?top=1"); code != 200 {
		t.Errorf("?top=1 = %d", code)
	} else {
		var s OpsSnapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil || len(s.Accounting.Pages) != 1 {
			t.Errorf("?top=1 pages = %d, err %v", len(s.Accounting.Pages), err)
		}
	}
	if code, _ := get(t, srv, "/debug/ops?top=zero"); code != http.StatusBadRequest {
		t.Errorf("bad top = %d, want 400", code)
	}
}

func TestInflightTracking(t *testing.T) {
	reg := telemetry.NewRegistry()
	inflight := NewInflight()
	entered := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})
	srv := httptest.NewServer(InstrumentObserved(
		Observability{Registry: reg, Inflight: inflight}, "static", h))
	defer srv.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/slow.html")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered
	reqs := inflight.Snapshot(time.Now())
	if len(reqs) != 1 || reqs[0].Path != "/slow.html" || reqs[0].Method != "GET" {
		t.Errorf("in-flight = %+v", reqs)
	}
	if reqs[0].RequestID == "" {
		t.Error("in-flight request lost its correlation ID")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if inflight.Len() != 0 {
		t.Errorf("in-flight after completion = %d", inflight.Len())
	}
}

// TestRequestSpanReachesRenderer: a sampled request's trace contains
// the click-time render and page-query spans from the incremental
// layer — the spans threaded through the request context.
func TestRequestSpanReachesRenderer(t *testing.T) {
	rend := dynamicRenderer(t)
	tracer := telemetry.NewRequestTracer(1, 8) // trace every request
	reg := telemetry.NewRegistry()
	h := InstrumentObserved(Observability{Registry: reg, Tracer: tracer},
		"dynamic", Dynamic(rend, "Roots"))
	srv := httptest.NewServer(h)
	defer srv.Close()

	if code, _ := get(t, srv, "/"); code != 200 {
		t.Fatalf("root = %d", code)
	}
	recent := tracer.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(recent))
	}
	var names []string
	var walk func(s *telemetry.Span)
	walk = func(s *telemetry.Span) {
		names = append(names, s.Name)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(recent[0].Root())
	joined := strings.Join(names, "|")
	if !strings.Contains(joined, "render ") || !strings.Contains(joined, "page ") {
		t.Errorf("trace spans = %v, want render and page children", names)
	}
}

// lockedWriter serializes writes from concurrent request goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	sb *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sb.Write(p)
}
