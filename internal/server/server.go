// Package server serves STRUDEL-generated Web sites over HTTP, in the
// two evaluation modes the paper discusses (Secs. 1 and 6): static —
// the completely materialized site's pages are served from memory —
// and dynamic — only the root is precomputed, and each click runs the
// page's decomposed query at request time, with query-result caching
// to reduce click time.
//
// Observability: Instrument wraps a handler with request counting and
// latency histograms per serving mode, and AttachDebug exposes the
// live introspection endpoints (/metrics in Prometheus text format,
// /debug/vars, /debug/pprof) that back the paper's click-time
// measurements (Sec. 6).
package server

import (
	"expvar"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"strudel/internal/incremental"
	"strudel/internal/resilience"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

// Static returns a handler serving a materialized site. "/" serves
// index.html when present, else a page listing.
func Static(site *sitegen.Site) http.Handler {
	return StaticFrom(func() *sitegen.Site { return site })
}

// StaticFrom serves whatever site the getter currently returns. A
// background refresher can atomically swap in a newly built site (via
// an atomic pointer in the getter) while requests are in flight; each
// request sees one consistent site snapshot.
//
// Responses carry the page's provenance-keyed ETag (when the site was
// built with one), Content-Length, and honor If-None-Match and HEAD.
// For the materializing byte cache and precompressed variants, serve
// through an Edge instead (NewEdge + SetSource).
func StaticFrom(get func() *sitegen.Site) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		site := get()
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		page, ok := site.Pages[path]
		if !ok {
			if r.URL.Path == "/" {
				writeListing(w, r, site)
				return
			}
			http.NotFound(w, r)
			return
		}
		if page.ETag != "" {
			w.Header().Set("ETag", page.ETag)
			if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, page.ETag) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		body := []byte(page.HTML)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		if r.Method == http.MethodHead {
			return
		}
		w.Write(body)
	})
	return mux
}

// writeListing answers "/" when the site has no index.html: a buffered
// page listing with Content-Length, a bytes-keyed ETag, and no body on
// HEAD.
func writeListing(w http.ResponseWriter, r *http.Request, site *sitegen.Site) {
	var b strings.Builder
	b.WriteString("<html><body><h1>Site</h1><ul>")
	for _, p := range site.Paths() {
		fmt.Fprintf(&b, "<li><a href=%q>%s</a></li>", "/"+p, html.EscapeString(p))
	}
	b.WriteString("</ul></body></html>")
	body := b.String()
	etag := sitegen.BytesETag(body)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	io.WriteString(w, body)
}

// internalError answers a failed request without leaking the error
// into the response body: the client gets a generic page, and the
// detail goes to the structured log (with the request's correlation
// ID) and the error counter instead.
func internalError(w http.ResponseWriter, r *http.Request, reg *telemetry.Registry, mode string, err error) {
	logger().Error("internal error",
		"mode", mode, "path", r.URL.Path, "request_id", RequestID(r), "err", err)
	if reg != nil {
		reg.Counter("strudel_http_internal_errors_total",
			"Requests that failed with an internal error, by serving mode.",
			"mode", mode).Inc()
	}
	http.Error(w, "internal error", http.StatusInternalServerError)
}

// Dynamic returns a handler computing pages at click time. "/" renders
// the first root of the given collection; "/page/<key>" renders the
// page with that key (keys are discovered during browsing, starting
// from the roots, exactly as a user could only reach pages by
// following links).
func Dynamic(r *incremental.Renderer, rootCollection string) http.Handler {
	return DynamicWith(r, rootCollection, nil)
}

// DynamicWith is Dynamic with render errors counted in a telemetry
// registry (which may be nil).
func DynamicWith(r *incremental.Renderer, rootCollection string, reg *telemetry.Registry) http.Handler {
	return DynamicFrom(func() *incremental.Renderer { return r }, rootCollection,
		DynamicConfig{Registry: reg})
}

// DynamicConfig tunes a dynamic click-time handler.
type DynamicConfig struct {
	// Registry counts render errors and timeouts (may be nil).
	Registry *telemetry.Registry
	// RenderTimeout bounds each page computation; a click-time query
	// that hangs (e.g. over a degraded data graph) answers 504 after
	// the deadline instead of pinning the connection. 0 disables.
	RenderTimeout time.Duration
	// Clock drives the deadline; nil means the wall clock.
	Clock resilience.Clock
}

// DynamicFrom serves click-time pages from whatever renderer the
// getter currently returns, so a background refresher can atomically
// swap in a renderer over fresh data while requests are in flight.
// Each request resolves the renderer once and uses it throughout — a
// consistent snapshot even mid-swap.
//
// The handler is a serving edge (see edge.go) without a byte cache:
// every page renders at click time, with post-render If-None-Match
// comparison so conditional clients save the transfer. To materialize
// hot pages too, build the edge yourself with DynamicEdge.
func DynamicFrom(get func() *incremental.Renderer, rootCollection string, cfg DynamicConfig) http.Handler {
	return DynamicEdge(get, rootCollection, EdgeConfig{
		Mode:          "dynamic",
		Registry:      cfg.Registry,
		RenderTimeout: cfg.RenderTimeout,
		Clock:         cfg.Clock,
	})
}

// statusWriter captures the response status and body byte count for
// classification and accounting. It forwards the optional
// http.ResponseWriter upgrades — Flush for streaming handlers,
// ReadFrom for sendfile-style copies — that a plain embedded wrapper
// would silently hide, and exposes Unwrap so http.ResponseController
// can reach any others.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer's Flusher, when it has one.
// Without this, wrapping a streaming handler in Instrument would make
// http.Flusher assertions fail and buffer the whole response.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom keeps the underlying writer's optimized copy path (e.g.
// sendfile in net/http) reachable through the wrapper, still counting
// status and bytes.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	var n int64
	var err error
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		n, err = rf.ReadFrom(src)
	} else {
		n, err = io.Copy(w.ResponseWriter, src)
	}
	w.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Observability bundles the serving-plane observers the instrumented
// middleware feeds. Every field except Registry may be nil; a nil
// observer is simply skipped, so callers opt into exactly the
// reporting they want.
type Observability struct {
	// Registry receives the fixed-cardinality request metrics.
	Registry *telemetry.Registry
	// Accounting receives one Record per request (per-page table).
	Accounting *Accounting
	// SLO receives one latency/error observation per request.
	SLO *telemetry.SLO
	// AccessLog writes one structured line per request.
	AccessLog *telemetry.AccessLogger
	// Tracer samples request traces; the sampled request's root span
	// rides the request context into the handler.
	Tracer *telemetry.RequestTracer
	// Inflight tracks requests currently being served for /debug/ops.
	Inflight *Inflight
	// BuildID, when set, names the build the response was served from
	// (read once per request, at completion); it lands in the access
	// log and on sampled request traces, correlating the serving plane
	// with the build ledger.
	BuildID func() string
}

// Instrument wraps a handler with per-mode request telemetry: a
// request counter labeled by status class, a latency histogram
// (telemetry.DefBuckets, seconds), and an in-flight gauge. mode is
// "static" or "dynamic" (any short tag works). All series register
// eagerly so /metrics shows them before the first request.
func Instrument(reg *telemetry.Registry, mode string, next http.Handler) http.Handler {
	return InstrumentObserved(Observability{Registry: reg}, mode, next)
}

// InstrumentObserved is Instrument plus the serving-plane observers:
// per-page accounting, SLO tracking, access logging, sampled request
// tracing and in-flight tracking — one middleware, one status/bytes
// capture, one clock read shared by all of them.
func InstrumentObserved(obs Observability, mode string, next http.Handler) http.Handler {
	var classes [6]*telemetry.Counter
	var latency *telemetry.Histogram
	var inflight *telemetry.Gauge
	if obs.Registry != nil {
		for i, cl := range []string{"1xx", "2xx", "3xx", "4xx", "5xx", "other"} {
			classes[i] = obs.Registry.Counter("strudel_http_requests_total",
				"HTTP requests served, by serving mode and status class.",
				"mode", mode, "class", cl)
		}
		latency = obs.Registry.Histogram("strudel_http_request_seconds",
			"HTTP request latency in seconds, by serving mode.",
			telemetry.DefBuckets, "mode", mode)
		inflight = obs.Registry.Gauge("strudel_http_inflight_requests",
			"Requests currently being served, by serving mode.",
			"mode", mode)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if inflight != nil {
			inflight.Add(1)
		}
		// Assign the correlation ID here, at the outermost instrumented
		// layer, so every log line of the request can carry it.
		r = withRequestID(r)
		reqID := RequestID(r)
		var tr *telemetry.Trace
		if obs.Tracer != nil {
			if tr = obs.Tracer.Start(r.Method + " " + r.URL.Path); tr != nil {
				r = r.WithContext(telemetry.ContextWithSpan(r.Context(), tr.Root()))
			}
		}
		release := obs.Inflight.Track(reqID, r.Method, r.URL.Path, t0)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		release()
		if inflight != nil {
			inflight.Add(-1)
		}
		d := time.Since(t0)
		if latency != nil {
			latency.Observe(d.Seconds())
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if classes[0] != nil {
			if i := status/100 - 1; i >= 0 && i < 5 {
				classes[i].Inc()
			} else {
				classes[5].Inc()
			}
		}
		obs.Accounting.Record(r.URL.Path, status, sw.bytes, d, time.Now())
		if obs.SLO != nil {
			obs.SLO.Observe(d, status >= 500)
		}
		buildID := ""
		if obs.BuildID != nil {
			buildID = obs.BuildID()
		}
		if obs.Tracer != nil && tr != nil {
			tr.Root().SetAttr("status", status)
			if buildID != "" {
				tr.Root().SetAttr("build_id", buildID)
			}
			obs.Tracer.Finish(tr)
		}
		if obs.AccessLog != nil {
			traceID := ""
			if tr != nil {
				traceID = tr.ID
			}
			obs.AccessLog.Log(telemetry.AccessEntry{
				Mode: mode, Method: r.Method, Path: r.URL.Path,
				Status: status, Bytes: sw.bytes, Duration: d,
				RequestID: reqID, TraceID: traceID, BuildID: buildID,
			})
		}
	})
}

// AttachDebug mounts the live introspection endpoints on a mux:
//
//	/metrics       the registry in Prometheus text exposition format
//	/debug/vars    expvar (Go runtime memstats and cmdline)
//	/debug/pprof/  the standard pprof profiles
func AttachDebug(mux *http.ServeMux, reg *telemetry.Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
