// Package server serves STRUDEL-generated Web sites over HTTP, in the
// two evaluation modes the paper discusses (Secs. 1 and 6): static —
// the completely materialized site's pages are served from memory —
// and dynamic — only the root is precomputed, and each click runs the
// page's decomposed query at request time, with query-result caching
// to reduce click time.
package server

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"strudel/internal/incremental"
	"strudel/internal/sitegen"
)

// Static returns a handler serving a materialized site. "/" serves
// index.html when present, else a page listing.
func Static(site *sitegen.Site) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		page, ok := site.Pages[path]
		if !ok {
			if r.URL.Path == "/" {
				writeListing(w, site)
				return
			}
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, page.HTML)
	})
	return mux
}

func writeListing(w http.ResponseWriter, site *sitegen.Site) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><body><h1>Site</h1><ul>")
	for _, p := range site.Paths() {
		fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/"+p, html.EscapeString(p))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// Dynamic returns a handler computing pages at click time. "/" renders
// the first root of the given collection; "/page/<key>" renders the
// page with that key (keys are discovered during browsing, starting
// from the roots, exactly as a user could only reach pages by
// following links).
func Dynamic(r *incremental.Renderer, rootCollection string) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, ref incremental.PageRef) {
		htmlText, err := r.RenderPage(ref)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, htmlText)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		roots, err := r.Dec.Roots(rootCollection)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(roots) == 0 {
			http.Error(w, "site has no root pages", http.StatusNotFound)
			return
		}
		if len(roots) == 1 {
			serve(w, roots[0])
			return
		}
		// Multiple roots: list them.
		keys := make([]string, len(roots))
		for i, root := range roots {
			keys[i] = root.Key()
		}
		sort.Strings(keys)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>Roots</h1><ul>")
		for _, k := range keys {
			fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/page/"+url.PathEscape(k), html.EscapeString(k))
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
	mux.HandleFunc("/page/", func(w http.ResponseWriter, req *http.Request) {
		key, err := url.PathUnescape(strings.TrimPrefix(req.URL.Path, "/page/"))
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		ref, ok := r.Dec.Resolve(key)
		if !ok {
			http.NotFound(w, req)
			return
		}
		serve(w, ref)
	})
	return mux
}
