// Package server serves STRUDEL-generated Web sites over HTTP, in the
// two evaluation modes the paper discusses (Secs. 1 and 6): static —
// the completely materialized site's pages are served from memory —
// and dynamic — only the root is precomputed, and each click runs the
// page's decomposed query at request time, with query-result caching
// to reduce click time.
//
// Observability: Instrument wraps a handler with request counting and
// latency histograms per serving mode, and AttachDebug exposes the
// live introspection endpoints (/metrics in Prometheus text format,
// /debug/vars, /debug/pprof) that back the paper's click-time
// measurements (Sec. 6).
package server

import (
	"errors"
	"expvar"
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strings"
	"time"

	"strudel/internal/incremental"
	"strudel/internal/resilience"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

// Static returns a handler serving a materialized site. "/" serves
// index.html when present, else a page listing.
func Static(site *sitegen.Site) http.Handler {
	return StaticFrom(func() *sitegen.Site { return site })
}

// StaticFrom serves whatever site the getter currently returns. A
// background refresher can atomically swap in a newly built site (via
// an atomic pointer in the getter) while requests are in flight; each
// request sees one consistent site snapshot.
func StaticFrom(get func() *sitegen.Site) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		site := get()
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		page, ok := site.Pages[path]
		if !ok {
			if r.URL.Path == "/" {
				writeListing(w, site)
				return
			}
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, page.HTML)
	})
	return mux
}

func writeListing(w http.ResponseWriter, site *sitegen.Site) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><body><h1>Site</h1><ul>")
	for _, p := range site.Paths() {
		fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/"+p, html.EscapeString(p))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// internalError answers a failed request without leaking the error
// into the response body: the client gets a generic page, and the
// detail goes to the structured log (with the request's correlation
// ID) and the error counter instead.
func internalError(w http.ResponseWriter, r *http.Request, reg *telemetry.Registry, mode string, err error) {
	logger().Error("internal error",
		"mode", mode, "path", r.URL.Path, "request_id", RequestID(r), "err", err)
	if reg != nil {
		reg.Counter("strudel_http_internal_errors_total",
			"Requests that failed with an internal error, by serving mode.",
			"mode", mode).Inc()
	}
	http.Error(w, "internal error", http.StatusInternalServerError)
}

// Dynamic returns a handler computing pages at click time. "/" renders
// the first root of the given collection; "/page/<key>" renders the
// page with that key (keys are discovered during browsing, starting
// from the roots, exactly as a user could only reach pages by
// following links).
func Dynamic(r *incremental.Renderer, rootCollection string) http.Handler {
	return DynamicWith(r, rootCollection, nil)
}

// DynamicWith is Dynamic with render errors counted in a telemetry
// registry (which may be nil).
func DynamicWith(r *incremental.Renderer, rootCollection string, reg *telemetry.Registry) http.Handler {
	return DynamicFrom(func() *incremental.Renderer { return r }, rootCollection,
		DynamicConfig{Registry: reg})
}

// DynamicConfig tunes a dynamic click-time handler.
type DynamicConfig struct {
	// Registry counts render errors and timeouts (may be nil).
	Registry *telemetry.Registry
	// RenderTimeout bounds each page computation; a click-time query
	// that hangs (e.g. over a degraded data graph) answers 504 after
	// the deadline instead of pinning the connection. 0 disables.
	RenderTimeout time.Duration
	// Clock drives the deadline; nil means the wall clock.
	Clock resilience.Clock
}

// DynamicFrom serves click-time pages from whatever renderer the
// getter currently returns, so a background refresher can atomically
// swap in a renderer over fresh data while requests are in flight.
// Each request resolves the renderer once and uses it throughout — a
// consistent snapshot even mid-swap.
func DynamicFrom(get func() *incremental.Renderer, rootCollection string, cfg DynamicConfig) http.Handler {
	reg := cfg.Registry
	var timeouts *telemetry.Counter
	if reg != nil {
		timeouts = reg.Counter("strudel_http_render_timeouts_total",
			"Dynamic renders abandoned at the render deadline, by serving mode.",
			"mode", "dynamic")
	}
	// bounded runs one page computation under the render deadline.
	bounded := func(op func() error) error {
		return resilience.WithTimeout(cfg.Clock, cfg.RenderTimeout, op)
	}
	renderFailure := func(w http.ResponseWriter, req *http.Request, err error) {
		if errors.Is(err, resilience.ErrTimeout) {
			if timeouts != nil {
				timeouts.Inc()
			}
			http.Error(w, "page computation timed out", http.StatusGatewayTimeout)
			return
		}
		internalError(w, req, reg, "dynamic", err)
	}
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, req *http.Request, r *incremental.Renderer, ref incremental.PageRef) {
		var htmlText string
		err := bounded(func() error {
			out, err := r.RenderPage(ref)
			if err != nil {
				return err
			}
			htmlText = out
			return nil
		})
		if err != nil {
			renderFailure(w, req, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, htmlText)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		r := get()
		var roots []incremental.PageRef
		err := bounded(func() error {
			out, err := r.Dec.Roots(rootCollection)
			if err != nil {
				return err
			}
			roots = out
			return nil
		})
		if err != nil {
			renderFailure(w, req, err)
			return
		}
		if len(roots) == 0 {
			http.Error(w, "site has no root pages", http.StatusNotFound)
			return
		}
		if len(roots) == 1 {
			serve(w, req, r, roots[0])
			return
		}
		// Multiple roots: list them.
		keys := make([]string, len(roots))
		for i, root := range roots {
			keys[i] = root.Key()
		}
		sort.Strings(keys)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>Roots</h1><ul>")
		for _, k := range keys {
			fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/page/"+url.PathEscape(k), html.EscapeString(k))
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
	mux.HandleFunc("/page/", func(w http.ResponseWriter, req *http.Request) {
		key, err := url.PathUnescape(strings.TrimPrefix(req.URL.Path, "/page/"))
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		r := get()
		ref, ok := r.Dec.Resolve(key)
		if !ok {
			http.NotFound(w, req)
			return
		}
		serve(w, req, r, ref)
	})
	return mux
}

// statusWriter captures the response status for classification.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Instrument wraps a handler with per-mode request telemetry: a
// request counter labeled by status class, a latency histogram
// (telemetry.DefBuckets, seconds), and an in-flight gauge. mode is
// "static" or "dynamic" (any short tag works). All series register
// eagerly so /metrics shows them before the first request.
func Instrument(reg *telemetry.Registry, mode string, next http.Handler) http.Handler {
	classes := [6]*telemetry.Counter{}
	for i, cl := range []string{"1xx", "2xx", "3xx", "4xx", "5xx", "other"} {
		classes[i] = reg.Counter("strudel_http_requests_total",
			"HTTP requests served, by serving mode and status class.",
			"mode", mode, "class", cl)
	}
	latency := reg.Histogram("strudel_http_request_seconds",
		"HTTP request latency in seconds, by serving mode.",
		telemetry.DefBuckets, "mode", mode)
	inflight := reg.Gauge("strudel_http_inflight_requests",
		"Requests currently being served, by serving mode.",
		"mode", mode)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		// Assign the correlation ID here, at the outermost instrumented
		// layer, so every log line of the request can carry it.
		next.ServeHTTP(sw, withRequestID(r))
		inflight.Add(-1)
		latency.Observe(time.Since(t0).Seconds())
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if i := status/100 - 1; i >= 0 && i < 5 {
			classes[i].Inc()
		} else {
			classes[5].Inc()
		}
	})
}

// AttachDebug mounts the live introspection endpoints on a mux:
//
//	/metrics       the registry in Prometheus text exposition format
//	/debug/vars    expvar (Go runtime memstats and cmdline)
//	/debug/pprof/  the standard pprof profiles
func AttachDebug(mux *http.ServeMux, reg *telemetry.Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
