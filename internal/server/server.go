// Package server serves STRUDEL-generated Web sites over HTTP, in the
// two evaluation modes the paper discusses (Secs. 1 and 6): static —
// the completely materialized site's pages are served from memory —
// and dynamic — only the root is precomputed, and each click runs the
// page's decomposed query at request time, with query-result caching
// to reduce click time.
//
// Observability: Instrument wraps a handler with request counting and
// latency histograms per serving mode, and AttachDebug exposes the
// live introspection endpoints (/metrics in Prometheus text format,
// /debug/vars, /debug/pprof) that back the paper's click-time
// measurements (Sec. 6).
package server

import (
	"errors"
	"expvar"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strings"
	"time"

	"strudel/internal/incremental"
	"strudel/internal/resilience"
	"strudel/internal/sitegen"
	"strudel/internal/telemetry"
)

// Static returns a handler serving a materialized site. "/" serves
// index.html when present, else a page listing.
func Static(site *sitegen.Site) http.Handler {
	return StaticFrom(func() *sitegen.Site { return site })
}

// StaticFrom serves whatever site the getter currently returns. A
// background refresher can atomically swap in a newly built site (via
// an atomic pointer in the getter) while requests are in flight; each
// request sees one consistent site snapshot.
func StaticFrom(get func() *sitegen.Site) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		site := get()
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		page, ok := site.Pages[path]
		if !ok {
			if r.URL.Path == "/" {
				writeListing(w, site)
				return
			}
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, page.HTML)
	})
	return mux
}

func writeListing(w http.ResponseWriter, site *sitegen.Site) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><body><h1>Site</h1><ul>")
	for _, p := range site.Paths() {
		fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/"+p, html.EscapeString(p))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// internalError answers a failed request without leaking the error
// into the response body: the client gets a generic page, and the
// detail goes to the structured log (with the request's correlation
// ID) and the error counter instead.
func internalError(w http.ResponseWriter, r *http.Request, reg *telemetry.Registry, mode string, err error) {
	logger().Error("internal error",
		"mode", mode, "path", r.URL.Path, "request_id", RequestID(r), "err", err)
	if reg != nil {
		reg.Counter("strudel_http_internal_errors_total",
			"Requests that failed with an internal error, by serving mode.",
			"mode", mode).Inc()
	}
	http.Error(w, "internal error", http.StatusInternalServerError)
}

// Dynamic returns a handler computing pages at click time. "/" renders
// the first root of the given collection; "/page/<key>" renders the
// page with that key (keys are discovered during browsing, starting
// from the roots, exactly as a user could only reach pages by
// following links).
func Dynamic(r *incremental.Renderer, rootCollection string) http.Handler {
	return DynamicWith(r, rootCollection, nil)
}

// DynamicWith is Dynamic with render errors counted in a telemetry
// registry (which may be nil).
func DynamicWith(r *incremental.Renderer, rootCollection string, reg *telemetry.Registry) http.Handler {
	return DynamicFrom(func() *incremental.Renderer { return r }, rootCollection,
		DynamicConfig{Registry: reg})
}

// DynamicConfig tunes a dynamic click-time handler.
type DynamicConfig struct {
	// Registry counts render errors and timeouts (may be nil).
	Registry *telemetry.Registry
	// RenderTimeout bounds each page computation; a click-time query
	// that hangs (e.g. over a degraded data graph) answers 504 after
	// the deadline instead of pinning the connection. 0 disables.
	RenderTimeout time.Duration
	// Clock drives the deadline; nil means the wall clock.
	Clock resilience.Clock
}

// DynamicFrom serves click-time pages from whatever renderer the
// getter currently returns, so a background refresher can atomically
// swap in a renderer over fresh data while requests are in flight.
// Each request resolves the renderer once and uses it throughout — a
// consistent snapshot even mid-swap.
func DynamicFrom(get func() *incremental.Renderer, rootCollection string, cfg DynamicConfig) http.Handler {
	reg := cfg.Registry
	var timeouts *telemetry.Counter
	if reg != nil {
		timeouts = reg.Counter("strudel_http_render_timeouts_total",
			"Dynamic renders abandoned at the render deadline, by serving mode.",
			"mode", "dynamic")
	}
	// bounded runs one page computation under the render deadline.
	bounded := func(op func() error) error {
		return resilience.WithTimeout(cfg.Clock, cfg.RenderTimeout, op)
	}
	renderFailure := func(w http.ResponseWriter, req *http.Request, err error) {
		if errors.Is(err, resilience.ErrTimeout) {
			if timeouts != nil {
				timeouts.Inc()
			}
			http.Error(w, "page computation timed out", http.StatusGatewayTimeout)
			return
		}
		internalError(w, req, reg, "dynamic", err)
	}
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, req *http.Request, r *incremental.Renderer, ref incremental.PageRef) {
		var htmlText string
		err := bounded(func() error {
			// The request context carries the sampled trace's span (if
			// any), so the render and its query evaluations show up as
			// children of the request.
			out, err := r.RenderPageContext(req.Context(), ref)
			if err != nil {
				return err
			}
			htmlText = out
			return nil
		})
		if err != nil {
			renderFailure(w, req, err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, htmlText)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		r := get()
		var roots []incremental.PageRef
		err := bounded(func() error {
			out, err := r.Dec.Roots(rootCollection)
			if err != nil {
				return err
			}
			roots = out
			return nil
		})
		if err != nil {
			renderFailure(w, req, err)
			return
		}
		if len(roots) == 0 {
			http.Error(w, "site has no root pages", http.StatusNotFound)
			return
		}
		if len(roots) == 1 {
			serve(w, req, r, roots[0])
			return
		}
		// Multiple roots: list them.
		keys := make([]string, len(roots))
		for i, root := range roots {
			keys[i] = root.Key()
		}
		sort.Strings(keys)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>Roots</h1><ul>")
		for _, k := range keys {
			fmt.Fprintf(w, "<li><a href=%q>%s</a></li>", "/page/"+url.PathEscape(k), html.EscapeString(k))
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
	mux.HandleFunc("/page/", func(w http.ResponseWriter, req *http.Request) {
		key, err := url.PathUnescape(strings.TrimPrefix(req.URL.Path, "/page/"))
		if err != nil {
			http.Error(w, "bad page key", http.StatusBadRequest)
			return
		}
		r := get()
		ref, ok := r.Dec.Resolve(key)
		if !ok {
			http.NotFound(w, req)
			return
		}
		serve(w, req, r, ref)
	})
	return mux
}

// statusWriter captures the response status and body byte count for
// classification and accounting. It forwards the optional
// http.ResponseWriter upgrades — Flush for streaming handlers,
// ReadFrom for sendfile-style copies — that a plain embedded wrapper
// would silently hide, and exposes Unwrap so http.ResponseController
// can reach any others.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer's Flusher, when it has one.
// Without this, wrapping a streaming handler in Instrument would make
// http.Flusher assertions fail and buffer the whole response.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom keeps the underlying writer's optimized copy path (e.g.
// sendfile in net/http) reachable through the wrapper, still counting
// status and bytes.
func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	var n int64
	var err error
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		n, err = rf.ReadFrom(src)
	} else {
		n, err = io.Copy(w.ResponseWriter, src)
	}
	w.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Observability bundles the serving-plane observers the instrumented
// middleware feeds. Every field except Registry may be nil; a nil
// observer is simply skipped, so callers opt into exactly the
// reporting they want.
type Observability struct {
	// Registry receives the fixed-cardinality request metrics.
	Registry *telemetry.Registry
	// Accounting receives one Record per request (per-page table).
	Accounting *Accounting
	// SLO receives one latency/error observation per request.
	SLO *telemetry.SLO
	// AccessLog writes one structured line per request.
	AccessLog *telemetry.AccessLogger
	// Tracer samples request traces; the sampled request's root span
	// rides the request context into the handler.
	Tracer *telemetry.RequestTracer
	// Inflight tracks requests currently being served for /debug/ops.
	Inflight *Inflight
}

// Instrument wraps a handler with per-mode request telemetry: a
// request counter labeled by status class, a latency histogram
// (telemetry.DefBuckets, seconds), and an in-flight gauge. mode is
// "static" or "dynamic" (any short tag works). All series register
// eagerly so /metrics shows them before the first request.
func Instrument(reg *telemetry.Registry, mode string, next http.Handler) http.Handler {
	return InstrumentObserved(Observability{Registry: reg}, mode, next)
}

// InstrumentObserved is Instrument plus the serving-plane observers:
// per-page accounting, SLO tracking, access logging, sampled request
// tracing and in-flight tracking — one middleware, one status/bytes
// capture, one clock read shared by all of them.
func InstrumentObserved(obs Observability, mode string, next http.Handler) http.Handler {
	var classes [6]*telemetry.Counter
	var latency *telemetry.Histogram
	var inflight *telemetry.Gauge
	if obs.Registry != nil {
		for i, cl := range []string{"1xx", "2xx", "3xx", "4xx", "5xx", "other"} {
			classes[i] = obs.Registry.Counter("strudel_http_requests_total",
				"HTTP requests served, by serving mode and status class.",
				"mode", mode, "class", cl)
		}
		latency = obs.Registry.Histogram("strudel_http_request_seconds",
			"HTTP request latency in seconds, by serving mode.",
			telemetry.DefBuckets, "mode", mode)
		inflight = obs.Registry.Gauge("strudel_http_inflight_requests",
			"Requests currently being served, by serving mode.",
			"mode", mode)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if inflight != nil {
			inflight.Add(1)
		}
		// Assign the correlation ID here, at the outermost instrumented
		// layer, so every log line of the request can carry it.
		r = withRequestID(r)
		reqID := RequestID(r)
		var tr *telemetry.Trace
		if obs.Tracer != nil {
			if tr = obs.Tracer.Start(r.Method + " " + r.URL.Path); tr != nil {
				r = r.WithContext(telemetry.ContextWithSpan(r.Context(), tr.Root()))
			}
		}
		release := obs.Inflight.Track(reqID, r.Method, r.URL.Path, t0)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		release()
		if inflight != nil {
			inflight.Add(-1)
		}
		d := time.Since(t0)
		if latency != nil {
			latency.Observe(d.Seconds())
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if classes[0] != nil {
			if i := status/100 - 1; i >= 0 && i < 5 {
				classes[i].Inc()
			} else {
				classes[5].Inc()
			}
		}
		obs.Accounting.Record(r.URL.Path, status, sw.bytes, d, time.Now())
		if obs.SLO != nil {
			obs.SLO.Observe(d, status >= 500)
		}
		if obs.Tracer != nil && tr != nil {
			tr.Root().SetAttr("status", status)
			obs.Tracer.Finish(tr)
		}
		if obs.AccessLog != nil {
			traceID := ""
			if tr != nil {
				traceID = tr.ID
			}
			obs.AccessLog.Log(telemetry.AccessEntry{
				Mode: mode, Method: r.Method, Path: r.URL.Path,
				Status: status, Bytes: sw.bytes, Duration: d,
				RequestID: reqID, TraceID: traceID,
			})
		}
	})
}

// AttachDebug mounts the live introspection endpoints on a mux:
//
//	/metrics       the registry in Prometheus text exposition format
//	/debug/vars    expvar (Go runtime memstats and cmdline)
//	/debug/pprof/  the standard pprof profiles
func AttachDebug(mux *http.ServeMux, reg *telemetry.Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
