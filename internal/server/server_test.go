package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/template"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStaticServer(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<h1>Home</h1>"},
		"a.html":     {Path: "a.html", HTML: "<h1>A</h1>"},
	}}
	srv := httptest.NewServer(Static(site))
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != 200 || body != "<h1>Home</h1>" {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, body := get(t, srv, "/a.html"); code != 200 || body != "<h1>A</h1>" {
		t.Errorf("/a.html = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/missing.html"); code != 404 {
		t.Errorf("missing = %d", code)
	}
}

func TestStaticServerListingWithoutIndex(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"a.html": {Path: "a.html", HTML: "A"},
	}}
	srv := httptest.NewServer(Static(site))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, `href="/a.html"`) {
		t.Errorf("listing = %d %q", code, body)
	}
}

func dynamicRenderer(t *testing.T) *incremental.Renderer {
	t.Helper()
	r, _ := dynamicRendererAndGraph(t)
	return r
}

func dynamicRendererAndGraph(t *testing.T) (*incremental.Renderer, *graph.Graph) {
	t.Helper()
	res, err := datadef.Parse("G", `
collection Publications { }
object pub1 in Publications { title "Alpha" year 1997 }
object pub2 in Publications { title "Beta" year 1998 }
`)
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(`
INPUT G
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Year" -> y,
     RootPage() -> "YearPage" -> YearPage(y)`)
	d := incremental.Decompose(q, res.Graph, nil)
	return &incremental.Renderer{
		Dec: d,
		Templates: map[string]*template.Template{
			"RootPage": template.MustParse("RootPage", `<h1>Years</h1><SFMT_UL YearPage ORDER=ascend KEY=Year>`),
			"YearPage": template.MustParse("YearPage", `<h1>Year <SFMT Year></h1>`),
		},
	}, res.Graph
}

func TestDynamicServerClickThrough(t *testing.T) {
	srv := httptest.NewServer(Dynamic(dynamicRenderer(t), "Roots"))
	defer srv.Close()
	// Root renders with links to year pages.
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "<h1>Years</h1>") {
		t.Fatalf("/ = %d %q", code, body)
	}
	if !strings.Contains(body, "/page/YearPage%281997%29") {
		t.Errorf("root missing year link: %q", body)
	}
	// Click through to a year page (computed at click time).
	code, body = get(t, srv, "/page/YearPage%281997%29")
	if code != 200 || !strings.Contains(body, "<h1>Year 1997</h1>") {
		t.Errorf("year page = %d %q", code, body)
	}
	// Unknown (undiscovered) pages are 404.
	if code, _ := get(t, srv, "/page/YearPage%282050%29"); code != 404 {
		t.Errorf("undiscovered page = %d", code)
	}
	if code, _ := get(t, srv, "/nosuch"); code != 404 {
		t.Errorf("bad path = %d", code)
	}
}

func TestDynamicServerCachesPages(t *testing.T) {
	r := dynamicRenderer(t)
	srv := httptest.NewServer(Dynamic(r, "Roots"))
	defer srv.Close()
	get(t, srv, "/")
	get(t, srv, "/page/YearPage%281997%29")
	first := r.Dec.Stats()
	get(t, srv, "/page/YearPage%281997%29")
	second := r.Dec.Stats()
	if second.CacheHits <= first.CacheHits {
		t.Errorf("stats = %+v -> %+v", first, second)
	}
}

// brokenRenderer builds a renderer whose root is computable but whose
// page queries fail at click time (the planner errors on any seeded
// conjunction), so RenderPage returns an error.
func brokenRenderer(t *testing.T) *incremental.Renderer {
	t.Helper()
	r, g := dynamicRendererAndGraph(t)
	r.Dec.UsePlanner(func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
		if seed == nil {
			// Roots still computes, so "/" reaches the render path.
			return struql.EvalBindings(g, struql.NewRegistry(), conds, nil)
		}
		return nil, errors.New("synthetic render failure: secret-detail")
	})
	return r
}

// TestDynamicServerRenderErrorIs500 checks that a render failure
// produces a generic 500 page — the error detail must not leak into
// the response body — and is counted in the telemetry registry.
func TestDynamicServerRenderErrorIs500(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(DynamicWith(brokenRenderer(t), "Roots", reg))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != 500 {
		t.Fatalf("/ = %d %q", code, body)
	}
	if strings.Contains(body, "unbound") || strings.Contains(body, "BadPage") {
		t.Errorf("error detail leaked into response: %q", body)
	}
	if !strings.Contains(body, "internal error") {
		t.Errorf("missing generic error page: %q", body)
	}
	c := reg.Counter("strudel_http_internal_errors_total",
		"Requests that failed with an internal error, by serving mode.",
		"mode", "dynamic")
	if c.Value() != 1 {
		t.Errorf("internal error counter = %d, want 1", c.Value())
	}
}

// TestInstrumentAndMetricsEndpoint drives an instrumented static
// server and checks the registered series appear on /metrics.
func TestInstrumentAndMetricsEndpoint(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<h1>Home</h1>"},
	}}
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", Instrument(reg, "static", Static(site)))
	AttachDebug(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, _ := get(t, srv, "/"); code != 200 {
		t.Fatalf("/ = %d", code)
	}
	if code, _ := get(t, srv, "/missing.html"); code != 404 {
		t.Fatalf("missing = %d", code)
	}
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`strudel_http_requests_total{class="2xx",mode="static"} 1`,
		`strudel_http_requests_total{class="4xx",mode="static"} 1`,
		`strudel_http_request_seconds_count{mode="static"} 2`,
		`strudel_http_request_seconds_bucket{mode="static",le="+Inf"} 2`,
		`strudel_http_inflight_requests{mode="static"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, srv, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestQueryHandler(t *testing.T) {
	res, err := datadef.Parse("site", `
collection Pages { }
object home in Pages { title "Home" kind "page" }
object about in Pages { title "About" kind "page" link home }
`)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(QueryHandler(res.Graph, nil, 0))
	defer srv.Close()

	// The empty query serves the form.
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "<form") {
		t.Errorf("form = %d %q", code, body)
	}
	// A collect query renders results.
	q := url.QueryEscape(`WHERE Pages(p), p -> "title" -> v COLLECT Titles(v)`)
	code, body = get(t, srv, "/?q="+q)
	if code != 200 || !strings.Contains(body, "Home") || !strings.Contains(body, "About") {
		t.Errorf("results = %d %q", code, body)
	}
	// A regular-path-expression query over the site.
	q = url.QueryEscape(`WHERE Pages(p), p -> * -> q2, Pages(q2) COLLECT Reachable(q2)`)
	if code, body = get(t, srv, "/?q="+q); code != 200 || !strings.Contains(body, "home") {
		t.Errorf("path query = %d %q", code, body)
	}
	// Mutating queries are rejected.
	q = url.QueryEscape(`WHERE Pages(p) CREATE F(p) LINK F(p) -> "x" -> p`)
	if code, _ = get(t, srv, "/?q="+q); code != 400 {
		t.Errorf("mutating query = %d", code)
	}
	// Parse errors are 400.
	if code, _ = get(t, srv, "/?q="+url.QueryEscape("WHERE (((")); code != 400 {
		t.Errorf("bad query = %d", code)
	}
	// Runaway queries hit the binding cap.
	srvTight := httptest.NewServer(QueryHandler(res.Graph, nil, 2))
	defer srvTight.Close()
	q = url.QueryEscape(`WHERE Pages(p), p -> a -> v COLLECT Out(v)`)
	if code, _ = get(t, srvTight, "/?q="+q); code != 422 {
		t.Errorf("capped query = %d", code)
	}
	// Queries with no collect clauses say so.
	q = url.QueryEscape(`WHERE Pages(p), p -> "title" -> v`)
	if code, body = get(t, srv, "/?q="+q); code != 200 || !strings.Contains(body, "nothing to show") {
		t.Errorf("collectless = %d %q", code, body)
	}
}
